
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/azure/blob/blob_service.cpp" "src/azure/CMakeFiles/azure.dir/blob/blob_service.cpp.o" "gcc" "src/azure/CMakeFiles/azure.dir/blob/blob_service.cpp.o.d"
  "/root/repo/src/azure/cache/cache_service.cpp" "src/azure/CMakeFiles/azure.dir/cache/cache_service.cpp.o" "gcc" "src/azure/CMakeFiles/azure.dir/cache/cache_service.cpp.o.d"
  "/root/repo/src/azure/queue/queue_service.cpp" "src/azure/CMakeFiles/azure.dir/queue/queue_service.cpp.o" "gcc" "src/azure/CMakeFiles/azure.dir/queue/queue_service.cpp.o.d"
  "/root/repo/src/azure/sql/sql_service.cpp" "src/azure/CMakeFiles/azure.dir/sql/sql_service.cpp.o" "gcc" "src/azure/CMakeFiles/azure.dir/sql/sql_service.cpp.o.d"
  "/root/repo/src/azure/table/table_service.cpp" "src/azure/CMakeFiles/azure.dir/table/table_service.cpp.o" "gcc" "src/azure/CMakeFiles/azure.dir/table/table_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
