file(REMOVE_RECURSE
  "CMakeFiles/azure.dir/blob/blob_service.cpp.o"
  "CMakeFiles/azure.dir/blob/blob_service.cpp.o.d"
  "CMakeFiles/azure.dir/cache/cache_service.cpp.o"
  "CMakeFiles/azure.dir/cache/cache_service.cpp.o.d"
  "CMakeFiles/azure.dir/queue/queue_service.cpp.o"
  "CMakeFiles/azure.dir/queue/queue_service.cpp.o.d"
  "CMakeFiles/azure.dir/sql/sql_service.cpp.o"
  "CMakeFiles/azure.dir/sql/sql_service.cpp.o.d"
  "CMakeFiles/azure.dir/table/table_service.cpp.o"
  "CMakeFiles/azure.dir/table/table_service.cpp.o.d"
  "libazure.a"
  "libazure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
