# Empty dependencies file for azure.
# This may be replaced when dependencies are built.
