file(REMOVE_RECURSE
  "libazure.a"
)
