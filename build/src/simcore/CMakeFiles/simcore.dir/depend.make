# Empty dependencies file for simcore.
# This may be replaced when dependencies are built.
