file(REMOVE_RECURSE
  "libsimcore.a"
)
