file(REMOVE_RECURSE
  "CMakeFiles/simcore.dir/simulation.cpp.o"
  "CMakeFiles/simcore.dir/simulation.cpp.o.d"
  "CMakeFiles/simcore.dir/time.cpp.o"
  "CMakeFiles/simcore.dir/time.cpp.o.d"
  "libsimcore.a"
  "libsimcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
