file(REMOVE_RECURSE
  "libazurebench_core.a"
)
