file(REMOVE_RECURSE
  "CMakeFiles/azurebench_core.dir/blob_benchmark.cpp.o"
  "CMakeFiles/azurebench_core.dir/blob_benchmark.cpp.o.d"
  "CMakeFiles/azurebench_core.dir/queue_benchmark.cpp.o"
  "CMakeFiles/azurebench_core.dir/queue_benchmark.cpp.o.d"
  "CMakeFiles/azurebench_core.dir/table_benchmark.cpp.o"
  "CMakeFiles/azurebench_core.dir/table_benchmark.cpp.o.d"
  "libazurebench_core.a"
  "libazurebench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azurebench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
