# Empty compiler generated dependencies file for azurebench_core.
# This may be replaced when dependencies are built.
