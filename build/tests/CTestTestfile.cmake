# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/blob_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_ext_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/api_ext_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
