file(REMOVE_RECURSE
  "CMakeFiles/fabric_ext_test.dir/fabric_ext_test.cpp.o"
  "CMakeFiles/fabric_ext_test.dir/fabric_ext_test.cpp.o.d"
  "fabric_ext_test"
  "fabric_ext_test.pdb"
  "fabric_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
