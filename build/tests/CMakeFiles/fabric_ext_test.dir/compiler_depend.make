# Empty compiler generated dependencies file for fabric_ext_test.
# This may be replaced when dependencies are built.
