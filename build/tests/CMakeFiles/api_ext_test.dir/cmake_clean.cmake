file(REMOVE_RECURSE
  "CMakeFiles/api_ext_test.dir/api_ext_test.cpp.o"
  "CMakeFiles/api_ext_test.dir/api_ext_test.cpp.o.d"
  "api_ext_test"
  "api_ext_test.pdb"
  "api_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
