file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sql.dir/bench_ext_sql.cpp.o"
  "CMakeFiles/bench_ext_sql.dir/bench_ext_sql.cpp.o.d"
  "bench_ext_sql"
  "bench_ext_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
