# Empty compiler generated dependencies file for bench_ext_sql.
# This may be replaced when dependencies are built.
