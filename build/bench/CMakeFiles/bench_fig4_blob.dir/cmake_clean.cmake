file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_blob.dir/bench_fig4_blob.cpp.o"
  "CMakeFiles/bench_fig4_blob.dir/bench_fig4_blob.cpp.o.d"
  "bench_fig4_blob"
  "bench_fig4_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
