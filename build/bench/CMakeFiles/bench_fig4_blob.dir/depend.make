# Empty dependencies file for bench_fig4_blob.
# This may be replaced when dependencies are built.
