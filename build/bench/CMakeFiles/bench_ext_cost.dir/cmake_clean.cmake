file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cost.dir/bench_ext_cost.cpp.o"
  "CMakeFiles/bench_ext_cost.dir/bench_ext_cost.cpp.o.d"
  "bench_ext_cost"
  "bench_ext_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
