# Empty dependencies file for bench_ext_services.
# This may be replaced when dependencies are built.
