file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_services.dir/bench_ext_services.cpp.o"
  "CMakeFiles/bench_ext_services.dir/bench_ext_services.cpp.o.d"
  "bench_ext_services"
  "bench_ext_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
