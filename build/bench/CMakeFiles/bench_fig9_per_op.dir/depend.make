# Empty dependencies file for bench_fig9_per_op.
# This may be replaced when dependencies are built.
