file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_per_op.dir/bench_fig9_per_op.cpp.o"
  "CMakeFiles/bench_fig9_per_op.dir/bench_fig9_per_op.cpp.o.d"
  "bench_fig9_per_op"
  "bench_fig9_per_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_per_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
