file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_table.dir/bench_fig8_table.cpp.o"
  "CMakeFiles/bench_fig8_table.dir/bench_fig8_table.cpp.o.d"
  "bench_fig8_table"
  "bench_fig8_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
