# Empty dependencies file for bench_fig6_queue_separate.
# This may be replaced when dependencies are built.
