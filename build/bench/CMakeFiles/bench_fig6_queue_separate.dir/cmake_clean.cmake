file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_queue_separate.dir/bench_fig6_queue_separate.cpp.o"
  "CMakeFiles/bench_fig6_queue_separate.dir/bench_fig6_queue_separate.cpp.o.d"
  "bench_fig6_queue_separate"
  "bench_fig6_queue_separate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_queue_separate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
