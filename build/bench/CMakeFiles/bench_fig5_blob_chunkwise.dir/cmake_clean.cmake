file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_blob_chunkwise.dir/bench_fig5_blob_chunkwise.cpp.o"
  "CMakeFiles/bench_fig5_blob_chunkwise.dir/bench_fig5_blob_chunkwise.cpp.o.d"
  "bench_fig5_blob_chunkwise"
  "bench_fig5_blob_chunkwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_blob_chunkwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
