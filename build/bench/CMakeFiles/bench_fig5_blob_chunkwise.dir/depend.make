# Empty dependencies file for bench_fig5_blob_chunkwise.
# This may be replaced when dependencies are built.
