file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vmsizes.dir/bench_table1_vmsizes.cpp.o"
  "CMakeFiles/bench_table1_vmsizes.dir/bench_table1_vmsizes.cpp.o.d"
  "bench_table1_vmsizes"
  "bench_table1_vmsizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vmsizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
