file(REMOVE_RECURSE
  "CMakeFiles/iterative_mapreduce.dir/iterative_mapreduce.cpp.o"
  "CMakeFiles/iterative_mapreduce.dir/iterative_mapreduce.cpp.o.d"
  "iterative_mapreduce"
  "iterative_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
