# Empty dependencies file for iterative_mapreduce.
# This may be replaced when dependencies are built.
