# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bag_of_tasks "/root/repo/build/examples/bag_of_tasks")
set_tests_properties(example_bag_of_tasks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gis_overlay "/root/repo/build/examples/gis_overlay")
set_tests_properties(example_gis_overlay PROPERTIES  PASS_REGULAR_EXPRESSION "PASS|converged" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iterative_mapreduce "/root/repo/build/examples/iterative_mapreduce")
set_tests_properties(example_iterative_mapreduce PROPERTIES  PASS_REGULAR_EXPRESSION "PASS|converged" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
