// Key / offset generator toolkit for the scenario DSL (scenario.hpp), in
// the spirit of elbencho's toolkits/offsetgen and toolkits/random: every
// generator is a pure function of (config, seed, call index), so a scenario
// replay draws byte-identical key sequences on every platform.
//
//  * kUniform      — independent uniform draws over [0, space).
//  * kZipf         — Zipf(s) hot-key skew via Hörmann–Derflinger
//                    rejection-inversion: O(1) per draw, no per-key table,
//                    any s >= 0. s == 0 degenerates to *exactly* the uniform
//                    generator (one draw, no rejection loop) — an earlier
//                    draft fed s == 0 through the rejection path, which
//                    consumed a different number of RNG draws per key and
//                    broke replay parity against a uniform spec.
//  * kGoldenStride — deterministic full-coverage stride: key_i = (start +
//                    i * step) mod space with step the odd golden-ratio
//                    stride made coprime to space, so `space` consecutive
//                    draws visit every key exactly once, maximally spread.
//  * kCoverage     — random-aligned full coverage: a seeded 4-round Feistel
//                    permutation over the next power of two, cycle-walked
//                    down to [0, space) — every key exactly once per cycle,
//                    in pseudo-random order.
//
// Stride and coverage generators cycle: draw `space` keys and the sequence
// starts over (same permutation — the cycle is part of the contract).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "simcore/random.hpp"

namespace framework {

/// Upper bound on the Zipf exponent: beyond it the hottest key takes
/// essentially all probability mass and the pow() terms underflow.
inline constexpr double kMaxZipfS = 16.0;

struct KeyGenConfig {
  enum class Kind { kUniform, kZipf, kGoldenStride, kCoverage };
  Kind kind = Kind::kUniform;

  /// Number of distinct keys; draws are in [0, space). Must be >= 1.
  std::uint64_t space = 1;

  /// Zipf exponent (kZipf only). 0 is the uniform boundary; must be finite,
  /// >= 0, and <= 16 (beyond that the hottest key takes essentially all
  /// probability mass and the pow() terms underflow).
  double zipf_s = 0.99;

  /// Seed of the generator's private RNG stream.
  std::uint64_t seed = 0x5EED;
};

/// Thrown by KeyGen on an invalid config. Scenario parsing re-wraps this
/// with the spec-file location.
class KeyGenError : public std::invalid_argument {
 public:
  explicit KeyGenError(const std::string& what)
      : std::invalid_argument(what) {}
};

class KeyGen {
 public:
  explicit KeyGen(const KeyGenConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
    if (cfg.space < 1) {
      throw KeyGenError("keygen: space must be >= 1");
    }
    if (cfg.kind == KeyGenConfig::Kind::kZipf) {
      if (!std::isfinite(cfg.zipf_s) || cfg.zipf_s < 0 ||
          cfg.zipf_s > kMaxZipfS) {
        throw KeyGenError("keygen: zipf_s must be finite and in [0, 16]");
      }
      if (cfg.zipf_s > 0) setup_zipf();
    }
    if (cfg.kind == KeyGenConfig::Kind::kGoldenStride) setup_stride();
    if (cfg.kind == KeyGenConfig::Kind::kCoverage) setup_coverage();
  }

  const KeyGenConfig& config() const noexcept { return cfg_; }

  /// The next key in [0, space).
  std::uint64_t next() {
    switch (cfg_.kind) {
      case KeyGenConfig::Kind::kUniform:
        return draw_uniform();
      case KeyGenConfig::Kind::kZipf:
        // s == 0 is uniform by definition; route it through the exact
        // uniform path (one draw) rather than the rejection loop.
        return cfg_.zipf_s == 0 ? draw_uniform() : draw_zipf();
      case KeyGenConfig::Kind::kGoldenStride: {
        const std::uint64_t k =
            (stride_start_ + index_ % cfg_.space * stride_step_) % cfg_.space;
        ++index_;
        return k;
      }
      case KeyGenConfig::Kind::kCoverage:
        return draw_coverage();
    }
    return 0;  // unreachable
  }

 private:
  std::uint64_t draw_uniform() {
    return static_cast<std::uint64_t>(
        rng_.uniform(0, static_cast<std::int64_t>(cfg_.space) - 1));
  }

  // ----------------------------------------------------------------- zipf --
  // Rejection-inversion (Hörmann & Derflinger 1996) for Zipf on {1..n},
  // exponent q > 0, in the Apache Commons RejectionInversionZipfSampler
  // formulation: H is the antiderivative of the envelope h(x) = x^-q
  // anchored at H(1) = 0, u is inverted through H, and a candidate is
  // accepted either inside the always-accept band (k - x <= cut) or by the
  // exact-mass test. All constants precomputed at construction.
  void setup_zipf() {
    const double n = static_cast<double>(cfg_.space);
    const double q = cfg_.zipf_s;
    zipf_hx1_ = zipf_h(1.5) - 1.0;
    zipf_hn_ = zipf_h(n + 0.5);
    zipf_cut_ = 2.0 - zipf_hinv(zipf_h(2.5) - std::pow(2.0, -q));
  }

  double zipf_h(double x) const {
    const double q = cfg_.zipf_s;
    return q == 1.0 ? std::log(x)
                    : (std::pow(x, 1.0 - q) - 1.0) / (1.0 - q);
  }
  double zipf_hinv(double x) const {
    const double q = cfg_.zipf_s;
    return q == 1.0 ? std::exp(x)
                    : std::pow(1.0 + (1.0 - q) * x, 1.0 / (1.0 - q));
  }

  std::uint64_t draw_zipf() {
    const double n = static_cast<double>(cfg_.space);
    const double q = cfg_.zipf_s;
    for (;;) {
      const double u = zipf_hn_ + rng_.next_double() * (zipf_hx1_ - zipf_hn_);
      const double x = zipf_hinv(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > n) k = n;
      if (k - x <= zipf_cut_ ||
          u >= zipf_h(k + 0.5) - std::pow(k, -q)) {
        return static_cast<std::uint64_t>(k) - 1;  // 0-based
      }
    }
  }

  // --------------------------------------------------------------- stride --
  void setup_stride() {
    // Odd stride nearest to space / golden ratio, bumped until coprime with
    // space (gcd 1 guarantees full coverage in `space` steps).
    const double phi = 0.6180339887498949;
    std::uint64_t step =
        static_cast<std::uint64_t>(static_cast<double>(cfg_.space) * phi);
    if (step < 1) step = 1;
    step |= 1;
    while (gcd(step, cfg_.space) != 1) step += 2;
    stride_step_ = step % cfg_.space;  // space == 1 => step 0, constant key
    stride_start_ = rng_.next_u64() % cfg_.space;
  }

  static std::uint64_t gcd(std::uint64_t a, std::uint64_t b) noexcept {
    while (b != 0) {
      const std::uint64_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  }

  // ------------------------------------------------------------- coverage --
  // Seeded Feistel network over 2*half_bits_ bits (the next even-width power
  // of two >= space), cycle-walked: indices permute within [0, 2^w); values
  // >= space are re-fed through the permutation until one lands in range.
  // Expected walk length < 2 because 2^w < 2 * space... within a factor of
  // 4 for odd widths; still O(1) amortized.
  void setup_coverage() {
    int bits = 1;
    while ((std::uint64_t{1} << bits) < cfg_.space && bits < 62) ++bits;
    if (bits % 2 != 0) ++bits;  // even width so halves are equal
    half_bits_ = bits / 2;
    half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
    for (auto& k : feistel_keys_) k = rng_.next_u64();
  }

  std::uint64_t permute(std::uint64_t x) const noexcept {
    std::uint64_t left = (x >> half_bits_) & half_mask_;
    std::uint64_t right = x & half_mask_;
    for (const std::uint64_t key : feistel_keys_) {
      const std::uint64_t f = mix(right ^ key) & half_mask_;
      const std::uint64_t next_left = right;
      right = left ^ f;
      left = next_left;
    }
    return (left << half_bits_) | right;
  }

  static std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t draw_coverage() {
    // Cycle-walk: starting from an in-range index, apply the big-domain
    // permutation until the image lands back in [0, space). The restricted
    // map is itself a permutation of [0, space) (the standard
    // format-preserving-encryption argument), so `space` consecutive draws
    // visit every key exactly once.
    std::uint64_t v = permute(index_);
    index_ = (index_ + 1) % cfg_.space;
    while (v >= cfg_.space) v = permute(v);
    return v;
  }

  KeyGenConfig cfg_;
  sim::Random rng_;

  // zipf constants
  double zipf_hx1_ = 0, zipf_hn_ = 0, zipf_cut_ = 0;
  // stride state
  std::uint64_t stride_step_ = 1, stride_start_ = 0;
  // coverage state
  int half_bits_ = 1;
  std::uint64_t half_mask_ = 1;
  std::uint64_t feistel_keys_[4] = {0, 0, 0, 0};
  // call index for the deterministic (stride / coverage) generators
  std::uint64_t index_ = 0;
};

}  // namespace framework
