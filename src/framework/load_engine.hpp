// Open-loop load engine: pooled short-lived sessions driven by an arrival
// process, with a bounded admission window.
//
// The bag-of-tasks framework (bag_of_tasks.hpp) is closed-loop: ~100
// long-lived worker coroutines, each issuing its next request only after the
// previous one finished — the paper's Section III shape, and the wrong tool
// for measuring saturation. This engine is the open-loop half: arrivals come
// from a seeded ArrivalProcess on the simulation clock (Poisson, diurnal,
// flash crowd) regardless of how the system is coping, and each arrival is a
// *session* — a short-lived coroutine that runs one request sequence and
// dies. A single host simulates 100k–1M concurrent sessions this way because
// a session is just a pooled coroutine frame (simcore/frame_pool.hpp) plus a
// pooled Session record, not a thread or a long-lived worker.
//
// Overload is converted into *measurable* signals, never unbounded memory:
//
//   arrival ──► in_flight < window? ──► admit (spawn session)
//                    │ no
//                    ▼
//              backlog < max_pending? ──► queue (FIFO, admitted on a
//                    │ no                  completion, wait time recorded)
//                    ▼
//                  shed (counted; the arrival never executes)
//
// Sessions that end in ServerBusy are throttle failures; any other escaping
// error dead-letters the session. The accounting invariants the chaos suite
// asserts: offered == admitted + backlogged + shed at every instant, and
// admitted == completed + dead_lettered once drained.
//
// Determinism: arrivals are a pure function of the arrival config, each
// session's RNG stream is a pure function of (session_seed, session id), and
// all bookkeeping is integer arithmetic on the virtual clock — identical
// seeds replay byte-identically, including the obs metrics export.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "framework/arrivals.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace framework {

struct LoadEngineConfig {
  ArrivalConfig arrivals{};

  /// Admission window: sessions running concurrently. Arrivals beyond it
  /// queue (below) instead of growing the live-coroutine population.
  int max_in_flight = 1024;

  /// Bounded FIFO backlog of arrivals waiting for a window slot. Arrivals
  /// beyond window + backlog are shed — the open-loop answer to "what does
  /// the generator do when the system cannot keep up".
  int max_pending = 8192;

  /// Stop offering after this many arrivals (0 = uncapped; then `horizon`
  /// must bound the run).
  std::int64_t max_sessions = 0;

  /// Stop offering at this virtual time (0 = uncapped).
  sim::TimePoint horizon = 0;

  /// Base of every session's private RNG stream: session i draws from
  /// Random(hash(session_seed, i)), so a session's randomness depends only
  /// on its id — never on admission order or interleaving.
  std::uint64_t session_seed = 0x5E5510;
};

/// Deterministic outcome counters. Everything is a pure function of
/// (engine config, session body, world seed); byte-comparable across
/// replays and thread counts (see the sharded open-loop parity tests).
struct LoadStats {
  std::int64_t offered = 0;        ///< arrivals presented to the engine
  std::int64_t admitted = 0;       ///< sessions that got a window slot
  std::int64_t shed = 0;           ///< arrivals dropped at a full backlog
  std::int64_t completed = 0;      ///< sessions that finished cleanly
  std::int64_t dead_lettered = 0;  ///< sessions that ended in an error
  /// Subset of dead_lettered whose terminal error was ServerBusy — the
  /// throttle-visible slice of overload.
  std::int64_t throttle_failures = 0;
  std::int64_t peak_in_flight = 0;
  std::int64_t peak_pending = 0;
  /// Session-record pool: distinct records ever allocated (the high-water
  /// mark — stays at min(max_in_flight, peak concurrency) no matter how
  /// many sessions run), and acquire/release counts (must match: a session
  /// is destroyed exactly once on every path).
  std::int64_t slot_high_water = 0;
  std::int64_t slot_acquires = 0;
  std::int64_t slot_releases = 0;
  sim::TimePoint first_admission = 0;
  sim::TimePoint last_completion = 0;
  bool operator==(const LoadStats&) const = default;
};

class LoadEngine {
 public:
  /// One live session, lent to the body for its lifetime. Records are
  /// pooled: after the session ends its record is recycled for a later
  /// admission (id/rng/timestamps are re-initialized on every acquire).
  struct Session {
    std::int64_t id = -1;         ///< global arrival index (0-based)
    sim::TimePoint arrived = 0;   ///< when the arrival was offered
    sim::TimePoint admitted = 0;  ///< when it got a window slot
    sim::Random rng{};            ///< private per-id stream
  };

  /// The request sequence one session runs. Exceptions are caught by the
  /// engine and classify the session (ServerBusy => throttle failure, any
  /// other => dead-lettered); they never escape to the simulation.
  using SessionFn = std::function<sim::Task<void>(Session&)>;

  LoadEngine(sim::Simulation& sim, LoadEngineConfig cfg, SessionFn body);
  LoadEngine(const LoadEngine&) = delete;
  LoadEngine& operator=(const LoadEngine&) = delete;

  /// Spawns the open-loop generator process: walks the arrival process on
  /// the virtual clock and offer()s each arrival. The run drains naturally
  /// — when the generator stops (max_sessions / horizon / exhausted
  /// process) and every admitted session finished, the simulation's event
  /// queue empties and Simulation::run() returns.
  void start();

  /// One arrival at the current virtual time: admit, queue, or shed.
  /// Returns false iff the arrival was shed. Public so tests (and custom
  /// generators) can drive admission at exact instants.
  bool offer();

  const LoadEngineConfig& config() const noexcept { return cfg_; }
  const LoadStats& stats() const noexcept { return stats_; }
  int in_flight() const noexcept { return in_flight_; }
  int pending() const noexcept { return static_cast<int>(pending_.size()); }

 private:
  struct PendingArrival {
    std::int64_t id = 0;
    sim::TimePoint arrived = 0;
  };

  sim::Task<void> generator();
  sim::Task<void> run_session(std::size_t slot);
  void admit(std::int64_t id, sim::TimePoint arrived);
  void finish_session(std::size_t slot, bool failed, bool busy);

  sim::Simulation& sim_;
  LoadEngineConfig cfg_;
  SessionFn body_;
  LoadStats stats_;
  /// Pooled session records: stable storage (unique_ptr) indexed by slot,
  /// recycled through free_slots_. slots_.size() is the pool's high-water
  /// mark and never exceeds max_in_flight.
  std::vector<std::unique_ptr<Session>> slots_;
  std::vector<std::size_t> free_slots_;
  std::deque<PendingArrival> pending_;
  std::int64_t next_id_ = 0;
  int in_flight_ = 0;
};

}  // namespace framework
