// Declarative scenario DSL (ROADMAP item 3): one JSON spec file describes a
// whole benchmark — service mix, key/size distributions, arrival process,
// think time, fault plan, and cluster shape — and a single generic driver
// (bench/bench_scenario.cpp) interprets it deterministically. Experiments
// become data: adding a workload is writing a file under scenarios/, not a
// new binary.
//
// The format is strict JSON (UTF-8, `//` line comments allowed) with a
// closed schema: unknown keys, duplicate keys, out-of-range values, and
// invalid service/op combinations are *typed* errors (ScenarioError) that
// carry the JSON path plus the line/column of the offending token — a spec
// typo fails loudly at load time, never silently at run time (the same
// philosophy as the bench_util flag-parsing sweep in this PR).
//
// Two modes:
//  * figure mode — `"figure": {"id": "fig4", ...}` replays one of the six
//    paper figures through the shared benchfig::figN_table builders, so a
//    spec's table output is byte-identical to the legacy fig binary by
//    construction.
//  * generic mode — `"mix": [...]` runs an open-loop LoadEngine workload:
//    sessions arrive per the arrival process, each drawing a mix entry, a
//    key (framework/keygen.hpp) and a value size, then issuing one storage
//    operation against a CloudEnvironment.
//
// Determinism contract: a Scenario is a pure value; every derived RNG
// stream (arrivals, sessions, key generator, faults) defaults to a distinct
// function of the single top-level `seed`, so one integer replays the whole
// run byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "framework/arrivals.hpp"
#include "framework/keygen.hpp"
#include "simcore/time.hpp"

namespace framework {

/// Spec-file diagnostic: JSON path (e.g. "scenario.mix[1].weight"), the
/// 1-based line/column of the offending token, and the reason. what() is
/// pre-formatted as "<path> (line L, col C): <reason>".
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(std::string path, int line, int col, std::string why)
      : std::runtime_error(path + " (line " + std::to_string(line) +
                           ", col " + std::to_string(col) + "): " + why),
        path_(std::move(path)),
        reason_(std::move(why)),
        line_(line),
        col_(col) {}

  const std::string& path() const noexcept { return path_; }
  const std::string& reason() const noexcept { return reason_; }
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

 private:
  std::string path_;
  std::string reason_;
  int line_;
  int col_;
};

/// One weighted entry of the workload mix.
struct ScenarioMixEntry {
  enum class Service { kBlob, kQueue, kTable, kSql };
  Service service = Service::kTable;
  /// Validated per service:
  ///   blob:  read | write | list | delete | mixed
  ///   queue: put | get | peek | mixed
  ///   table: read | insert | update | scan | rmw | mixed
  ///   sql:   read | write | mixed
  /// "mixed" resolves per op via the scenario-level read_ratio.
  std::string op = "mixed";
  /// Relative weight, > 0 and finite. A zero weight is rejected at parse
  /// time (delete the entry instead): silently-dead mix entries were the
  /// class of bug this PR's boundary sweep exists to kill.
  double weight = 1.0;
};

const char* service_name(ScenarioMixEntry::Service s) noexcept;

/// Which simulated storage backend a generic-mode scenario runs against
/// (spec key "backend"; the driver layer in src/storage maps each kind to a
/// storage::Driver implementation).
enum class BackendKind {
  /// The paper's Azure-style stack: all four services, consistent
  /// list-after-write, per-account 5,000 tx/s gate (ServerBusyError).
  kAzure,
  /// S3-like object store: objects only (no queue/table/sql), eventual
  /// list-after-write, per-prefix request caps with 503 SlowDown.
  kS3,
  /// Tiered placement: objects route by size between an Azure-style fast
  /// tier and the S3-like capacity tier; queue/table/sql ride the fast
  /// tier. Listings merge both tiers, so they inherit S3's eventuality.
  kTiered,
};

/// What a backend can do — the contract surface the parser validates mix
/// entries against, and the conformance suite asserts per driver.
struct BackendCaps {
  bool has_blobs = true;
  bool has_queues = true;
  bool has_tables = true;
  bool has_sql = true;
  /// A completed write (or delete) is visible to an immediately following
  /// list. False = eventual list-after-write (S3-style visibility lag).
  bool consistent_list = true;
  /// Human-readable throttle contract, for diagnostics and docs.
  const char* throttle_model = "";
};

const char* backend_name(BackendKind kind) noexcept;
BackendCaps backend_caps(BackendKind kind) noexcept;

/// Whether `kind` serves mix entries of `service` at all. The parser turns
/// a false here into a located ScenarioError; bench_scenario re-checks it
/// for --backend overrides.
bool backend_supports(BackendKind kind,
                      ScenarioMixEntry::Service service) noexcept;

/// Value (payload) size in bytes: fixed when lo == hi, else uniform in
/// [lo, hi] drawn from the session's private stream.
struct ScenarioValueSize {
  std::int64_t lo = 1024;
  std::int64_t hi = 1024;
};

/// Client think time before each operation (excluded from latency).
struct ScenarioThink {
  sim::Duration mean = 0;
  /// Relative jitter in [0, 1]: actual delay is mean * (1 + jitter * u),
  /// u uniform in [-1, 1) from the session stream.
  double jitter = 0;
};

/// The subset of faults::FaultConfig a spec can arm.
struct ScenarioFaults {
  std::uint64_t seed = 0;  ///< 0 = derive from the scenario seed
  double drop_probability = 0;
  double duplicate_probability = 0;
  double latency_spike_probability = 0;
  double corruption_probability = 0;
  int server_crashes = 0;

  bool enabled() const noexcept {
    return drop_probability > 0 || duplicate_probability > 0 ||
           latency_spike_probability > 0 || corruption_probability > 0 ||
           server_crashes > 0;
  }
};

/// Cluster shape overrides.
struct ScenarioCluster {
  int partition_servers = 16;
  bool balancer = false;
  /// false = ThrottleMode::kReject (Azure behaviour), true = kQueue.
  bool throttle_queue = false;
};

/// Figure-replay mode: which paper figure, at which sweep points.
struct ScenarioFigure {
  int id = 4;                ///< 4..9
  std::vector<int> workers;  ///< empty = the figure's default sweep
  int repeats = 10;          ///< fig4/fig5
  std::int64_t messages = 20'000;  ///< fig6/fig7/fig9
  int entities = 500;              ///< fig8/fig9
  bool no_anomaly = false;         ///< fig6 ablation
  bool no_replica_reads = false;   ///< fig4 ablation
};

struct Scenario {
  std::string name;
  std::string description;

  /// Master seed: arrivals.seed, keys.seed, faults.seed and the session
  /// seed all derive from it unless a section sets its own.
  std::uint64_t seed = 0x5CE7A210;

  // ------------------------------------------------------- generic mode ----
  /// Which storage backend serves the mix (spec key "backend": "azure" |
  /// "s3" | "tiered"). Figure mode is Azure-defined and rejects the key.
  BackendKind backend = BackendKind::kAzure;
  /// Tiered backend only: object writes of at least this many bytes land
  /// on the capacity (S3-like) tier, smaller ones on the fast tier.
  std::int64_t tier_split_bytes = 256 * 1024;
  /// Total sessions offered (one storage operation each).
  std::int64_t operations = 1'000;
  /// Resolves "mixed" ops: probability that a mixed op is a read.
  double read_ratio = 0.5;
  /// Queues a put publishes to (pub/sub fanout). Gets drain one queue.
  int queue_fanout = 1;
  /// Objects pre-created per service before load starts; -1 = derive
  /// (min(keys.space, 10'000); queues cap their pre-seed at 1'000).
  std::int64_t populate = -1;
  /// Table-partition shaping: row keys per partition key.
  std::int64_t rows_per_partition = 128;
  int max_in_flight = 1'024;
  int max_pending = 8'192;

  ArrivalConfig arrivals;
  ScenarioThink think;
  KeyGenConfig keys;
  ScenarioValueSize values;
  std::vector<ScenarioMixEntry> mix;  ///< non-empty iff generic mode
  ScenarioCluster cluster;
  ScenarioFaults faults;

  // -------------------------------------------------------- figure mode ----
  std::optional<ScenarioFigure> figure;

  bool figure_mode() const noexcept { return figure.has_value(); }

  /// The resolved pre-population count (populate, or its derived default).
  std::int64_t populate_count() const noexcept {
    if (populate >= 0) return populate;
    const std::uint64_t cap = 10'000;
    return static_cast<std::int64_t>(keys.space < cap ? keys.space : cap);
  }
};

/// splitmix64-style derivation of per-section seeds from the master seed —
/// the same function the parser uses for defaulted section seeds, exposed
/// so the driver derives its session seed consistently.
std::uint64_t scenario_derive_seed(std::uint64_t seed,
                                   std::uint64_t salt) noexcept;

/// Parses and validates a spec from JSON text. Throws ScenarioError with
/// path + line/col on any syntax, schema, or range violation.
Scenario parse_scenario(std::string_view text);

/// Reads `path` and parses it. File-system failures are reported as a
/// ScenarioError at line 0.
Scenario load_scenario_file(const std::string& path);

}  // namespace framework
