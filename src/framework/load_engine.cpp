#include "framework/load_engine.hpp"

#include <stdexcept>
#include <utility>

#include "cluster/errors.hpp"
#include "obs/observer.hpp"

namespace framework {
namespace {

/// splitmix64-style hash of (seed, id) — each session's stream is a pure
/// function of its id, independent of admission order and interleaving.
std::uint64_t session_stream(std::uint64_t seed, std::int64_t id) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull *
                               (static_cast<std::uint64_t>(id) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

LoadEngine::LoadEngine(sim::Simulation& sim, LoadEngineConfig cfg,
                       SessionFn body)
    : sim_(sim), cfg_(std::move(cfg)), body_(std::move(body)) {
  if (cfg_.max_in_flight < 1) {
    throw std::invalid_argument("load engine needs max_in_flight >= 1");
  }
  if (cfg_.max_pending < 0) {
    throw std::invalid_argument("load engine needs max_pending >= 0");
  }
  if (!body_) {
    throw std::invalid_argument("load engine needs a session body");
  }
}

void LoadEngine::start() {
  sim_.spawn(generator(), "load-generator");
}

sim::Task<void> LoadEngine::generator() {
  ArrivalProcess proc(cfg_.arrivals);
  // The arrival clock walks forward from the previous *arrival*, never from
  // "when the engine got around to it" — that independence from service
  // progress is what makes the load open-loop.
  sim::TimePoint t = sim_.now();
  for (;;) {
    if (cfg_.max_sessions > 0 && next_id_ >= cfg_.max_sessions) co_return;
    t = proc.next(t);
    if (t == ArrivalProcess::kNever) co_return;
    if (cfg_.horizon > 0 && t > cfg_.horizon) co_return;
    co_await sim_.delay_until(t);
    offer();
  }
}

bool LoadEngine::offer() {
  obs::Observer* const o = sim_.observer();
  const std::int64_t id = next_id_++;
  ++stats_.offered;
  if (o != nullptr) o->metrics().counter("load.offered").add(1);
  if (in_flight_ < cfg_.max_in_flight) {
    admit(id, sim_.now());
    return true;
  }
  if (static_cast<int>(pending_.size()) < cfg_.max_pending) {
    pending_.push_back(PendingArrival{id, sim_.now()});
    const auto depth = static_cast<std::int64_t>(pending_.size());
    if (depth > stats_.peak_pending) stats_.peak_pending = depth;
    if (o != nullptr) o->metrics().gauge("load.pending").set(depth);
    return true;
  }
  ++stats_.shed;
  if (o != nullptr) o->metrics().counter("load.shed").add(1);
  return false;
}

void LoadEngine::admit(std::int64_t id, sim::TimePoint arrived) {
  std::size_t slot;
  if (free_slots_.empty()) {
    slots_.push_back(std::make_unique<Session>());
    slot = slots_.size() - 1;
    stats_.slot_high_water = static_cast<std::int64_t>(slots_.size());
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Session& s = *slots_[slot];
  s.id = id;
  s.arrived = arrived;
  s.admitted = sim_.now();
  s.rng = sim::Random(session_stream(cfg_.session_seed, id));

  ++in_flight_;
  if (in_flight_ > stats_.peak_in_flight) stats_.peak_in_flight = in_flight_;
  if (stats_.admitted == 0) stats_.first_admission = s.admitted;
  ++stats_.admitted;
  ++stats_.slot_acquires;
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().counter("load.admitted").add(1);
    o->metrics().histogram("load.queue_wait").record(s.admitted - s.arrived);
  }
  sim_.spawn(run_session(slot));
}

sim::Task<void> LoadEngine::run_session(std::size_t slot) {
  bool failed = false;
  bool busy = false;
  try {
    co_await body_(*slots_[slot]);
  } catch (const cluster::ServerBusyError&) {
    failed = true;
    busy = true;
  } catch (...) {
    failed = true;
  }
  finish_session(slot, failed, busy);
}

void LoadEngine::finish_session(std::size_t slot, bool failed, bool busy) {
  obs::Observer* const o = sim_.observer();
  const Session& s = *slots_[slot];
  if (failed) {
    ++stats_.dead_lettered;
    if (busy) ++stats_.throttle_failures;
    if (o != nullptr) {
      o->metrics().counter("load.dead_lettered").add(1);
      if (busy) o->metrics().counter("load.throttle_failures").add(1);
    }
  } else {
    ++stats_.completed;
    if (o != nullptr) {
      o->metrics().counter("load.completed").add(1);
      // Tail latency is reported over *successful* sessions: failed-fast
      // rejections would otherwise drag the percentiles toward zero and
      // mask the very saturation they signal.
      o->metrics().histogram("load.session_latency")
          .record(sim_.now() - s.arrived);
    }
  }
  stats_.last_completion = sim_.now();
  ++stats_.slot_releases;
  free_slots_.push_back(slot);
  --in_flight_;
  // Backfill: the freed window slot goes to the oldest queued arrival (FIFO
  // by arrival order — the admission-order test pins this).
  while (!pending_.empty() && in_flight_ < cfg_.max_in_flight) {
    const PendingArrival next = pending_.front();
    pending_.pop_front();
    if (o != nullptr) {
      o->metrics().gauge("load.pending").set(
          static_cast<std::int64_t>(pending_.size()));
    }
    admit(next.id, next.arrived);
  }
}

}  // namespace framework
