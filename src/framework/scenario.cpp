#include "framework/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace framework {
namespace {

// =========================================================== JSON layer ====
//
// A minimal recursive-descent JSON reader, written here instead of vendoring
// a library (the repo's no-new-deps rule). Deliberate deviations from RFC
// 8259, both in the *lenient* direction a config dialect wants:
//   * `//` line comments are skipped as whitespace;
//   * and none in the permissive direction: duplicate object keys are a
//     hard error (silent last-wins is exactly the flag-parsing bug class
//     this PR fixes), as is trailing text after the top-level value.
// Every node remembers the line/column of its first token so the schema
// binder can point at the offending value, not just the file.

struct JsonNode {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;   // kInt
  double d = 0;         // kDouble
  std::string s;        // kString
  std::vector<JsonNode> arr;
  // Object members in file order (deterministic diagnostics), with the
  // key token's (line, col) kept in the parallel obj_key_loc.
  std::vector<std::pair<std::string, JsonNode>> obj;
  std::vector<std::pair<int, int>> obj_key_loc;
  int line = 0;
  int col = 0;

  const JsonNode* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool is_number() const noexcept {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  double as_double() const noexcept {
    return kind == Kind::kInt ? static_cast<double>(i) : d;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonNode parse() {
    JsonNode root = value();
    skip_ws();
    if (pos_ < text_.size()) {
      fail("trailing content after the top-level value");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ScenarioError("<spec>", line_, col_, why);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
              peek() == '\r')) {
        take();
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && peek() != '\n') take();
        continue;
      }
      return;
    }
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'" +
           (pos_ >= text_.size() ? " but the spec ended"
                                 : std::string(", got '") + peek() + "'"));
    }
    take();
  }

  JsonNode value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("the spec ended where a value was expected");
    JsonNode n;
    n.line = line_;
    n.col = col_;
    switch (peek()) {
      case '{':
        object(n);
        return n;
      case '[':
        array(n);
        return n;
      case '"':
        n.kind = JsonNode::Kind::kString;
        n.s = string_token();
        return n;
      case 't':
        keyword("true");
        n.kind = JsonNode::Kind::kBool;
        n.b = true;
        return n;
      case 'f':
        keyword("false");
        n.kind = JsonNode::Kind::kBool;
        n.b = false;
        return n;
      case 'n':
        keyword("null");
        n.kind = JsonNode::Kind::kNull;
        return n;
      default:
        number(n);
        return n;
    }
  }

  void keyword(std::string_view word) {
    for (const char c : word) {
      if (peek() != c) fail("unrecognized token (expected '" +
                            std::string(word) + "')");
      take();
    }
  }

  void object(JsonNode& n) {
    n.kind = JsonNode::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      take();
      return;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected a quoted object key");
      const int key_line = line_;
      const int key_col = col_;
      std::string key = string_token();
      if (n.find(key) != nullptr) {
        throw ScenarioError("<spec>", key_line, key_col,
                            "duplicate key '" + key +
                                "' — duplicates are an error, not "
                                "last-wins");
      }
      skip_ws();
      expect(':');
      n.obj.emplace_back(std::move(key), value());
      n.obj_key_loc.emplace_back(key_line, key_col);
      skip_ws();
      if (peek() == ',') {
        take();
        continue;
      }
      expect('}');
      return;
    }
  }

  void array(JsonNode& n) {
    n.kind = JsonNode::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      take();
      return;
    }
    for (;;) {
      n.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        take();
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\n etc.)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned v = 0;
          for (int k = 0; k < 4; ++k) {
            if (pos_ >= text_.size()) fail("unterminated \\u escape");
            const char h = take();
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          if (v >= 0xD800 && v <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the code point.
          if (v < 0x80) {
            out.push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (v >> 6)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (v >> 12)));
            out.push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
          }
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  void number(JsonNode& n) {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("unrecognized token (expected a value)");
    }
    bool integral = true;
    while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    if (peek() == '.') {
      integral = false;
      take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits must follow the decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      take();
      if (peek() == '+' || peek() == '-') take();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits must follow the exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) take();
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      // Same strictness as benchutil::parse_int: full-token from_chars.
      const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), n.i);
      if (r.ec == std::errc{} && r.ptr == tok.data() + tok.size()) {
        n.kind = JsonNode::Kind::kInt;
        return;
      }
      fail("integer does not fit in a 64-bit integer");
    }
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), n.d);
    if (r.ec != std::errc{} || r.ptr != tok.data() + tok.size() ||
        !std::isfinite(n.d)) {
      fail("number out of range");
    }
    n.kind = JsonNode::Kind::kDouble;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// ========================================================= schema layer ====

[[noreturn]] void fail_at(const JsonNode& n, const std::string& path,
                          const std::string& why) {
  throw ScenarioError(path, n.line, n.col, why);
}

const char* kind_name(JsonNode::Kind k) {
  switch (k) {
    case JsonNode::Kind::kNull: return "null";
    case JsonNode::Kind::kBool: return "a boolean";
    case JsonNode::Kind::kInt: return "an integer";
    case JsonNode::Kind::kDouble: return "a number";
    case JsonNode::Kind::kString: return "a string";
    case JsonNode::Kind::kArray: return "an array";
    case JsonNode::Kind::kObject: return "an object";
  }
  return "?";
}

const JsonNode& expect_object(const JsonNode& n, const std::string& path) {
  if (n.kind != JsonNode::Kind::kObject) {
    fail_at(n, path, std::string("expected an object, got ") +
                         kind_name(n.kind));
  }
  return n;
}

/// Closed-schema enforcement: the first member whose key is not in
/// `allowed` is an error at that key's location. Members are checked in
/// file order, so diagnostics are deterministic.
void reject_unknown(const JsonNode& obj, const std::string& path,
                    std::initializer_list<std::string_view> allowed) {
  for (std::size_t idx = 0; idx < obj.obj.size(); ++idx) {
    const std::string& key = obj.obj[idx].first;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string known;
      for (const std::string_view a : allowed) {
        if (!known.empty()) known += ", ";
        known += a;
      }
      throw ScenarioError(path, obj.obj_key_loc[idx].first,
                          obj.obj_key_loc[idx].second,
                          "unknown key '" + key + "' (known keys: " + known +
                              ")");
    }
  }
}

std::string join(const std::string& path, const char* key) {
  return path + "." + key;
}

double get_num(const JsonNode& obj, const std::string& path, const char* key,
               double fallback, double min, double max) {
  const JsonNode* n = obj.find(key);
  if (n == nullptr) return fallback;
  const std::string p = join(path, key);
  if (!n->is_number()) {
    fail_at(*n, p, std::string("expected a number, got ") +
                       kind_name(n->kind));
  }
  const double v = n->as_double();
  if (!(v >= min && v <= max)) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "value %g out of range [%g, %g]", v, min,
                  max);
    fail_at(*n, p, buf);
  }
  return v;
}

std::int64_t get_int(const JsonNode& obj, const std::string& path,
                     const char* key, std::int64_t fallback, std::int64_t min,
                     std::int64_t max) {
  const JsonNode* n = obj.find(key);
  if (n == nullptr) return fallback;
  const std::string p = join(path, key);
  if (n->kind != JsonNode::Kind::kInt) {
    fail_at(*n, p, std::string("expected an integer, got ") +
                       kind_name(n->kind));
  }
  if (n->i < min || n->i > max) {
    fail_at(*n, p,
            "value " + std::to_string(n->i) + " out of range [" +
                std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return n->i;
}

std::uint64_t get_seed(const JsonNode& obj, const std::string& path,
                       const char* key, std::uint64_t fallback) {
  const JsonNode* n = obj.find(key);
  if (n == nullptr) return fallback;
  const std::string p = join(path, key);
  if (n->kind != JsonNode::Kind::kInt || n->i < 0) {
    fail_at(*n, p, "expected a non-negative integer seed");
  }
  return static_cast<std::uint64_t>(n->i);
}

bool get_bool(const JsonNode& obj, const std::string& path, const char* key,
              bool fallback) {
  const JsonNode* n = obj.find(key);
  if (n == nullptr) return fallback;
  if (n->kind != JsonNode::Kind::kBool) {
    fail_at(*n, join(path, key),
            std::string("expected true or false, got ") + kind_name(n->kind));
  }
  return n->b;
}

std::string get_str(const JsonNode& obj, const std::string& path,
                    const char* key, const std::string& fallback) {
  const JsonNode* n = obj.find(key);
  if (n == nullptr) return fallback;
  if (n->kind != JsonNode::Kind::kString) {
    fail_at(*n, join(path, key),
            std::string("expected a string, got ") + kind_name(n->kind));
  }
  return n->s;
}

using framework::scenario_derive_seed;
constexpr auto derive_seed = scenario_derive_seed;

// -------------------------------------------------------------- sections ----

void bind_arrivals(const JsonNode& n, const std::string& path,
                   ArrivalConfig& a, std::uint64_t master_seed) {
  expect_object(n, path);
  reject_unknown(n, path,
                 {"kind", "seed", "rate_per_sec", "period_volume", "period_s",
                  "amplitude", "peak_at_s", "spike_at_s", "spike_duration_s",
                  "spike_rate_per_sec"});
  const std::string kind = get_str(n, path, "kind", "poisson");
  if (kind == "poisson") {
    a.kind = ArrivalConfig::Kind::kPoisson;
  } else if (kind == "diurnal") {
    a.kind = ArrivalConfig::Kind::kDiurnal;
  } else if (kind == "flash_crowd") {
    a.kind = ArrivalConfig::Kind::kFlashCrowd;
  } else {
    fail_at(*n.find("kind"), join(path, "kind"),
            "unknown arrival kind '" + kind +
                "' (poisson | diurnal | flash_crowd)");
  }
  a.seed = get_seed(n, path, "seed", derive_seed(master_seed, 0x10AD));
  a.rate_per_sec = get_num(n, path, "rate_per_sec", a.rate_per_sec, 0.0, 1e9);
  a.period_volume =
      get_num(n, path, "period_volume", a.period_volume, 1.0, 1e15);
  a.period = sim::Duration(static_cast<std::int64_t>(
      get_num(n, path, "period_s", sim::to_seconds(a.period), 1e-3, 1e9) *
      1e9));
  // amplitude == 1 would make the trough rate exactly 0 and the thinning
  // envelope degenerate; the contract is the half-open [0, 1).
  a.amplitude = get_num(n, path, "amplitude", a.amplitude, 0.0, 1.0);
  if (a.amplitude >= 1.0) {
    fail_at(*n.find("amplitude"), join(path, "amplitude"),
            "amplitude must be in [0, 1) — 1.0 degenerates the diurnal "
            "envelope");
  }
  a.peak_at = static_cast<sim::TimePoint>(
      get_num(n, path, "peak_at_s", sim::to_seconds(a.peak_at), 0.0, 1e9) *
      1e9);
  a.spike_at = static_cast<sim::TimePoint>(
      get_num(n, path, "spike_at_s", 0.0, 0.0, 1e9) * 1e9);
  a.spike_duration = static_cast<sim::Duration>(
      get_num(n, path, "spike_duration_s", 0.0, 0.0, 1e9) * 1e9);
  a.spike_rate_per_sec =
      get_num(n, path, "spike_rate_per_sec", 0.0, 0.0, 1e9);
  if (a.kind == ArrivalConfig::Kind::kPoisson && a.rate_per_sec <= 0) {
    fail_at(n, path, "poisson arrivals need rate_per_sec > 0");
  }
}

void bind_keys(const JsonNode& n, const std::string& path, KeyGenConfig& k,
               std::uint64_t master_seed) {
  expect_object(n, path);
  reject_unknown(n, path, {"kind", "space", "zipf_s", "seed"});
  const std::string kind = get_str(n, path, "kind", "uniform");
  if (kind == "uniform") {
    k.kind = KeyGenConfig::Kind::kUniform;
  } else if (kind == "zipf") {
    k.kind = KeyGenConfig::Kind::kZipf;
  } else if (kind == "golden_stride") {
    k.kind = KeyGenConfig::Kind::kGoldenStride;
  } else if (kind == "coverage") {
    k.kind = KeyGenConfig::Kind::kCoverage;
  } else {
    fail_at(*n.find("kind"), join(path, "kind"),
            "unknown key-generator kind '" + kind +
                "' (uniform | zipf | golden_stride | coverage)");
  }
  const std::int64_t space =
      get_int(n, path, "space", 1'024, 1, std::int64_t{1} << 40);
  k.space = static_cast<std::uint64_t>(space);
  // s == 0 is the valid degenerate-to-uniform boundary (KeyGen routes it
  // through the exact uniform path); kMaxZipfS mirrors keygen.hpp.
  k.zipf_s = get_num(n, path, "zipf_s", k.zipf_s, 0.0, kMaxZipfS);
  k.seed = get_seed(n, path, "seed", derive_seed(master_seed, 0x4E59));
}

void bind_think(const JsonNode& n, const std::string& path,
                ScenarioThink& t) {
  expect_object(n, path);
  reject_unknown(n, path, {"mean_ms", "jitter"});
  t.mean = static_cast<sim::Duration>(
      get_num(n, path, "mean_ms", 0.0, 0.0, 1e9) * 1e6);
  t.jitter = get_num(n, path, "jitter", 0.0, 0.0, 1.0);
}

void bind_values(const JsonNode& n, const std::string& path,
                 ScenarioValueSize& v) {
  expect_object(n, path);
  reject_unknown(n, path, {"bytes", "min_bytes", "max_bytes"});
  constexpr std::int64_t kMax = std::int64_t{1} << 32;
  if (const JsonNode* fixed = n.find("bytes")) {
    if (n.find("min_bytes") != nullptr || n.find("max_bytes") != nullptr) {
      fail_at(*fixed, join(path, "bytes"),
              "give either bytes or min_bytes/max_bytes, not both");
    }
    v.lo = v.hi = get_int(n, path, "bytes", 1'024, 1, kMax);
    return;
  }
  v.lo = get_int(n, path, "min_bytes", 1'024, 1, kMax);
  v.hi = get_int(n, path, "max_bytes", v.lo, 1, kMax);
  if (v.lo > v.hi) {
    fail_at(*n.find("min_bytes"), join(path, "min_bytes"),
            "min_bytes " + std::to_string(v.lo) + " exceeds max_bytes " +
                std::to_string(v.hi));
  }
}

bool op_valid(ScenarioMixEntry::Service svc, const std::string& op) {
  using S = ScenarioMixEntry::Service;
  if (op == "mixed") return true;
  switch (svc) {
    case S::kBlob:
      return op == "read" || op == "write" || op == "list" || op == "delete";
    case S::kQueue:
      return op == "put" || op == "get" || op == "peek";
    case S::kTable:
      return op == "read" || op == "insert" || op == "update" ||
             op == "scan" || op == "rmw";
    case S::kSql:
      return op == "read" || op == "write";
  }
  return false;
}

void bind_mix(const JsonNode& n, const std::string& path,
              std::vector<ScenarioMixEntry>& mix) {
  if (n.kind != JsonNode::Kind::kArray) {
    fail_at(n, path, std::string("expected an array, got ") +
                         kind_name(n.kind));
  }
  if (n.arr.empty()) fail_at(n, path, "mix must have at least one entry");
  for (std::size_t idx = 0; idx < n.arr.size(); ++idx) {
    const JsonNode& e = n.arr[idx];
    const std::string p = path + "[" + std::to_string(idx) + "]";
    expect_object(e, p);
    reject_unknown(e, p, {"service", "op", "weight"});
    ScenarioMixEntry out;
    const JsonNode* svc = e.find("service");
    if (svc == nullptr) fail_at(e, p, "missing required key 'service'");
    const std::string name = get_str(e, p, "service", "");
    if (name == "blob") {
      out.service = ScenarioMixEntry::Service::kBlob;
    } else if (name == "queue") {
      out.service = ScenarioMixEntry::Service::kQueue;
    } else if (name == "table") {
      out.service = ScenarioMixEntry::Service::kTable;
    } else if (name == "sql") {
      out.service = ScenarioMixEntry::Service::kSql;
    } else {
      fail_at(*svc, join(p, "service"),
              "unknown service '" + name + "' (blob | queue | table | sql)");
    }
    out.op = get_str(e, p, "op", "mixed");
    if (!op_valid(out.service, out.op)) {
      fail_at(*e.find("op"), join(p, "op"),
              "op '" + out.op + "' is not valid for service '" + name + "'");
    }
    out.weight = get_num(e, p, "weight", 1.0, 0.0, 1e9);
    if (out.weight <= 0.0) {
      fail_at(e.find("weight") != nullptr ? *e.find("weight") : e,
              join(p, "weight"),
              "zero-weight mix entries are rejected — delete the entry "
              "instead of zeroing it");
    }
    mix.push_back(std::move(out));
  }
}

void bind_cluster(const JsonNode& n, const std::string& path,
                  ScenarioCluster& c) {
  expect_object(n, path);
  reject_unknown(n, path, {"partition_servers", "balancer", "throttle"});
  c.partition_servers = static_cast<int>(
      get_int(n, path, "partition_servers", c.partition_servers, 1, 4'096));
  c.balancer = get_bool(n, path, "balancer", false);
  const std::string throttle = get_str(n, path, "throttle", "reject");
  if (throttle == "reject") {
    c.throttle_queue = false;
  } else if (throttle == "queue") {
    c.throttle_queue = true;
  } else {
    fail_at(*n.find("throttle"), join(path, "throttle"),
            "unknown throttle mode '" + throttle + "' (reject | queue)");
  }
}

void bind_faults(const JsonNode& n, const std::string& path,
                 ScenarioFaults& f, std::uint64_t master_seed) {
  expect_object(n, path);
  reject_unknown(n, path,
                 {"seed", "drop_probability", "duplicate_probability",
                  "latency_spike_probability", "corruption_probability",
                  "server_crashes"});
  f.seed = get_seed(n, path, "seed", derive_seed(master_seed, 0xFA));
  f.drop_probability = get_num(n, path, "drop_probability", 0.0, 0.0, 1.0);
  f.duplicate_probability =
      get_num(n, path, "duplicate_probability", 0.0, 0.0, 1.0);
  f.latency_spike_probability =
      get_num(n, path, "latency_spike_probability", 0.0, 0.0, 1.0);
  f.corruption_probability =
      get_num(n, path, "corruption_probability", 0.0, 0.0, 1.0);
  f.server_crashes =
      static_cast<int>(get_int(n, path, "server_crashes", 0, 0, 1'000));
}

void bind_figure(const JsonNode& n, const std::string& path,
                 ScenarioFigure& f) {
  expect_object(n, path);
  reject_unknown(n, path, {"id", "workers", "repeats", "messages", "entities",
                           "no_anomaly", "no_replica_reads"});
  const JsonNode* id = n.find("id");
  if (id == nullptr) fail_at(n, path, "missing required key 'id'");
  const std::string name = get_str(n, path, "id", "");
  if (name.size() == 4 && name.compare(0, 3, "fig") == 0 &&
      name[3] >= '4' && name[3] <= '9') {
    f.id = name[3] - '0';
  } else {
    fail_at(*id, join(path, "id"),
            "unknown figure '" + name + "' (fig4 .. fig9)");
  }
  if (const JsonNode* w = n.find("workers")) {
    const std::string p = join(path, "workers");
    if (w->kind != JsonNode::Kind::kArray || w->arr.empty()) {
      fail_at(*w, p, "expected a non-empty array of worker counts");
    }
    for (const JsonNode& e : w->arr) {
      if (e.kind != JsonNode::Kind::kInt || e.i < 1 || e.i > 100'000) {
        fail_at(e, p, "worker counts must be integers in [1, 100000]");
      }
      f.workers.push_back(static_cast<int>(e.i));
    }
  }
  f.repeats = static_cast<int>(get_int(n, path, "repeats", 10, 1, 1'000));
  f.messages = get_int(n, path, "messages", 20'000, 1, 100'000'000);
  f.entities =
      static_cast<int>(get_int(n, path, "entities", 500, 1, 1'000'000));
  f.no_anomaly = get_bool(n, path, "no_anomaly", false);
  f.no_replica_reads = get_bool(n, path, "no_replica_reads", false);
}

}  // namespace

/// splitmix64 finalizer: per-section default seeds derive from the master
/// seed so distinct sections never share a stream by accident.
std::uint64_t scenario_derive_seed(std::uint64_t seed,
                                   std::uint64_t salt) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const char* service_name(ScenarioMixEntry::Service s) noexcept {
  switch (s) {
    case ScenarioMixEntry::Service::kBlob: return "blob";
    case ScenarioMixEntry::Service::kQueue: return "queue";
    case ScenarioMixEntry::Service::kTable: return "table";
    case ScenarioMixEntry::Service::kSql: return "sql";
  }
  return "?";
}

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kAzure: return "azure";
    case BackendKind::kS3: return "s3";
    case BackendKind::kTiered: return "tiered";
  }
  return "?";
}

BackendCaps backend_caps(BackendKind kind) noexcept {
  BackendCaps c;
  switch (kind) {
    case BackendKind::kAzure:
      c.throttle_model = "per-account 5,000 tx/s gate (ServerBusy)";
      break;
    case BackendKind::kS3:
      c.has_queues = false;
      c.has_tables = false;
      c.has_sql = false;
      c.consistent_list = false;
      c.throttle_model = "per-prefix request caps (503 SlowDown)";
      break;
    case BackendKind::kTiered:
      // Listings merge the capacity tier, so they inherit its eventuality.
      c.consistent_list = false;
      c.throttle_model =
          "fast tier: account gate; capacity tier: per-prefix SlowDown";
      break;
  }
  return c;
}

bool backend_supports(BackendKind kind,
                      ScenarioMixEntry::Service service) noexcept {
  const BackendCaps c = backend_caps(kind);
  switch (service) {
    case ScenarioMixEntry::Service::kBlob: return c.has_blobs;
    case ScenarioMixEntry::Service::kQueue: return c.has_queues;
    case ScenarioMixEntry::Service::kTable: return c.has_tables;
    case ScenarioMixEntry::Service::kSql: return c.has_sql;
  }
  return false;
}

Scenario parse_scenario(std::string_view text) {
  const JsonNode root = JsonParser(text).parse();
  const std::string path = "scenario";
  expect_object(root, path);
  reject_unknown(root, path,
                 {"name", "description", "seed", "backend", "tier_split_bytes",
                  "operations", "read_ratio", "queue_fanout", "populate",
                  "rows_per_partition", "max_in_flight", "max_pending",
                  "arrivals", "think", "keys", "values", "mix", "cluster",
                  "faults", "figure"});

  Scenario sc;
  sc.name = get_str(root, path, "name", "");
  if (sc.name.empty()) {
    fail_at(root, path, "missing required key 'name' (a non-empty string)");
  }
  sc.description = get_str(root, path, "description", "");
  sc.seed = get_seed(root, path, "seed", sc.seed);
  sc.operations =
      get_int(root, path, "operations", sc.operations, 1, 100'000'000);
  sc.read_ratio = get_num(root, path, "read_ratio", sc.read_ratio, 0.0, 1.0);
  sc.queue_fanout =
      static_cast<int>(get_int(root, path, "queue_fanout", 1, 1, 64));
  sc.populate = get_int(root, path, "populate", -1, -1, 10'000'000);
  sc.rows_per_partition =
      get_int(root, path, "rows_per_partition", sc.rows_per_partition, 1,
              1'000'000);
  sc.max_in_flight = static_cast<int>(
      get_int(root, path, "max_in_flight", sc.max_in_flight, 1, 1'000'000));
  sc.max_pending = static_cast<int>(
      get_int(root, path, "max_pending", sc.max_pending, 0, 10'000'000));

  const std::string backend = get_str(root, path, "backend", "azure");
  if (backend == "azure") {
    sc.backend = BackendKind::kAzure;
  } else if (backend == "s3") {
    sc.backend = BackendKind::kS3;
  } else if (backend == "tiered") {
    sc.backend = BackendKind::kTiered;
  } else {
    fail_at(*root.find("backend"), join(path, "backend"),
            "unknown backend '" + backend + "' (azure | s3 | tiered)");
  }
  if (const JsonNode* n = root.find("tier_split_bytes")) {
    if (sc.backend != BackendKind::kTiered) {
      fail_at(*n, join(path, "tier_split_bytes"),
              "tier_split_bytes only applies to backend 'tiered'");
    }
    sc.tier_split_bytes =
        get_int(root, path, "tier_split_bytes", sc.tier_split_bytes, 1,
                std::int64_t{1} << 32);
  }

  // Per-section default seeds derive from the master seed.
  sc.arrivals.seed = derive_seed(sc.seed, 0x10AD);
  sc.keys.seed = derive_seed(sc.seed, 0x4E59);
  sc.faults.seed = derive_seed(sc.seed, 0xFA);

  if (const JsonNode* n = root.find("arrivals")) {
    bind_arrivals(*n, join(path, "arrivals"), sc.arrivals, sc.seed);
  }
  if (const JsonNode* n = root.find("think")) {
    bind_think(*n, join(path, "think"), sc.think);
  }
  if (const JsonNode* n = root.find("keys")) {
    bind_keys(*n, join(path, "keys"), sc.keys, sc.seed);
  }
  if (const JsonNode* n = root.find("values")) {
    bind_values(*n, join(path, "values"), sc.values);
  }
  if (const JsonNode* n = root.find("cluster")) {
    bind_cluster(*n, join(path, "cluster"), sc.cluster);
  }
  if (const JsonNode* n = root.find("faults")) {
    bind_faults(*n, join(path, "faults"), sc.faults, sc.seed);
  }

  const JsonNode* fig = root.find("figure");
  const JsonNode* mix = root.find("mix");
  if (fig != nullptr && mix != nullptr) {
    fail_at(*mix, join(path, "mix"),
            "a figure-mode spec cannot also declare a mix — pick one mode");
  }
  if (fig != nullptr) {
    // Generic-only sections are meaningless in figure mode; rejecting them
    // beats silently ignoring half a spec. The backend key in particular:
    // figure replays are *defined* by the Azure contract (byte-identical to
    // the legacy fig binaries), so a non-Azure figure spec is a contradiction.
    for (const char* key :
         {"arrivals", "keys", "values", "think", "backend",
          "tier_split_bytes"}) {
      if (const JsonNode* n = root.find(key)) {
        fail_at(*n, join(path, key),
                std::string("'") + key +
                    "' has no effect in figure mode — remove it");
      }
    }
    ScenarioFigure f;
    bind_figure(*fig, join(path, "figure"), f);
    sc.figure = std::move(f);
    return sc;
  }
  if (mix == nullptr) {
    fail_at(root, path, "a spec needs either 'mix' (generic mode) or "
                        "'figure' (figure-replay mode)");
  }
  bind_mix(*mix, join(path, "mix"), sc.mix);

  // Capability check: every mix entry must name a service the declared
  // backend actually has. The diagnostic points at the entry's 'service'
  // token and names the capability flag so the fix is obvious.
  for (std::size_t i = 0; i < sc.mix.size(); ++i) {
    if (backend_supports(sc.backend, sc.mix[i].service)) continue;
    const JsonNode& e = mix->arr[i];
    const JsonNode* svc = e.find("service");
    const std::string p =
        join(path, "mix") + "[" + std::to_string(i) + "]";
    const char* cap = "?";
    switch (sc.mix[i].service) {
      case ScenarioMixEntry::Service::kBlob: cap = "has_blobs"; break;
      case ScenarioMixEntry::Service::kQueue: cap = "has_queues"; break;
      case ScenarioMixEntry::Service::kTable: cap = "has_tables"; break;
      case ScenarioMixEntry::Service::kSql: cap = "has_sql"; break;
    }
    fail_at(svc != nullptr ? *svc : e, join(p, "service"),
            std::string("backend '") + backend_name(sc.backend) + "' has no " +
                service_name(sc.mix[i].service) + " service (capability " +
                cap + "=false) — drop the entry or pick a backend that "
                "serves it");
  }

  // The queue message cap is a hard service limit (48 KiB usable payload);
  // catching it at parse time gives a located diagnostic instead of a
  // mid-run InvalidArgumentError.
  constexpr std::int64_t kMaxQueuePayload = 49'152;
  const bool has_queue =
      std::any_of(sc.mix.begin(), sc.mix.end(), [](const ScenarioMixEntry& e) {
        return e.service == ScenarioMixEntry::Service::kQueue;
      });
  if (has_queue && sc.values.hi > kMaxQueuePayload) {
    const JsonNode* v = root.find("values");
    fail_at(v != nullptr ? *v : root, join(path, "values"),
            "queue messages cap at " + std::to_string(kMaxQueuePayload) +
                " bytes; lower the value size or drop the queue entries");
  }

  // Validate the key-generator config eagerly so the diagnostic points at
  // the spec, not at a KeyGen constructor throw deep inside the driver.
  try {
    KeyGen probe(sc.keys);
  } catch (const KeyGenError& e) {
    const JsonNode* n = root.find("keys");
    fail_at(n != nullptr ? *n : root, join(path, "keys"), e.what());
  }
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw ScenarioError(path, 0, 0, "cannot open spec file");
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  try {
    return parse_scenario(text);
  } catch (ScenarioError& e) {
    // Re-anchor "<spec>" lexer errors on the file name for usability.
    if (e.path() == "<spec>") {
      throw ScenarioError(path, e.line(), e.col(), e.reason());
    }
    throw;
  }
}

}  // namespace framework
