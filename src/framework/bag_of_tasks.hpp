// The paper's generic application framework for scientific applications on
// Azure (Section III, Fig. 3):
//
//   user input -> web role -> Task Assignment Queue(s) -> worker roles
//                                   |                          |
//                                   v                          v
//                              Blob/Table storage   Termination Indicator Queue
//
// * the web role enqueues task descriptors on one or more task-assignment
//   queues (several queues when parameter sets differ — and because a single
//   queue caps at 500 messages/s, sharding improves scalability);
// * task payloads above the 48 KB usable message limit spill into Blob
//   storage automatically, with the blob name travelling on the queue (the
//   paper's recommended pattern);
// * workers poll the task queues, process messages, and signal each
//   completed phase on the termination-indicator queue;
// * the web role reads the termination queue's message count to track
//   progress (FIFO is not guaranteed, so an in-band "end of work" message
//   would be unreliable — the dedicated queue is the robust pattern).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/retry.hpp"
#include "obs/observer.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace framework {

struct BagOfTasksConfig {
  /// Number of task-assignment queues tasks are round-robined across.
  int task_queue_shards = 1;
  std::string task_queue_prefix = "task-assignment";
  std::string termination_queue = "termination-indicator";
  /// Container used for task payloads that exceed the queue message limit.
  std::string spill_container = "task-payloads";
  /// Visibility timeout while a worker processes a task; the task reappears
  /// for another worker if the first one dies (the queue's built-in fault
  /// tolerance the paper highlights).
  sim::Duration task_visibility_timeout = sim::seconds(120);
  /// How long an idle worker sleeps before re-polling an empty queue.
  sim::Duration idle_poll_interval = sim::kSecond;
  /// While a handler runs, the worker renews the task's lease (via
  /// UpdateMessage) every half visibility-timeout, so tasks longer than the
  /// timeout are not re-delivered to another worker. Set false to get the
  /// bare 2010-era behaviour (and duplicate execution of long tasks).
  bool renew_task_leases = true;
  /// Bounded redelivery: a task delivered more than this many times without
  /// being completed is a *poison task* (its handler keeps crashing, or its
  /// payload keeps failing resolution). Rather than cycling through workers
  /// forever, it is moved to the dead-letter queue for offline inspection.
  /// 0 disables dead-lettering (unbounded redelivery, the 2010 behaviour).
  int max_deliveries = 5;
  std::string dead_letter_queue = "dead-letter";
  /// Retry policy for all of the framework's own storage traffic. Defaults
  /// to capped exponential backoff with every transient class retryable, so
  /// the framework rides out injected timeouts/resets; swap in
  /// RetryPolicy::paper() to reproduce the paper's fixed-1s behaviour.
  azure::RetryPolicy retry{};
};

/// One task as seen by a worker.
struct TaskDescriptor {
  std::string body;       // inline descriptor, or resolved spill payload
  std::int64_t bytes = 0; // payload size (inline or spilled)
};

class BagOfTasksApp {
 public:
  /// A worker's task handler.
  using Handler =
      std::function<sim::Task<void>(const TaskDescriptor&)>;

  BagOfTasksApp(azure::CloudStorageAccount account, BagOfTasksConfig cfg = {})
      : account_(account), cfg_(std::move(cfg)) {}

  const BagOfTasksConfig& config() const noexcept { return cfg_; }

  // ------------------------------------------------------- web role side --

  /// Creates the queues and the spill container. Call once before use.
  sim::Task<void> provision() {
    auto& sim = account_.environment().simulation();
    auto queues = account_.create_cloud_queue_client();
    for (int i = 0; i < cfg_.task_queue_shards; ++i) {
      auto q = queues.get_queue_reference(shard_name(i));
      co_await azure::with_retry(
          sim, [&] { return q.create_if_not_exists(); }, cfg_.retry);
    }
    auto termination = queues.get_queue_reference(cfg_.termination_queue);
    co_await azure::with_retry(
        sim, [&] { return termination.create_if_not_exists(); }, cfg_.retry);
    if (cfg_.max_deliveries > 0) {
      auto dlq = queues.get_queue_reference(cfg_.dead_letter_queue);
      co_await azure::with_retry(
          sim, [&] { return dlq.create_if_not_exists(); }, cfg_.retry);
    }
    auto spill = account_.create_cloud_blob_client().get_container_reference(
        cfg_.spill_container);
    co_await azure::with_retry(
        sim, [&] { return spill.create_if_not_exists(); }, cfg_.retry);
  }

  /// Enqueues one task. Oversized descriptors spill into Blob storage.
  sim::Task<void> submit(std::string body) {
    auto& sim = account_.environment().simulation();
    auto queues = account_.create_cloud_queue_client();
    auto q = queues.get_queue_reference(shard_name(next_shard_));
    next_shard_ = (next_shard_ + 1) % cfg_.task_queue_shards;
    const std::int64_t id = next_task_id_++;

    if (static_cast<std::int64_t>(body.size()) >
        azure::limits::kMaxMessagePayloadBytes) {
      const std::string blob_name = "task-" + std::to_string(id);
      auto blob = account_.create_cloud_blob_client()
                      .get_container_reference(cfg_.spill_container)
                      .get_block_blob_reference(blob_name);
      co_await azure::with_retry(sim, [&] {
        return blob.upload_text(azure::Payload::bytes(body));
      }, cfg_.retry);
      co_await azure::with_retry(sim, [&] {
        return q.add_message(
            azure::Payload::bytes(std::string(kSpillMarker) + blob_name));
      }, cfg_.retry);
    } else {
      co_await azure::with_retry(
          sim, [&] { return q.add_message(azure::Payload::bytes(body)); },
          cfg_.retry);
    }
    ++submitted_;
  }

  /// Progress so far: number of phase-completion signals workers have put
  /// on the termination-indicator queue.
  sim::Task<std::int64_t> completed_count() {
    auto& sim = account_.environment().simulation();
    auto q = account_.create_cloud_queue_client().get_queue_reference(
        cfg_.termination_queue);
    co_return co_await azure::with_retry(
        sim, [&] { return q.get_message_count(); }, cfg_.retry);
  }

  /// Blocks (in virtual time) until `expected` completions are signalled.
  sim::Task<void> wait_for_completion(std::int64_t expected) {
    auto& sim = account_.environment().simulation();
    for (;;) {
      const std::int64_t done = co_await completed_count();
      if (done >= expected) co_return;
      co_await sim.delay(cfg_.idle_poll_interval);
    }
  }

  std::int64_t submitted() const noexcept { return submitted_; }

  // ------------------------------------------------------ worker role side --

  /// Processes tasks until `tasks_to_process` tasks are handled (or forever
  /// when -1 until the queues stay empty and `stop_when_idle` rounds pass).
  ///
  /// Each worker drains its shards round-robin; every completed task is
  /// signalled on the termination-indicator queue.
  sim::Task<void> worker_loop(azure::CloudStorageAccount worker_account,
                              Handler handler,
                              int max_idle_polls = 3) {
    auto& sim = worker_account.environment().simulation();
    auto queues = worker_account.create_cloud_queue_client();
    auto termination =
        queues.get_queue_reference(cfg_.termination_queue);
    int idle_polls = 0;
    int shard = 0;
    while (idle_polls < max_idle_polls) {
      auto q = queues.get_queue_reference(shard_name(shard));
      shard = (shard + 1) % cfg_.task_queue_shards;
      std::optional<azure::QueueMessage> msg;
      bool not_provisioned = false;
      try {
        msg = co_await azure::with_retry(sim, [&] {
          return q.get_message(cfg_.task_visibility_timeout);
        }, cfg_.retry);
      } catch (const azure::NotFoundError&) {
        // Workers may boot before the web role has provisioned the queues;
        // treat that like an empty poll.
        not_provisioned = true;
      }
      if (not_provisioned || !msg.has_value()) {
        ++idle_polls;
        co_await sim.delay(cfg_.idle_poll_interval);
        continue;
      }
      idle_polls = 0;

      // Poison-task dead-lettering: this delivery already counts toward the
      // cap, so a task seen more than max_deliveries times is parked on the
      // dead-letter queue instead of crashing yet another handler.
      if (cfg_.max_deliveries > 0 &&
          msg->dequeue_count > cfg_.max_deliveries) {
        auto dlq = queues.get_queue_reference(cfg_.dead_letter_queue);
        co_await azure::with_retry(
            sim, [&] { return dlq.add_message(msg->body); }, cfg_.retry);
        // Delete AFTER the dead-letter copy is durable (at-least-once: a
        // worker dying between the two adds a duplicate DLQ entry, never
        // loses the task).
        try {
          co_await azure::with_retry(
              sim, [&] { return q.delete_message(*msg); }, cfg_.retry);
        } catch (const azure::PreconditionFailedError&) {
          // Redelivered to someone else meanwhile; they will dead-letter it
          // again and one of the deletes will win.
        } catch (const azure::NotFoundError&) {
        }
        ++dead_lettered_;
        if (obs::Observer* const o = sim.observer(); o != nullptr) {
          o->metrics().counter("bag.dead_lettered").add(1);
        }
        continue;
      }
      if (msg->dequeue_count > 1) {
        if (obs::Observer* const o = sim.observer(); o != nullptr) {
          o->metrics().counter("bag.redeliveries").add(1);
        }
      }

      // The whole task — payload resolution plus handler — is one kTask
      // span, a root (tasks are independent of any client-request trace).
      obs::Observer* const o = sim.observer();
      const sim::TimePoint task_start = sim.now();
      obs::SpanHandle task_span{};
      if (o != nullptr) task_span = o->begin(obs::TraceContext{}, task_start);

      TaskDescriptor task = co_await resolve(worker_account, msg->body);

      // Renew the task's lease concurrently while the handler runs, so a
      // slow task is not re-delivered to another worker mid-flight.
      azure::QueueMessage current = *msg;
      bool handler_done = false;
      bool lease_lost = false;
      sim::WaitGroup renewal(sim);
      if (cfg_.renew_task_leases) {
        renewal.add();
        sim.spawn(renew_lease(sim, q, current, handler_done, lease_lost,
                              renewal));
      }
      bool handler_failed = false;
      try {
        co_await handler(task);
      } catch (...) {
        handler_failed = true;
      }
      handler_done = true;
      if (cfg_.renew_task_leases) co_await renewal.wait();
      if (o != nullptr) {
        o->end(task_span, obs::SpanKind::kTask, o->label("bag.task"), -1,
               task.bytes, handler_failed, sim.now());
        if (handler_failed) {
          o->metrics().counter("bag.handler_failures").add(1);
        }
      }

      if (handler_failed) {
        // The handler crashed (e.g. an un-retried injected fault escaped
        // it). The task is NOT deleted, so the visibility timeout
        // guarantees redelivery; a best-effort UpdateMessage(0) makes it
        // visible again immediately instead of after the full timeout.
        ++handler_failures_;
        if (!lease_lost) {
          try {
            co_await q.update_message(current, 0);
          } catch (const azure::StorageError&) {
            // Lease raced away or the requeue itself failed: the timeout
            // still redelivers the task, just later.
          } catch (const azure::FaultError&) {
          }
        }
        continue;
      }

      // Consumers delete after processing; if a worker died here, the
      // message would reappear after the visibility timeout. When the
      // lease was lost (e.g. renewal raced a reappearance), another worker
      // owns the task now and will signal its completion instead.
      if (!lease_lost) {
        bool still_owned = true;
        try {
          co_await azure::with_retry(
              sim, [&] { return q.delete_message(current); }, cfg_.retry);
        } catch (const azure::PreconditionFailedError&) {
          still_owned = false;
        } catch (const azure::NotFoundError&) {
          still_owned = false;
        }
        if (still_owned) {
          co_await azure::with_retry(sim, [&] {
            return termination.add_message(azure::Payload::bytes("done"));
          }, cfg_.retry);
        }
      }
    }
  }

  /// Handler invocations that ended in an exception (each one leads to a
  /// redelivery of the task).
  std::int64_t handler_failures() const noexcept { return handler_failures_; }

  /// Tasks this app's workers moved to the dead-letter queue.
  std::int64_t dead_lettered() const noexcept { return dead_lettered_; }

  /// Messages currently parked on the dead-letter queue.
  sim::Task<std::int64_t> dead_letter_count() {
    auto& sim = account_.environment().simulation();
    auto q = account_.create_cloud_queue_client().get_queue_reference(
        cfg_.dead_letter_queue);
    co_return co_await azure::with_retry(
        sim, [&] { return q.get_message_count(); }, cfg_.retry);
  }

  /// Blocks (in virtual time) until every one of `expected` tasks is
  /// *resolved* — completed by a worker or parked on the dead-letter queue.
  /// This is the termination condition for workloads with poison tasks,
  /// where wait_for_completion(expected) would spin forever.
  sim::Task<void> wait_for_resolution(std::int64_t expected) {
    auto& sim = account_.environment().simulation();
    for (;;) {
      const std::int64_t done = co_await completed_count();
      if (done + dead_lettered_ >= expected) co_return;
      co_await sim.delay(cfg_.idle_poll_interval);
    }
  }

 private:
  static constexpr std::string_view kSpillMarker = "\x01spill:";

  /// Background lease renewal: refreshes the message's visibility every
  /// half timeout until the handler finishes (or the lease is lost).
  sim::Task<void> renew_lease(sim::Simulation& sim, azure::CloudQueue queue,
                              azure::QueueMessage& current,
                              const bool& handler_done, bool& lease_lost,
                              sim::WaitGroup& done_group) {
    const sim::Duration half = cfg_.task_visibility_timeout / 2;
    const sim::Duration tick =
        std::min<sim::Duration>(half, sim::millis(500));
    for (;;) {
      sim::Duration waited = 0;
      while (!handler_done && waited < half) {
        co_await sim.delay(tick);
        waited += tick;
      }
      if (handler_done) break;
      bool lost = false;
      try {
        // ServerBusy is retried inside; a stale receipt or a vanished
        // message means the lease is genuinely gone.
        current = co_await azure::with_retry(sim, [&] {
          return queue.update_message(current, cfg_.task_visibility_timeout);
        }, cfg_.retry);
      } catch (const azure::PreconditionFailedError&) {
        lost = true;
      } catch (const azure::NotFoundError&) {
        lost = true;
      } catch (const azure::FaultError&) {
        // Renewal exhausted its retries against injected faults: assume the
        // worst (the message may reappear) rather than crash the renewal
        // coroutine.
        lost = true;
      }
      if (lost) {
        lease_lost = true;
        break;
      }
    }
    done_group.done();
  }

  std::string shard_name(int i) const {
    return cfg_.task_queue_prefix + "-" + std::to_string(i);
  }

  sim::Task<TaskDescriptor> resolve(azure::CloudStorageAccount account,
                                    const azure::Payload& message) {
    const std::string& text = message.data();
    if (text.rfind(kSpillMarker, 0) == 0) {
      auto& sim = account.environment().simulation();
      const std::string blob_name = text.substr(kSpillMarker.size());
      auto blob = account.create_cloud_blob_client()
                      .get_container_reference(cfg_.spill_container)
                      .get_block_blob_reference(blob_name);
      auto payload = co_await azure::with_retry(
          sim, [&] { return blob.download_text(); }, cfg_.retry);
      co_return TaskDescriptor{payload.data(), payload.size()};
    }
    co_return TaskDescriptor{text, message.size()};
  }

  azure::CloudStorageAccount account_;
  BagOfTasksConfig cfg_;
  int next_shard_ = 0;
  std::int64_t next_task_id_ = 0;
  std::int64_t submitted_ = 0;
  std::int64_t handler_failures_ = 0;
  std::int64_t dead_lettered_ = 0;
};

}  // namespace framework
