// Cross-domain transfer routing for the sharded parallel kernel.
//
// Domains of a sim::par::ShardedSimulation model independent stamp shards;
// traffic between them crosses an inter-domain link whose one-way latency is
// the physical floor below every cross-shard interaction. That floor is
// exactly the conservative lookahead the kernel synchronizes on
// (min_link_latency below), so the link layer is where lookahead is derived
// from the network model rather than asserted by hand.
//
// A DomainLink is one direction of such a link: sending pays flow-level
// occupancy on a source-side pipe (inside the source domain's timeline),
// then delivers a callable into the destination domain one link latency
// later via ShardedSimulation::post — i.e. through the deterministic
// (at, src, seq) mailbox merge. remote_call() builds request/response RPC on
// top of a link pair: the caller suspends in its own domain while the served
// coroutine runs entirely inside the destination domain.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>

#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/parallel.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace netsim {

/// The minimum virtual-time distance of any message crossing between two
/// domains: fabric propagation plus both endpoints' NIC serialization
/// latency. Every cross-domain delivery pays at least this much, so it is a
/// valid conservative lookahead for sim::par::ShardedSimulation.
constexpr sim::Duration min_link_latency(
    const NetworkConfig& net, sim::Duration src_nic_latency,
    sim::Duration dst_nic_latency) noexcept {
  return net.propagation + src_nic_latency + dst_nic_latency;
}

/// One direction of an inter-domain link.
class DomainLink {
 public:
  struct Config {
    double bytes_per_sec = 1e9;
    /// One-way delivery latency; must be >= the kernel's lookahead (the
    /// constructor asserts it), since delivery goes through post().
    sim::Duration latency = sim::millis(1);
    double burst_bytes = 64 * 1024.0;
  };

  DomainLink(sim::par::ShardedSimulation& shards, int src, int dst)
      : DomainLink(shards, src, dst, Config{}) {}

  DomainLink(sim::par::ShardedSimulation& shards, int src, int dst,
             const Config& cfg)
      : shards_(shards),
        src_(src),
        dst_(dst),
        cfg_(cfg),
        pipe_(shards.domain(src), cfg.bytes_per_sec, cfg.burst_bytes) {
    assert(cfg.latency >= shards.lookahead() &&
           "link latency below the kernel lookahead breaks conservatism");
  }
  DomainLink(const DomainLink&) = delete;
  DomainLink& operator=(const DomainLink&) = delete;

  int source() const noexcept { return src_; }
  int destination() const noexcept { return dst_; }
  sim::Simulation& source_sim() { return shards_.domain(src_); }
  sim::Simulation& destination_sim() { return shards_.domain(dst_); }

  /// Pays source-side occupancy for `bytes`, then schedules `fn` inside the
  /// destination domain one link latency later. Returns when the payload
  /// has left the source (sender-side completion); delivery is
  /// asynchronous. Must be awaited from code executing in domain source().
  template <class F>
  sim::Task<void> send(std::int64_t bytes, F fn) {
    if (bytes > 0) co_await pipe_.acquire(static_cast<double>(bytes));
    ++transfers_;
    bytes_moved_ += bytes;
    shards_.post(src_, dst_, source_sim().now() + cfg_.latency,
                 std::move(fn));
  }

  std::int64_t transfers() const noexcept { return transfers_; }
  std::int64_t bytes_moved() const noexcept { return bytes_moved_; }

 private:
  sim::par::ShardedSimulation& shards_;
  int src_;
  int dst_;
  Config cfg_;
  sim::FlowLimiter pipe_;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_moved_ = 0;
};

namespace detail {

/// Rendezvous between a remote_call caller and its served coroutine. Lives
/// in the caller's frame (source domain); the destination domain writes the
/// result before posting the response, and the mailbox release/acquire pair
/// orders that write before the caller's resume.
template <class T>
struct RpcState {
  std::optional<T> value;
  std::exception_ptr error;
  std::coroutine_handle<> caller;
};

template <class T, class Make>
sim::Task<void> rpc_serve(RpcState<T>* st, DomainLink* response,
                          std::int64_t response_bytes, Make make) {
  try {
    st->value.emplace(co_await make());
  } catch (...) {
    st->error = std::current_exception();
  }
  // Errors travel as control messages (no payload bytes to carry).
  co_await response->send(st->error ? 0 : response_bytes,
                          [st] { st->caller.resume(); });
}

}  // namespace detail

/// Request/response RPC across domains over a pair of directed links
/// (`request`: caller's domain -> serving domain; `response`: the reverse).
/// The request pays `request_bytes` of link occupancy, `make()` then runs as
/// a root process of the serving domain, and its result (or exception)
/// returns to the caller after the response link's occupancy + latency.
/// Must be awaited from code executing in request.source().
template <class T, class Make>
sim::Task<T> remote_call(DomainLink& request, DomainLink& response,
                         std::int64_t request_bytes,
                         std::int64_t response_bytes, Make make) {
  assert(request.source() == response.destination() &&
         request.destination() == response.source() &&
         "remote_call needs a matched link pair");
  detail::RpcState<T> st;
  co_await request.send(
      request_bytes,
      [&st, &response, response_bytes, make = std::move(make)]() mutable {
        response.source_sim().spawn(
            detail::rpc_serve<T, Make>(&st, &response, response_bytes,
                                       std::move(make)),
            "rpc-serve");
      });
  // Delivery is at least one link latency in the future, so the caller is
  // always suspended here before the serving domain can post the response.
  struct Waiter {
    detail::RpcState<T>* st;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      st->caller = h;
    }
    void await_resume() const noexcept {}
  };
  co_await Waiter{&st};
  if (st.error) std::rethrow_exception(st.error);
  co_return std::move(*st.value);
}

}  // namespace netsim
