// Network endpoint model: a NIC with independent uplink/downlink bandwidth
// and a fixed serialization latency.
#pragma once

#include <cstdint>

#include "simcore/rate_limiter.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace netsim {

struct NicConfig {
  double uplink_bytes_per_sec;
  double downlink_bytes_per_sec;
  sim::Duration latency = sim::micros(50);
  /// Instantaneous burst credit in bytes (lets small control packets pass
  /// without queueing behind an idle pipe).
  double burst_bytes = 64 * 1024.0;
};

/// One endpoint's network interface. Transfers through a NIC occupy the
/// relevant direction's pipe for bytes/bandwidth of virtual time.
class Nic {
 public:
  Nic(sim::Simulation& sim, const NicConfig& cfg)
      : cfg_(cfg),
        up_(sim, cfg.uplink_bytes_per_sec, cfg.burst_bytes),
        down_(sim, cfg.downlink_bytes_per_sec, cfg.burst_bytes) {}

  const NicConfig& config() const noexcept { return cfg_; }

  /// Awaitable: pushes `bytes` out of this endpoint.
  auto send(std::int64_t bytes) noexcept {
    bytes_sent_ += bytes;
    return up_.acquire(static_cast<double>(bytes));
  }

  /// Awaitable: receives `bytes` into this endpoint.
  auto receive(std::int64_t bytes) noexcept {
    bytes_received_ += bytes;
    return down_.acquire(static_cast<double>(bytes));
  }

  std::int64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::int64_t bytes_received() const noexcept { return bytes_received_; }

 private:
  NicConfig cfg_;
  sim::FlowLimiter up_;
  sim::FlowLimiter down_;
  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_received_ = 0;
};

}  // namespace netsim
