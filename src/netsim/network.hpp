// Datacenter network model: store-and-forward transfers between NICs over a
// switched fabric with a fixed propagation latency.
//
// The model intentionally stays at flow level (no packets): a transfer pays
// the sender's uplink occupancy, the fabric propagation delay, then the
// receiver's downlink occupancy. This is the standard fluid approximation
// used by datacenter simulators and is exact for the long sequential
// transfers the benchmarks issue.
#pragma once

#include <cstdint>

#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace netsim {

struct NetworkConfig {
  /// One-way propagation + switching delay inside the datacenter.
  sim::Duration propagation = sim::micros(250);
};

class Network {
 public:
  Network(sim::Simulation& sim, const NetworkConfig& cfg = {})
      : sim_(sim), cfg_(cfg) {}

  sim::Simulation& simulation() const noexcept { return sim_; }
  const NetworkConfig& config() const noexcept { return cfg_; }

  /// Transfers `bytes` from `src` to `dst` (0 bytes = a control message that
  /// only pays NIC latency + propagation).
  sim::Task<void> transfer(Nic& src, Nic& dst, std::int64_t bytes) {
    if (bytes > 0) co_await src.send(bytes);
    co_await sim_.delay(src.config().latency + cfg_.propagation +
                        dst.config().latency);
    if (bytes > 0) co_await dst.receive(bytes);
    ++transfers_;
    bytes_moved_ += bytes;
  }

  /// One-way control-plane delay (request or response header).
  sim::Task<void> control_hop(Nic& src, Nic& dst) {
    co_await transfer(src, dst, 0);
  }

  std::int64_t transfers() const noexcept { return transfers_; }
  std::int64_t bytes_moved() const noexcept { return bytes_moved_; }

 private:
  sim::Simulation& sim_;
  NetworkConfig cfg_;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_moved_ = 0;
};

}  // namespace netsim
