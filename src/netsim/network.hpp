// Datacenter network model: store-and-forward transfers between NICs over a
// switched fabric with a fixed propagation latency.
//
// The model intentionally stays at flow level (no packets): a transfer pays
// the sender's uplink occupancy, the fabric propagation delay, then the
// receiver's downlink occupancy. This is the standard fluid approximation
// used by datacenter simulators and is exact for the long sequential
// transfers the benchmarks issue.
#pragma once

#include <cstdint>
#include <string>

#include "faults/errors.hpp"
#include "faults/fault_plan.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace netsim {

struct NetworkConfig {
  /// One-way propagation + switching delay inside the datacenter.
  sim::Duration propagation = sim::micros(250);
};

class Network {
 public:
  Network(sim::Simulation& sim, const NetworkConfig& cfg = {})
      : sim_(sim), cfg_(cfg) {}

  sim::Simulation& simulation() const noexcept { return sim_; }
  const NetworkConfig& config() const noexcept { return cfg_; }

  /// Installs (or clears, with nullptr) the fault plan consulted on every
  /// transfer. With no plan — or a disabled one — transfer timing and event
  /// sequences are byte-identical to a fault-free build.
  void set_fault_plan(faults::FaultPlan* plan) noexcept { plan_ = plan; }
  faults::FaultPlan* fault_plan() const noexcept { return plan_; }

  /// Transfers `bytes` from `src` to `dst` (0 bytes = a control message that
  /// only pays NIC latency + propagation). Returns true when the payload
  /// arrived with flipped bits: timing is identical to a clean transfer —
  /// the damage is only observable to layers that checksum the payload.
  ///
  /// Under an active fault plan a transfer may additionally
  ///  * be dropped — the sender's occupancy is paid but the message never
  ///    arrives; the caller observes faults::TimeoutError after the plan's
  ///    drop_timeout (the flow-level rendering of a lost packet train);
  ///  * be duplicated — the payload pays its link occupancy twice (a
  ///    retransmission; the transport dedupes, so no semantic effect);
  ///  * hit a latency spike — extra propagation delay on this hop.
  sim::Task<bool> transfer_checked(Nic& src, Nic& dst, std::int64_t bytes,
                                   obs::TraceContext trace = {}) {
    faults::LinkFault fault = faults::LinkFault::kNone;
    if (plan_ != nullptr) fault = plan_->draw_link_fault(bytes);
    obs::Observer* const o = sim_.observer();
    obs::SpanHandle span{};
    if (o != nullptr) span = o->begin(trace, sim_.now());

    if (bytes > 0) co_await src.send(bytes);
    if (fault == faults::LinkFault::kDrop) {
      ++dropped_transfers_;
      co_await sim_.delay(plan_->config().drop_timeout);
      if (o != nullptr) {
        o->metrics().counter("net.dropped").add(1);
        o->end(span, obs::SpanKind::kNetTransfer, 0, -1, bytes,
               /*error=*/true, sim_.now());
      }
      throw faults::TimeoutError("transfer lost in the network (" +
                                 std::to_string(bytes) + " bytes)");
    }
    if (fault == faults::LinkFault::kDuplicate && bytes > 0) {
      co_await src.send(bytes);  // retransmission occupies the uplink again
    }
    sim::Duration propagation = cfg_.propagation;
    if (fault == faults::LinkFault::kLatencySpike) {
      propagation += plan_->draw_spike_duration();
    }
    co_await sim_.delay(src.config().latency + propagation +
                        dst.config().latency);
    if (bytes > 0) {
      co_await dst.receive(bytes);
      if (fault == faults::LinkFault::kDuplicate) co_await dst.receive(bytes);
    }
    ++transfers_;
    bytes_moved_ += bytes;
    if (o != nullptr) {
      o->metrics().counter("net.transfers").add(1);
      o->metrics().counter("net.bytes").add(bytes);
      o->end(span, obs::SpanKind::kNetTransfer, 0, -1, bytes,
             /*error=*/false, sim_.now());
    }
    if (fault == faults::LinkFault::kBitFlip) {
      ++corrupted_transfers_;
      co_return true;
    }
    co_return false;
  }

  /// transfer_checked for callers that carry no payload checksum (corrupt
  /// arrivals are indistinguishable from clean ones to them).
  sim::Task<void> transfer(Nic& src, Nic& dst, std::int64_t bytes,
                           obs::TraceContext trace = {}) {
    (void)co_await transfer_checked(src, dst, bytes, trace);
  }

  /// One-way control-plane delay (request or response header).
  sim::Task<void> control_hop(Nic& src, Nic& dst,
                              obs::TraceContext trace = {}) {
    co_await transfer(src, dst, 0, trace);
  }

  std::int64_t transfers() const noexcept { return transfers_; }
  std::int64_t bytes_moved() const noexcept { return bytes_moved_; }
  std::int64_t dropped_transfers() const noexcept { return dropped_transfers_; }
  std::int64_t corrupted_transfers() const noexcept {
    return corrupted_transfers_;
  }

 private:
  sim::Simulation& sim_;
  NetworkConfig cfg_;
  faults::FaultPlan* plan_ = nullptr;
  std::int64_t transfers_ = 0;
  std::int64_t bytes_moved_ = 0;
  std::int64_t dropped_transfers_ = 0;
  std::int64_t corrupted_transfers_ = 0;
};

}  // namespace netsim
