// Inter-region (long-haul) link model: one direction of a WAN path between
// two storage stamps, with its own propagation latency and bandwidth.
//
// Unlike the intra-datacenter Network (network.hpp), a GeoLink is
// *directional* — geo topologies are asymmetric (east->west and west->east
// can have different latency and different provisioned bandwidth) — and it
// carries *batches* rather than request/response transfers: the geo
// replication shipper moves sealed log batches and the client redirect path
// pays the latency only. Fault draws come from the owning fault plan's
// dedicated geo stream (FaultPlan::draw_geo_link_fault), one per batch, so
// inter-region shipping never perturbs intra-stamp link draws.
#pragma once

#include <cstdint>

#include "faults/fault_plan.hpp"
#include "obs/observer.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace netsim {

struct GeoLinkConfig {
  /// One-way propagation delay across the long-haul path.
  sim::Duration latency = sim::millis(30);
  /// Provisioned bandwidth of this direction (bytes/s).
  double bytes_per_sec = 1.0 * 1024 * 1024 * 1024;
  /// Instantaneous burst credit in bytes.
  double burst_bytes = 256 * 1024.0;
};

/// One direction of an inter-region path. carry() moves a replication batch
/// (occupancy + latency, consulting the geo fault stream); hop() pays the
/// one-way latency only (control traffic: redirects, strong-read routing).
class GeoLink {
 public:
  GeoLink(sim::Simulation& sim, const GeoLinkConfig& cfg)
      : sim_(sim), cfg_(cfg), pipe_(sim, cfg.bytes_per_sec, cfg.burst_bytes) {}

  GeoLink(const GeoLink&) = delete;
  GeoLink& operator=(const GeoLink&) = delete;

  const GeoLinkConfig& config() const noexcept { return cfg_; }

  /// Ships `bytes` across the link. Returns false when the geo fault stream
  /// dropped the batch — the occupancy is paid (the bytes left the sending
  /// region) but the batch never arrives, and the caller must redeliver.
  /// A latency spike adds its drawn duration to the propagation delay.
  sim::Task<bool> carry(std::int64_t bytes, faults::FaultPlan* plan) {
    faults::LinkFault fault = faults::LinkFault::kNone;
    if (plan != nullptr) fault = plan->draw_geo_link_fault(bytes);
    if (bytes > 0) co_await pipe_.acquire(static_cast<double>(bytes));
    if (fault == faults::LinkFault::kDrop) {
      ++dropped_batches_;
      if (obs::Observer* const o = sim_.observer(); o != nullptr) {
        o->metrics().counter("geo.link_drops").add(1);
      }
      co_return false;
    }
    sim::Duration propagation = cfg_.latency;
    if (fault == faults::LinkFault::kLatencySpike) {
      propagation += plan->draw_geo_spike_duration();
      ++spiked_batches_;
    }
    co_await sim_.delay(propagation);
    ++batches_;
    bytes_moved_ += bytes;
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      o->metrics().counter("geo.link_batches").add(1);
      o->metrics().counter("geo.link_bytes").add(bytes);
    }
    co_return true;
  }

  /// One-way control hop: latency only, no occupancy, no fault draw (the
  /// redirect protocol retries at the client; losing a redirect is
  /// indistinguishable from a slower one at flow level).
  sim::Task<void> hop() { co_await sim_.delay(cfg_.latency); }

  std::int64_t batches() const noexcept { return batches_; }
  std::int64_t bytes_moved() const noexcept { return bytes_moved_; }
  std::int64_t dropped_batches() const noexcept { return dropped_batches_; }
  std::int64_t spiked_batches() const noexcept { return spiked_batches_; }

 private:
  sim::Simulation& sim_;
  GeoLinkConfig cfg_;
  sim::FlowLimiter pipe_;
  std::int64_t batches_ = 0;
  std::int64_t bytes_moved_ = 0;
  std::int64_t dropped_batches_ = 0;
  std::int64_t spiked_batches_ = 0;
};

}  // namespace netsim
