#include "storage/driver.hpp"

#include "storage/azure_driver.hpp"
#include "storage/s3_driver.hpp"
#include "storage/tiered_driver.hpp"

namespace storage {
namespace {

// Lazy tasks run synchronously up to the first suspension when awaited, so
// a plain throw in the body surfaces exactly at the caller's co_await.
[[noreturn]] void unsupported(const Driver& d, const char* group) {
  throw CapabilityError(std::string("backend '") + d.name() + "' has no " +
                        group + " service");
}

}  // namespace

sim::Task<void> Driver::prepare_objects(netsim::Nic&) {
  unsupported(*this, "object");
}
sim::Task<void> Driver::prepare_queue(netsim::Nic&, std::string) {
  unsupported(*this, "queue");
}
sim::Task<void> Driver::prepare_table(netsim::Nic&) {
  unsupported(*this, "table");
}
sim::Task<void> Driver::prepare_sql(netsim::Nic&) {
  unsupported(*this, "sql");
}
sim::Task<OpResult> Driver::object_write(netsim::Nic&, std::string,
                                         std::int64_t) {
  unsupported(*this, "object");
}
sim::Task<OpResult> Driver::object_read(netsim::Nic&, std::string) {
  unsupported(*this, "object");
}
sim::Task<OpResult> Driver::object_list(netsim::Nic&) {
  unsupported(*this, "object");
}
sim::Task<OpResult> Driver::object_delete(netsim::Nic&, std::string) {
  unsupported(*this, "object");
}
sim::Task<OpResult> Driver::queue_put(netsim::Nic&, std::string,
                                      std::int64_t) {
  unsupported(*this, "queue");
}
sim::Task<OpResult> Driver::queue_get(netsim::Nic&, std::string) {
  unsupported(*this, "queue");
}
sim::Task<OpResult> Driver::queue_peek(netsim::Nic&, std::string) {
  unsupported(*this, "queue");
}
sim::Task<OpResult> Driver::table_read(netsim::Nic&, std::string,
                                       std::string) {
  unsupported(*this, "table");
}
sim::Task<OpResult> Driver::table_insert(netsim::Nic&, std::string,
                                         std::string, std::int64_t) {
  unsupported(*this, "table");
}
sim::Task<OpResult> Driver::table_update(netsim::Nic&, std::string,
                                         std::string, std::int64_t) {
  unsupported(*this, "table");
}
sim::Task<OpResult> Driver::table_scan(netsim::Nic&, std::string) {
  unsupported(*this, "table");
}
sim::Task<OpResult> Driver::table_rmw(netsim::Nic&, std::string, std::string,
                                      std::int64_t) {
  unsupported(*this, "table");
}
sim::Task<OpResult> Driver::sql_read(netsim::Nic&, std::uint64_t) {
  unsupported(*this, "sql");
}
sim::Task<OpResult> Driver::sql_write(netsim::Nic&, std::uint64_t,
                                      std::int64_t) {
  unsupported(*this, "sql");
}

std::unique_ptr<Driver> make_driver(sim::Simulation& sim,
                                    const framework::Scenario& sc) {
  switch (sc.backend) {
    case framework::BackendKind::kAzure:
      return std::make_unique<AzureDriver>(sim, sc);
    case framework::BackendKind::kS3:
      return std::make_unique<S3Driver>(sim, sc);
    case framework::BackendKind::kTiered:
      return std::make_unique<TieredDriver>(sim, sc);
  }
  return std::make_unique<AzureDriver>(sim, sc);
}

}  // namespace storage
