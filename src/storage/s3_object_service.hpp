// Simulated S3-like object store: buckets of objects behind a REST façade,
// with the contract points that differ from the Azure-style services:
//
//  * object namespace only — no queues, tables, or SQL;
//  * eventual list-after-write: a PUT's key becomes LIST-visible only
//    `visibility_lag` after the write completes (and a DELETE keeps the key
//    listed for the same lag), while GET stays read-after-write;
//  * idempotent DELETE: deleting an absent key is a success (HTTP 204),
//    where the Azure blob service 404s;
//  * per-prefix request caps with 503 SlowDown instead of the per-account
//    transaction gate — the owning cluster must run
//    ThrottleMode::kPrefixSlowdown, and every request carries its key's
//    prefix hash so the cluster can meter reads/writes per prefix.
//
// Costs flow through the same cluster::StorageCluster request model as the
// Azure services (NIC serialization, partition routing, replication, fault
// injection, integrity tracking), so cross-backend per-op comparisons
// measure contract differences, not modelling artefacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "azure/common/payload.hpp"
#include "cluster/errors.hpp"
#include "cluster/storage_cluster.hpp"
#include "netsim/nic.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace storage {

/// Requested bucket does not exist (S3 NoSuchBucket, HTTP 404).
class NoSuchBucketError : public cluster::StorageError {
 public:
  explicit NoSuchBucketError(const std::string& what)
      : cluster::StorageError(what) {}
};

/// Requested key does not exist (S3 NoSuchKey, HTTP 404).
class NoSuchKeyError : public cluster::StorageError {
 public:
  explicit NoSuchKeyError(const std::string& what)
      : cluster::StorageError(what) {}
};

struct S3ObjectServiceConfig {
  /// Extra REST front-end latency per request, on top of the cluster's
  /// frontend_latency (S3's HTTP/auth path has a noticeably higher first
  /// byte time than Azure's 2011-era front-end model here).
  sim::Duration request_latency = sim::millis(4);

  /// Fixed server CPU per data request.
  sim::Duration request_cpu = sim::micros(300);

  /// Server CPU per LIST request (bucket-index walk).
  sim::Duration list_cpu = sim::millis(1);

  /// How long after a PUT completes its key becomes LIST-visible (and how
  /// long a DELETEd key keeps appearing in listings).
  sim::Duration visibility_lag = sim::millis(500);

  /// Modelled listing-response footprint per entry.
  std::int64_t list_entry_bytes = 64;
};

class S3ObjectService {
 public:
  S3ObjectService(cluster::StorageCluster& cluster,
                  const S3ObjectServiceConfig& cfg)
      : cluster_(cluster), cfg_(cfg) {}

  const S3ObjectServiceConfig& config() const noexcept { return cfg_; }

  sim::Task<void> create_bucket(netsim::Nic& client, std::string bucket);

  /// PUT Object: replaces any existing content; read-after-write for GET,
  /// but a *new* key only enters listings after visibility_lag.
  sim::Task<void> put_object(netsim::Nic& client, std::string bucket,
                             std::string key, azure::Payload data);

  /// GET Object. NoSuchKeyError on absent (or deleted) keys.
  sim::Task<azure::Payload> get_object(netsim::Nic& client,
                                       std::string bucket, std::string key);

  /// DELETE Object: succeeds whether or not the key exists (HTTP 204). The
  /// key keeps appearing in listings for visibility_lag after deletion.
  sim::Task<void> delete_object(netsim::Nic& client, std::string bucket,
                                std::string key);

  /// LIST Objects (optionally under `prefix`): the eventually-consistent
  /// view — keys written less than visibility_lag ago are absent, keys
  /// deleted less than visibility_lag ago are still present.
  sim::Task<std::vector<std::string>> list_objects(netsim::Nic& client,
                                                   std::string bucket,
                                                   std::string prefix = "");

  /// The prefix a key is rate-metered under: everything up to the last
  /// '/' ("" for top-level keys — they share the root prefix's windows).
  static std::string prefix_of(const std::string& key);

 private:
  struct ObjectData {
    azure::Payload data;
    std::uint32_t crc = 0;
    /// When LIST starts including this key.
    sim::TimePoint list_visible_at = 0;
    /// Tombstone: GET 404s immediately, LIST shows the key until delist_at.
    bool deleted = false;
    sim::TimePoint delist_at = 0;
  };
  struct Bucket {
    /// Ordered for deterministic listings.
    std::map<std::string, ObjectData> objects;
  };

  Bucket& require_bucket(const std::string& bucket);
  std::uint64_t throttle_prefix(const std::string& bucket,
                                const std::string& key) const;
  std::uint64_t object_id(std::uint64_t part_hash) const;

  cluster::StorageCluster& cluster_;
  S3ObjectServiceConfig cfg_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace storage
