#include "storage/s3_driver.hpp"

#include <utility>

namespace storage {
namespace {

constexpr const char* kBucket = "b";

faults::FaultConfig fault_config(const framework::Scenario& sc) {
  faults::FaultConfig fc;
  fc.seed = sc.faults.seed;
  fc.drop_probability = sc.faults.drop_probability;
  fc.duplicate_probability = sc.faults.duplicate_probability;
  fc.latency_spike_probability = sc.faults.latency_spike_probability;
  fc.corruption_probability = sc.faults.corruption_probability;
  fc.server_crashes = sc.faults.server_crashes;
  return fc;
}

}  // namespace

cluster::ClusterConfig S3Driver::cluster_config(
    const framework::Scenario& sc) {
  cluster::ClusterConfig cc;
  cc.partition_servers = sc.cluster.partition_servers;
  cc.balancer.enabled = sc.cluster.balancer;
  cc.throttle_mode = cluster::ThrottleMode::kPrefixSlowdown;
  return cc;
}

S3Driver::S3Driver(sim::Simulation& sim, const framework::Scenario& sc)
    : fault_plan_(sim, fault_config(sc)),
      cluster_(sim, cluster_config(sc)),
      s3_(cluster_, S3ObjectServiceConfig{}),
      caps_(framework::backend_caps(framework::BackendKind::kS3)) {
  if (fault_plan_.enabled()) cluster_.enable_faults(fault_plan_);
}

sim::Task<void> S3Driver::prepare_objects(netsim::Nic& nic) {
  co_await s3_.create_bucket(nic, kBucket);
}

sim::Task<OpResult> S3Driver::object_write(netsim::Nic& nic, std::string key,
                                           std::int64_t bytes) {
  co_await s3_.put_object(nic, kBucket, std::move(key),
                          azure::Payload::synthetic(bytes));
  co_return OpResult{.bytes = bytes};
}

sim::Task<OpResult> S3Driver::object_read(netsim::Nic& nic, std::string key) {
  try {
    const azure::Payload p =
        co_await s3_.get_object(nic, kBucket, std::move(key));
    co_return OpResult{.bytes = p.size()};
  } catch (const NoSuchKeyError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> S3Driver::object_list(netsim::Nic& nic) {
  const std::vector<std::string> keys =
      co_await s3_.list_objects(nic, kBucket);
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  co_return OpResult{.bytes = s3_.config().list_entry_bytes * n, .items = n};
}

sim::Task<OpResult> S3Driver::object_delete(netsim::Nic& nic,
                                            std::string key) {
  // S3 contract: DELETE of an absent key is an idempotent 204 — never a
  // miss (the Azure backend 404s instead).
  co_await s3_.delete_object(nic, kBucket, std::move(key));
  co_return OpResult{};
}

}  // namespace storage
