#include "storage/tiered_driver.hpp"

#include <utility>

namespace storage {

TieredDriver::TieredDriver(sim::Simulation& sim,
                           const framework::Scenario& sc)
    // Fast tier constructs first so its cluster/balancer events enqueue
    // ahead of the capacity tier's — construction order is part of the
    // deterministic event schedule.
    : fast_(sim, sc),
      capacity_(sim, sc),
      split_bytes_(sc.tier_split_bytes),
      caps_(framework::backend_caps(framework::BackendKind::kTiered)) {}

sim::Task<void> TieredDriver::prepare_objects(netsim::Nic& nic) {
  co_await fast_.prepare_objects(nic);
  co_await capacity_.prepare_objects(nic);
}

sim::Task<void> TieredDriver::prepare_queue(netsim::Nic& nic,
                                            std::string queue) {
  co_await fast_.prepare_queue(nic, std::move(queue));
}

sim::Task<void> TieredDriver::prepare_table(netsim::Nic& nic) {
  co_await fast_.prepare_table(nic);
}

sim::Task<void> TieredDriver::prepare_sql(netsim::Nic& nic) {
  co_await fast_.prepare_sql(nic);
}

sim::Task<OpResult> TieredDriver::object_write(netsim::Nic& nic,
                                               std::string key,
                                               std::int64_t bytes) {
  const Tier target = bytes >= split_bytes_ ? Tier::kCapacity : Tier::kFast;
  auto it = placement_.find(key);
  if (it != placement_.end() && it->second != target) {
    // Overwrite crossed the size threshold: the object moves tiers, so the
    // stale copy in the old tier must go first (otherwise listings would
    // show the key twice and a later delete would leave an orphan).
    co_await tier(it->second).object_delete(nic, key);
    ++migrations_;
  }
  const OpResult r = co_await tier(target).object_write(nic, key, bytes);
  placement_.insert_or_assign(std::move(key), target);
  co_return r;
}

sim::Task<OpResult> TieredDriver::object_read(netsim::Nic& nic,
                                              std::string key) {
  const auto it = placement_.find(key);
  // Unknown keys default to the fast tier, which reports the miss.
  const Tier t = it != placement_.end() ? it->second : Tier::kFast;
  co_return co_await tier(t).object_read(nic, std::move(key));
}

sim::Task<OpResult> TieredDriver::object_list(netsim::Nic& nic) {
  // A tiered listing pays both tiers' index walks; the capacity half lags
  // recent writes, so the merged view is only eventually consistent.
  const OpResult fast = co_await fast_.object_list(nic);
  const OpResult cap = co_await capacity_.object_list(nic);
  co_return OpResult{.bytes = fast.bytes + cap.bytes,
                     .items = fast.items + cap.items};
}

sim::Task<OpResult> TieredDriver::object_delete(netsim::Nic& nic,
                                                std::string key) {
  const auto it = placement_.find(key);
  const Tier t = it != placement_.end() ? it->second : Tier::kFast;
  if (it != placement_.end()) placement_.erase(it);
  co_return co_await tier(t).object_delete(nic, std::move(key));
}

sim::Task<OpResult> TieredDriver::queue_put(netsim::Nic& nic,
                                            std::string queue,
                                            std::int64_t bytes) {
  co_return co_await fast_.queue_put(nic, std::move(queue), bytes);
}

sim::Task<OpResult> TieredDriver::queue_get(netsim::Nic& nic,
                                            std::string queue) {
  co_return co_await fast_.queue_get(nic, std::move(queue));
}

sim::Task<OpResult> TieredDriver::queue_peek(netsim::Nic& nic,
                                             std::string queue) {
  co_return co_await fast_.queue_peek(nic, std::move(queue));
}

sim::Task<OpResult> TieredDriver::table_read(netsim::Nic& nic,
                                             std::string partition,
                                             std::string row) {
  co_return co_await fast_.table_read(nic, std::move(partition),
                                      std::move(row));
}

sim::Task<OpResult> TieredDriver::table_insert(netsim::Nic& nic,
                                               std::string partition,
                                               std::string row,
                                               std::int64_t bytes) {
  co_return co_await fast_.table_insert(nic, std::move(partition),
                                        std::move(row), bytes);
}

sim::Task<OpResult> TieredDriver::table_update(netsim::Nic& nic,
                                               std::string partition,
                                               std::string row,
                                               std::int64_t bytes) {
  co_return co_await fast_.table_update(nic, std::move(partition),
                                        std::move(row), bytes);
}

sim::Task<OpResult> TieredDriver::table_scan(netsim::Nic& nic,
                                             std::string partition) {
  co_return co_await fast_.table_scan(nic, std::move(partition));
}

sim::Task<OpResult> TieredDriver::table_rmw(netsim::Nic& nic,
                                            std::string partition,
                                            std::string row,
                                            std::int64_t bytes) {
  co_return co_await fast_.table_rmw(nic, std::move(partition),
                                     std::move(row), bytes);
}

sim::Task<OpResult> TieredDriver::sql_read(netsim::Nic& nic,
                                           std::uint64_t key) {
  co_return co_await fast_.sql_read(nic, key);
}

sim::Task<OpResult> TieredDriver::sql_write(netsim::Nic& nic,
                                            std::uint64_t key,
                                            std::int64_t bytes) {
  co_return co_await fast_.sql_write(nic, key, bytes);
}

}  // namespace storage
