// S3-like backend behind the uniform storage::Driver interface: objects
// only, eventual list-after-write, idempotent deletes, per-prefix 503
// SlowDown throttling (its cluster runs ThrottleMode::kPrefixSlowdown and
// no account gate). Queue/table/sql calls raise CapabilityError via the
// Driver base.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/storage_cluster.hpp"
#include "faults/fault_plan.hpp"
#include "storage/driver.hpp"
#include "storage/s3_object_service.hpp"

namespace storage {

class S3Driver final : public Driver {
 public:
  S3Driver(sim::Simulation& sim, const framework::Scenario& sc);

  const char* name() const noexcept override { return "s3"; }
  const framework::BackendCaps& caps() const noexcept override {
    return caps_;
  }

  cluster::StorageCluster& storage_cluster() noexcept { return cluster_; }
  S3ObjectService& object_service() noexcept { return s3_; }

  sim::Task<void> prepare_objects(netsim::Nic& nic) override;

  sim::Task<OpResult> object_write(netsim::Nic& nic, std::string key,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> object_read(netsim::Nic& nic, std::string key) override;
  sim::Task<OpResult> object_list(netsim::Nic& nic) override;
  sim::Task<OpResult> object_delete(netsim::Nic& nic,
                                    std::string key) override;

  /// Maps the spec's cluster/fault sections onto the S3 cluster shape
  /// (kPrefixSlowdown; the spec's `throttle: queue` ablation has no S3
  /// analogue and is ignored by this backend).
  static cluster::ClusterConfig cluster_config(const framework::Scenario& sc);

 private:
  faults::FaultPlan fault_plan_;
  cluster::StorageCluster cluster_;
  S3ObjectService s3_;
  framework::BackendCaps caps_;
};

}  // namespace storage
