// Azure-style backend behind the uniform storage::Driver interface: all
// four services (blob/queue/table/sql), consistent list-after-write, the
// per-account 5,000 tx/s gate (ServerBusyError on overrun). Op bodies are
// the exact storage calls the scenario runner made before the driver layer
// existed, so the default backend's cost profile is unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "azure/sql/sql_service.hpp"
#include "storage/driver.hpp"

namespace storage {

class AzureDriver final : public Driver {
 public:
  AzureDriver(sim::Simulation& sim, const framework::Scenario& sc);

  const char* name() const noexcept override { return "azure"; }
  const framework::BackendCaps& caps() const noexcept override {
    return caps_;
  }

  azure::CloudEnvironment& environment() noexcept { return env_; }

  sim::Task<void> prepare_objects(netsim::Nic& nic) override;
  sim::Task<void> prepare_queue(netsim::Nic& nic, std::string queue) override;
  sim::Task<void> prepare_table(netsim::Nic& nic) override;
  sim::Task<void> prepare_sql(netsim::Nic& nic) override;

  sim::Task<OpResult> object_write(netsim::Nic& nic, std::string key,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> object_read(netsim::Nic& nic, std::string key) override;
  sim::Task<OpResult> object_list(netsim::Nic& nic) override;
  sim::Task<OpResult> object_delete(netsim::Nic& nic,
                                    std::string key) override;

  sim::Task<OpResult> queue_put(netsim::Nic& nic, std::string queue,
                                std::int64_t bytes) override;
  sim::Task<OpResult> queue_get(netsim::Nic& nic, std::string queue) override;
  sim::Task<OpResult> queue_peek(netsim::Nic& nic,
                                 std::string queue) override;

  sim::Task<OpResult> table_read(netsim::Nic& nic, std::string partition,
                                 std::string row) override;
  sim::Task<OpResult> table_insert(netsim::Nic& nic, std::string partition,
                                   std::string row,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> table_update(netsim::Nic& nic, std::string partition,
                                   std::string row,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> table_scan(netsim::Nic& nic,
                                 std::string partition) override;
  sim::Task<OpResult> table_rmw(netsim::Nic& nic, std::string partition,
                                std::string row, std::int64_t bytes) override;

  sim::Task<OpResult> sql_read(netsim::Nic& nic, std::uint64_t key) override;
  sim::Task<OpResult> sql_write(netsim::Nic& nic, std::uint64_t key,
                                std::int64_t bytes) override;

  /// Maps the spec's cluster/fault sections onto a CloudConfig (shared with
  /// TieredDriver's fast tier).
  static azure::CloudConfig cloud_config(const framework::Scenario& sc);

 private:
  azure::TableEntity make_entity(std::string partition, std::string row,
                                 std::int64_t bytes) const;

  azure::CloudEnvironment env_;
  framework::BackendCaps caps_;
};

}  // namespace storage
