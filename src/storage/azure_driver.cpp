#include "storage/azure_driver.hpp"

#include <optional>
#include <utility>
#include <vector>

namespace storage {
namespace {

/// Modelled listing-response footprint per entry (name + properties in the
/// enumeration XML) — what the mix table accounts for a list op.
constexpr std::int64_t kListEntryBytes = 64;

}  // namespace

AzureDriver::AzureDriver(sim::Simulation& sim, const framework::Scenario& sc)
    : env_(sim, cloud_config(sc)),
      caps_(framework::backend_caps(framework::BackendKind::kAzure)) {}

azure::CloudConfig AzureDriver::cloud_config(const framework::Scenario& sc) {
  azure::CloudConfig cc;
  cc.cluster.partition_servers = sc.cluster.partition_servers;
  cc.cluster.balancer.enabled = sc.cluster.balancer;
  cc.cluster.throttle_mode = sc.cluster.throttle_queue
                                 ? cluster::ThrottleMode::kQueue
                                 : cluster::ThrottleMode::kReject;
  cc.faults.seed = sc.faults.seed;
  cc.faults.drop_probability = sc.faults.drop_probability;
  cc.faults.duplicate_probability = sc.faults.duplicate_probability;
  cc.faults.latency_spike_probability = sc.faults.latency_spike_probability;
  cc.faults.corruption_probability = sc.faults.corruption_probability;
  cc.faults.server_crashes = sc.faults.server_crashes;
  return cc;
}

azure::TableEntity AzureDriver::make_entity(std::string partition,
                                            std::string row,
                                            std::int64_t bytes) const {
  azure::TableEntity e;
  e.partition_key = std::move(partition);
  e.row_key = std::move(row);
  e.properties["data"] = azure::Payload::synthetic(bytes);
  return e;
}

sim::Task<void> AzureDriver::prepare_objects(netsim::Nic& nic) {
  azure::CloudStorageAccount account(env_, nic);
  auto container =
      account.create_cloud_blob_client().get_container_reference("c");
  co_await container.create();
}

sim::Task<void> AzureDriver::prepare_queue(netsim::Nic& nic,
                                           std::string queue) {
  azure::CloudStorageAccount account(env_, nic);
  auto q = account.create_cloud_queue_client().get_queue_reference(
      std::move(queue));
  co_await q.create();
}

sim::Task<void> AzureDriver::prepare_table(netsim::Nic& nic) {
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  co_await t.create();
}

sim::Task<void> AzureDriver::prepare_sql(netsim::Nic& nic) {
  auto& db = env_.sql_service();
  co_await db.create_database(nic, "db", azure::sql::Edition::kBusiness50GB);
  std::vector<azure::sql::Column> schema = {
      {"k", azure::sql::ColumnType::kInt},
      {"v", azure::sql::ColumnType::kText}};
  co_await db.create_table(nic, "db", "t", std::move(schema));
}

sim::Task<OpResult> AzureDriver::object_write(netsim::Nic& nic,
                                              std::string key,
                                              std::int64_t bytes) {
  azure::CloudStorageAccount account(env_, nic);
  auto blob = account.create_cloud_blob_client()
                  .get_container_reference("c")
                  .get_block_blob_reference(std::move(key));
  azure::Payload body = azure::Payload::synthetic(bytes);
  co_await blob.upload_text(std::move(body));
  co_return OpResult{.bytes = bytes};
}

sim::Task<OpResult> AzureDriver::object_read(netsim::Nic& nic,
                                             std::string key) {
  azure::CloudStorageAccount account(env_, nic);
  auto blob = account.create_cloud_blob_client()
                  .get_container_reference("c")
                  .get_block_blob_reference(std::move(key));
  try {
    const azure::Payload p = co_await blob.download_text();
    co_return OpResult{.bytes = p.size()};
  } catch (const azure::NotFoundError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> AzureDriver::object_list(netsim::Nic& nic) {
  const std::vector<std::string> names =
      co_await env_.blob_service().list_blobs(nic, "c");
  const std::int64_t n = static_cast<std::int64_t>(names.size());
  co_return OpResult{.bytes = kListEntryBytes * n, .items = n};
}

sim::Task<OpResult> AzureDriver::object_delete(netsim::Nic& nic,
                                               std::string key) {
  // Azure contract: deleting an absent blob is a 404 — a miss, not an
  // error (the S3 backend's delete is an idempotent 204 instead).
  azure::CloudStorageAccount account(env_, nic);
  auto blob = account.create_cloud_blob_client()
                  .get_container_reference("c")
                  .get_block_blob_reference(std::move(key));
  try {
    co_await blob.delete_blob();
    co_return OpResult{};
  } catch (const azure::NotFoundError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> AzureDriver::queue_put(netsim::Nic& nic,
                                           std::string queue,
                                           std::int64_t bytes) {
  azure::CloudStorageAccount account(env_, nic);
  auto q = account.create_cloud_queue_client().get_queue_reference(
      std::move(queue));
  azure::Payload body = azure::Payload::synthetic(bytes);
  co_await q.add_message(std::move(body));
  co_return OpResult{.bytes = bytes};
}

sim::Task<OpResult> AzureDriver::queue_get(netsim::Nic& nic,
                                           std::string queue) {
  azure::CloudStorageAccount account(env_, nic);
  auto q = account.create_cloud_queue_client().get_queue_reference(
      std::move(queue));
  const std::optional<azure::QueueMessage> m = co_await q.get_message();
  if (!m.has_value()) co_return OpResult{.miss = true};
  co_await q.delete_message(*m);
  co_return OpResult{.bytes = m->body.size()};
}

sim::Task<OpResult> AzureDriver::queue_peek(netsim::Nic& nic,
                                            std::string queue) {
  azure::CloudStorageAccount account(env_, nic);
  auto q = account.create_cloud_queue_client().get_queue_reference(
      std::move(queue));
  const std::optional<azure::QueueMessage> m = co_await q.peek_message();
  if (!m.has_value()) co_return OpResult{.miss = true};
  co_return OpResult{.bytes = m->body.size()};
}

sim::Task<OpResult> AzureDriver::table_read(netsim::Nic& nic,
                                            std::string partition,
                                            std::string row) {
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  try {
    const azure::TableEntity e =
        co_await t.query(std::move(partition), std::move(row));
    co_return OpResult{.bytes = e.size()};
  } catch (const azure::NotFoundError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> AzureDriver::table_insert(netsim::Nic& nic,
                                              std::string partition,
                                              std::string row,
                                              std::int64_t bytes) {
  // insert_or_replace: YCSB-style inserts land on generator-drawn keys,
  // which collide with the populated range by design.
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  co_await t.insert_or_replace(
      make_entity(std::move(partition), std::move(row), bytes));
  co_return OpResult{.bytes = bytes};
}

sim::Task<OpResult> AzureDriver::table_update(netsim::Nic& nic,
                                              std::string partition,
                                              std::string row,
                                              std::int64_t bytes) {
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  try {
    co_await t.update(make_entity(std::move(partition), std::move(row), bytes),
                      "*");
    co_return OpResult{.bytes = bytes};
  } catch (const azure::NotFoundError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> AzureDriver::table_scan(netsim::Nic& nic,
                                            std::string partition) {
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  const std::vector<azure::TableEntity> rows =
      co_await t.query_partition(std::move(partition));
  if (rows.empty()) co_return OpResult{.miss = true};
  OpResult r;
  r.items = static_cast<std::int64_t>(rows.size());
  for (const azure::TableEntity& e : rows) r.bytes += e.size();
  co_return r;
}

sim::Task<OpResult> AzureDriver::table_rmw(netsim::Nic& nic,
                                           std::string partition,
                                           std::string row,
                                           std::int64_t bytes) {
  azure::CloudStorageAccount account(env_, nic);
  auto t = account.create_cloud_table_client().get_table_reference("t");
  try {
    azure::TableEntity e = co_await t.query(partition, row);
    const std::int64_t read_bytes = e.size();
    e.properties["data"] = azure::Payload::synthetic(bytes);
    co_await t.update(std::move(e), "*");
    co_return OpResult{.bytes = read_bytes + bytes};
  } catch (const azure::NotFoundError&) {
    co_return OpResult{.miss = true};
  }
}

sim::Task<OpResult> AzureDriver::sql_read(netsim::Nic& nic,
                                          std::uint64_t key) {
  azure::sql::Value k{static_cast<std::int64_t>(key)};
  const std::optional<azure::sql::Row> row =
      co_await env_.sql_service().select_by_key(nic, "db", "t", std::move(k));
  if (!row.has_value()) co_return OpResult{.miss = true};
  co_return OpResult{.bytes = static_cast<std::int64_t>(
                         std::get<std::string>((*row)[1]).size())};
}

sim::Task<OpResult> AzureDriver::sql_write(netsim::Nic& nic,
                                           std::uint64_t key,
                                           std::int64_t bytes) {
  azure::sql::Row row;
  row.emplace_back(static_cast<std::int64_t>(key));
  row.emplace_back(std::string(static_cast<std::size_t>(bytes), 'v'));
  azure::sql::Value k{static_cast<std::int64_t>(key)};
  const bool matched = co_await env_.sql_service().update_by_key(
      nic, "db", "t", std::move(k), row);
  if (!matched) {
    co_await env_.sql_service().insert(nic, "db", "t", std::move(row));
  }
  co_return OpResult{.bytes = bytes};
}

}  // namespace storage
