#include "storage/s3_object_service.hpp"

#include "azure/common/checksum.hpp"
#include "cluster/hash.hpp"
#include "obs/observer.hpp"

namespace storage {
namespace {

/// Service salt for integrity object ids (keeps S3 objects distinct from
/// any Azure-service object sharing a partition hash).
constexpr std::uint64_t kS3ObjectSalt = 0x53'3A'0B'7E'C7'51'D0'00ull;

}  // namespace

std::string S3ObjectService::prefix_of(const std::string& key) {
  const std::size_t slash = key.rfind('/');
  return slash == std::string::npos ? std::string() : key.substr(0, slash);
}

S3ObjectService::Bucket& S3ObjectService::require_bucket(
    const std::string& bucket) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) {
    throw NoSuchBucketError("no such bucket: " + bucket);
  }
  return it->second;
}

std::uint64_t S3ObjectService::throttle_prefix(const std::string& bucket,
                                               const std::string& key) const {
  // Never 0: a zero hash would read as "exempt" to the cluster's
  // per-prefix windows.
  const std::uint64_t h = cluster::partition_hash(bucket, prefix_of(key));
  return h != 0 ? h : 1;
}

std::uint64_t S3ObjectService::object_id(std::uint64_t part_hash) const {
  const std::uint64_t id = azure::mix_u64(kS3ObjectSalt, part_hash);
  return id != 0 ? id : 1;
}

sim::Task<void> S3ObjectService::create_bucket(netsim::Nic& client,
                                               std::string bucket) {
  obs::OpScope op(cluster_.simulation(), "s3.create_bucket");
  co_await cluster_.simulation().delay(cfg_.request_latency);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = cfg_.request_cpu;
  cost.replicate = true;
  cost.disk_bytes = 512;
  // Bucket operations are not metered per prefix (throttle_prefix stays 0).
  op.stage();
  co_await cluster_.execute(client, cluster::partition_hash(bucket), cost);
  buckets_.try_emplace(std::move(bucket));
}

sim::Task<void> S3ObjectService::put_object(netsim::Nic& client,
                                            std::string bucket,
                                            std::string key,
                                            azure::Payload data) {
  obs::OpScope op(cluster_.simulation(), "s3.put", data.size());
  require_bucket(bucket);
  co_await cluster_.simulation().delay(cfg_.request_latency);
  const std::uint64_t part_hash = cluster::partition_hash(bucket, key);
  const std::uint32_t crc = azure::payload_crc(data);
  cluster::RequestCost cost;
  cost.request_bytes = data.size();
  cost.disk_bytes = data.size();
  cost.server_cpu = cfg_.request_cpu;
  cost.replicate = true;
  cost.object_id = object_id(part_hash);
  cost.content_crc = crc;
  cost.throttle_prefix = throttle_prefix(bucket, key);
  cost.prefix_read = false;
  op.stage();
  co_await cluster_.execute(client, part_hash, cost);

  Bucket& b = require_bucket(bucket);
  const sim::TimePoint now = cluster_.simulation().now();
  auto [it, inserted] = b.objects.try_emplace(std::move(key));
  ObjectData& obj = it->second;
  if (inserted || obj.deleted || obj.list_visible_at > now) {
    // New key (or a resurrection of a tombstoned one): listings converge
    // only after the visibility lag. Overwrites of a live, already-listed
    // key stay listed throughout.
    obj.list_visible_at = now + cfg_.visibility_lag;
  }
  obj.data = std::move(data);
  obj.crc = crc;
  obj.deleted = false;
  obj.delist_at = 0;
}

sim::Task<azure::Payload> S3ObjectService::get_object(netsim::Nic& client,
                                                      std::string bucket,
                                                      std::string key) {
  obs::OpScope op(cluster_.simulation(), "s3.get");
  Bucket& b = require_bucket(bucket);
  auto it = b.objects.find(key);
  // GET is read-after-write consistent: a just-PUT key serves immediately;
  // a just-DELETEd key 404s immediately (only LIST lags).
  if (it == b.objects.end() || it->second.deleted) {
    throw NoSuchKeyError("no such key: " + bucket + "/" + key);
  }
  // Snapshot the content before suspending: a concurrent DELETE may erase
  // the map node while this request is in flight, and the response streams
  // the version the GET admitted.
  const azure::Payload data = it->second.data;
  op.set_bytes(data.size());
  co_await cluster_.simulation().delay(cfg_.request_latency);
  const std::uint64_t part_hash = cluster::partition_hash(bucket, key);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = data.size();
  cost.server_cpu = cfg_.request_cpu;
  cost.object_id = object_id(part_hash);
  cost.throttle_prefix = throttle_prefix(bucket, key);
  cost.prefix_read = true;
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, part_hash, cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw cluster::ChecksumMismatchError(
        "downloaded object failed its ETag checksum");
  }
  co_return data;
}

sim::Task<void> S3ObjectService::delete_object(netsim::Nic& client,
                                               std::string bucket,
                                               std::string key) {
  obs::OpScope op(cluster_.simulation(), "s3.delete");
  require_bucket(bucket);
  co_await cluster_.simulation().delay(cfg_.request_latency);
  const std::uint64_t part_hash = cluster::partition_hash(bucket, key);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = cfg_.request_cpu;
  cost.replicate = true;
  cost.disk_bytes = 512;
  cost.throttle_prefix = throttle_prefix(bucket, key);
  cost.prefix_read = false;
  op.stage();
  co_await cluster_.execute(client, part_hash, cost);

  // Idempotent 204: deleting an absent key pays the request and succeeds.
  Bucket& b = require_bucket(bucket);
  auto it = b.objects.find(key);
  if (it == b.objects.end() || it->second.deleted) co_return;
  ObjectData& obj = it->second;
  const sim::TimePoint now = cluster_.simulation().now();
  if (obj.list_visible_at <= now) {
    // The key was being listed; listings keep showing it for the lag.
    obj.deleted = true;
    obj.delist_at = now + cfg_.visibility_lag;
    obj.data = azure::Payload{};
    obj.crc = 0;
  } else {
    // Never became visible — erase it outright (no transient listing).
    b.objects.erase(it);
  }
}

sim::Task<std::vector<std::string>> S3ObjectService::list_objects(
    netsim::Nic& client, std::string bucket, std::string prefix) {
  obs::OpScope op(cluster_.simulation(), "s3.list");
  Bucket& b = require_bucket(bucket);
  const sim::TimePoint now = cluster_.simulation().now();
  std::vector<std::string> keys;
  // std::map iteration: lexicographic key order, like a real LIST response.
  for (auto it = prefix.empty() ? b.objects.begin()
                                : b.objects.lower_bound(prefix);
       it != b.objects.end(); ++it) {
    if (!prefix.empty() && it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    const ObjectData& obj = it->second;
    const bool listed = obj.deleted ? now < obj.delist_at
                                    : obj.list_visible_at <= now;
    if (listed) keys.push_back(it->first);
  }
  co_await cluster_.simulation().delay(cfg_.request_latency);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes =
      cfg_.list_entry_bytes * static_cast<std::int64_t>(keys.size());
  cost.server_cpu = cfg_.list_cpu;
  const std::uint64_t h = cluster::partition_hash(bucket, prefix);
  cost.throttle_prefix = h != 0 ? h : 1;
  cost.prefix_read = true;
  op.set_bytes(cost.response_bytes);
  op.stage();
  co_await cluster_.execute(client, cluster::partition_hash(bucket), cost);
  co_return keys;
}

}  // namespace storage
