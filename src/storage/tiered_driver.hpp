// Tiered blob placement behind the uniform storage::Driver interface: an
// Azure-style fast tier and an S3-like capacity tier in one simulation.
// Object writes route by size (>= tier_split_bytes lands on the capacity
// tier); an overwrite whose size crosses the threshold migrates the key
// (delete from the old tier, write to the new). Reads and deletes follow
// the recorded placement. Listings merge both tiers — and therefore
// inherit the capacity tier's eventual consistency. Queue/table/sql ops
// ride the fast tier unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "storage/azure_driver.hpp"
#include "storage/driver.hpp"
#include "storage/s3_driver.hpp"

namespace storage {

class TieredDriver final : public Driver {
 public:
  TieredDriver(sim::Simulation& sim, const framework::Scenario& sc);

  const char* name() const noexcept override { return "tiered"; }
  const framework::BackendCaps& caps() const noexcept override {
    return caps_;
  }

  AzureDriver& fast_tier() noexcept { return fast_; }
  S3Driver& capacity_tier() noexcept { return capacity_; }
  /// Keys migrated between tiers by size-crossing overwrites.
  std::int64_t migrations() const noexcept { return migrations_; }

  sim::Task<void> prepare_objects(netsim::Nic& nic) override;
  sim::Task<void> prepare_queue(netsim::Nic& nic, std::string queue) override;
  sim::Task<void> prepare_table(netsim::Nic& nic) override;
  sim::Task<void> prepare_sql(netsim::Nic& nic) override;

  sim::Task<OpResult> object_write(netsim::Nic& nic, std::string key,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> object_read(netsim::Nic& nic, std::string key) override;
  sim::Task<OpResult> object_list(netsim::Nic& nic) override;
  sim::Task<OpResult> object_delete(netsim::Nic& nic,
                                    std::string key) override;

  sim::Task<OpResult> queue_put(netsim::Nic& nic, std::string queue,
                                std::int64_t bytes) override;
  sim::Task<OpResult> queue_get(netsim::Nic& nic, std::string queue) override;
  sim::Task<OpResult> queue_peek(netsim::Nic& nic,
                                 std::string queue) override;

  sim::Task<OpResult> table_read(netsim::Nic& nic, std::string partition,
                                 std::string row) override;
  sim::Task<OpResult> table_insert(netsim::Nic& nic, std::string partition,
                                   std::string row,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> table_update(netsim::Nic& nic, std::string partition,
                                   std::string row,
                                   std::int64_t bytes) override;
  sim::Task<OpResult> table_scan(netsim::Nic& nic,
                                 std::string partition) override;
  sim::Task<OpResult> table_rmw(netsim::Nic& nic, std::string partition,
                                std::string row, std::int64_t bytes) override;

  sim::Task<OpResult> sql_read(netsim::Nic& nic, std::uint64_t key) override;
  sim::Task<OpResult> sql_write(netsim::Nic& nic, std::uint64_t key,
                                std::int64_t bytes) override;

 private:
  enum class Tier { kFast, kCapacity };
  Driver& tier(Tier t) noexcept {
    return t == Tier::kFast ? static_cast<Driver&>(fast_)
                            : static_cast<Driver&>(capacity_);
  }

  AzureDriver fast_;
  S3Driver capacity_;
  std::int64_t split_bytes_;
  /// Where each key lives (keyed lookups only — never iterated, so the
  /// unordered container cannot affect event order).
  std::unordered_map<std::string, Tier> placement_;
  std::int64_t migrations_ = 0;
  framework::BackendCaps caps_;
};

}  // namespace storage
