// Backend-agnostic storage driver layer (ROADMAP item 4, arbiter-style):
// one uniform interface over simulated backends with genuinely different
// contracts. The scenario runner (bench/scenario_runner.hpp) speaks only
// this interface; which backend serves a spec is data (`"backend"` key),
// not code.
//
// Contract surface:
//  * capability flags (framework::BackendCaps) declare what a backend can
//    do — the parser rejects mixes that name a missing service, and calls
//    into an unimplemented group raise a typed CapabilityError;
//  * op semantics differences stay visible through the interface: Azure
//    deletes of absent blobs are misses (404), S3 deletes are idempotent
//    successes (204); Azure listings are consistent, S3 listings lag
//    writes by a visibility window;
//  * throttle differences surface as typed errors: the Azure account gate
//    raises ServerBusyError, the S3 per-prefix caps raise SlowDownError
//    (a ServerBusyError subclass, so client backoff stays uniform).
//
// Every method is a lazy sim::Task running on the driver's simulation; the
// caller supplies the client NIC and all names, so drivers stay free of
// workload policy (fanout, retry, think time all live in the runner).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/errors.hpp"
#include "framework/scenario.hpp"
#include "netsim/nic.hpp"
#include "simcore/task.hpp"

namespace sim {
class Simulation;
}

namespace storage {

/// Raised when a driver method outside the backend's capability set is
/// called anyway (the parser prevents this for spec-driven runs; direct
/// driver users get the typed error instead of UB).
class CapabilityError : public cluster::StorageError {
 public:
  explicit CapabilityError(const std::string& what)
      : cluster::StorageError(what) {}
};

/// Uniform per-operation outcome. `bytes` is what the mix table accounts
/// (payload moved); `items` counts listed/scanned entries; `miss` marks a
/// read of an absent key (or a get on an empty queue) — not an error.
struct OpResult {
  std::int64_t bytes = 0;
  std::int64_t items = 0;
  bool miss = false;
};

class Driver {
 public:
  virtual ~Driver() = default;
  Driver() = default;
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  virtual const char* name() const noexcept = 0;
  virtual const framework::BackendCaps& caps() const noexcept = 0;

  // ----------------------------------------------------- setup hooks ----
  // Called once by the runner before populating (retry policy is the
  // caller's). Base implementations of unsupported groups throw
  // CapabilityError on first await.
  virtual sim::Task<void> prepare_objects(netsim::Nic& nic);
  virtual sim::Task<void> prepare_queue(netsim::Nic& nic, std::string queue);
  virtual sim::Task<void> prepare_table(netsim::Nic& nic);
  virtual sim::Task<void> prepare_sql(netsim::Nic& nic);

  // ----------------------------------------------------- object ops ----
  virtual sim::Task<OpResult> object_write(netsim::Nic& nic, std::string key,
                                           std::int64_t bytes);
  virtual sim::Task<OpResult> object_read(netsim::Nic& nic, std::string key);
  virtual sim::Task<OpResult> object_list(netsim::Nic& nic);
  virtual sim::Task<OpResult> object_delete(netsim::Nic& nic,
                                            std::string key);

  // ------------------------------------------------------ queue ops ----
  /// One message onto one queue (pub/sub fanout loops in the runner).
  virtual sim::Task<OpResult> queue_put(netsim::Nic& nic, std::string queue,
                                        std::int64_t bytes);
  virtual sim::Task<OpResult> queue_get(netsim::Nic& nic, std::string queue);
  virtual sim::Task<OpResult> queue_peek(netsim::Nic& nic, std::string queue);

  // ------------------------------------------------------ table ops ----
  virtual sim::Task<OpResult> table_read(netsim::Nic& nic,
                                         std::string partition,
                                         std::string row);
  virtual sim::Task<OpResult> table_insert(netsim::Nic& nic,
                                           std::string partition,
                                           std::string row,
                                           std::int64_t bytes);
  virtual sim::Task<OpResult> table_update(netsim::Nic& nic,
                                           std::string partition,
                                           std::string row,
                                           std::int64_t bytes);
  virtual sim::Task<OpResult> table_scan(netsim::Nic& nic,
                                         std::string partition);
  virtual sim::Task<OpResult> table_rmw(netsim::Nic& nic,
                                        std::string partition,
                                        std::string row, std::int64_t bytes);

  // -------------------------------------------------------- sql ops ----
  virtual sim::Task<OpResult> sql_read(netsim::Nic& nic, std::uint64_t key);
  virtual sim::Task<OpResult> sql_write(netsim::Nic& nic, std::uint64_t key,
                                        std::int64_t bytes);
};

/// Builds the driver `sc.backend` names, shaped by the spec's cluster /
/// fault / tiering sections, on the caller's simulation. The returned
/// driver owns its whole backend (cluster, services, fault plan).
std::unique_ptr<Driver> make_driver(sim::Simulation& sim,
                                    const framework::Scenario& sc);

}  // namespace storage
