// Domain-sharded cloud scenario driver: the paper's 64-server × 96-worker
// workload decomposed into independent stamp shards executed by the sharded
// parallel DES kernel (simcore/parallel.hpp).
//
// Each domain owns a complete per-shard world — its own sim::Simulation,
// CloudEnvironment (cluster + services), forked fault-plan seed, and
// Observer — so shards share no mutable state. Cross-shard traffic (a
// configurable fraction of each worker's ops targets a remote shard's
// storage) rides netsim::DomainLink RPC through the deterministic mailbox
// merge, and chaos mode adds a fleet-wide crash controller in domain 0 that
// delivers crash/restart commands to victim shards as cross-domain events.
//
// The parity contract (tests/parallel_test.cpp): every output in
// ShardedCloudResult is a function of (config, seed, domain count) only.
// Running the same decomposition with 1 worker thread or N worker threads
// must produce byte-identical results — figure table, per-worker op counts,
// merged fault log, and merged observer JSON.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "framework/load_engine.hpp"
#include "simcore/time.hpp"

namespace azurebench {

struct ShardedCloudConfig {
  /// Logical stamp shards (event-queue domains). total_servers and
  /// total_workers must divide evenly across them.
  int domains = 8;
  /// Worker threads (0 = one per domain; 1 = the sequential reference
  /// execution of the identical sharded algorithm).
  int threads = 0;
  int total_servers = 64;
  int total_workers = 96;

  enum class Mode { kQueue, kTable };
  /// kQueue drives fig6-style per-worker queues; kTable drives fig8-style
  /// per-worker table partitions.
  Mode mode = Mode::kQueue;

  std::int64_t ops_per_worker = 20;
  std::int64_t message_bytes = 8 * 1024;
  /// Every remote_every-th op (per worker) targets the next shard's storage
  /// through the inter-domain link instead of the home cluster (0 = no
  /// cross-shard traffic).
  int remote_every = 4;
  std::uint64_t seed = 42;

  /// Chaos mode: link faults armed on every shard (forked seeds) plus a
  /// fleet-wide crash schedule driven cross-domain from domain 0, and the
  /// per-shard partition-map load balancer enabled.
  bool chaos = false;
  int total_crashes = 4;
  sim::Duration crash_mean_interval = sim::seconds(5);
  sim::Duration server_downtime = sim::seconds(1);
  double drop_probability = 0.01;
  double duplicate_probability = 0.01;
  double latency_spike_probability = 0.02;

  /// One-way inter-domain link latency. Must be >= the derived lookahead
  /// (fabric propagation + both gateway NIC latencies).
  sim::Duration inter_domain_latency = sim::millis(1);

  /// Attach one Observer per domain and render the deterministic merged
  /// JSON into ShardedCloudResult::obs_json.
  bool observe = false;

  // -------------------------------------------------- open-loop load ----
  /// Replace the closed-loop worker fleet with one open-loop load engine
  /// per domain (framework/load_engine.hpp): seeded Poisson arrivals spawn
  /// short-lived pooled sessions, each running a single queue/table op
  /// (with the same every-remote_every-th cross-shard diversion as the
  /// workers). total_workers and ops_per_worker are ignored in this mode;
  /// ShardedCloudResult::workers holds one per-domain aggregate entry and
  /// ShardedCloudResult::load the per-domain engine stats.
  bool open_loop = false;
  /// Per-domain offered arrival rate (sessions per second of virtual time).
  double arrivals_per_sec = 2000.0;
  /// Arrivals each domain's generator offers before stopping.
  std::int64_t sessions_per_domain = 200;
  /// Per-domain admission window (concurrent sessions).
  int session_window = 64;
  /// Per-domain bounded admission backlog; arrivals beyond window + backlog
  /// are shed (counted, never executed).
  int session_pending = 256;
};

struct ShardedWorkerStats {
  std::int64_t puts = 0;
  std::int64_t gets = 0;
  std::int64_t deletes = 0;
  std::int64_t remote_ops = 0;
  std::int64_t retries = 0;
  bool operator==(const ShardedWorkerStats&) const = default;
};

struct ShardedCloudResult {
  std::uint64_t events_executed = 0;
  std::uint64_t cross_events = 0;
  sim::TimePoint final_time = 0;  // max over domain clocks
  /// Closed-loop mode: indexed by global worker id. Open-loop mode: one
  /// aggregate entry per domain (sessions have no stable global index).
  std::vector<ShardedWorkerStats> workers;
  /// Per-domain load-engine stats (empty unless cfg.open_loop).
  std::vector<framework::LoadStats> load;
  /// Merged fleet fault log: (domain, record), sorted by (at, domain,
  /// per-domain index) — the deterministic cross-shard order.
  std::vector<std::pair<int, faults::FaultRecord>> fault_log;
  /// Merged observer JSON ("" unless cfg.observe).
  std::string obs_json;
  /// Fig6/fig8-shaped per-shard table rendered as text — the byte-parity
  /// artifact compared across thread counts.
  std::string figure_table;
  /// Host wall-clock seconds spent inside run() — measurement only, never
  /// part of any parity comparison.
  double wall_seconds = 0.0;

  /// Every deterministic field (everything except wall_seconds).
  bool outputs_equal(const ShardedCloudResult& other) const {
    return events_executed == other.events_executed &&
           cross_events == other.cross_events &&
           final_time == other.final_time && workers == other.workers &&
           load == other.load && fault_log == other.fault_log &&
           obs_json == other.obs_json && figure_table == other.figure_table;
  }
};

ShardedCloudResult run_sharded_cloud(const ShardedCloudConfig& cfg);

}  // namespace azurebench
