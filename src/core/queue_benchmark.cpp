#include "core/queue_benchmark.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/retry.hpp"
#include "core/barrier.hpp"
#include "fabric/deployment.hpp"
#include "simcore/simulation.hpp"

namespace azurebench {
namespace {

/// The figure workloads reproduce the paper's client behaviour exactly:
/// fixed 1 s sleep on ServerBusy (RetryPolicy::paper()).
template <class MakeOp>
auto paper_retry(sim::Simulation& sim, MakeOp make_op) {
  return azure::with_retry(sim, std::move(make_op),
                           azure::RetryPolicy::paper());
}

std::int64_t usable_payload(std::int64_t nominal) {
  return std::min<std::int64_t>(nominal, azure::limits::kMaxMessagePayloadBytes);
}

// ------------------------------------------- Algorithm 3: separate queues ----

struct SeparateShared {
  const QueueSeparateConfig& cfg;
  PhaseCollector collector;
  sim::Duration barrier_time = 0;
};

sim::Task<void> separate_worker(fabric::RoleContext& ctx,
                                SeparateShared& shared) {
  const QueueSeparateConfig& cfg = shared.cfg;
  auto& sim = ctx.simulation();
  auto account = ctx.account();
  auto queues = account.create_cloud_queue_client();
  auto queue = queues.get_queue_reference("AzureBenchQueue-" +
                                          std::to_string(ctx.id()));
  QueueBarrier barrier(account, "azurebench-queue-sync", cfg.workers);

  auto sync = [&]() -> sim::Task<void> {
    const sim::TimePoint t0 = sim.now();
    co_await barrier.arrive();
    shared.barrier_time += sim.now() - t0;
  };

  co_await barrier.provision();  // idempotent; avoids racing worker 0
  co_await paper_retry(sim, [&] { return queue.create_if_not_exists(); });
  co_await sync();

  const std::int64_t per_worker = cfg.total_messages / cfg.workers;
  int size_index = 0;
  for (const std::int64_t nominal : cfg.message_sizes) {
    const std::int64_t payload = usable_payload(nominal);
    const std::string tag = std::to_string(nominal);

    // PutMessage phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (std::int64_t m = 0; m < per_worker; ++m) {
        co_await paper_retry(sim, [&] {
          return queue.add_message(azure::Payload::synthetic(payload));
        });
      }
      shared.collector.record("put-" + tag, size_index, t0, sim.now());
    }
    co_await sync();

    // PeekMessage phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (std::int64_t m = 0; m < per_worker; ++m) {
        co_await paper_retry(sim, [&] { return queue.peek_message(); });
      }
      shared.collector.record("peek-" + tag, size_index, t0, sim.now());
    }
    co_await sync();

    // GetMessage (+ DeleteMessage) phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (std::int64_t m = 0; m < per_worker; ++m) {
        auto msg = co_await paper_retry(
            sim, [&] { return queue.get_message(sim::seconds(3600)); });
        if (msg.has_value()) {
          co_await paper_retry(sim,
                                     [&] { return queue.delete_message(*msg); });
        }
      }
      shared.collector.record("get-" + tag, size_index, t0, sim.now());
    }
    co_await sync();
    ++size_index;
  }
  co_await paper_retry(sim, [&] { return queue.delete_queue(); });
}

// ---------------------------------------------- Algorithm 4: shared queue ----

struct OpTotals {
  sim::Duration put = 0, peek = 0, get = 0;
  std::int64_t put_ops = 0, peek_ops = 0, get_ops = 0;
};

struct SharedShared {
  const QueueSharedConfig& cfg;
  /// One accumulator per think-time point.
  std::vector<OpTotals> totals;
  sim::Duration barrier_time = 0;
};

sim::Task<void> shared_worker(fabric::RoleContext& ctx, SharedShared& shared) {
  const QueueSharedConfig& cfg = shared.cfg;
  auto& sim = ctx.simulation();
  auto account = ctx.account();
  auto queue = account.create_cloud_queue_client().get_queue_reference(
      "AzureBenchQueue");
  QueueBarrier barrier(account, "azurebench-shared-sync", cfg.workers);
  sim::Random rng(cfg.seed + 77 + static_cast<std::uint64_t>(ctx.id()));
  auto jittered = [&](sim::Duration base) {
    const double f =
        1.0 + cfg.think_jitter * (2.0 * rng.next_double() - 1.0);
    return static_cast<sim::Duration>(static_cast<double>(base) * f);
  };

  co_await barrier.provision();  // idempotent; avoids racing worker 0
  co_await queue.create_if_not_exists();
  co_await barrier.arrive();

  const std::int64_t per_round =
      std::max<std::int64_t>(1, cfg.messages_per_round / cfg.workers);
  const std::int64_t rounds =
      cfg.total_messages / cfg.messages_per_round;

  for (std::size_t point = 0; point < cfg.think_seconds.size(); ++point) {
    const sim::Duration think =
        static_cast<sim::Duration>(cfg.think_seconds[point]) * sim::kSecond;
    OpTotals& totals = shared.totals[point];

    for (std::int64_t round = 0; round < rounds; ++round) {
      for (std::int64_t m = 0; m < per_round; ++m) {
        sim::TimePoint t0 = sim.now();
        co_await paper_retry(sim, [&] {
          return queue.add_message(
              azure::Payload::synthetic(cfg.message_size));
        });
        totals.put += sim.now() - t0;
        ++totals.put_ops;
        co_await sim.delay(jittered(think));

        t0 = sim.now();
        co_await paper_retry(sim, [&] { return queue.peek_message(); });
        totals.peek += sim.now() - t0;
        ++totals.peek_ops;
        co_await sim.delay(jittered(think));

        t0 = sim.now();
        auto msg = co_await paper_retry(
            sim, [&] { return queue.get_message(sim::seconds(3600)); });
        if (msg.has_value()) {
          co_await paper_retry(sim,
                                     [&] { return queue.delete_message(*msg); });
        }
        totals.get += sim.now() - t0;
        ++totals.get_ops;
        co_await sim.delay(jittered(think));
      }
    }
    co_await barrier.arrive();  // align workers between think-time points
  }
}

}  // namespace

QueueSeparateResult run_queue_separate_benchmark(
    const QueueSeparateConfig& cfg) {
  sim::Simulation simulation;
  if (cfg.observer != nullptr) simulation.set_observer(cfg.observer);
  azure::CloudEnvironment env(simulation, cfg.cloud);
  fabric::Deployment deployment(env);
  deployment.add_worker_roles(cfg.workers, cfg.vm);

  SeparateShared shared{cfg, {}, 0};
  deployment.start_workers([&shared](fabric::RoleContext& ctx) {
    return separate_worker(ctx, shared);
  });
  simulation.run();

  QueueSeparateResult result;
  for (const std::int64_t nominal : cfg.message_sizes) {
    const std::string tag = std::to_string(nominal);
    const std::int64_t payload = usable_payload(nominal);
    const std::int64_t total_bytes = payload * cfg.total_messages;
    QueueSizePoint point;
    point.message_size = nominal;
    point.put = PhaseReport{"put-" + tag,
                            sim::to_seconds(shared.collector.wall("put-" + tag)),
                            total_bytes, cfg.total_messages};
    point.peek =
        PhaseReport{"peek-" + tag,
                    sim::to_seconds(shared.collector.wall("peek-" + tag)),
                    total_bytes, cfg.total_messages};
    point.get = PhaseReport{"get-" + tag,
                            sim::to_seconds(shared.collector.wall("get-" + tag)),
                            total_bytes, cfg.total_messages};
    result.points.push_back(point);
  }
  result.barrier_seconds = sim::to_seconds(shared.barrier_time);
  result.storage_transactions = env.storage_cluster().total_requests();
  result.virtual_seconds = sim::to_seconds(simulation.now());
  return result;
}

QueueSharedResult run_queue_shared_benchmark(const QueueSharedConfig& cfg) {
  sim::Simulation simulation;
  if (cfg.observer != nullptr) simulation.set_observer(cfg.observer);
  azure::CloudEnvironment env(simulation, cfg.cloud);
  fabric::Deployment deployment(env);
  deployment.add_worker_roles(cfg.workers, cfg.vm);

  SharedShared shared{cfg, std::vector<OpTotals>(cfg.think_seconds.size()), 0};
  deployment.start_workers([&shared](fabric::RoleContext& ctx) {
    return shared_worker(ctx, shared);
  });
  simulation.run();

  QueueSharedResult result;
  for (std::size_t i = 0; i < cfg.think_seconds.size(); ++i) {
    const OpTotals& totals = shared.totals[i];
    QueueThinkPoint point;
    point.think_seconds = cfg.think_seconds[i];
    // seconds = average per-worker communication time; ops = per-worker op
    // count, so ms_per_op() is the true mean operation latency.
    const auto w = static_cast<std::int64_t>(cfg.workers);
    const double wd = static_cast<double>(cfg.workers);
    point.put = PhaseReport{"put", sim::to_seconds(totals.put) / wd,
                            cfg.message_size * totals.put_ops / w,
                            totals.put_ops / w};
    point.peek = PhaseReport{"peek", sim::to_seconds(totals.peek) / wd,
                             cfg.message_size * totals.peek_ops / w,
                             totals.peek_ops / w};
    point.get = PhaseReport{"get", sim::to_seconds(totals.get) / wd,
                            cfg.message_size * totals.get_ops / w,
                            totals.get_ops / w};
    result.points.push_back(point);
  }
  return result;
}

}  // namespace azurebench
