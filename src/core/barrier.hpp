// Queue-based barrier among worker role instances — Algorithm 2 of the
// paper.
//
// Azure has no barrier primitive, so AzureBench synchronizes through a
// dedicated queue: each worker puts one message per barrier episode, then
// polls the approximate message count until it reaches
// `workers * sync_count`. Messages are *not* deleted — deleting would race
// with workers still polling — so each episode accounts for the messages
// accumulated by all previous episodes (the paper's `syncCount` trick).
// A worker sleeps one second between count polls so the polling itself does
// not throttle the queue.
#pragma once

#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/retry.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace azurebench {

class QueueBarrier {
 public:
  /// One instance per worker. All workers must use the same queue name,
  /// the same `workers` count, and the same `message_ttl` (0 = the service
  /// maximum of 7 days). Shorter TTLs make the expiry deadlock — inherent
  /// to Algorithm 2 — reproducible in tests.
  QueueBarrier(azure::CloudStorageAccount account, std::string queue_name,
               int workers, sim::Duration message_ttl = 0)
      : account_(account),
        queue_name_(std::move(queue_name)),
        workers_(workers),
        message_ttl_(message_ttl > 0 ? message_ttl
                                     : azure::limits::kMessageTtlSeconds *
                                           sim::kSecond) {}

  /// Retry policy for the barrier's queue traffic. Defaults to the paper's
  /// fixed 1 s ServerBusy policy (Algorithm 2 is a paper workload); chaos
  /// harnesses swap in a fault-tolerant policy.
  void set_retry_policy(const azure::RetryPolicy& policy) { retry_ = policy; }

  /// Creates the barrier queue (idempotent; any worker may call it).
  sim::Task<void> provision() {
    auto q = account_.create_cloud_queue_client().get_queue_reference(
        queue_name_);
    co_await azure::with_retry(account_.environment().simulation(),
                               [&] { return q.create_if_not_exists(); },
                               retry_);
  }

  /// Enters the barrier and suspends until all workers have arrived.
  ///
  /// Beware Algorithm 2's hidden lifetime constraint: barrier messages are
  /// ordinary queue messages and vanish after the 7-day TTL, after which
  /// the accumulated count can never be reached. Rather than spinning
  /// forever, arrive() fails loudly once it has polled past the TTL.
  sim::Task<void> arrive() {
    auto& sim = account_.environment().simulation();
    auto q = account_.create_cloud_queue_client().get_queue_reference(
        queue_name_);
    ++sync_count_;
    const sim::TimePoint entered = sim.now();
    co_await azure::with_retry(sim, [&] {
      return q.add_message(azure::Payload::bytes("sync"), message_ttl_);
    }, retry_);
    for (;;) {
      if (sim.now() - entered > message_ttl_) {
        throw azure::StorageError(
            "queue barrier deadlocked: sync messages exceeded their TTL "
            "(experiment too long for Algorithm 2)");
      }
      const std::int64_t arrived = co_await azure::with_retry(
          sim, [&] { return q.get_message_count(); }, retry_);
      if (arrived >= static_cast<std::int64_t>(workers_) * sync_count_) {
        co_return;
      }
      // Poll on whole-second boundaries (not "one second from my own
      // arrival"): every worker then observes completion on the same tick,
      // so the barrier releases the fleet simultaneously and phases start
      // aligned. The 1 s cadence still keeps the queue un-throttled.
      co_await sim.delay_until((sim.now() / sim::kSecond + 1) * sim::kSecond);
    }
  }

  /// Episodes completed so far by this worker.
  int sync_count() const noexcept { return sync_count_; }

 private:
  azure::CloudStorageAccount account_;
  std::string queue_name_;
  int workers_;
  sim::Duration message_ttl_;
  azure::RetryPolicy retry_ = azure::RetryPolicy::paper();
  int sync_count_ = 0;
};

}  // namespace azurebench
