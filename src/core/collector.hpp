// Timing collection for benchmark phases.
//
// Workers report (phase, repeat, start, end) spans. A phase's wall time for
// one repeat is max(end) - min(start) over workers — the paper measures the
// elapsed time of the parallel phase, excluding the synchronization
// barriers around it. Per-operation statistics are collected separately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace azurebench {

class PhaseCollector {
 public:
  /// Records one worker's execution span of `phase` in repeat `repeat`.
  void record(const std::string& phase, int repeat, sim::TimePoint start,
              sim::TimePoint end) {
    auto& longest = spans_[{phase, repeat}];
    longest = std::max(longest, end - start);
    // Per-worker busy time (for Fig. 9's per-operation averages). The first
    // record of a phase also fixes its position in phases(): benchmarks
    // print phases in execution order, not lexicographically.
    auto [it, inserted] = busy_.try_emplace(phase, 0);
    if (inserted) phase_order_.push_back(phase);
    it->second += end - start;
  }

  /// Accumulated phase time across repeats. Per repeat this is the longest
  /// single worker's duration — each worker times its own work, so barrier
  /// release skew (up to the 1 s polling cadence) is excluded, exactly as
  /// the paper excludes synchronization time.
  sim::Duration wall(const std::string& phase) const {
    sim::Duration total = 0;
    for (const auto& [key, longest] : spans_) {
      if (key.first == phase) total += longest;
    }
    return total;
  }

  /// Sum of all workers' busy time in a phase (>= wall under parallelism).
  sim::Duration busy(const std::string& phase) const {
    auto it = busy_.find(phase);
    return it == busy_.end() ? 0 : it->second;
  }

  /// Phase names in first-recorded order. (A previous version re-derived
  /// this from the span map, which sorts lexicographically — "download"
  /// printed before "upload" even though the benchmark ran uploads first.)
  const std::vector<std::string>& phases() const { return phase_order_; }

 private:
  std::map<std::pair<std::string, int>, sim::Duration> spans_;
  std::map<std::string, sim::Duration> busy_;
  std::vector<std::string> phase_order_;
};

/// Aggregate throughput/time for one benchmark phase, as reported in the
/// paper's figures.
struct PhaseReport {
  std::string phase;
  double seconds = 0;      // accumulated wall time
  std::int64_t bytes = 0;  // payload moved during the phase
  std::int64_t ops = 0;    // operations performed

  /// Throughput in MiB/s. The divisor is binary (1024^2); headers and
  /// prose must say "MiB/s" to match (the paper's "MB/s" figures were
  /// produced with the same binary divisor, so numbers are comparable).
  double mib_per_sec() const {
    return seconds > 0 ? static_cast<double>(bytes) / (1024.0 * 1024.0) /
                             seconds
                       : 0;
  }
  double ms_per_op() const {
    return ops > 0 ? seconds * 1000.0 / static_cast<double>(ops) : 0;
  }
};

}  // namespace azurebench
