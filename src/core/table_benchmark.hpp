// AzureBench Table storage benchmark — Algorithm 5 of the paper.
//
// Each worker inserts `entities` rows into its own partition
// (PartitionKey = roleId), queries them, updates them unconditionally
// (ETag "*"), and deletes them — once for each entity size (4 KB doubling
// to 64 KB). ServerBusy responses are retried after a one-second sleep, as
// in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "azure/environment.hpp"
#include "core/collector.hpp"
#include "fabric/vm_size.hpp"

namespace obs {
class Observer;
}

namespace azurebench {

struct TableBenchConfig {
  int workers = 8;
  /// Entities per worker per phase; the paper settled on 500 after 1,000
  /// triggered server-busy exceptions.
  int entities = 500;
  std::vector<std::int64_t> entity_sizes = {4 << 10, 8 << 10, 16 << 10,
                                            32 << 10, 64 << 10};
  fabric::VmSize vm = fabric::VmSize::kSmall;
  azure::CloudConfig cloud;
  /// Optional observability sink (see BlobBenchConfig::observer).
  obs::Observer* observer = nullptr;
};

struct TableSizePoint {
  std::int64_t entity_size = 0;
  PhaseReport insert;
  PhaseReport query;
  PhaseReport update;
  PhaseReport erase;
};

struct TableBenchResult {
  std::vector<TableSizePoint> points;
  double barrier_seconds = 0;
  std::int64_t server_busy_retries = 0;
  /// Usage accounting (for the operating-cost model).
  std::int64_t storage_transactions = 0;
  double virtual_seconds = 0;
};

TableBenchResult run_table_benchmark(const TableBenchConfig& cfg);

}  // namespace azurebench
