// AzureBench Blob storage benchmark — Algorithm 1 of the paper.
//
// Per repeat, the worker fleet collectively uploads one page blob and one
// block blob (chunks split evenly across workers), synchronizes through the
// queue barrier, downloads chunk-wise (random pages / sequential blocks),
// synchronizes, downloads both blobs in full, synchronizes, and deletes
// them. Reported times exclude synchronization.
#pragma once

#include <cstdint>

#include "azure/environment.hpp"
#include "core/collector.hpp"
#include "fabric/vm_size.hpp"

namespace obs {
class Observer;
}

namespace azurebench {

struct BlobBenchConfig {
  int workers = 8;
  int repeats = 10;
  /// Chunk (page write / block) size; the paper uses 1 MB.
  std::int64_t chunk_bytes = 1 << 20;
  /// Chunks per blob; the paper uses 100 (a 100 MB blob).
  int chunks = 100;
  fabric::VmSize vm = fabric::VmSize::kSmall;
  azure::CloudConfig cloud;
  std::uint64_t seed = 42;
  /// Optional observability sink attached to the run's Simulation. Null
  /// (the default) leaves every instrumentation point inert, so paper-mode
  /// event sequences are untouched.
  obs::Observer* observer = nullptr;
};

struct BlobBenchResult {
  PhaseReport page_upload;
  PhaseReport block_upload;
  PhaseReport page_random_read;   // Fig. 5: 1 MB pages at random offsets
  PhaseReport block_seq_read;     // Fig. 5: blocks one at a time, in order
  PhaseReport page_full_read;     // Fig. 4: PageBlob.openRead()
  PhaseReport block_full_read;    // Fig. 4: BlockBlob.DownloadText()
  double barrier_seconds = 0;     // measured (and excluded) sync overhead
  std::uint64_t simulated_events = 0;
  /// Usage accounting (for the operating-cost model).
  std::int64_t storage_transactions = 0;
  double virtual_seconds = 0;
};

BlobBenchResult run_blob_benchmark(const BlobBenchConfig& cfg);

}  // namespace azurebench
