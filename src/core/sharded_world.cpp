#include "core/sharded_world.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/payload.hpp"
#include "azure/common/retry.hpp"
#include "azure/environment.hpp"
#include "netsim/domain_link.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/parallel.hpp"
#include "simcore/random.hpp"
#include "simcore/task.hpp"

namespace azurebench {
namespace {

/// A generously-provisioned client VM endpoint per shard, so the scenario
/// measures service behaviour rather than client NIC occupancy (mirrors the
/// sequential benchmarks' client setup).
netsim::NicConfig shard_client_nic() {
  return netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0};
}

/// Everything one domain owns: a complete simulated deployment plus the
/// client endpoint driving it. Constructed on the setup thread before run();
/// referenced only by code executing inside its domain afterwards.
struct Shard {
  sim::Simulation* sim = nullptr;
  std::unique_ptr<obs::Observer> observer;
  std::unique_ptr<azure::CloudEnvironment> env;
  std::unique_ptr<netsim::Nic> nic;
  std::unique_ptr<azure::CloudStorageAccount> account;
};

/// What a served cross-shard operation reports back to its caller. Returned
/// through the RPC result instead of written into shared state, so every
/// ShardedWorkerStats entry keeps exactly one writer (its home worker).
struct RemoteResult {
  std::int64_t retries = 0;
};

struct World {
  ShardedCloudConfig cfg;
  sim::par::ShardedSimulation* shards = nullptr;
  std::vector<Shard> shard;
  /// Ring links: fwd[d] is d -> (d+1)%D, rev[d] the matching reverse
  /// direction — the request/response pair worker remote ops ride on.
  std::vector<std::unique_ptr<netsim::DomainLink>> fwd;
  std::vector<std::unique_ptr<netsim::DomainLink>> rev;
  std::vector<ShardedWorkerStats> stats;
  /// Open-loop mode: one generator engine per domain (empty otherwise).
  std::vector<std::unique_ptr<framework::LoadEngine>> engines;
};

azure::RetryPolicy worker_policy(std::uint64_t jitter_seed) {
  azure::RetryPolicy p;
  p.backoff = sim::millis(250);
  p.max_backoff = sim::seconds(2);
  p.jitter_seed = jitter_seed;
  return p;
}

// ---------------------------------------------------------- remote ops ----

/// Served inside shard `dst`: lands the caller's payload in the destination
/// shard's shared inbox (queue mode). Retries are the destination cluster's
/// business, so they happen here and travel home in the result.
sim::Task<RemoteResult> remote_queue_put(World* w, int dst, int caller_id,
                                         std::int64_t bytes) {
  Shard& sh = w->shard[static_cast<std::size_t>(dst)];
  RemoteResult r;
  const azure::RetryPolicy policy =
      worker_policy(0x5EED0000u + static_cast<std::uint64_t>(caller_id));
  auto q = sh.account->create_cloud_queue_client().get_queue_reference(
      "inbox-" + std::to_string(dst));
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return q.create_if_not_exists(); }, policy, r.retries);
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return q.add_message(azure::Payload::synthetic(bytes)); },
      policy, r.retries);
  co_return r;
}

/// Table-mode twin: upserts one entity into the destination shard's inbox
/// table, keyed so concurrent callers never collide.
sim::Task<RemoteResult> remote_table_put(World* w, int dst, int caller_id,
                                         int op, std::int64_t bytes) {
  Shard& sh = w->shard[static_cast<std::size_t>(dst)];
  RemoteResult r;
  const azure::RetryPolicy policy =
      worker_policy(0x5EED0000u + static_cast<std::uint64_t>(caller_id));
  auto tbl = sh.account->create_cloud_table_client().get_table_reference(
      "inbox-t-" + std::to_string(dst));
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return tbl.create_if_not_exists(); }, policy, r.retries);
  azure::TableEntity e;
  e.partition_key = "w" + std::to_string(caller_id);
  e.row_key = std::to_string(op);
  e.properties.emplace("data", azure::Payload::synthetic(bytes));
  // The retry wrapper re-invokes the factory on every attempt — the entity
  // must be copied in, not moved, or attempt 2 submits empty keys.
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return tbl.insert_or_replace(e); }, policy, r.retries);
  co_return r;
}

// ------------------------------------------------------------- workers ----

bool is_remote_turn(const World& w, int op) {
  return w.cfg.remote_every > 0 && w.cfg.domains > 1 &&
         (op % w.cfg.remote_every) == w.cfg.remote_every - 1;
}

/// Fig6-shaped worker: fills then drains a private queue on its home shard,
/// diverting every remote_every-th put across the inter-domain link.
sim::Task<void> queue_worker(World& w, int home, int id,
                             ShardedWorkerStats& st) {
  Shard& sh = w.shard[static_cast<std::size_t>(home)];
  sim::Random rng(w.cfg.seed * 7919 +
                  static_cast<std::uint64_t>(id));
  const azure::RetryPolicy policy =
      worker_policy(static_cast<std::uint64_t>(id));
  auto q = sh.account->create_cloud_queue_client().get_queue_reference(
      "q-" + std::to_string(id));
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return q.create_if_not_exists(); }, policy, st.retries);
  for (int k = 0; k < w.cfg.ops_per_worker; ++k) {
    if (is_remote_turn(w, k)) {
      const int dst = (home + 1) % w.cfg.domains;
      RemoteResult r = co_await netsim::remote_call<RemoteResult>(
          *w.fwd[static_cast<std::size_t>(home)],
          *w.rev[static_cast<std::size_t>(home)], w.cfg.message_bytes, 64,
          [wp = &w, dst, id, bytes = w.cfg.message_bytes] {
            return remote_queue_put(wp, dst, id, bytes);
          });
      ++st.remote_ops;
      ++st.puts;
      st.retries += r.retries;
    } else {
      co_await azure::with_retry_counted(
          *sh.sim,
          [&] {
            return q.add_message(
                azure::Payload::synthetic(w.cfg.message_bytes));
          },
          policy, st.retries);
      ++st.puts;
    }
    co_await sh.sim->delay(sim::millis(rng.uniform(20, 60)));
  }
  const std::int64_t local_puts = st.puts - st.remote_ops;
  while (st.deletes < local_puts) {
    auto msg = co_await azure::with_retry_counted(
        *sh.sim, [&] { return q.get_message(); }, policy, st.retries);
    ++st.gets;
    if (msg) {
      co_await azure::with_retry_counted(
          *sh.sim, [&] { return q.delete_message(*msg); }, policy,
          st.retries);
      ++st.deletes;
    }
    co_await sh.sim->delay(sim::millis(rng.uniform(20, 60)));
  }
}

/// Fig8-shaped worker: inserts then queries back entities in a private
/// table partition, with the same remote diversion as queue mode.
sim::Task<void> table_worker(World& w, int home, int id,
                             ShardedWorkerStats& st) {
  Shard& sh = w.shard[static_cast<std::size_t>(home)];
  sim::Random rng(w.cfg.seed * 7919 +
                  static_cast<std::uint64_t>(id));
  const azure::RetryPolicy policy =
      worker_policy(static_cast<std::uint64_t>(id));
  auto tbl = sh.account->create_cloud_table_client().get_table_reference(
      "t-" + std::to_string(id));
  co_await azure::with_retry_counted(
      *sh.sim, [&] { return tbl.create_if_not_exists(); }, policy,
      st.retries);
  std::vector<int> local_rows;
  for (int k = 0; k < w.cfg.ops_per_worker; ++k) {
    if (is_remote_turn(w, k)) {
      const int dst = (home + 1) % w.cfg.domains;
      RemoteResult r = co_await netsim::remote_call<RemoteResult>(
          *w.fwd[static_cast<std::size_t>(home)],
          *w.rev[static_cast<std::size_t>(home)], w.cfg.message_bytes, 64,
          [wp = &w, dst, id, k, bytes = w.cfg.message_bytes] {
            return remote_table_put(wp, dst, id, k, bytes);
          });
      ++st.remote_ops;
      ++st.puts;
      st.retries += r.retries;
    } else {
      azure::TableEntity e;
      e.partition_key = "p" + std::to_string(id);
      e.row_key = std::to_string(k);
      e.properties.emplace("data",
                           azure::Payload::synthetic(w.cfg.message_bytes));
      co_await azure::with_retry_counted(
          *sh.sim, [&] { return tbl.insert(e); }, policy, st.retries);
      ++st.puts;
      local_rows.push_back(k);
    }
    co_await sh.sim->delay(sim::millis(rng.uniform(20, 60)));
  }
  for (const int k : local_rows) {
    co_await azure::with_retry_counted(
        *sh.sim,
        [&] {
          return tbl.query("p" + std::to_string(id), std::to_string(k));
        },
        policy, st.retries);
    ++st.gets;
    co_await sh.sim->delay(sim::millis(rng.uniform(20, 60)));
  }
}

// ------------------------------------------------------ open-loop load ----

/// One open-loop session: a single storage op on the session's home shard,
/// with every remote_every-th session (by arrival id, so the diversion is a
/// pure function of the id) riding the inter-domain ring instead. Retries
/// are bounded — a session that cannot land its op within the attempt
/// budget dead-letters at the engine, which is exactly the accounting the
/// chaos suite pins (completed + dead_lettered == admitted).
azure::RetryPolicy session_policy(int home, std::int64_t id) {
  azure::RetryPolicy p = worker_policy(
      (static_cast<std::uint64_t>(home) << 32) ^
      static_cast<std::uint64_t>(id));
  p.max_attempts = 4;
  return p;
}

bool is_remote_session(const World& w, std::int64_t id) {
  return w.cfg.remote_every > 0 && w.cfg.domains > 1 &&
         (id % w.cfg.remote_every) == w.cfg.remote_every - 1;
}

sim::Task<void> open_loop_session(World& w, int home,
                                  framework::LoadEngine::Session& s,
                                  ShardedWorkerStats& st) {
  Shard& sh = w.shard[static_cast<std::size_t>(home)];
  const azure::RetryPolicy policy = session_policy(home, s.id);
  if (is_remote_session(w, s.id)) {
    const int dst = (home + 1) % w.cfg.domains;
    RemoteResult r =
        w.cfg.mode == ShardedCloudConfig::Mode::kQueue
            ? co_await netsim::remote_call<RemoteResult>(
                  *w.fwd[static_cast<std::size_t>(home)],
                  *w.rev[static_cast<std::size_t>(home)],
                  w.cfg.message_bytes, 64,
                  [wp = &w, dst, home, bytes = w.cfg.message_bytes] {
                    return remote_queue_put(wp, dst, home, bytes);
                  })
            : co_await netsim::remote_call<RemoteResult>(
                  *w.fwd[static_cast<std::size_t>(home)],
                  *w.rev[static_cast<std::size_t>(home)],
                  w.cfg.message_bytes, 64,
                  [wp = &w, dst, home, op = static_cast<int>(s.id),
                   bytes = w.cfg.message_bytes] {
                    return remote_table_put(wp, dst, home, op, bytes);
                  });
    ++st.remote_ops;
    ++st.puts;
    st.retries += r.retries;
  } else if (w.cfg.mode == ShardedCloudConfig::Mode::kQueue) {
    auto q = sh.account->create_cloud_queue_client().get_queue_reference(
        "open-inbox-" + std::to_string(home));
    co_await azure::with_retry_counted(
        *sh.sim, [&] { return q.create_if_not_exists(); }, policy,
        st.retries);
    co_await azure::with_retry_counted(
        *sh.sim,
        [&] {
          return q.add_message(azure::Payload::synthetic(w.cfg.message_bytes));
        },
        policy, st.retries);
    ++st.puts;
  } else {
    auto tbl = sh.account->create_cloud_table_client().get_table_reference(
        "open-inbox-t-" + std::to_string(home));
    co_await azure::with_retry_counted(
        *sh.sim, [&] { return tbl.create_if_not_exists(); }, policy,
        st.retries);
    azure::TableEntity e;
    e.partition_key = "s" + std::to_string(home);
    e.row_key = std::to_string(s.id);
    e.properties.emplace("data",
                         azure::Payload::synthetic(w.cfg.message_bytes));
    co_await azure::with_retry_counted(
        *sh.sim, [&] { return tbl.insert_or_replace(e); }, policy,
        st.retries);
    ++st.puts;
  }
  // A dash of per-session think time (pure function of the session id's
  // stream) so sessions overlap rather than lockstep on identical costs.
  co_await sh.sim->delay(sim::micros(s.rng.uniform(50, 150)));
}

/// Builds domain `d`'s engine: per-domain Poisson arrivals (seed mixed with
/// the domain id, so every shard offers an independent but reproducible
/// stream) feeding open_loop_session bodies.
std::unique_ptr<framework::LoadEngine> make_domain_engine(
    World& w, int d, ShardedWorkerStats& st) {
  framework::LoadEngineConfig ecfg;
  ecfg.arrivals.kind = framework::ArrivalConfig::Kind::kPoisson;
  ecfg.arrivals.rate_per_sec = w.cfg.arrivals_per_sec;
  ecfg.arrivals.seed =
      w.cfg.seed ^ (0x0A9Eull + static_cast<std::uint64_t>(d) * 0x9E37ull);
  ecfg.max_sessions = w.cfg.sessions_per_domain;
  ecfg.max_in_flight = w.cfg.session_window;
  ecfg.max_pending = w.cfg.session_pending;
  ecfg.session_seed =
      w.cfg.seed ^ (0x5E55ull + static_cast<std::uint64_t>(d));
  return std::make_unique<framework::LoadEngine>(
      *w.shard[static_cast<std::size_t>(d)].sim, ecfg,
      [wp = &w, d, stp = &st](framework::LoadEngine::Session& s) {
        return open_loop_session(*wp, d, s, *stp);
      });
}

// ---------------------------------------------------- chaos controller ----

/// Runs in domain 0 and drives the fleet-wide crash schedule: victims are
/// picked from a dedicated seeded stream and the crash/restart commands
/// travel to the victim shard as cross-domain events (post() keeps the
/// delivery order deterministic even when the victim is domain 0 itself).
/// Injections are serialized — the next crash is decided only after the
/// previous victim's restart has landed — preserving the sequential fault
/// driver's "at most one server down at a time" property fleet-wide.
sim::Task<void> chaos_controller(World& w) {
  sim::Simulation& d0 = *w.shard[0].sim;
  sim::Random rng(w.cfg.seed ^ 0xC8A05ull);
  const int per_shard_servers = w.cfg.total_servers / w.cfg.domains;
  const sim::Duration lookahead = w.shards->lookahead();
  for (int c = 0; c < w.cfg.total_crashes; ++c) {
    sim::Duration gap = static_cast<sim::Duration>(
        rng.exponential(static_cast<double>(w.cfg.crash_mean_interval)));
    if (gap <= 0) gap = sim::kNanosecond;
    co_await d0.delay(gap);
    const int victim_domain = static_cast<int>(
        rng.next_u64() % static_cast<std::uint64_t>(w.cfg.domains));
    const int victim_server = static_cast<int>(
        rng.next_u64() % static_cast<std::uint64_t>(per_shard_servers));
    const sim::TimePoint at = d0.now() + lookahead;
    auto* cluster =
        &w.shard[static_cast<std::size_t>(victim_domain)]
             .env->storage_cluster();
    w.shards->post(0, victim_domain, at,
                   [cluster, victim_server] {
                     cluster->crash_server(victim_server);
                   });
    w.shards->post(0, victim_domain, at + w.cfg.server_downtime,
                   [cluster, victim_server] {
                     cluster->restart_server(victim_server);
                   });
    // Wait out the victim's downtime before scheduling the next injection.
    co_await d0.delay(lookahead + w.cfg.server_downtime);
  }
}

// ------------------------------------------------------------- outputs ----

void append_row(std::string& out, int shard, const ShardedWorkerStats& s,
                std::int64_t faults, sim::TimePoint now) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%5d %8lld %8lld %8lld %8lld %8lld %7lld %12lld\n", shard,
                static_cast<long long>(s.puts),
                static_cast<long long>(s.gets),
                static_cast<long long>(s.deletes),
                static_cast<long long>(s.retries),
                static_cast<long long>(s.remote_ops),
                static_cast<long long>(faults),
                static_cast<long long>(now / 1000));
  out += buf;
}

std::string render_figure_table(const World& w,
                                const ShardedCloudResult& r) {
  std::string out;
  const char* mode_name =
      w.cfg.mode == ShardedCloudConfig::Mode::kQueue
          ? (w.cfg.open_loop ? "queue-open" : "queue")
          : (w.cfg.open_loop ? "table-open" : "table");
  char head[200];
  if (w.cfg.open_loop) {
    std::snprintf(head, sizeof(head),
                  "sharded-cloud mode=%s domains=%d servers=%d "
                  "sessions=%lld rate=%.1f window=%d bytes=%lld seed=%llu "
                  "chaos=%d\n",
                  mode_name, w.cfg.domains, w.cfg.total_servers,
                  static_cast<long long>(w.cfg.sessions_per_domain),
                  w.cfg.arrivals_per_sec, w.cfg.session_window,
                  static_cast<long long>(w.cfg.message_bytes),
                  static_cast<unsigned long long>(w.cfg.seed),
                  w.cfg.chaos ? 1 : 0);
  } else {
    std::snprintf(head, sizeof(head),
                  "sharded-cloud mode=%s domains=%d servers=%d workers=%d "
                  "ops=%lld bytes=%lld seed=%llu chaos=%d\n",
                  mode_name, w.cfg.domains, w.cfg.total_servers,
                  w.cfg.total_workers,
                  static_cast<long long>(w.cfg.ops_per_worker),
                  static_cast<long long>(w.cfg.message_bytes),
                  static_cast<unsigned long long>(w.cfg.seed),
                  w.cfg.chaos ? 1 : 0);
  }
  out += head;
  out += "shard     puts     gets     dels  retries   remote  faults"
         "      now_us\n";
  const int workers_per_domain =
      w.cfg.open_loop ? 1 : w.cfg.total_workers / w.cfg.domains;
  ShardedWorkerStats total;
  std::int64_t total_faults = 0;
  for (int d = 0; d < w.cfg.domains; ++d) {
    ShardedWorkerStats agg;
    for (int i = 0; i < workers_per_domain; ++i) {
      const ShardedWorkerStats& s =
          r.workers[static_cast<std::size_t>(d * workers_per_domain + i)];
      agg.puts += s.puts;
      agg.gets += s.gets;
      agg.deletes += s.deletes;
      agg.remote_ops += s.remote_ops;
      agg.retries += s.retries;
    }
    const auto faults = static_cast<std::int64_t>(
        w.shard[static_cast<std::size_t>(d)].env->fault_plan().log().size());
    append_row(out, d, agg, faults,
               w.shards->domain(d).now());
    total.puts += agg.puts;
    total.gets += agg.gets;
    total.deletes += agg.deletes;
    total.remote_ops += agg.remote_ops;
    total.retries += agg.retries;
    total_faults += faults;
  }
  append_row(out, -1, total, total_faults, r.final_time);
  // Open-loop mode: one admission/outcome line per domain engine — part of
  // the byte-parity artifact, so the whole load ledger is thread-count
  // invariant, not just the op counts.
  for (std::size_t d = 0; d < r.load.size(); ++d) {
    const framework::LoadStats& ls = r.load[d];
    char lbuf[200];
    std::snprintf(lbuf, sizeof(lbuf),
                  "load %4zu offered=%lld admitted=%lld shed=%lld "
                  "completed=%lld dlq=%lld busy=%lld peak_if=%lld "
                  "peak_pend=%lld\n",
                  d, static_cast<long long>(ls.offered),
                  static_cast<long long>(ls.admitted),
                  static_cast<long long>(ls.shed),
                  static_cast<long long>(ls.completed),
                  static_cast<long long>(ls.dead_lettered),
                  static_cast<long long>(ls.throttle_failures),
                  static_cast<long long>(ls.peak_in_flight),
                  static_cast<long long>(ls.peak_pending));
    out += lbuf;
  }
  char tail[120];
  std::snprintf(tail, sizeof(tail),
                "cross=%llu lookahead_us=%lld events=%llu\n",
                static_cast<unsigned long long>(r.cross_events),
                static_cast<long long>(w.shards->lookahead() / 1000),
                static_cast<unsigned long long>(r.events_executed));
  out += tail;
  return out;
}

}  // namespace

ShardedCloudResult run_sharded_cloud(const ShardedCloudConfig& cfg) {
  if (cfg.domains < 1) {
    throw std::invalid_argument("sharded cloud needs >= 1 domain");
  }
  if (cfg.total_servers % cfg.domains != 0 ||
      cfg.total_workers % cfg.domains != 0) {
    throw std::invalid_argument(
        "total_servers and total_workers must divide evenly across domains");
  }
  if (cfg.ops_per_worker < 0 || cfg.message_bytes < 0 ||
      cfg.remote_every < 0) {
    throw std::invalid_argument("sharded cloud config out of range");
  }
  if (cfg.open_loop &&
      (cfg.arrivals_per_sec <= 0.0 || cfg.sessions_per_domain < 1 ||
       cfg.session_window < 1 || cfg.session_pending < 0)) {
    throw std::invalid_argument("open-loop load config out of range");
  }

  World w;
  w.cfg = cfg;
  sim::Simulation::Options opt;
  opt.domains = cfg.domains;
  opt.threads = cfg.threads;
  opt.lookahead = cfg.inter_domain_latency;
  sim::par::ShardedSimulation shards(opt);
  w.shards = &shards;

  // Per-shard deployments. Fault seeds fork from one master stream at setup
  // time, so every shard's injected sequence is a pure function of
  // (cfg.seed, domain id) — independent of thread count.
  sim::Random fault_seeder(cfg.seed ^ 0xFA11ull);
  const int per_shard_servers = cfg.total_servers / cfg.domains;
  w.shard.resize(static_cast<std::size_t>(cfg.domains));
  for (int d = 0; d < cfg.domains; ++d) {
    Shard& sh = w.shard[static_cast<std::size_t>(d)];
    sh.sim = &shards.domain(d);
    if (cfg.observe) {
      sh.observer = std::make_unique<obs::Observer>();
      sh.sim->set_observer(sh.observer.get());
    }
    azure::CloudConfig cc;
    cc.cluster.partition_servers = per_shard_servers;
    cc.faults.seed = fault_seeder.next_u64();
    if (cfg.chaos) {
      cc.faults.drop_probability = cfg.drop_probability;
      cc.faults.duplicate_probability = cfg.duplicate_probability;
      cc.faults.latency_spike_probability = cfg.latency_spike_probability;
      cc.faults.drop_timeout = sim::millis(300);
      cc.cluster.balancer.enabled = true;
      cc.cluster.balancer.seed = cfg.seed ^ (0xBA1Aull + d);
    }
    sh.env = std::make_unique<azure::CloudEnvironment>(*sh.sim, cc);
    sh.nic = std::make_unique<netsim::Nic>(*sh.sim, shard_client_nic());
    sh.account =
        std::make_unique<azure::CloudStorageAccount>(*sh.env, *sh.nic);
  }

  // The inter-domain ring (only meaningful with > 1 shard).
  if (cfg.domains > 1) {
    netsim::DomainLink::Config link;
    link.latency = cfg.inter_domain_latency;
    for (int d = 0; d < cfg.domains; ++d) {
      const int next = (d + 1) % cfg.domains;
      w.fwd.push_back(
          std::make_unique<netsim::DomainLink>(shards, d, next, link));
      w.rev.push_back(
          std::make_unique<netsim::DomainLink>(shards, next, d, link));
    }
  }

  if (cfg.open_loop) {
    // Open-loop mode: one generator engine per domain replaces the worker
    // fleet; stats holds a single aggregate entry per domain (every session
    // on a shard funnels into its domain's entry, and all of them run on
    // that shard's single-threaded simulation, so one writer per entry).
    w.stats.resize(static_cast<std::size_t>(cfg.domains));
    w.engines.reserve(static_cast<std::size_t>(cfg.domains));
    for (int d = 0; d < cfg.domains; ++d) {
      w.engines.push_back(make_domain_engine(
          w, d, w.stats[static_cast<std::size_t>(d)]));
      w.engines.back()->start();
    }
  } else {
    // Workers: contiguous blocks of global ids per shard, spawned in global
    // id order so each domain's setup event sequence is fixed.
    const int workers_per_domain = cfg.total_workers / cfg.domains;
    w.stats.resize(static_cast<std::size_t>(cfg.total_workers));
    for (int i = 0; i < cfg.total_workers; ++i) {
      const int home = i / workers_per_domain;
      Shard& sh = w.shard[static_cast<std::size_t>(home)];
      ShardedWorkerStats& st = w.stats[static_cast<std::size_t>(i)];
      if (cfg.mode == ShardedCloudConfig::Mode::kQueue) {
        sh.sim->spawn(queue_worker(w, home, i, st),
                      "worker-" + std::to_string(i));
      } else {
        sh.sim->spawn(table_worker(w, home, i, st),
                      "worker-" + std::to_string(i));
      }
    }
  }
  if (cfg.chaos && cfg.total_crashes > 0) {
    w.shard[0].sim->spawn(chaos_controller(w), "chaos-controller");
  }

  const auto wall_start = std::chrono::steady_clock::now();
  shards.run();
  const auto wall_end = std::chrono::steady_clock::now();

  ShardedCloudResult r;
  r.events_executed = shards.events_executed();
  r.cross_events = shards.cross_events_delivered();
  r.final_time = shards.max_now();
  r.workers = std::move(w.stats);
  for (const auto& eng : w.engines) r.load.push_back(eng->stats());
  r.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  // Merged fleet fault log: each shard's log is already time-ordered, so a
  // stable sort on (at, domain) yields the canonical (at, domain, index)
  // order.
  for (int d = 0; d < cfg.domains; ++d) {
    for (const faults::FaultRecord& rec :
         w.shard[static_cast<std::size_t>(d)].env->fault_plan().log()) {
      r.fault_log.emplace_back(d, rec);
    }
  }
  std::stable_sort(r.fault_log.begin(), r.fault_log.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second.at != b.second.at) {
                       return a.second.at < b.second.at;
                     }
                     return a.first < b.first;
                   });

  if (cfg.observe) {
    std::vector<const obs::Observer*> obs_ptrs;
    obs_ptrs.reserve(w.shard.size());
    for (const Shard& sh : w.shard) obs_ptrs.push_back(sh.observer.get());
    r.obs_json = obs::merged_to_json(obs_ptrs);
  }
  r.figure_table = render_figure_table(w, r);
  return r;
}

}  // namespace azurebench
