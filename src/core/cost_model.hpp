// Operating-cost model — the assessment the paper explicitly defers ("We
// have chosen not to include the assessment of operating cost ... We plan
// to address both these issues ... in near future").
//
// Prices are the published 2012 pay-as-you-go rates for Windows Azure:
//   * compute: $0.12 per Small-instance hour, scaling linearly with cores
//     ($0.04 for the shared-core Extra Small instance);
//   * storage transactions: $0.01 per 10,000;
//   * stored data: $0.125 per GB-month (geo-redundant);
//   * egress bandwidth: $0.12 per GB (ingress and intra-datacenter free —
//     the benchmarks run inside the datacenter, so this is usually zero).
#pragma once

#include <cstdint>

#include "fabric/vm_size.hpp"
#include "simcore/time.hpp"

namespace azurebench {

struct PriceSheet2012 {
  double small_instance_per_hour = 0.12;
  double extra_small_instance_per_hour = 0.04;
  double per_10k_transactions = 0.01;
  double storage_gb_month = 0.125;
  double egress_per_gb = 0.12;
};

/// Resource usage of one experiment, gathered from the simulation.
struct UsageSample {
  /// Storage transactions issued (cluster.total_requests()).
  std::int64_t transactions = 0;
  /// Instance-count x VM size over the experiment's duration.
  int instances = 0;
  fabric::VmSize vm_size = fabric::VmSize::kSmall;
  sim::Duration duration = 0;
  /// Peak bytes held in the storage account.
  std::int64_t peak_stored_bytes = 0;
  /// Bytes leaving the datacenter (zero for in-datacenter benchmarks).
  std::int64_t egress_bytes = 0;
};

struct CostReport {
  double compute_usd = 0;
  double transactions_usd = 0;
  double storage_usd = 0;
  double egress_usd = 0;
  double total() const {
    return compute_usd + transactions_usd + storage_usd + egress_usd;
  }
};

inline double instance_hour_price(fabric::VmSize size,
                                  const PriceSheet2012& prices) {
  if (size == fabric::VmSize::kExtraSmall) {
    return prices.extra_small_instance_per_hour;
  }
  // Small/Medium/Large/Extra Large scale linearly with cores.
  return prices.small_instance_per_hour * fabric::spec_of(size).cpu_cores;
}

/// Prices one experiment. Azure bills compute by started clock hours; we
/// follow that and round the duration up per instance.
inline CostReport estimate_cost(const UsageSample& usage,
                                const PriceSheet2012& prices = {}) {
  CostReport report;
  const double hours_exact =
      sim::to_seconds(usage.duration) / 3600.0;
  const double billed_hours =
      usage.duration > 0 ? static_cast<double>(static_cast<std::int64_t>(
                               hours_exact) +
                           ((hours_exact - static_cast<double>(
                                               static_cast<std::int64_t>(
                                                   hours_exact))) > 0
                                ? 1
                                : 0))
                         : 0.0;
  report.compute_usd = billed_hours * usage.instances *
                       instance_hour_price(usage.vm_size, prices);
  report.transactions_usd = static_cast<double>(usage.transactions) /
                            10'000.0 * prices.per_10k_transactions;
  // Storage is billed per GB-month, prorated by the experiment's duration.
  const double gb = static_cast<double>(usage.peak_stored_bytes) /
                    (1024.0 * 1024.0 * 1024.0);
  const double month_fraction =
      sim::to_seconds(usage.duration) / (30.0 * 24.0 * 3600.0);
  report.storage_usd = gb * prices.storage_gb_month * month_fraction;
  report.egress_usd = static_cast<double>(usage.egress_bytes) /
                      (1024.0 * 1024.0 * 1024.0) * prices.egress_per_gb;
  return report;
}

}  // namespace azurebench
