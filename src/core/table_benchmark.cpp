#include "core/table_benchmark.hpp"

#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/retry.hpp"
#include "core/barrier.hpp"
#include "fabric/deployment.hpp"
#include "simcore/simulation.hpp"

namespace azurebench {
namespace {

constexpr const char* kTable = "AzureBenchTable";

azure::TableEntity make_entity(int worker, int row, std::int64_t size) {
  azure::TableEntity e;
  e.partition_key = "worker-" + std::to_string(worker);
  e.row_key = "row-" + std::to_string(row);
  // The paper uses a single column holding the payload.
  e.properties["data"] = azure::Payload::synthetic(size);
  return e;
}

struct Shared {
  const TableBenchConfig& cfg;
  PhaseCollector collector;
  sim::Duration barrier_time = 0;
  std::int64_t retries = 0;
};

/// with_retry, counting the retries (the paper reports when the 500
/// entities/s target bites).
template <class MakeOp>
sim::Task<void> retry_counted(sim::Simulation& sim, Shared& shared,
                              MakeOp make_op) {
  for (;;) {
    bool backoff = false;
    try {
      co_await make_op();
      co_return;
    } catch (const azure::ServerBusyError&) {
      ++shared.retries;
      backoff = true;
    }
    if (backoff) co_await sim.delay(sim::kSecond);
  }
}

sim::Task<void> worker_body(fabric::RoleContext& ctx, Shared& shared) {
  const TableBenchConfig& cfg = shared.cfg;
  auto& sim = ctx.simulation();
  auto account = ctx.account();
  auto table =
      account.create_cloud_table_client().get_table_reference(kTable);
  QueueBarrier barrier(account, "azurebench-table-sync", cfg.workers);

  auto sync = [&]() -> sim::Task<void> {
    const sim::TimePoint t0 = sim.now();
    co_await barrier.arrive();
    shared.barrier_time += sim.now() - t0;
  };

  co_await barrier.provision();  // idempotent; avoids racing worker 0
  co_await table.create_if_not_exists();
  co_await sync();

  int size_index = 0;
  for (const std::int64_t size : cfg.entity_sizes) {
    const std::string tag = std::to_string(size);

    // Insert phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (int row = 0; row < cfg.entities; ++row) {
        co_await retry_counted(sim, shared, [&] {
          return table.insert(make_entity(ctx.id(), row, size));
        });
      }
      shared.collector.record("insert-" + tag, size_index, t0, sim.now());
    }
    co_await sync();

    // Query phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (int row = 0; row < cfg.entities; ++row) {
        co_await retry_counted(sim, shared, [&]() -> sim::Task<void> {
          (void)co_await table.query("worker-" + std::to_string(ctx.id()),
                                     "row-" + std::to_string(row));
        });
      }
      shared.collector.record("query-" + tag, size_index, t0, sim.now());
    }
    co_await sync();

    // Update phase (unconditional, ETag "*").
    {
      const sim::TimePoint t0 = sim.now();
      for (int row = 0; row < cfg.entities; ++row) {
        co_await retry_counted(sim, shared, [&] {
          return table.update(make_entity(ctx.id(), row, size), "*");
        });
      }
      shared.collector.record("update-" + tag, size_index, t0, sim.now());
    }
    co_await sync();

    // Delete phase.
    {
      const sim::TimePoint t0 = sim.now();
      for (int row = 0; row < cfg.entities; ++row) {
        co_await retry_counted(sim, shared, [&] {
          return table.erase("worker-" + std::to_string(ctx.id()),
                             "row-" + std::to_string(row));
        });
      }
      shared.collector.record("delete-" + tag, size_index, t0, sim.now());
    }
    co_await sync();
    ++size_index;
  }
}

}  // namespace

TableBenchResult run_table_benchmark(const TableBenchConfig& cfg) {
  sim::Simulation simulation;
  if (cfg.observer != nullptr) simulation.set_observer(cfg.observer);
  azure::CloudEnvironment env(simulation, cfg.cloud);
  fabric::Deployment deployment(env);
  deployment.add_worker_roles(cfg.workers, cfg.vm);

  Shared shared{cfg, {}, 0, 0};
  deployment.start_workers([&shared](fabric::RoleContext& ctx) {
    return worker_body(ctx, shared);
  });
  simulation.run();

  TableBenchResult result;
  const std::int64_t total_ops =
      static_cast<std::int64_t>(cfg.workers) * cfg.entities;
  for (const std::int64_t size : cfg.entity_sizes) {
    const std::string tag = std::to_string(size);
    const std::int64_t bytes = size * total_ops;
    TableSizePoint point;
    point.entity_size = size;
    point.insert = PhaseReport{
        "insert-" + tag,
        sim::to_seconds(shared.collector.wall("insert-" + tag)), bytes,
        total_ops};
    point.query = PhaseReport{
        "query-" + tag, sim::to_seconds(shared.collector.wall("query-" + tag)),
        bytes, total_ops};
    point.update = PhaseReport{
        "update-" + tag,
        sim::to_seconds(shared.collector.wall("update-" + tag)), bytes,
        total_ops};
    point.erase = PhaseReport{
        "delete-" + tag,
        sim::to_seconds(shared.collector.wall("delete-" + tag)), bytes,
        total_ops};
    result.points.push_back(point);
  }
  result.barrier_seconds = sim::to_seconds(shared.barrier_time);
  result.server_busy_retries = shared.retries;
  result.storage_transactions = env.storage_cluster().total_requests();
  result.virtual_seconds = sim::to_seconds(simulation.now());
  return result;
}

}  // namespace azurebench
