#include "core/blob_benchmark.hpp"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/retry.hpp"
#include "core/barrier.hpp"
#include "fabric/deployment.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

namespace azurebench {
namespace {

constexpr const char* kContainer = "azurebench";
constexpr const char* kPageBlob = "AzureBenchPageBlob";
constexpr const char* kBlockBlob = "AzureBenchBlockBlob";

/// The figure workloads reproduce the paper's client behaviour exactly:
/// fixed 1 s sleep on ServerBusy (RetryPolicy::paper()).
template <class MakeOp>
auto paper_retry(sim::Simulation& sim, MakeOp make_op) {
  return azure::with_retry(sim, std::move(make_op),
                           azure::RetryPolicy::paper());
}

std::string block_id(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "blk-%06d", i);
  return buf;
}

/// Everything the workers share during one benchmark run.
struct Shared {
  const BlobBenchConfig& cfg;
  PhaseCollector collector;
  sim::Duration barrier_time = 0;
};

sim::Task<void> worker_body(fabric::RoleContext& ctx, Shared& shared) {
  const BlobBenchConfig& cfg = shared.cfg;
  auto& sim = ctx.simulation();
  auto account = ctx.account();
  auto container =
      account.create_cloud_blob_client().get_container_reference(kContainer);
  QueueBarrier barrier(account, "azurebench-sync", cfg.workers);
  sim::Random rng(cfg.seed + 1000 + static_cast<std::uint64_t>(ctx.id()));

  auto sync = [&]() -> sim::Task<void> {
    const sim::TimePoint t0 = sim.now();
    co_await barrier.arrive();
    shared.barrier_time += sim.now() - t0;
  };

  // Provisioning is idempotent; every worker does it so that no worker
  // races ahead of the barrier queue's creation.
  co_await barrier.provision();
  if (ctx.id() == 0) {
    co_await container.create_if_not_exists();
  }
  co_await sync();  // everyone waits for provisioning

  for (int repeat = 0; repeat < cfg.repeats; ++repeat) {
    auto page_blob = container.get_page_blob_reference(kPageBlob);
    auto block_blob = container.get_block_blob_reference(kBlockBlob);
    const std::int64_t blob_bytes =
        static_cast<std::int64_t>(cfg.chunks) * cfg.chunk_bytes;

    if (ctx.id() == 0) {
      co_await paper_retry(sim,
                                 [&] { return page_blob.create(blob_bytes); });
    }
    co_await sync();

    // --------------------------------------------------- page blob upload --
    // Worker i uploads chunks i, i+W, i+2W, ... (count/workers chunks each).
    {
      const sim::TimePoint t0 = sim.now();
      for (int i = ctx.id(); i < cfg.chunks; i += cfg.workers) {
        const std::int64_t offset = static_cast<std::int64_t>(i) *
                                    cfg.chunk_bytes;
        co_await paper_retry(sim, [&] {
          return page_blob.put_page(offset,
                                    azure::Payload::synthetic(cfg.chunk_bytes));
        });
      }
      shared.collector.record("page-upload", repeat, t0, sim.now());
    }
    co_await sync();  // keep sub-phase starts aligned for clean timing

    // -------------------------------------------------- block blob upload --
    {
      const sim::TimePoint t0 = sim.now();
      for (int i = ctx.id(); i < cfg.chunks; i += cfg.workers) {
        co_await paper_retry(sim, [&] {
          return block_blob.put_block(
              block_id(i), azure::Payload::synthetic(cfg.chunk_bytes));
        });
      }
      shared.collector.record("block-upload", repeat * 2, t0, sim.now());
    }
    co_await sync();
    if (ctx.id() == 0) {
      // The paper's pseudocode has every worker call PutBlockList with its
      // own ids, which would discard the other workers' blocks under real
      // commit semantics; one worker committing the full list preserves the
      // benchmark's intent (the complete blob exists for the download
      // phases). The commit is accounted to the block-upload phase.
      std::vector<std::string> ids;
      ids.reserve(static_cast<std::size_t>(cfg.chunks));
      for (int i = 0; i < cfg.chunks; ++i) ids.push_back(block_id(i));
      const sim::TimePoint t0 = sim.now();
      co_await paper_retry(sim,
                                 [&] { return block_blob.put_block_list(ids); });
      shared.collector.record("block-upload", repeat * 2 + 1, t0, sim.now());
    }
    co_await sync();

    // ----------------------------------------- random page-wise download --
    // Each worker downloads `chunks` pages at random offsets.
    {
      const sim::TimePoint t0 = sim.now();
      for (int i = 0; i < cfg.chunks; ++i) {
        const std::int64_t page =
            rng.uniform(0, cfg.chunks - 1) * cfg.chunk_bytes;
        co_await paper_retry(sim, [&] {
          return page_blob.get_page(page, cfg.chunk_bytes, /*random=*/true);
        });
      }
      shared.collector.record("page-random-read", repeat, t0, sim.now());
    }
    co_await sync();  // keep sub-phase starts aligned for clean timing

    // ------------------------------------------ sequential block download --
    {
      const sim::TimePoint t0 = sim.now();
      for (int i = 0; i < cfg.chunks; ++i) {
        co_await paper_retry(sim, [&] { return block_blob.get_block(i); });
      }
      shared.collector.record("block-seq-read", repeat, t0, sim.now());
    }
    co_await sync();

    // -------------------------------------------------- full blob reads --
    {
      const sim::TimePoint t0 = sim.now();
      co_await paper_retry(sim, [&] { return page_blob.open_read(); });
      shared.collector.record("page-full-read", repeat, t0, sim.now());
    }
    co_await sync();  // keep sub-phase starts aligned for clean timing
    {
      const sim::TimePoint t0 = sim.now();
      co_await paper_retry(sim,
                                 [&] { return block_blob.download_text(); });
      shared.collector.record("block-full-read", repeat, t0, sim.now());
    }
    co_await sync();

    if (ctx.id() == 0) {
      co_await paper_retry(sim, [&] { return page_blob.delete_blob(); });
      co_await paper_retry(sim, [&] { return block_blob.delete_blob(); });
    }
    co_await sync();
  }
}

}  // namespace

BlobBenchResult run_blob_benchmark(const BlobBenchConfig& cfg) {
  sim::Simulation simulation;
  if (cfg.observer != nullptr) simulation.set_observer(cfg.observer);
  azure::CloudEnvironment env(simulation, cfg.cloud);
  fabric::Deployment deployment(env);
  deployment.add_worker_roles(cfg.workers, cfg.vm);

  Shared shared{cfg, {}, 0};
  deployment.start_workers([&shared](fabric::RoleContext& ctx) {
    return worker_body(ctx, shared);
  });
  simulation.run();

  const std::int64_t blob_bytes =
      static_cast<std::int64_t>(cfg.chunks) * cfg.chunk_bytes;
  const std::int64_t uploads = blob_bytes * cfg.repeats;
  const std::int64_t chunk_reads = static_cast<std::int64_t>(cfg.workers) *
                                   cfg.chunks * cfg.chunk_bytes * cfg.repeats;
  const std::int64_t full_reads =
      static_cast<std::int64_t>(cfg.workers) * blob_bytes * cfg.repeats;
  const std::int64_t upload_ops =
      static_cast<std::int64_t>(cfg.chunks) * cfg.repeats;
  const std::int64_t chunk_ops = static_cast<std::int64_t>(cfg.workers) *
                                 cfg.chunks * cfg.repeats;
  const std::int64_t full_ops =
      static_cast<std::int64_t>(cfg.workers) * cfg.repeats;

  auto report = [&](const char* phase, std::int64_t bytes,
                    std::int64_t ops) {
    return PhaseReport{phase, sim::to_seconds(shared.collector.wall(phase)),
                       bytes, ops};
  };

  BlobBenchResult result;
  result.page_upload = report("page-upload", uploads, upload_ops);
  result.block_upload = report("block-upload", uploads, upload_ops);
  result.page_random_read = report("page-random-read", chunk_reads, chunk_ops);
  result.block_seq_read = report("block-seq-read", chunk_reads, chunk_ops);
  result.page_full_read = report("page-full-read", full_reads, full_ops);
  result.block_full_read = report("block-full-read", full_reads, full_ops);
  // Average synchronization overhead per worker (excluded from phases).
  result.barrier_seconds =
      sim::to_seconds(shared.barrier_time) / cfg.workers;
  result.simulated_events = simulation.events_executed();
  result.storage_transactions = env.storage_cluster().total_requests();
  result.virtual_seconds = sim::to_seconds(simulation.now());
  return result;
}

}  // namespace azurebench
