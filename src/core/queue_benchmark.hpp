// AzureBench Queue storage benchmarks — Algorithms 3 and 4 of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "azure/environment.hpp"
#include "core/collector.hpp"
#include "fabric/vm_size.hpp"

namespace obs {
class Observer;
}

namespace azurebench {

/// Algorithm 3: each worker owns a dedicated queue; 20,000 messages in
/// total are put, peeked, and gotten (get includes the delete) for each
/// message size (the sizes double from 4 KB to 64 KB; 48 KB is the usable
/// payload maximum, so the nominal 64 KB point sends 49,152-byte payloads).
struct QueueSeparateConfig {
  int workers = 8;
  std::int64_t total_messages = 20'000;
  std::vector<std::int64_t> message_sizes = {4 << 10, 8 << 10, 16 << 10,
                                             32 << 10, 64 << 10};
  fabric::VmSize vm = fabric::VmSize::kSmall;
  azure::CloudConfig cloud;
  /// Optional observability sink (see BlobBenchConfig::observer).
  obs::Observer* observer = nullptr;
};

struct QueueSizePoint {
  std::int64_t message_size = 0;
  PhaseReport put;
  PhaseReport peek;
  PhaseReport get;  // GetMessage + DeleteMessage, as in the paper
};

struct QueueSeparateResult {
  std::vector<QueueSizePoint> points;
  double barrier_seconds = 0;
  /// Usage accounting (for the operating-cost model).
  std::int64_t storage_transactions = 0;
  double virtual_seconds = 0;
};

QueueSeparateResult run_queue_separate_benchmark(
    const QueueSeparateConfig& cfg);

/// Algorithm 4: all workers share a single queue; 32 KB messages; 20,000
/// total transactions split into rounds of at most 500 messages so the
/// queue's 500 msg/s target is respected; a think time between accesses
/// simulates a real application. Reported times cover only queue
/// communication (think time excluded).
struct QueueSharedConfig {
  int workers = 8;
  std::int64_t total_messages = 20'000;
  std::int64_t message_size = 32 << 10;
  std::int64_t messages_per_round = 500;
  std::vector<int> think_seconds = {1, 2, 3, 4, 5};
  /// Relative jitter applied to each think pause (uniform in ±fraction).
  /// A real application's "certain amount of time before going back to the
  /// queue" is never exact; without jitter the deterministic fleet marches
  /// in lockstep and contention stops depending on the think time.
  double think_jitter = 0.2;
  std::uint64_t seed = 7;
  fabric::VmSize vm = fabric::VmSize::kSmall;
  azure::CloudConfig cloud;
  /// Optional observability sink (see BlobBenchConfig::observer).
  obs::Observer* observer = nullptr;
};

struct QueueThinkPoint {
  int think_seconds = 0;
  /// seconds = average per-worker communication time for the op type.
  PhaseReport put;
  PhaseReport peek;
  PhaseReport get;
};

struct QueueSharedResult {
  std::vector<QueueThinkPoint> points;
};

QueueSharedResult run_queue_shared_benchmark(const QueueSharedConfig& cfg);

}  // namespace azurebench
