// The observability hub: one Observer owns the metrics registry, the span
// ring, the label intern table, and the per-layer latency histograms.
//
// Design constraints (the determinism contract, see DESIGN.md §10):
//  * sim-time only — every begin/end/emit takes or derives from an explicit
//    sim::TimePoint; no wall clock anywhere;
//  * no allocation on the hot record path — spans are fixed-size PODs in a
//    preallocated ring, metric lookups take string_view, labels are interned
//    once per distinct string;
//  * byte-identical across replays — ids are sequential, export order is
//    registration order, and JSON rendering is integer-only;
//  * off by default — layers observe `Simulation::observer()` and skip all
//    instrumentation when it is null, leaving paper-mode event sequences
//    untouched.
//
// Context propagation: coroutine stacks have no thread-locals to hide a
// context in, so the Observer keeps a single *ambient* TraceContext slot
// with take-and-clear semantics. A caller stores its context immediately
// before synchronously entering the callee (`co_await make_op()` — lazy
// Tasks resume synchronously until their first suspension), and the callee
// claims it with take_ambient() as its first statement. The slot is empty
// again before any other process can run, so contexts never leak across
// coroutine interleavings. Below the service layer, contexts pass as
// explicit defaulted parameters instead.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace obs {

struct ObserverConfig {
  /// Capacity of the span ring. When full, the oldest span is evicted
  /// (dropped_spans() counts them); per-layer histograms are unaffected.
  std::size_t ring_capacity = 1 << 16;
  /// When false, spans are counted but not retained (metrics and per-layer
  /// histograms still work; the ring stays empty).
  bool keep_spans = true;
};

class Observer {
 public:
  explicit Observer(ObserverConfig cfg = {}) : cfg_(cfg) {
    ring_.reserve(cfg_.ring_capacity);
    labels_.emplace_back();  // label 0 = "none"
    label_hist_.emplace_back();
  }
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  // ------------------------------------------------------------- labels ----
  /// Interns a detail label (operation name, throttle gate, error class).
  /// Idempotent; the id is stable for the Observer's lifetime.
  std::uint16_t label(std::string_view name);
  const std::string& label_name(std::uint16_t id) const noexcept {
    return labels_[id < labels_.size() ? id : 0];
  }
  std::size_t label_count() const noexcept { return labels_.size(); }

  // -------------------------------------------------------------- spans ----
  /// Starts a span under `parent` (a root when parent is inactive). Only
  /// allocates ids and stamps the start time; nothing is recorded until
  /// end(). The returned handle's ctx is the parent for child spans.
  SpanHandle begin(TraceContext parent, sim::TimePoint now) {
    SpanHandle h;
    h.ctx.trace_id = parent.active() ? parent.trace_id : next_trace_id_++;
    h.ctx.span_id = next_span_id_++;
    h.parent_id = parent.span_id;
    h.start = now;
    return h;
  }

  /// Completes a span: updates the per-kind (and per-label) latency
  /// histograms and pushes the record into the ring.
  void end(const SpanHandle& h, SpanKind kind, std::uint16_t label,
           std::int32_t server, std::int64_t bytes, bool error,
           sim::TimePoint now) {
    kind_hist_[static_cast<std::size_t>(kind)].record(now - h.start);
    if (label != 0 && label < label_hist_.size()) {
      label_hist_[label].record(now - h.start);
    }
    ++emitted_spans_;
    if (!cfg_.keep_spans || cfg_.ring_capacity == 0) return;
    Span s;
    s.trace_id = h.ctx.trace_id;
    s.span_id = h.ctx.span_id;
    s.parent_id = h.parent_id;
    s.start = h.start;
    s.end = now;
    s.bytes = bytes;
    s.server = server;
    s.label = label;
    s.kind = kind;
    s.error = error;
    push(s);
  }

  /// begin() + end() in one call, for spans whose extent is already known
  /// when the instrumentation point runs (throttle waits, failover hops).
  void emit(SpanKind kind, TraceContext parent, sim::TimePoint start,
            sim::TimePoint end_time, std::uint16_t label = 0,
            std::int32_t server = -1, std::int64_t bytes = 0,
            bool error = false) {
    SpanHandle h = begin(parent, start);
    end(h, kind, label, server, bytes, error, end_time);
  }

  // ------------------------------------------------ ambient propagation ----
  void set_ambient(TraceContext ctx) noexcept { ambient_ = ctx; }
  /// Claims and clears the ambient context (empty if none was staged).
  TraceContext take_ambient() noexcept {
    const TraceContext ctx = ambient_;
    ambient_ = TraceContext{};
    return ctx;
  }
  /// Clears the ambient slot only if it still holds `ctx` — used by scopes
  /// unwinding after an exception, so a context staged for a callee that
  /// never consumed it cannot leak into an unrelated request.
  void clear_ambient_if(TraceContext ctx) noexcept {
    if (ambient_ == ctx) ambient_ = TraceContext{};
  }

  // ------------------------------------------------------------ readout ----
  const LatencyHistogram& layer(SpanKind kind) const noexcept {
    return kind_hist_[static_cast<std::size_t>(kind)];
  }
  const LatencyHistogram& op(std::uint16_t label) const noexcept {
    return label_hist_[label < label_hist_.size() ? label : 0];
  }
  std::int64_t emitted_spans() const noexcept { return emitted_spans_; }
  std::int64_t dropped_spans() const noexcept { return dropped_spans_; }

  /// Ring contents, oldest first.
  std::vector<Span> spans() const {
    std::vector<Span> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Deterministic JSON rendering of the whole observer: metrics (in
  /// registration order), per-layer and per-operation latency summaries,
  /// and the span ring. Byte-identical across replays of the same scenario.
  std::string to_json() const;

 private:
  void push(const Span& s) {
    if (ring_.size() < cfg_.ring_capacity) {
      ring_.push_back(s);
      return;
    }
    ring_[ring_head_] = s;  // evict the oldest
    ring_head_ = (ring_head_ + 1) % ring_.size();
    ++dropped_spans_;
  }

  ObserverConfig cfg_;
  MetricsRegistry metrics_;
  std::vector<std::string> labels_;
  std::map<std::string, std::uint16_t, std::less<>> label_index_;
  std::array<LatencyHistogram, kSpanKindCount> kind_hist_{};
  std::vector<LatencyHistogram> label_hist_;
  std::vector<Span> ring_;
  std::size_t ring_head_ = 0;
  std::int64_t emitted_spans_ = 0;
  std::int64_t dropped_spans_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::uint32_t next_span_id_ = 1;
  TraceContext ambient_{};
};

/// Deterministic export of a sharded run: one Observer per domain, merged
/// at export time. Counters and gauges are summed by name in
/// first-appearance order (domain order, then registration order within a
/// domain — both replay-deterministic); per-domain detail follows as an
/// array of full to_json() documents in domain-id order. The merge is a
/// pure function of the per-domain observers, so parallel and sequential
/// executions of the same decomposition render byte-identical JSON.
std::string merged_to_json(const std::vector<const Observer*>& domains);

/// RAII scope for one service-layer operation (one attempt): begins a
/// kServiceOp span under the ambient context (claimed synchronously on
/// operation entry) and emits on scope exit — including exceptional
/// unwinds, which happen synchronously at the failure's sim-time. Inert
/// when no observer is attached.
///
/// Call stage() immediately before each cluster execute() the operation
/// makes, so the cluster's spans nest beneath this one. Staging happens per
/// call, not at construction: between construction and a later execute the
/// operation may suspend, and the ambient slot must never be owned across
/// a suspension point.
class OpScope {
 public:
  OpScope(sim::Simulation& sim, std::string_view name,
          std::int64_t bytes = 0)
      : sim_(sim), obs_(sim.observer()), bytes_(bytes) {
    if (obs_ == nullptr) return;
    label_ = obs_->label(name);
    handle_ = obs_->begin(obs_->take_ambient(), sim.now());
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;
  ~OpScope() {
    if (obs_ == nullptr) return;
    obs_->clear_ambient_if(handle_.ctx);
    obs_->end(handle_, SpanKind::kServiceOp, label_, server_, bytes_, error_,
              sim_.now());
  }

  /// Publishes this operation as the ambient parent for the cluster call
  /// made in the immediately following co_await.
  void stage() noexcept {
    if (obs_ != nullptr) obs_->set_ambient(handle_.ctx);
  }

  /// The operation span's context (parent for explicit child spans).
  TraceContext ctx() const noexcept { return handle_.ctx; }
  void set_bytes(std::int64_t bytes) noexcept { bytes_ = bytes; }
  void set_server(std::int32_t server) noexcept { server_ = server; }
  void set_error() noexcept { error_ = true; }
  Observer* observer() const noexcept { return obs_; }

 private:
  sim::Simulation& sim_;
  Observer* obs_;
  SpanHandle handle_{};
  std::uint16_t label_ = 0;
  std::int64_t bytes_ = 0;
  std::int32_t server_ = -1;
  bool error_ = false;
};

/// RAII scope for one logical client request: the root kClientRequest span
/// covering every retry attempt and backoff of a with_retry call. Unlike
/// OpScope it does not publish itself as ambient — the retry loop re-stages
/// the context before each attempt. fail() marks the span failed and tags
/// it with the terminal error class.
class RequestScope {
 public:
  explicit RequestScope(sim::Simulation& sim)
      : sim_(sim), obs_(sim.observer()) {
    if (obs_ == nullptr) return;
    handle_ = obs_->begin(obs_->take_ambient(), sim.now());
  }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;
  ~RequestScope() {
    if (obs_ == nullptr) return;
    obs_->clear_ambient_if(handle_.ctx);
    obs_->end(handle_, SpanKind::kClientRequest, label_, -1, attempts_,
              error_, sim_.now());
  }

  TraceContext ctx() const noexcept { return handle_.ctx; }
  Observer* observer() const noexcept { return obs_; }
  void count_attempt() noexcept { ++attempts_; }
  void fail(std::uint16_t error_label) noexcept {
    error_ = true;
    label_ = error_label;
  }

 private:
  sim::Simulation& sim_;
  Observer* obs_;
  SpanHandle handle_{};
  std::uint16_t label_ = 0;
  std::int64_t attempts_ = 0;  // exported in the span's bytes field
  bool error_ = false;
};

}  // namespace obs
