// Deterministic metrics: counters, gauges, and fixed-bucket log-scale
// latency histograms.
//
// Everything is integer-valued and updated with plain arithmetic — no wall
// clock, no floating-point accumulation on the record path, no allocation
// once a metric exists. Two replays of the same seeded simulation produce
// byte-identical registries.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/time.hpp"

namespace obs {

/// Monotonic saturating counter. Saturates at int64 max instead of wrapping:
/// an overflowed counter stays pinned (and comparable across replays) rather
/// than silently restarting from a small number.
class Counter {
 public:
  void add(std::int64_t delta) noexcept {
    const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    value_ = (delta > kMax - value_) ? kMax : value_ + delta;
  }
  std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, in-flight counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed 64-bucket log2 histogram of non-negative durations (nanoseconds).
///
/// Bucket 0 holds exact zeros (and clamped negatives); bucket b >= 1 holds
/// values whose bit width is b, i.e. [2^(b-1), 2^b). Every positive int64
/// has bit width <= 63, so 64 buckets cover the full domain with no dynamic
/// resizing and an O(1) branch-free record path. Quantiles are reported as
/// the containing bucket's upper edge (~2x resolution per decade), clamped
/// to the exact observed max.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(sim::Duration v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(v))] += 1;
    ++count_;
    sum_ += v > 0 ? v : 0;
    if (v > max_) max_ = v;
  }

  /// Bucket index for a value: 0 for v <= 0, else bit_width(v).
  static int bucket_of(sim::Duration v) noexcept {
    if (v <= 0) return 0;
    return std::bit_width(static_cast<std::uint64_t>(v));
  }

  /// Largest value bucket `b` can hold (2^b - 1; 0 for bucket 0).
  static std::int64_t bucket_upper_edge(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 63) return std::numeric_limits<std::int64_t>::max();
    return (std::int64_t{1} << b) - 1;
  }

  std::int64_t count() const noexcept { return count_; }
  std::int64_t sum() const noexcept { return sum_; }
  std::int64_t max() const noexcept { return max_; }
  std::int64_t bucket(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)];
  }

  /// Upper-edge estimate of quantile q in [0, 1], clamped to the observed
  /// max. Returns 0 on an empty histogram.
  std::int64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Nearest-rank: the smallest bucket whose cumulative count reaches
    // ceil(q * count). Integer arithmetic keeps ranks platform-identical.
    const auto permyriad = static_cast<std::int64_t>(q * 10000.0 + 0.5);
    std::int64_t rank = (count_ * permyriad + 9999) / 10000;
    if (rank < 1) rank = 1;
    std::int64_t cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cumulative += buckets_[static_cast<std::size_t>(b)];
      if (cumulative >= rank) {
        const std::int64_t edge = bucket_upper_edge(b);
        return edge < max_ ? edge : max_;
      }
    }
    return max_;
  }

  double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
  }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

/// Name-keyed registry of the three metric families. Lookups take a
/// string_view (no temporary std::string on the hot path, via transparent
/// comparators); instruments are stored in deques so references handed out
/// stay valid as the registry grows. Export order is registration order —
/// part of the determinism contract, since two replays register identically.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) {
    return instrument(counters_, counter_index_, name);
  }
  Gauge& gauge(std::string_view name) {
    return instrument(gauges_, gauge_index_, name);
  }
  LatencyHistogram& histogram(std::string_view name) {
    return instrument(histograms_, histogram_index_, name);
  }

  /// Visits every instrument of a family in registration order.
  template <class F>
  void for_each_counter(F&& f) const {
    for (const auto& [name, c] : counters_) f(name, c);
  }
  template <class F>
  void for_each_gauge(F&& f) const {
    for (const auto& [name, g] : gauges_) f(name, g);
  }
  template <class F>
  void for_each_histogram(F&& f) const {
    for (const auto& [name, h] : histograms_) f(name, h);
  }

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <class T>
  using Family = std::deque<std::pair<std::string, T>>;
  using Index = std::map<std::string, std::size_t, std::less<>>;

  template <class T>
  static T& instrument(Family<T>& family, Index& index,
                       std::string_view name) {
    if (auto it = index.find(name); it != index.end()) {
      return family[it->second].second;
    }
    family.emplace_back(std::string(name), T{});
    index.emplace(std::string(name), family.size() - 1);
    return family.back().second;
  }

  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<LatencyHistogram> histograms_;
  Index counter_index_;
  Index gauge_index_;
  Index histogram_index_;
};

}  // namespace obs
