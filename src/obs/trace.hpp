// Request-tracing primitives: trace/span identity and the typed span record.
//
// A TraceContext is the identity a request carries as it descends the stack
// (client retry loop -> service operation -> cluster -> network / servers).
// Every instrumented layer emits a *completed* Span — (kind, parent, start,
// end) plus a few typed attributes — into the Observer's bounded ring.
//
// Everything here is integer-valued and keyed by sim-time only: two replays
// of the same seeded scenario produce byte-identical span streams.
#pragma once

#include <cstdint>

#include "simcore/time.hpp"

namespace obs {

/// Identity flowing down a request: which trace it belongs to and which
/// span is the immediate parent. Zero-initialized means "no active trace" —
/// the next span started from it becomes a root.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;  // parent span for children started from this

  bool active() const noexcept { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// The layer a span measures. Kinds are a closed set so per-layer latency
/// histograms can live in a fixed array with no hot-path allocation.
enum class SpanKind : std::uint8_t {
  kClientRequest,  // one logical client call incl. every retry attempt
  kRetryBackoff,   // client-side sleep between attempts
  kServiceOp,      // one blob/queue/table API operation (one attempt)
  kThrottleWait,   // time parked at an account-level admission gate
  kFailover,       // re-route latency off a crashed partition server
  kNetTransfer,    // one NIC-to-NIC transfer (uplink + fabric + downlink)
  kServerProcess,  // front-end + executor + CPU + disk on the primary
  kExecutorQueue,  // waiting for a free executor inside the server
  kReplication,    // synchronous fan-out, start to slowest-replica ack
  kReplicaCommit,  // one replica's receive + append + commit ack
  kLogCommit,      // serialized message/partition log append (service side)
  kTask,           // one framework task: resolve + handler execution
  kPartitionMove,  // one bucket reassignment incl. its unavailable window
  kCount,          // sentinel — number of kinds
};

inline constexpr int kSpanKindCount = static_cast<int>(SpanKind::kCount);

/// Stable wire/JSON name for a span kind.
constexpr const char* span_kind_name(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kClientRequest: return "client.request";
    case SpanKind::kRetryBackoff: return "retry.backoff";
    case SpanKind::kServiceOp: return "service.op";
    case SpanKind::kThrottleWait: return "throttle.wait";
    case SpanKind::kFailover: return "failover";
    case SpanKind::kNetTransfer: return "net.transfer";
    case SpanKind::kServerProcess: return "server.process";
    case SpanKind::kExecutorQueue: return "server.exec_queue";
    case SpanKind::kReplication: return "replication";
    case SpanKind::kReplicaCommit: return "replica.commit";
    case SpanKind::kLogCommit: return "log.commit";
    case SpanKind::kTask: return "task";
    case SpanKind::kPartitionMove: return "partition.move";
    case SpanKind::kCount: break;
  }
  return "unknown";
}

/// One completed, typed span. Fixed-size POD: ring storage, no strings —
/// the label is an interned id resolved through the Observer.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
  std::int64_t bytes = 0;     // payload bytes, where meaningful
  std::int32_t server = -1;   // partition server index, where meaningful
  std::uint16_t label = 0;    // interned detail label (0 = none)
  SpanKind kind = SpanKind::kClientRequest;
  bool error = false;

  sim::Duration duration() const noexcept { return end - start; }
  bool operator==(const Span&) const = default;
};

/// Ticket returned by Observer::begin(): the new span's identity plus what
/// end() needs to finish the record.
struct SpanHandle {
  TraceContext ctx{};           // this span's identity (parent for children)
  std::uint32_t parent_id = 0;  // the span's own parent
  sim::TimePoint start = 0;
};

}  // namespace obs
