#include "obs/observer.hpp"

#include <limits>

namespace obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

/// Renders one histogram as a JSON object. All fields are integers
/// (nanoseconds), so the rendering is platform-identical.
void append_histogram(std::string& out, const LatencyHistogram& h) {
  out += "{\"count\":";
  append_int(out, h.count());
  out += ",\"sum_ns\":";
  append_int(out, h.sum());
  out += ",\"max_ns\":";
  append_int(out, h.max());
  out += ",\"p50_ns\":";
  append_int(out, h.quantile(0.50));
  out += ",\"p95_ns\":";
  append_int(out, h.quantile(0.95));
  out += ",\"p99_ns\":";
  append_int(out, h.quantile(0.99));
  out += '}';
}

void append_span(std::string& out, const Span& s, const Observer& o) {
  out += "{\"trace\":";
  append_int(out, static_cast<std::int64_t>(s.trace_id));
  out += ",\"span\":";
  append_int(out, s.span_id);
  out += ",\"parent\":";
  append_int(out, s.parent_id);
  out += ",\"kind\":";
  append_escaped(out, span_kind_name(s.kind));
  out += ",\"label\":";
  append_escaped(out, o.label_name(s.label));
  out += ",\"server\":";
  append_int(out, s.server);
  out += ",\"bytes\":";
  append_int(out, s.bytes);
  out += ",\"start_ns\":";
  append_int(out, s.start);
  out += ",\"end_ns\":";
  append_int(out, s.end);
  out += ",\"error\":";
  out += s.error ? "true" : "false";
  out += '}';
}

}  // namespace

std::uint16_t Observer::label(std::string_view name) {
  if (auto it = label_index_.find(name); it != label_index_.end()) {
    return it->second;
  }
  if (labels_.size() > std::numeric_limits<std::uint16_t>::max()) {
    return 0;  // intern table exhausted; fold into "none"
  }
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(name);
  label_hist_.emplace_back();
  label_index_.emplace(std::string(name), id);
  return id;
}

std::string Observer::to_json() const {
  std::string out;
  out.reserve(4096 + ring_.size() * 160);
  out += "{\"counters\":{";
  bool first = true;
  metrics_.for_each_counter(
      [&](const std::string& name, const Counter& c) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, name);
        out += ':';
        append_int(out, c.value());
      });
  out += "},\"gauges\":{";
  first = true;
  metrics_.for_each_gauge([&](const std::string& name, const Gauge& g) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_int(out, g.value());
  });
  out += "},\"histograms\":{";
  first = true;
  metrics_.for_each_histogram(
      [&](const std::string& name, const LatencyHistogram& h) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, name);
        out += ':';
        append_histogram(out, h);
      });

  // Per-layer latency summaries: fixed kind order, empty layers skipped.
  out += "},\"layers\":{";
  first = true;
  for (int k = 0; k < kSpanKindCount; ++k) {
    const auto kind = static_cast<SpanKind>(k);
    const LatencyHistogram& h = layer(kind);
    if (h.count() == 0) continue;
    if (!first) out += ',';
    first = false;
    append_escaped(out, span_kind_name(kind));
    out += ':';
    append_histogram(out, h);
  }

  // Per-operation summaries: label-id (interning) order, empty ops skipped.
  out += "},\"ops\":{";
  first = true;
  for (std::size_t id = 1; id < labels_.size(); ++id) {
    const LatencyHistogram& h = label_hist_[id];
    if (h.count() == 0) continue;
    if (!first) out += ',';
    first = false;
    append_escaped(out, labels_[id]);
    out += ':';
    append_histogram(out, h);
  }

  out += "},\"spans\":{\"emitted\":";
  append_int(out, emitted_spans_);
  out += ",\"dropped\":";
  append_int(out, dropped_spans_);
  out += ",\"ring\":[";
  first = true;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Span& s = ring_[(ring_head_ + i) % ring_.size()];
    if (!first) out += ',';
    first = false;
    append_span(out, s, *this);
  }
  out += "]}}";
  return out;
}

std::string merged_to_json(const std::vector<const Observer*>& domains) {
  // Merge counters/gauges by name, preserving first-appearance order so the
  // rendering order is a deterministic function of the decomposition (not
  // of any hash or sort of runtime values).
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::map<std::string, std::size_t, std::less<>> counter_index;
  std::map<std::string, std::size_t, std::less<>> gauge_index;
  const auto accumulate =
      [](std::vector<std::pair<std::string, std::int64_t>>& out,
         std::map<std::string, std::size_t, std::less<>>& index,
         const std::string& name, std::int64_t v) {
        if (auto it = index.find(name); it != index.end()) {
          out[it->second].second += v;
          return;
        }
        index.emplace(name, out.size());
        out.emplace_back(name, v);
      };
  for (const Observer* o : domains) {
    o->metrics().for_each_counter(
        [&](const std::string& name, const Counter& c) {
          accumulate(counters, counter_index, name, c.value());
        });
    o->metrics().for_each_gauge([&](const std::string& name, const Gauge& g) {
      accumulate(gauges, gauge_index, name, g.value());
    });
  }

  std::string out;
  out += "{\"domains\":";
  append_int(out, static_cast<std::int64_t>(domains.size()));
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_int(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_int(out, v);
  }
  out += "},\"per_domain\":[";
  first = true;
  for (const Observer* o : domains) {
    if (!first) out += ',';
    first = false;
    out += o->to_json();
  }
  out += "]}";
  return out;
}

}  // namespace obs
