#include "azure/cache/cache_service.hpp"

namespace azure {

CacheService::CacheService(sim::Simulation& sim, netsim::Network& network,
                           const CacheServiceConfig& cfg)
    : sim_(sim), network_(network), cfg_(cfg) {
  servers_.reserve(static_cast<std::size_t>(cfg.cache_servers));
  for (int i = 0; i < cfg.cache_servers; ++i) {
    servers_.push_back(std::make_unique<Server>(sim, cfg_));
  }
}

void CacheService::drop(Server& server, std::list<Item>::iterator it) {
  server.bytes -= it->value.size();
  server.index.erase({it->cache, it->key});
  server.lru.erase(it);
}

void CacheService::evict_to_fit(Server& server, std::int64_t incoming) {
  while (!server.lru.empty() &&
         server.bytes + incoming > cfg_.memory_per_server) {
    auto victim = std::prev(server.lru.end());
    ++stats_[victim->cache].evictions;
    drop(server, victim);
  }
}

sim::Task<void> CacheService::put(netsim::Nic& client,
                                  const std::string& cache, std::string key,
                                  Payload value, sim::Duration ttl) {
  if (value.size() > cfg_.memory_per_server) {
    throw InvalidArgumentError("cache item exceeds a server's memory");
  }
  Server& server = *servers_[static_cast<std::size_t>(server_of(cache, key))];
  co_await network_.transfer(client, server.nic, value.size() + 128);
  co_await sim_.delay(cfg_.put_cpu);
  co_await network_.transfer(server.nic, client, 64);  // ack

  if (auto it = server.index.find({cache, key}); it != server.index.end()) {
    drop(server, it->second);
  }
  evict_to_fit(server, value.size());
  const sim::Duration effective_ttl = ttl > 0 ? ttl : cfg_.default_ttl;
  Item item{cache, key, std::move(value),
            effective_ttl > 0 ? sim_.now() + effective_ttl : 0};
  server.bytes += item.value.size();
  server.lru.push_front(std::move(item));
  server.index[{cache, std::move(key)}] = server.lru.begin();
}

sim::Task<std::optional<Payload>> CacheService::get(netsim::Nic& client,
                                                    const std::string& cache,
                                                    std::string key) {
  Server& server = *servers_[static_cast<std::size_t>(server_of(cache, key))];
  co_await network_.transfer(client, server.nic, 128);
  co_await sim_.delay(cfg_.get_cpu);

  auto it = server.index.find({cache, key});
  if (it == server.index.end() || expired(*it->second)) {
    if (it != server.index.end()) drop(server, it->second);
    ++stats_[cache].misses;
    co_await network_.transfer(server.nic, client, 64);  // miss response
    co_return std::nullopt;
  }
  ++stats_[cache].hits;
  // Move to the LRU front.
  server.lru.splice(server.lru.begin(), server.lru, it->second);
  Payload value = it->second->value;
  co_await network_.transfer(server.nic, client, value.size() + 64);
  co_return value;
}

sim::Task<bool> CacheService::remove(netsim::Nic& client,
                                     const std::string& cache,
                                     std::string key) {
  Server& server = *servers_[static_cast<std::size_t>(server_of(cache, key))];
  co_await network_.transfer(client, server.nic, 128);
  co_await sim_.delay(cfg_.put_cpu);
  co_await network_.transfer(server.nic, client, 64);
  auto it = server.index.find({cache, key});
  if (it == server.index.end()) co_return false;
  drop(server, it->second);
  co_return true;
}

void CacheService::restart_server(int server_index) {
  Server& server = *servers_[static_cast<std::size_t>(server_index)];
  server.lru.clear();
  server.index.clear();
  server.bytes = 0;
}

CacheStats CacheService::stats(const std::string& cache) const {
  CacheStats s = stats_[cache];
  for (const auto& server : servers_) {
    for (const auto& item : server->lru) {
      if (item.cache == cache) {
        ++s.items;
        s.bytes += item.value.size();
      }
    }
  }
  return s;
}

}  // namespace azure
