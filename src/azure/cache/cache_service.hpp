// Distributed in-memory caching service — the Azure AppFabric Caching
// service of the 2011/2012 platform ("a caching service to temporarily
// hold data in memory across different servers", Section II-B). The paper
// defers studying it to future work; this module implements it so the
// comparison benches can quantify what the cache buys over the storage
// services.
//
// Model:
//  * named caches, partitioned across dedicated cache servers by key hash;
//  * items live in memory: no disk, no replication — reads and writes cost
//    a network hop plus a sub-millisecond server operation;
//  * per-server memory capacity with LRU eviction;
//  * optional time-to-live per item;
//  * caches are volatile: a server "restart" (fault injection) drops every
//    item it holds, and applications must fall back to durable storage.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "azure/common/errors.hpp"
#include "azure/common/payload.hpp"
#include "cluster/hash.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"

namespace azure {

struct CacheServiceConfig {
  /// Dedicated cache servers (separate from the storage partition servers).
  int cache_servers = 4;

  /// Memory budget per cache server.
  std::int64_t memory_per_server = 128ll << 20;

  /// Server-side work per operation (in-memory hash lookups).
  sim::Duration get_cpu = sim::micros(150);
  sim::Duration put_cpu = sim::micros(250);

  /// Cache-server NIC bandwidth, each direction.
  double server_nic_bytes_per_sec = 800.0 * 1024 * 1024;

  /// Default item TTL (0 = no expiry until evicted).
  sim::Duration default_ttl = 0;
};

/// Statistics of one named cache (for tests and capacity planning).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t items = 0;
  std::int64_t bytes = 0;
};

class CacheService {
 public:
  CacheService(sim::Simulation& sim, netsim::Network& network,
               const CacheServiceConfig& cfg);

  const CacheServiceConfig& config() const noexcept { return cfg_; }

  /// Stores an item (replacing any previous value). Items larger than a
  /// server's memory are rejected.
  sim::Task<void> put(netsim::Nic& client, const std::string& cache,
                      std::string key, Payload value,
                      sim::Duration ttl = 0);

  /// Fetches an item; nullopt on miss (evicted, expired, or never stored).
  sim::Task<std::optional<Payload>> get(netsim::Nic& client,
                                        const std::string& cache,
                                        std::string key);

  /// Removes an item. Returns whether it existed.
  sim::Task<bool> remove(netsim::Nic& client, const std::string& cache,
                         std::string key);

  /// Fault injection: drops every item held by one cache server.
  void restart_server(int server_index);

  CacheStats stats(const std::string& cache) const;
  int server_of(const std::string& cache, const std::string& key) const {
    return static_cast<int>(cluster::partition_hash(cache, key) %
                            static_cast<std::uint64_t>(cfg_.cache_servers));
  }

 private:
  struct Item {
    std::string cache;
    std::string key;
    Payload value;
    sim::TimePoint expires_at;  // 0 = never
  };
  /// One cache server: an LRU list plus an index into it.
  struct Server {
    explicit Server(sim::Simulation& sim, const CacheServiceConfig& cfg)
        : nic(sim, netsim::NicConfig{cfg.server_nic_bytes_per_sec,
                                     cfg.server_nic_bytes_per_sec,
                                     sim::micros(30)}) {}
    netsim::Nic nic;
    std::list<Item> lru;  // front = most recently used
    std::map<std::pair<std::string, std::string>, std::list<Item>::iterator>
        index;
    std::int64_t bytes = 0;
  };

  void evict_to_fit(Server& server, std::int64_t incoming);
  bool expired(const Item& item) const {
    return item.expires_at != 0 && item.expires_at <= sim_.now();
  }
  void drop(Server& server, std::list<Item>::iterator it);

  sim::Simulation& sim_;
  netsim::Network& network_;
  CacheServiceConfig cfg_;
  std::vector<std::unique_ptr<Server>> servers_;
  mutable std::map<std::string, CacheStats> stats_;
};

}  // namespace azure
