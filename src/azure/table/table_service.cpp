#include "azure/table/table_service.hpp"

#include <bit>
#include <set>

#include "azure/common/checksum.hpp"
#include "obs/observer.hpp"

namespace azure {
namespace lim = azure::limits;

// --------------------------------------------------------------- entity ----

namespace {

/// Service salt for integrity object ids.
constexpr std::uint64_t kTableObjectSalt = 0x7AB1'E7AB'1E7A'B000ull;

std::int64_t property_size(const PropertyValue& v) {
  struct Sizer {
    std::int64_t operator()(std::string s) const {
      return static_cast<std::int64_t>(s.size());
    }
    std::int64_t operator()(std::int64_t) const { return 8; }
    std::int64_t operator()(double) const { return 8; }
    std::int64_t operator()(bool) const { return 1; }
    std::int64_t operator()(const Payload& p) const { return p.size(); }
  };
  return std::visit(Sizer{}, v);
}

/// End-to-end checksum of an entity's content: keys plus every property
/// name and value (system properties — ETag, Timestamp — excluded, as they
/// are assigned server-side after the checksum is validated).
std::uint32_t entity_crc(const TableEntity& e) {
  Crc32c crc;
  crc.update(e.partition_key);
  crc.update(e.row_key);
  struct Hasher {
    Crc32c& crc;
    void operator()(const std::string& s) const { crc.update(s); }
    void operator()(std::int64_t v) const {
      crc.update_u64(static_cast<std::uint64_t>(v));
    }
    void operator()(double v) const {
      crc.update_u64(std::bit_cast<std::uint64_t>(v));
    }
    void operator()(bool v) const { crc.update_u64(v ? 1 : 0); }
    void operator()(const Payload& p) const { crc.update_u64(payload_crc(p)); }
  };
  for (const auto& [name, value] : e.properties) {
    crc.update(name);
    std::visit(Hasher{crc}, value);
  }
  return crc.value();
}

/// Per-entity integrity object id (never 0).
std::uint64_t entity_object_id(std::uint64_t part_hash,
                               const std::string& row_key) {
  const std::uint64_t id = mix_u64(
      kTableObjectSalt, mix_u64(part_hash, cluster::partition_hash(row_key)));
  return id != 0 ? id : 1;
}

}  // namespace

std::int64_t TableEntity::size() const {
  std::int64_t total = static_cast<std::int64_t>(partition_key.size()) +
                       static_cast<std::int64_t>(row_key.size()) + 8 /*ts*/;
  for (const auto& [name, value] : properties) {
    total += static_cast<std::int64_t>(name.size()) + property_size(value);
  }
  return total;
}

// -------------------------------------------------------------- helpers ----

TableService::TableData& TableService::require_table(
    std::string table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) throw NotFoundError("table not found: " + table);
  return it->second;
}

TableService::PartitionState& TableService::partition_state(
    TableData& t, std::string pk) {
  auto& slot = t.partitions[pk];
  if (!slot) slot = std::make_unique<PartitionState>(cluster_.simulation());
  return *slot;
}

void TableService::validate_entity(const TableEntity& e) const {
  if (e.partition_key.empty() || e.row_key.empty()) {
    throw InvalidArgumentError("PartitionKey and RowKey are required");
  }
  // 3 system properties (PartitionKey, RowKey, Timestamp) count toward 255.
  if (static_cast<int>(e.properties.size()) + 3 >
      lim::kMaxPropertiesPerEntity) {
    throw InvalidArgumentError("entity exceeds 255 properties");
  }
  if (e.size() > lim::kMaxEntityBytes) {
    throw InvalidArgumentError("entity exceeds 1 MB");
  }
}

void TableService::admit(TableData& t, std::string table,
                         std::string pk) {
  if (!partition_state(t, pk).throttle.try_consume()) {
    throw ServerBusyError("table '" + table + "' partition '" + pk +
                          "' exceeded 500 entities per second");
  }
}

sim::Task<void> TableService::journal_write(std::string table,
                                            std::string pk,
                                            std::int64_t bytes) {
  // Routed through the partition map: when the balancer (or crash failover)
  // moves the partition's bucket, its log appends follow it to the new
  // serving server's journal rather than staying pinned to the static home.
  const int server = cluster_.server_index(hash(table, pk));
  auto& journal = journals_[server];
  if (!journal) {
    journal = std::make_unique<sim::FlowLimiter>(
        cluster_.simulation(), cfg_.journal_bytes_per_sec,
        /*burst=*/32 * 1024.0);
  }
  co_await journal->acquire(static_cast<double>(bytes));
}

sim::Task<void> TableService::metadata_op(netsim::Nic& client,
                                          std::uint64_t part_hash,
                                          bool write) {
  obs::OpScope op(cluster_.simulation(), "table.meta");
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = sim::micros(300);
  cost.replicate = write;
  cost.disk_bytes = write ? 512 : 0;
  op.stage();
  co_await cluster_.execute(client, part_hash, cost);
}

// ------------------------------------------------------- table lifecycle ----

sim::Task<void> TableService::create_table(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  auto [it, inserted] = tables_.try_emplace(name);
  (void)it;
  if (!inserted) throw ConflictError("table already exists: " + name);
}

sim::Task<void> TableService::create_table_if_not_exists(
    netsim::Nic& client, std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  tables_.try_emplace(name);
}

sim::Task<void> TableService::delete_table(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  if (tables_.erase(name) == 0) {
    throw NotFoundError("table not found: " + name);
  }
}

sim::Task<bool> TableService::table_exists(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), false);
  co_return tables_.count(name) > 0;
}

// ------------------------------------------------------------ operations ----

sim::Task<void> TableService::insert(netsim::Nic& client,
                                     std::string table,
                                     TableEntity entity) {
  obs::OpScope op(cluster_.simulation(), "table.insert");
  validate_entity(entity);
  TableData& t = require_table(table);
  admit(t, table, entity.partition_key);

  const std::int64_t wire = entity.size() + cfg_.entity_envelope_bytes;
  op.set_bytes(wire);
  co_await journal_write(table, entity.partition_key, wire);
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = wire;
  cost.server_cpu = cfg_.insert_cpu;
  cost.replicate = true;
  cost.object_id =
      entity_object_id(hash(table, entity.partition_key), entity.row_key);
  cost.content_crc = entity_crc(entity);
  op.stage();
  co_await cluster_.execute(client, hash(table, entity.partition_key), cost);

  Key key{entity.partition_key, entity.row_key};
  if (t.entities.count(key)) {
    throw ConflictError("entity already exists: " + entity.partition_key +
                        "/" + entity.row_key);
  }
  entity.etag = next_etag();
  entity.timestamp = cluster_.simulation().now();
  t.entities.emplace(std::move(key), std::move(entity));
}

sim::Task<TableEntity> TableService::query(netsim::Nic& client,
                                           std::string table,
                                           std::string partition_key,
                                           std::string row_key) {
  obs::OpScope op(cluster_.simulation(), "table.query");
  TableData& t = require_table(table);
  admit(t, table, partition_key);

  auto it = t.entities.find(Key{partition_key, row_key});
  const std::int64_t wire =
      (it != t.entities.end() ? it->second.size() : 0) +
      cfg_.entity_envelope_bytes;
  op.set_bytes(wire);
  cluster::RequestCost cost;
  cost.request_bytes = 512;
  cost.response_bytes = wire;
  cost.server_cpu = cfg_.query_cpu;
  cost.object_id = entity_object_id(hash(table, partition_key), row_key);
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, hash(table, partition_key), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw ChecksumMismatchError("queried entity failed its checksum");
  }

  if (it == t.entities.end()) {
    throw NotFoundError("entity not found: " + partition_key + "/" + row_key);
  }
  co_return it->second;
}

sim::Task<std::vector<TableEntity>> TableService::query_partition(
    netsim::Nic& client, std::string table,
    std::string partition_key) {
  obs::OpScope op(cluster_.simulation(), "table.query_partition");
  TableData& t = require_table(table);
  admit(t, table, partition_key);

  std::vector<TableEntity> out;
  std::int64_t wire = cfg_.entity_envelope_bytes;
  for (auto it = t.entities.lower_bound(Key{partition_key, ""});
       it != t.entities.end() && it->first.first == partition_key; ++it) {
    out.push_back(it->second);
    wire += it->second.size() + 64;
  }
  // Partition scans and entity group transactions span many entities, each
  // its own integrity object — they stay untracked (no single object id
  // describes them). Their per-entity writes/reads are covered by the
  // point-operation paths.
  cluster::RequestCost cost;
  cost.request_bytes = 512;
  cost.response_bytes = wire;
  cost.server_cpu =
      cfg_.query_cpu + static_cast<sim::Duration>(out.size()) * sim::micros(50);
  op.set_bytes(wire);
  op.stage();
  co_await cluster_.execute(client, hash(table, partition_key), cost);
  co_return out;
}

sim::Task<void> TableService::update(netsim::Nic& client,
                                     std::string table,
                                     TableEntity entity,
                                     std::string if_match) {
  obs::OpScope op(cluster_.simulation(), "table.update");
  validate_entity(entity);
  TableData& t = require_table(table);
  admit(t, table, entity.partition_key);

  const std::int64_t wire = entity.size() + cfg_.entity_envelope_bytes;
  op.set_bytes(wire);
  co_await journal_write(table, entity.partition_key, wire);
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = wire;
  cost.server_cpu = cfg_.update_cpu;  // ETag check + read-modify-write
  cost.replicate = true;
  cost.object_id =
      entity_object_id(hash(table, entity.partition_key), entity.row_key);
  cost.content_crc = entity_crc(entity);
  op.stage();
  co_await cluster_.execute(client, hash(table, entity.partition_key), cost);

  auto it = t.entities.find(Key{entity.partition_key, entity.row_key});
  if (it == t.entities.end()) {
    throw NotFoundError("entity not found: " + entity.partition_key + "/" +
                        entity.row_key);
  }
  if (if_match != "*" && it->second.etag != if_match) {
    throw PreconditionFailedError("ETag mismatch on update");
  }
  entity.etag = next_etag();
  entity.timestamp = cluster_.simulation().now();
  it->second = std::move(entity);
}

sim::Task<void> TableService::insert_or_replace(netsim::Nic& client,
                                                std::string table,
                                                TableEntity entity) {
  obs::OpScope op(cluster_.simulation(), "table.insert_or_replace");
  validate_entity(entity);
  TableData& t = require_table(table);
  admit(t, table, entity.partition_key);

  const std::int64_t wire = entity.size() + cfg_.entity_envelope_bytes;
  op.set_bytes(wire);
  co_await journal_write(table, entity.partition_key, wire);
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = wire;
  cost.server_cpu = cfg_.update_cpu;
  cost.replicate = true;
  cost.object_id =
      entity_object_id(hash(table, entity.partition_key), entity.row_key);
  cost.content_crc = entity_crc(entity);
  op.stage();
  co_await cluster_.execute(client, hash(table, entity.partition_key), cost);

  entity.etag = next_etag();
  entity.timestamp = cluster_.simulation().now();
  Key key{entity.partition_key, entity.row_key};
  t.entities[std::move(key)] = std::move(entity);
}

sim::Task<void> TableService::merge(netsim::Nic& client,
                                    std::string table,
                                    TableEntity entity,
                                    std::string if_match) {
  obs::OpScope op(cluster_.simulation(), "table.merge");
  validate_entity(entity);
  TableData& t = require_table(table);
  admit(t, table, entity.partition_key);

  const std::int64_t wire = entity.size() + cfg_.entity_envelope_bytes;
  op.set_bytes(wire);
  co_await journal_write(table, entity.partition_key, wire);
  // The merged result's checksum versions the entity; compute the candidate
  // from the current state (precondition checks re-run after the awaits).
  std::uint32_t merged_crc = entity_crc(entity);
  if (auto pre = t.entities.find(Key{entity.partition_key, entity.row_key});
      pre != t.entities.end()) {
    TableEntity merged = pre->second;
    for (const auto& [name, value] : entity.properties) {
      merged.properties[name] = value;
    }
    merged_crc = entity_crc(merged);
  }
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = wire;
  cost.server_cpu = cfg_.update_cpu;
  cost.replicate = true;
  cost.object_id =
      entity_object_id(hash(table, entity.partition_key), entity.row_key);
  cost.content_crc = merged_crc;
  op.stage();
  co_await cluster_.execute(client, hash(table, entity.partition_key), cost);

  auto it = t.entities.find(Key{entity.partition_key, entity.row_key});
  if (it == t.entities.end()) {
    throw NotFoundError("entity not found: " + entity.partition_key + "/" +
                        entity.row_key);
  }
  if (if_match != "*" && it->second.etag != if_match) {
    throw PreconditionFailedError("ETag mismatch on merge");
  }
  for (auto& [name, value] : entity.properties) {
    it->second.properties[name] = value;
  }
  // Validate the merged result still fits the limits.
  validate_entity(it->second);
  it->second.etag = next_etag();
  it->second.timestamp = cluster_.simulation().now();
}

sim::Task<void> TableService::erase(netsim::Nic& client,
                                    std::string table,
                                    std::string partition_key,
                                    std::string row_key,
                                    std::string if_match) {
  obs::OpScope op(cluster_.simulation(), "table.delete");
  TableData& t = require_table(table);
  admit(t, table, partition_key);

  co_await journal_write(table, partition_key, 512);
  cluster::RequestCost cost;
  cost.request_bytes = 512;
  cost.disk_bytes = 512;
  cost.server_cpu = cfg_.delete_cpu;
  cost.replicate = true;
  cost.object_id = entity_object_id(hash(table, partition_key), row_key);
  cost.content_crc = 0;  // tombstone version
  op.stage();
  co_await cluster_.execute(client, hash(table, partition_key), cost);

  auto it = t.entities.find(Key{partition_key, row_key});
  if (it == t.entities.end()) {
    throw NotFoundError("entity not found: " + partition_key + "/" + row_key);
  }
  if (if_match != "*" && it->second.etag != if_match) {
    throw PreconditionFailedError("ETag mismatch on delete");
  }
  t.entities.erase(it);
}

sim::Task<void> TableService::execute_batch(netsim::Nic& client,
                                            std::string table,
                                            TableBatch batch) {
  obs::OpScope batch_scope(cluster_.simulation(), "table.batch");
  using OpKind = TableBatch::OpKind;
  if (batch.empty()) {
    throw InvalidArgumentError("batch must contain at least one operation");
  }
  if (batch.size() > 100) {
    throw InvalidArgumentError("batch exceeds 100 operations");
  }
  const std::string& pk = batch.operations().front().entity.partition_key;
  std::int64_t total_wire = cfg_.entity_envelope_bytes;
  {
    std::set<std::string> rows;
    for (const auto& op : batch.operations()) {
      if (op.entity.partition_key != pk) {
        throw InvalidArgumentError(
            "entity group transactions must target a single partition");
      }
      if (!rows.insert(op.entity.row_key).second) {
        throw InvalidArgumentError(
            "at most one operation per row key in a batch");
      }
      if (op.kind == OpKind::kDelete) {
        if (op.entity.partition_key.empty() || op.entity.row_key.empty()) {
          throw InvalidArgumentError("PartitionKey and RowKey are required");
        }
      } else {
        validate_entity(op.entity);
      }
      total_wire += op.entity.size() + 128;
    }
  }
  if (total_wire > 4ll << 20) {
    throw InvalidArgumentError("batch payload exceeds 4 MB");
  }

  TableData& t = require_table(table);
  // Every entity in the group counts against the partition's 500/s target,
  // atomically: the whole batch is admitted or rejected.
  if (!partition_state(t, pk).throttle.try_consume(
          static_cast<std::int64_t>(batch.size()))) {
    throw ServerBusyError("table '" + table + "' partition '" + pk +
                          "' exceeded 500 entities per second");
  }

  co_await journal_write(table, pk, total_wire);
  cluster::RequestCost cost;
  cost.request_bytes = total_wire;
  cost.disk_bytes = total_wire;
  cost.server_cpu =
      cfg_.insert_cpu +
      static_cast<sim::Duration>(batch.size()) * sim::millis(1);
  cost.replicate = true;
  batch_scope.set_bytes(total_wire);
  batch_scope.stage();
  co_await cluster_.execute(client, hash(table, pk), cost);

  // Atomic commit: first verify every precondition against the current
  // state (no suspension points below), then apply every mutation. A
  // failure between the two loops leaves the table untouched.
  for (const auto& op : batch.operations()) {
    const Key key{op.entity.partition_key, op.entity.row_key};
    const auto it = t.entities.find(key);
    switch (op.kind) {
      case OpKind::kInsert:
        if (it != t.entities.end()) {
          throw ConflictError("entity already exists: " + op.entity.row_key);
        }
        break;
      case OpKind::kUpdate:
      case OpKind::kMerge:
      case OpKind::kDelete:
        if (it == t.entities.end()) {
          throw NotFoundError("entity not found: " + op.entity.row_key);
        }
        if (op.if_match != "*" && it->second.etag != op.if_match) {
          throw PreconditionFailedError("ETag mismatch in batch on " +
                                        op.entity.row_key);
        }
        break;
      case OpKind::kInsertOrReplace:
        break;
    }
  }
  for (auto& op : batch.operations()) {
    Key key{op.entity.partition_key, op.entity.row_key};
    switch (op.kind) {
      case OpKind::kInsert:
      case OpKind::kUpdate:
      case OpKind::kInsertOrReplace: {
        TableEntity e = op.entity;
        e.etag = next_etag();
        e.timestamp = cluster_.simulation().now();
        t.entities[std::move(key)] = std::move(e);
        break;
      }
      case OpKind::kMerge: {
        TableEntity& target = t.entities[key];
        for (const auto& [name, value] : op.entity.properties) {
          target.properties[name] = value;
        }
        target.etag = next_etag();
        target.timestamp = cluster_.simulation().now();
        break;
      }
      case OpKind::kDelete:
        t.entities.erase(key);
        break;
    }
  }
}

}  // namespace azure
