// Server-side Table storage service: schemaless entities keyed by
// (PartitionKey, RowKey), with ETag-guarded updates.
//
// Semantics from the paper and the 2011/2012 API docs:
//  * entities are bags of up to 255 (Name, Value) properties, <= 1 MB;
//  * a table has no schema — two entities may carry different properties;
//  * entities with the same PartitionKey live together on one partition
//    server; a partition serves at most 500 entities per second;
//  * updates take an ETag; "*" forces an unconditional update (the paper
//    only benchmarks unconditional updates).
//
// Timing: table mutations additionally flow through a per-partition-server
// commit journal (index + log writes), which is what makes large entities
// degrade sharply as concurrent writers multiply (Fig. 8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "azure/common/errors.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/payload.hpp"
#include "cluster/hash.hpp"
#include "cluster/storage_cluster.hpp"
#include "netsim/nic.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/task.hpp"

namespace azure {

struct TableServiceConfig {
  /// Server work per operation (calibrated to 2012-era Azure table
  /// latencies of tens of milliseconds — also what keeps ~100 sequential
  /// workers under the account's 5,000 tx/s target, as in the paper).
  /// Update pays an ETag check + read-modify-write; Query is a pure point
  /// read; hence Query < Insert ~ Delete < Update (Fig. 8/9 ordering).
  sim::Duration insert_cpu = sim::millis(22);
  sim::Duration query_cpu = sim::millis(20);
  sim::Duration update_cpu = sim::millis(30);
  sim::Duration delete_cpu = sim::millis(22);

  /// Per-partition-server table commit journal bandwidth. Mutations append
  /// the full entity to the journal; this shared stream is what saturates
  /// under many concurrent writers with 32/64 KB entities.
  double journal_bytes_per_sec = 4.0 * 1024 * 1024;

  /// OData/XML wire envelope per entity (the 2011 API talks AtomPub).
  std::int64_t entity_envelope_bytes = 1024;
};

/// One property value. Azure tables are schemaless: any entity can hold any
/// mix of property types.
using PropertyValue =
    std::variant<std::string, std::int64_t, double, bool, Payload>;

/// A table entity: PartitionKey + RowKey plus arbitrary properties.
struct TableEntity {
  std::string partition_key;
  std::string row_key;
  std::string etag;               // set by the service
  sim::TimePoint timestamp = 0;   // set by the service
  std::map<std::string, PropertyValue> properties;

  /// Approximate serialized size (keys + property names and values).
  std::int64_t size() const;
};

/// An Entity Group Transaction (the 2011 API's batch): up to 100 operations
/// on ONE partition, executed atomically — either every operation commits
/// or none does. Total payload is limited to 4 MB.
class TableBatch {
 public:
  enum class OpKind { kInsert, kUpdate, kMerge, kDelete, kInsertOrReplace };
  struct Op {
    OpKind kind;
    TableEntity entity;     // for kDelete only the keys matter
    std::string if_match;   // update/merge/delete condition ("*" = any)
  };

  void insert(TableEntity e) {
    ops_.push_back(Op{OpKind::kInsert, std::move(e), {}});
  }
  void update(TableEntity e, std::string if_match = "*") {
    ops_.push_back(Op{OpKind::kUpdate, std::move(e), std::move(if_match)});
  }
  void merge(TableEntity e, std::string if_match = "*") {
    ops_.push_back(Op{OpKind::kMerge, std::move(e), std::move(if_match)});
  }
  void insert_or_replace(TableEntity e) {
    ops_.push_back(Op{OpKind::kInsertOrReplace, std::move(e), {}});
  }
  void erase(std::string partition_key, std::string row_key,
             std::string if_match = "*") {
    TableEntity keys;
    keys.partition_key = std::move(partition_key);
    keys.row_key = std::move(row_key);
    ops_.push_back(Op{OpKind::kDelete, std::move(keys), std::move(if_match)});
  }

  const std::vector<Op>& operations() const noexcept { return ops_; }
  bool empty() const noexcept { return ops_.empty(); }
  std::size_t size() const noexcept { return ops_.size(); }

 private:
  std::vector<Op> ops_;
};

class TableService {
 public:
  TableService(cluster::StorageCluster& cluster, const TableServiceConfig& cfg)
      : cluster_(cluster), cfg_(cfg) {}

  const TableServiceConfig& config() const noexcept { return cfg_; }

  sim::Task<void> create_table(netsim::Nic& client, std::string name);
  sim::Task<void> create_table_if_not_exists(netsim::Nic& client,
                                             std::string name);
  sim::Task<void> delete_table(netsim::Nic& client, std::string name);
  sim::Task<bool> table_exists(netsim::Nic& client, std::string name);

  /// Inserts a new entity; Conflict if (PartitionKey, RowKey) exists.
  sim::Task<void> insert(netsim::Nic& client, std::string table,
                         TableEntity entity);

  /// Point query by keys; NotFound if absent.
  sim::Task<TableEntity> query(netsim::Nic& client, std::string table,
                               std::string partition_key,
                               std::string row_key);

  /// Returns all entities of one partition (a partition scan).
  sim::Task<std::vector<TableEntity>> query_partition(
      netsim::Nic& client, std::string table,
      std::string partition_key);

  /// Replaces an existing entity. `if_match` must equal the stored ETag or
  /// be "*" for an unconditional update.
  sim::Task<void> update(netsim::Nic& client, std::string table,
                         TableEntity entity, std::string if_match);

  /// Inserts or replaces unconditionally.
  sim::Task<void> insert_or_replace(netsim::Nic& client,
                                    std::string table,
                                    TableEntity entity);

  /// Merges the given properties into an existing entity.
  sim::Task<void> merge(netsim::Nic& client, std::string table,
                        TableEntity entity, std::string if_match);

  /// Deletes an entity (ETag-guarded; "*" for unconditional).
  sim::Task<void> erase(netsim::Nic& client, std::string table,
                        std::string partition_key,
                        std::string row_key,
                        std::string if_match = "*");

  /// Executes an Entity Group Transaction atomically: all operations must
  /// target the same partition, there may be at most 100 of them with at
  /// most one operation per row key, and the total payload must fit 4 MB.
  /// On any validation or precondition failure nothing is applied.
  sim::Task<void> execute_batch(netsim::Nic& client, std::string table,
                                TableBatch batch);

 private:
  using Key = std::pair<std::string, std::string>;
  struct PartitionState {
    explicit PartitionState(sim::Simulation& sim)
        : throttle(sim, limits::kPartitionEntitiesPerSec) {}
    sim::WindowCounter throttle;
  };
  struct TableData {
    std::map<Key, TableEntity> entities;
    std::map<std::string, std::unique_ptr<PartitionState>> partitions;
  };

  TableData& require_table(std::string table);
  PartitionState& partition_state(TableData& t, std::string pk);
  void validate_entity(const TableEntity& e) const;
  void admit(TableData& t, std::string table, std::string pk);
  std::uint64_t hash(std::string table, std::string pk) const {
    return cluster::partition_hash(table, pk);
  }
  std::string next_etag() { return "W/\"" + std::to_string(++etag_counter_) + "\""; }

  /// Journal write on the partition server owning (table, pk).
  sim::Task<void> journal_write(std::string table,
                                std::string pk, std::int64_t bytes);

  sim::Task<void> metadata_op(netsim::Nic& client, std::uint64_t part_hash,
                              bool write);

  cluster::StorageCluster& cluster_;
  TableServiceConfig cfg_;
  std::map<std::string, TableData> tables_;
  /// One commit journal per partition server (created lazily).
  std::map<int, std::unique_ptr<sim::FlowLimiter>> journals_;
  std::uint64_t etag_counter_ = 0;
};

}  // namespace azure
