// Server-side Queue storage service.
//
// Semantics reproduced from the paper and the 2011/2012 API docs:
//  * FIFO is NOT guaranteed (a deterministic scramble knob emulates this);
//  * GetMessage hides the message for a visibility timeout and returns a pop
//    receipt; un-deleted messages reappear;
//  * PeekMessage reads without hiding (and without replica synchronization,
//    making it the cheapest operation);
//  * messages expire after 7 days; 64 KB max encoded size with 48 KB
//    (49,152 bytes) of usable payload;
//  * one queue = one partition: at most 500 messages/s, and the measured
//    cost ordering is Get > Put > Peek.
//
// The consistently-slow 16 KB GetMessage the paper reports ("we do not know
// the reason behind this") is reproduced by an explicit service-time quirk,
// switchable via QueueServiceConfig::model_16k_get_anomaly.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "azure/common/errors.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/payload.hpp"
#include "cluster/hash.hpp"
#include "cluster/storage_cluster.hpp"
#include "netsim/nic.hpp"
#include "simcore/random.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/resource.hpp"
#include "simcore/task.hpp"

namespace azure {

struct QueueServiceConfig {
  /// Server work per operation (on top of cluster request overheads),
  /// calibrated to 2011/2012-era HTTP round-trip costs — which is also why
  /// ~100 sequential workers stay under the account's 5,000 tx/s target,
  /// as the paper observed. Put synchronizes the insert across replicas;
  /// Peek needs no replica synchronization; Get additionally maintains
  /// visibility state on all copies — hence Peek < Put < Get.
  sim::Duration put_cpu = sim::millis(10);
  sim::Duration peek_cpu = sim::millis(17);
  sim::Duration get_cpu = sim::millis(14);
  sim::Duration delete_cpu = sim::millis(8);

  /// Mutations append to the queue's message log, which is serialized per
  /// queue (one queue = one partition). This serialization is what makes a
  /// *shared* queue slower than per-worker queues (Fig. 7 vs Fig. 6) and
  /// why raising the think time cuts per-op time by up to ~2x (lower
  /// arrival rate => less waiting behind the commit log).
  sim::Duration put_commit_time = sim::millis(9);
  sim::Duration get_commit_time = sim::millis(11);
  sim::Duration delete_commit_time = sim::millis(7);

  /// Default visibility timeout applied by GetMessage.
  sim::Duration default_visibility_timeout = sim::seconds(30);

  /// Per-message metadata bytes on the wire (headers, receipt, timestamps).
  std::int64_t message_metadata_bytes = 512;

  /// Emulate the paper's consistently-observed slow GetMessage at 16 KB
  /// payloads (applied to payloads in [12 KiB, 24 KiB)).
  bool model_16k_get_anomaly = true;
  double get_16k_anomaly_factor = 2.6;

  /// Probability that a Get/Peek returns the second-oldest visible message
  /// instead of the oldest — Azure queues do not guarantee FIFO.
  double fifo_violation_probability = 0.02;

  /// Deterministic seed for the FIFO scramble.
  std::uint64_t seed = 0x51EE7;
};

/// A message as returned to clients.
struct QueueMessage {
  std::uint64_t id = 0;
  Payload body;
  std::string pop_receipt;       // empty for peeked messages
  sim::TimePoint insertion_time = 0;
  sim::TimePoint expiration_time = 0;
  int dequeue_count = 0;
};

class QueueService {
 public:
  QueueService(cluster::StorageCluster& cluster, const QueueServiceConfig& cfg)
      : cluster_(cluster), cfg_(cfg), rng_(cfg.seed) {}

  const QueueServiceConfig& config() const noexcept { return cfg_; }

  sim::Task<void> create_queue(netsim::Nic& client, std::string name);
  sim::Task<void> create_queue_if_not_exists(netsim::Nic& client,
                                             std::string name);
  sim::Task<void> delete_queue(netsim::Nic& client, std::string name);
  sim::Task<bool> queue_exists(netsim::Nic& client, std::string name);
  sim::Task<void> clear_queue(netsim::Nic& client, std::string name);

  /// Adds a message. `ttl` defaults to (and is capped at) 7 days.
  sim::Task<void> put_message(netsim::Nic& client, std::string name,
                              Payload body, sim::Duration ttl = 0);

  /// Dequeues the (approximately) oldest visible message, hiding it for
  /// `visibility_timeout`. Returns nullopt when no message is visible.
  sim::Task<std::optional<QueueMessage>> get_message(
      netsim::Nic& client, std::string name,
      sim::Duration visibility_timeout = 0);

  /// Reads without hiding. Returns nullopt when no message is visible.
  sim::Task<std::optional<QueueMessage>> peek_message(netsim::Nic& client,
                                                      std::string name);

  /// Deletes a previously-gotten message; the pop receipt must still match
  /// (it is invalidated when the message reappears and is gotten again).
  sim::Task<void> delete_message(netsim::Nic& client, std::string name,
                                 std::uint64_t id,
                                 std::string pop_receipt);

  /// UpdateMessage (added in the 2011-08 API): extends/changes the
  /// visibility timeout of a previously-gotten message and optionally
  /// replaces its content — the lease-renewal pattern for long-running
  /// tasks. Requires a valid pop receipt; returns the refreshed message
  /// with a new receipt.
  sim::Task<QueueMessage> update_message(
      netsim::Nic& client, std::string name, std::uint64_t id,
      std::string pop_receipt, sim::Duration visibility_timeout,
      std::optional<Payload> new_body = std::nullopt);

  /// ApproximateMessageCount: includes invisible (gotten) messages.
  sim::Task<std::int64_t> get_message_count(netsim::Nic& client,
                                            std::string name);

  /// Number of re-deliveries across all queues: GetMessage returning a
  /// message whose visibility timeout expired un-deleted (dequeue_count of
  /// the delivery > 1). Under fault injection this is the observable count
  /// of consumer crashes the visibility-timeout mechanism absorbed.
  std::int64_t redeliveries() const noexcept { return redeliveries_; }

 private:
  struct StoredMessage {
    std::uint64_t id;
    Payload body;
    sim::TimePoint insertion_time;
    sim::TimePoint expiration_time;
    sim::TimePoint visible_from;  // > now while hidden
    int dequeue_count = 0;
    std::uint64_t receipt_serial = 0;
  };

  struct QueueData {
    explicit QueueData(sim::Simulation& sim)
        : throttle(sim, limits::kQueueMessagesPerSec), commit_lock(sim, 1) {}
    std::deque<StoredMessage> messages;
    sim::WindowCounter throttle;
    sim::Resource commit_lock;  // serialized message-log appends
    /// Count of acknowledged mutations — versions the queue's integrity
    /// checksum (one queue = one partition = one tracked object).
    std::uint64_t mutation_serial = 0;
  };

  QueueData& require_queue(std::string name);
  std::int64_t encoded_size(std::int64_t payload) const noexcept {
    // Queue message bodies travel base64-encoded plus metadata.
    return (payload * 4 + 2) / 3 + cfg_.message_metadata_bytes;
  }
  void admit(QueueData& q, std::string name);
  void expire(QueueData& q);
  /// Index of the visible message a consumer sees first (with the FIFO
  /// scramble), or npos.
  std::size_t pick_visible(QueueData& q);

  sim::Task<void> metadata_op(netsim::Nic& client, std::uint64_t part_hash,
                              bool write);

  /// Per-queue integrity object id (salted partition hash; never 0).
  std::uint64_t object_id(std::uint64_t part_hash) const;
  /// Checksum of the queue's state after its next acknowledged mutation.
  std::uint32_t next_state_crc(const QueueData& q,
                               std::uint64_t oid) const noexcept;

  cluster::StorageCluster& cluster_;
  QueueServiceConfig cfg_;
  sim::Random rng_;
  std::map<std::string, std::unique_ptr<QueueData>> queues_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_receipt_ = 1;
  std::int64_t redeliveries_ = 0;
};

}  // namespace azure
