#include "azure/queue/queue_service.hpp"

#include <algorithm>

#include "azure/common/checksum.hpp"
#include "obs/observer.hpp"

namespace azure {
namespace lim = azure::limits;

namespace {
/// Service salt for integrity object ids.
constexpr std::uint64_t kQueueObjectSalt = 0x0CEE'CEE0'51EE'7000ull;
}  // namespace

// --------------------------------------------------------------- helpers ----

std::uint64_t QueueService::object_id(std::uint64_t part_hash) const {
  const std::uint64_t id = mix_u64(kQueueObjectSalt, part_hash);
  return id != 0 ? id : 1;
}

std::uint32_t QueueService::next_state_crc(const QueueData& q,
                                           std::uint64_t oid) const noexcept {
  // The queue's message log has no single content digest worth modelling;
  // its version checksum is a hash of (queue identity, mutation count).
  // Concurrent mutations racing to the same serial produce the same
  // candidate checksum — harmless, since equal checksums compare equal.
  return static_cast<std::uint32_t>(mix_u64(oid, q.mutation_serial + 1));
}

QueueService::QueueData& QueueService::require_queue(std::string name) {
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    throw NotFoundError("queue not found: " + name);
  }
  return *it->second;
}

void QueueService::admit(QueueData& q, std::string name) {
  if (!q.throttle.try_consume()) {
    throw ServerBusyError("queue '" + name +
                          "' exceeded 500 messages per second");
  }
}

void QueueService::expire(QueueData& q) {
  const sim::TimePoint now = cluster_.simulation().now();
  // A message's TTL is a guaranteed lifetime: Azure computes ExpirationTime
  // = insertion + TTL and the message stays retrievable *through* that
  // instant — only strictly-later probes sweep it. `<= now` here would
  // silently drop a message whose TTL lapses exactly at the probe.
  std::erase_if(q.messages, [now](const StoredMessage& m) {
    return m.expiration_time < now;
  });
}

std::size_t QueueService::pick_visible(QueueData& q) {
  const sim::TimePoint now = cluster_.simulation().now();
  // `visible_from <= now` is the correct boundary: visible_from models
  // Azure's TimeNextVisible — the instant the message *becomes* visible —
  // so a consumer probing exactly then must see it (audited alongside the
  // expiry boundary above; tests lock both edges in).
  std::size_t first = q.messages.size();
  std::size_t second = q.messages.size();
  for (std::size_t i = 0; i < q.messages.size(); ++i) {
    if (q.messages[i].visible_from <= now) {
      if (first == q.messages.size()) {
        first = i;
      } else {
        second = i;
        break;
      }
    }
  }
  if (first == q.messages.size()) return first;
  if (second != q.messages.size() &&
      rng_.next_double() < cfg_.fifo_violation_probability) {
    return second;  // FIFO is not guaranteed
  }
  return first;
}

sim::Task<void> QueueService::metadata_op(netsim::Nic& client,
                                          std::uint64_t part_hash,
                                          bool write) {
  obs::OpScope op(cluster_.simulation(), "queue.meta");
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = sim::micros(300);
  cost.replicate = write;
  cost.disk_bytes = write ? 512 : 0;
  op.stage();
  co_await cluster_.execute(client, part_hash, cost);
}

// ------------------------------------------------------- queue lifecycle ----

sim::Task<void> QueueService::create_queue(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  auto [it, inserted] = queues_.try_emplace(name, nullptr);
  if (!inserted) throw ConflictError("queue already exists: " + name);
  it->second = std::make_unique<QueueData>(cluster_.simulation());
}

sim::Task<void> QueueService::create_queue_if_not_exists(
    netsim::Nic& client, std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  auto [it, inserted] = queues_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<QueueData>(cluster_.simulation());
}

sim::Task<void> QueueService::delete_queue(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  if (queues_.erase(name) == 0) {
    throw NotFoundError("queue not found: " + name);
  }
}

sim::Task<bool> QueueService::queue_exists(netsim::Nic& client,
                                           std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), false);
  co_return queues_.count(name) > 0;
}

sim::Task<void> QueueService::clear_queue(netsim::Nic& client,
                                          std::string name) {
  co_await metadata_op(client, cluster::partition_hash(name), true);
  require_queue(name).messages.clear();
}

// ------------------------------------------------------------ operations ----

sim::Task<void> QueueService::put_message(netsim::Nic& client,
                                          std::string name,
                                          Payload body, sim::Duration ttl) {
  obs::OpScope op(cluster_.simulation(), "queue.put");
  if (body.size() > lim::kMaxMessagePayloadBytes) {
    throw InvalidArgumentError(
        "message payload exceeds 49,152 usable bytes (64 KB encoded)");
  }
  QueueData& q = require_queue(name);
  admit(q, name);

  const std::int64_t wire = encoded_size(body.size());
  const std::uint64_t oid = object_id(cluster::partition_hash(name));
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = wire;
  cost.server_cpu = cfg_.put_cpu;
  cost.replicate = true;  // inserts synchronize across the 3 replicas
  cost.object_id = oid;
  cost.content_crc = next_state_crc(q, oid);
  op.set_bytes(wire);
  op.stage();
  co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  ++q.mutation_serial;
  {
    const sim::TimePoint commit_start = cluster_.simulation().now();
    auto lock = co_await q.commit_lock.acquire();
    co_await cluster_.simulation().delay(cfg_.put_commit_time);
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->emit(obs::SpanKind::kLogCommit, op.ctx(), commit_start,
              cluster_.simulation().now(), o->label("queue.put"));
    }
  }

  const sim::TimePoint now = cluster_.simulation().now();
  const sim::Duration kMaxTtl = lim::kMessageTtlSeconds * sim::kSecond;
  const sim::Duration effective_ttl =
      (ttl <= 0 || ttl > kMaxTtl) ? kMaxTtl : ttl;
  expire(q);
  StoredMessage m;
  m.id = next_id_++;
  m.body = std::move(body);
  m.insertion_time = now;
  m.expiration_time = now + effective_ttl;
  m.visible_from = now;
  q.messages.push_back(std::move(m));
}

sim::Task<std::optional<QueueMessage>> QueueService::get_message(
    netsim::Nic& client, std::string name,
    sim::Duration visibility_timeout) {
  obs::OpScope op(cluster_.simulation(), "queue.get");
  QueueData& q = require_queue(name);
  admit(q, name);

  // The server must locate the message, mark it invisible, and synchronize
  // that state change across all replicas — the most expensive operation.
  // Timing uses an *estimate* of the message about to be served; the actual
  // claim happens atomically after all awaits, so concurrent consumers can
  // never receive the same message.
  expire(q);
  const sim::TimePoint probe_now = cluster_.simulation().now();
  const StoredMessage* estimate = nullptr;
  for (const StoredMessage& m : q.messages) {
    if (m.visible_from <= probe_now) {
      estimate = &m;
      break;
    }
  }
  const bool probably_found = estimate != nullptr;
  const std::int64_t wire =
      probably_found ? encoded_size(estimate->body.size()) : 256;

  sim::Duration cpu = cfg_.get_cpu;
  if (probably_found && cfg_.model_16k_get_anomaly) {
    const std::int64_t sz = estimate->body.size();
    if (sz >= 12 * 1024 && sz < 24 * 1024) {
      cpu = static_cast<sim::Duration>(static_cast<double>(cpu) *
                                       cfg_.get_16k_anomaly_factor);
    }
  }
  estimate = nullptr;  // invalidated by the awaits below

  const std::uint64_t oid = object_id(cluster::partition_hash(name));
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = wire;
  cost.server_cpu = cpu;
  cost.disk_bytes = probably_found ? 512 : 0;
  cost.replicate = probably_found;  // visibility state must reach all copies
  cost.object_id = oid;
  if (probably_found) cost.content_crc = next_state_crc(q, oid);
  op.set_bytes(wire);
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    // The message body failed its end-to-end check client-side. The claim
    // below never happens, so the message stays hidden until its visibility
    // timeout expires and is redelivered intact.
    op.set_error();
    throw ChecksumMismatchError("GetMessage response failed checksum");
  }
  if (probably_found) {
    ++q.mutation_serial;
    const sim::TimePoint commit_start = cluster_.simulation().now();
    auto lock = co_await q.commit_lock.acquire();
    co_await cluster_.simulation().delay(cfg_.get_commit_time);
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->emit(obs::SpanKind::kLogCommit, op.ctx(), commit_start,
              cluster_.simulation().now(), o->label("queue.get"));
    }
  }

  // Atomic claim (no suspension points from here to the state change).
  expire(q);
  const std::size_t idx = pick_visible(q);
  if (idx >= q.messages.size()) co_return std::nullopt;
  StoredMessage& m = q.messages[idx];
  const sim::TimePoint now = cluster_.simulation().now();
  const sim::Duration vis = visibility_timeout > 0
                                ? visibility_timeout
                                : cfg_.default_visibility_timeout;
  m.visible_from = now + vis;
  ++m.dequeue_count;
  if (m.dequeue_count > 1) {
    ++redeliveries_;
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->metrics().counter("queue.redeliveries").add(1);
    }
  }
  m.receipt_serial = next_receipt_++;

  QueueMessage out;
  out.id = m.id;
  out.body = m.body;
  out.pop_receipt = "pr-" + std::to_string(m.receipt_serial);
  out.insertion_time = m.insertion_time;
  out.expiration_time = m.expiration_time;
  out.dequeue_count = m.dequeue_count;
  co_return out;
}

sim::Task<std::optional<QueueMessage>> QueueService::peek_message(
    netsim::Nic& client, std::string name) {
  obs::OpScope op(cluster_.simulation(), "queue.peek");
  QueueData& q = require_queue(name);
  admit(q, name);

  expire(q);
  const sim::TimePoint probe_now = cluster_.simulation().now();
  std::int64_t wire = 256;
  for (const StoredMessage& m : q.messages) {
    if (m.visible_from <= probe_now) {
      wire = encoded_size(m.body.size());
      break;
    }
  }

  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = wire;
  cost.server_cpu = cfg_.peek_cpu;
  cost.replicate = false;  // pure read: no server-side synchronization
  cost.object_id = object_id(cluster::partition_hash(name));
  op.set_bytes(wire);
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw ChecksumMismatchError("PeekMessage response failed checksum");
  }

  // Re-pick after the awaits: the deque may have changed meanwhile.
  expire(q);
  const std::size_t idx = pick_visible(q);
  if (idx >= q.messages.size()) co_return std::nullopt;
  const StoredMessage& m = q.messages[idx];
  QueueMessage out;
  out.id = m.id;
  out.body = m.body;
  out.insertion_time = m.insertion_time;
  out.expiration_time = m.expiration_time;
  out.dequeue_count = m.dequeue_count;
  co_return out;
}

sim::Task<void> QueueService::delete_message(netsim::Nic& client,
                                             std::string name,
                                             std::uint64_t id,
                                             std::string pop_receipt) {
  obs::OpScope op(cluster_.simulation(), "queue.delete");
  QueueData& q = require_queue(name);
  admit(q, name);

  const std::uint64_t oid = object_id(cluster::partition_hash(name));
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.server_cpu = cfg_.delete_cpu;
  cost.disk_bytes = 512;
  cost.replicate = true;
  cost.object_id = oid;
  cost.content_crc = next_state_crc(q, oid);
  op.stage();
  co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  ++q.mutation_serial;
  {
    const sim::TimePoint commit_start = cluster_.simulation().now();
    auto lock = co_await q.commit_lock.acquire();
    co_await cluster_.simulation().delay(cfg_.delete_commit_time);
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->emit(obs::SpanKind::kLogCommit, op.ctx(), commit_start,
              cluster_.simulation().now(), o->label("queue.delete"));
    }
  }

  auto it = std::find_if(q.messages.begin(), q.messages.end(),
                         [id](const StoredMessage& m) { return m.id == id; });
  if (it == q.messages.end()) {
    throw NotFoundError("message not found in queue: " + name);
  }
  if ("pr-" + std::to_string(it->receipt_serial) != pop_receipt) {
    throw PreconditionFailedError(
        "pop receipt no longer valid (message was re-gotten)");
  }
  q.messages.erase(it);
}

sim::Task<QueueMessage> QueueService::update_message(
    netsim::Nic& client, std::string name, std::uint64_t id,
    std::string pop_receipt, sim::Duration visibility_timeout,
    std::optional<Payload> new_body) {
  obs::OpScope op(cluster_.simulation(), "queue.update");
  if (new_body && new_body->size() > lim::kMaxMessagePayloadBytes) {
    throw InvalidArgumentError(
        "message payload exceeds 49,152 usable bytes (64 KB encoded)");
  }
  QueueData& q = require_queue(name);
  admit(q, name);

  const std::int64_t wire =
      new_body ? encoded_size(new_body->size()) : 256;
  const std::uint64_t oid = object_id(cluster::partition_hash(name));
  cluster::RequestCost cost;
  cost.request_bytes = wire;
  cost.disk_bytes = new_body ? wire : 512;
  cost.server_cpu = cfg_.put_cpu;
  cost.replicate = true;  // visibility/content change reaches all copies
  cost.object_id = oid;
  cost.content_crc = next_state_crc(q, oid);
  op.set_bytes(wire);
  op.stage();
  co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  ++q.mutation_serial;
  {
    const sim::TimePoint commit_start = cluster_.simulation().now();
    auto lock = co_await q.commit_lock.acquire();
    co_await cluster_.simulation().delay(cfg_.put_commit_time);
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->emit(obs::SpanKind::kLogCommit, op.ctx(), commit_start,
              cluster_.simulation().now(), o->label("queue.update"));
    }
  }

  auto it = std::find_if(q.messages.begin(), q.messages.end(),
                         [id](const StoredMessage& m) { return m.id == id; });
  if (it == q.messages.end()) {
    throw NotFoundError("message not found in queue: " + name);
  }
  if ("pr-" + std::to_string(it->receipt_serial) != pop_receipt) {
    throw PreconditionFailedError(
        "pop receipt no longer valid (message was re-gotten)");
  }
  it->visible_from = cluster_.simulation().now() + visibility_timeout;
  if (new_body) it->body = std::move(*new_body);
  it->receipt_serial = next_receipt_++;

  QueueMessage out;
  out.id = it->id;
  out.body = it->body;
  out.pop_receipt = "pr-" + std::to_string(it->receipt_serial);
  out.insertion_time = it->insertion_time;
  out.expiration_time = it->expiration_time;
  out.dequeue_count = it->dequeue_count;
  co_return out;
}

sim::Task<std::int64_t> QueueService::get_message_count(
    netsim::Nic& client, std::string name) {
  obs::OpScope op(cluster_.simulation(), "queue.count");
  QueueData& q = require_queue(name);
  admit(q, name);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = sim::micros(500);
  cost.object_id = object_id(cluster::partition_hash(name));
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, cluster::partition_hash(name), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw ChecksumMismatchError("GetMessageCount response failed checksum");
  }
  expire(q);
  co_return static_cast<std::int64_t>(q.messages.size());
}

}  // namespace azure
