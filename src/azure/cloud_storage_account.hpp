// Client-side SDK facade, mirroring the Windows Azure storage client
// library's object model:
//
//   CloudStorageAccount account(env, nic);
//   auto blobs  = account.create_cloud_blob_client();
//   auto queues = account.create_cloud_queue_client();
//   auto tables = account.create_cloud_table_client();
//
//   auto container = blobs.get_container_reference("data");
//   co_await container.create_if_not_exists();
//   auto blob = container.get_block_blob_reference("results");
//   co_await blob.upload_text(Payload::bytes("hello"));
//
// Every operation is a sim::Task awaited from a simulated process; timing
// and throttling come from the service + cluster models underneath.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "azure/environment.hpp"
#include "netsim/nic.hpp"

namespace azure {

class CloudBlobClient;
class CloudBlobContainer;
class CloudBlockBlob;
class CloudPageBlob;
class CloudQueueClient;
class CloudQueue;
class CloudTableClient;
class CloudTable;
class CloudCacheClient;
class CloudCache;

/// A client endpoint bound to one storage account (one CloudEnvironment)
/// and one NIC (the VM instance the code runs on).
class CloudStorageAccount {
 public:
  CloudStorageAccount(CloudEnvironment& env, netsim::Nic& nic)
      : env_(&env), nic_(&nic) {}

  CloudBlobClient create_cloud_blob_client() const;
  CloudQueueClient create_cloud_queue_client() const;
  CloudTableClient create_cloud_table_client() const;
  CloudCacheClient create_cloud_cache_client() const;

  CloudEnvironment& environment() const noexcept { return *env_; }
  netsim::Nic& nic() const noexcept { return *nic_; }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
};

// ------------------------------------------------------------------ blob ----

class CloudBlockBlob {
 public:
  CloudBlockBlob(CloudEnvironment& env, netsim::Nic& nic,
                 std::string container, std::string name)
      : env_(&env),
        nic_(&nic),
        container_(std::move(container)),
        name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Single-shot upload (<= 64 MB).
  sim::Task<void> upload_text(Payload data) {
    return env_->blob_service().upload_block_blob(*nic_, container_, name_,
                                                  std::move(data));
  }
  sim::Task<void> put_block(const std::string& block_id, Payload data) {
    return env_->blob_service().put_block(*nic_, container_, name_, block_id,
                                          std::move(data));
  }
  sim::Task<void> put_block_list(const std::vector<std::string>& ids) {
    return env_->blob_service().put_block_list(*nic_, container_, name_, ids);
  }
  sim::Task<Payload> get_block(int index) {
    return env_->blob_service().get_block(*nic_, container_, name_, index);
  }
  /// Full download (BlockBlob.DownloadText() in the paper's pseudocode).
  sim::Task<Payload> download_text() {
    return env_->blob_service().download_block_blob(*nic_, container_, name_);
  }
  /// Range download of the committed content.
  sim::Task<Payload> download_range(std::int64_t offset, std::int64_t length) {
    return env_->blob_service().download_range(*nic_, container_, name_,
                                               offset, length);
  }
  /// Lists committed and uncommitted blocks.
  sim::Task<BlobService::BlockListing> download_block_list() {
    return env_->blob_service().get_block_list(*nic_, container_, name_);
  }
  sim::Task<void> delete_blob() {
    return env_->blob_service().delete_blob(*nic_, container_, name_);
  }
  sim::Task<bool> exists() {
    return env_->blob_service().blob_exists(*nic_, container_, name_);
  }
  sim::Task<BlobProperties> get_properties() {
    return env_->blob_service().get_properties(*nic_, container_, name_);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string container_;
  std::string name_;
};

class CloudPageBlob {
 public:
  CloudPageBlob(CloudEnvironment& env, netsim::Nic& nic, std::string container,
                std::string name)
      : env_(&env),
        nic_(&nic),
        container_(std::move(container)),
        name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Creates the page blob with a fixed maximum size (<= 1 TB).
  sim::Task<void> create(std::int64_t max_size) {
    return env_->blob_service().create_page_blob(*nic_, container_, name_,
                                                 max_size);
  }
  sim::Task<void> put_page(std::int64_t offset, Payload data) {
    return env_->blob_service().put_page(*nic_, container_, name_, offset,
                                         std::move(data));
  }
  /// Random-access page read.
  sim::Task<Payload> get_page(std::int64_t offset, std::int64_t length,
                              bool random = true) {
    return env_->blob_service().get_page(*nic_, container_, name_, offset,
                                         length, random);
  }
  /// Full streaming download (PageBlob.openRead() in the paper).
  sim::Task<Payload> open_read() {
    return env_->blob_service().download_page_blob(*nic_, container_, name_);
  }
  sim::Task<void> delete_blob() {
    return env_->blob_service().delete_blob(*nic_, container_, name_);
  }
  sim::Task<bool> exists() {
    return env_->blob_service().blob_exists(*nic_, container_, name_);
  }
  sim::Task<BlobProperties> get_properties() {
    return env_->blob_service().get_properties(*nic_, container_, name_);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string container_;
  std::string name_;
};

class CloudBlobContainer {
 public:
  CloudBlobContainer(CloudEnvironment& env, netsim::Nic& nic, std::string name)
      : env_(&env), nic_(&nic), name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  sim::Task<void> create() {
    return env_->blob_service().create_container(*nic_, name_);
  }
  sim::Task<void> create_if_not_exists() {
    return env_->blob_service().create_container_if_not_exists(*nic_, name_);
  }
  sim::Task<void> delete_container() {
    return env_->blob_service().delete_container(*nic_, name_);
  }
  sim::Task<bool> exists() {
    return env_->blob_service().container_exists(*nic_, name_);
  }
  sim::Task<std::vector<std::string>> list_blobs() {
    return env_->blob_service().list_blobs(*nic_, name_);
  }

  CloudBlockBlob get_block_blob_reference(const std::string& blob) const {
    return CloudBlockBlob(*env_, *nic_, name_, blob);
  }
  CloudPageBlob get_page_blob_reference(const std::string& blob) const {
    return CloudPageBlob(*env_, *nic_, name_, blob);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string name_;
};

class CloudBlobClient {
 public:
  CloudBlobClient(CloudEnvironment& env, netsim::Nic& nic)
      : env_(&env), nic_(&nic) {}

  CloudBlobContainer get_container_reference(const std::string& name) const {
    return CloudBlobContainer(*env_, *nic_, name);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
};

// ----------------------------------------------------------------- queue ----

class CloudQueue {
 public:
  CloudQueue(CloudEnvironment& env, netsim::Nic& nic, std::string name)
      : env_(&env), nic_(&nic), name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  sim::Task<void> create() {
    return env_->queue_service().create_queue(*nic_, name_);
  }
  sim::Task<void> create_if_not_exists() {
    return env_->queue_service().create_queue_if_not_exists(*nic_, name_);
  }
  sim::Task<void> delete_queue() {
    return env_->queue_service().delete_queue(*nic_, name_);
  }
  sim::Task<bool> exists() {
    return env_->queue_service().queue_exists(*nic_, name_);
  }
  sim::Task<void> clear() {
    return env_->queue_service().clear_queue(*nic_, name_);
  }
  sim::Task<void> add_message(Payload body, sim::Duration ttl = 0) {
    return env_->queue_service().put_message(*nic_, name_, std::move(body),
                                             ttl);
  }
  sim::Task<std::optional<QueueMessage>> get_message(
      sim::Duration visibility_timeout = 0) {
    return env_->queue_service().get_message(*nic_, name_,
                                             visibility_timeout);
  }
  sim::Task<std::optional<QueueMessage>> peek_message() {
    return env_->queue_service().peek_message(*nic_, name_);
  }
  sim::Task<void> delete_message(const QueueMessage& msg) {
    return env_->queue_service().delete_message(*nic_, name_, msg.id,
                                                msg.pop_receipt);
  }
  /// Extends/changes a gotten message's visibility (and optionally its
  /// content); returns the refreshed message with a new pop receipt.
  sim::Task<QueueMessage> update_message(
      const QueueMessage& msg, sim::Duration visibility_timeout,
      std::optional<Payload> new_body = std::nullopt) {
    return env_->queue_service().update_message(*nic_, name_, msg.id,
                                                msg.pop_receipt,
                                                visibility_timeout,
                                                std::move(new_body));
  }
  /// ApproximateMessageCount.
  sim::Task<std::int64_t> get_message_count() {
    return env_->queue_service().get_message_count(*nic_, name_);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string name_;
};

class CloudQueueClient {
 public:
  CloudQueueClient(CloudEnvironment& env, netsim::Nic& nic)
      : env_(&env), nic_(&nic) {}

  CloudQueue get_queue_reference(const std::string& name) const {
    return CloudQueue(*env_, *nic_, name);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
};

// ----------------------------------------------------------------- table ----

class CloudTable {
 public:
  CloudTable(CloudEnvironment& env, netsim::Nic& nic, std::string name)
      : env_(&env), nic_(&nic), name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  sim::Task<void> create() {
    return env_->table_service().create_table(*nic_, name_);
  }
  sim::Task<void> create_if_not_exists() {
    return env_->table_service().create_table_if_not_exists(*nic_, name_);
  }
  sim::Task<void> delete_table() {
    return env_->table_service().delete_table(*nic_, name_);
  }
  sim::Task<bool> exists() {
    return env_->table_service().table_exists(*nic_, name_);
  }
  sim::Task<void> insert(TableEntity entity) {
    return env_->table_service().insert(*nic_, name_, std::move(entity));
  }
  sim::Task<TableEntity> query(const std::string& partition_key,
                               const std::string& row_key) {
    return env_->table_service().query(*nic_, name_, partition_key, row_key);
  }
  sim::Task<std::vector<TableEntity>> query_partition(
      const std::string& partition_key) {
    return env_->table_service().query_partition(*nic_, name_, partition_key);
  }
  sim::Task<void> update(TableEntity entity,
                         const std::string& if_match = "*") {
    return env_->table_service().update(*nic_, name_, std::move(entity),
                                        if_match);
  }
  sim::Task<void> insert_or_replace(TableEntity entity) {
    return env_->table_service().insert_or_replace(*nic_, name_,
                                                   std::move(entity));
  }
  sim::Task<void> merge(TableEntity entity,
                        const std::string& if_match = "*") {
    return env_->table_service().merge(*nic_, name_, std::move(entity),
                                       if_match);
  }
  sim::Task<void> erase(const std::string& partition_key,
                        const std::string& row_key,
                        const std::string& if_match = "*") {
    return env_->table_service().erase(*nic_, name_, partition_key, row_key,
                                       if_match);
  }
  /// Executes an Entity Group Transaction (atomic same-partition batch).
  sim::Task<void> execute_batch(TableBatch batch) {
    return env_->table_service().execute_batch(*nic_, name_,
                                               std::move(batch));
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string name_;
};

class CloudTableClient {
 public:
  CloudTableClient(CloudEnvironment& env, netsim::Nic& nic)
      : env_(&env), nic_(&nic) {}

  CloudTable get_table_reference(const std::string& name) const {
    return CloudTable(*env_, *nic_, name);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
};

// ----------------------------------------------------------------- cache ----

/// A named distributed cache (AppFabric-style).
class CloudCache {
 public:
  CloudCache(CloudEnvironment& env, netsim::Nic& nic, std::string name)
      : env_(&env), nic_(&nic), name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  sim::Task<void> put(std::string key, Payload value, sim::Duration ttl = 0) {
    return env_->cache_service().put(*nic_, name_, std::move(key),
                                     std::move(value), ttl);
  }
  sim::Task<std::optional<Payload>> get(std::string key) {
    return env_->cache_service().get(*nic_, name_, std::move(key));
  }
  sim::Task<bool> remove(std::string key) {
    return env_->cache_service().remove(*nic_, name_, std::move(key));
  }
  CacheStats stats() const { return env_->cache_service().stats(name_); }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
  std::string name_;
};

class CloudCacheClient {
 public:
  CloudCacheClient(CloudEnvironment& env, netsim::Nic& nic)
      : env_(&env), nic_(&nic) {}

  CloudCache get_cache_reference(const std::string& name) const {
    return CloudCache(*env_, *nic_, name);
  }

 private:
  CloudEnvironment* env_;
  netsim::Nic* nic_;
};

// ------------------------------------------------------------- account ----

inline CloudBlobClient CloudStorageAccount::create_cloud_blob_client() const {
  return CloudBlobClient(*env_, *nic_);
}
inline CloudQueueClient CloudStorageAccount::create_cloud_queue_client()
    const {
  return CloudQueueClient(*env_, *nic_);
}
inline CloudTableClient CloudStorageAccount::create_cloud_table_client()
    const {
  return CloudTableClient(*env_, *nic_);
}
inline CloudCacheClient CloudStorageAccount::create_cloud_cache_client()
    const {
  return CloudCacheClient(*env_, *nic_);
}

}  // namespace azure
