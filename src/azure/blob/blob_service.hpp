// Server-side Blob storage service: containers, block blobs and page blobs,
// with the documented 2011/2012 semantics and limits.
//
// Timing model highlights (see DESIGN.md §4):
//  * every blob has a 60 MB/s write stream at its partition server;
//  * committed data is replicated 3x, and *reads* are served round-robin by
//    the replicas, so aggregate read bandwidth of a hot blob approaches
//    3 x 60 MB/s (the paper measures 165 MB/s at 96 workers);
//  * staging a block (PutBlock) appends to the blob's block index — a
//    serialized per-blob operation that caps block-blob ingest well below
//    the page-blob path (the paper measures ~21 vs ~60 MB/s);
//  * chunk-wise reads (GetBlock / random GetPage) occupy the serving
//    replica's stream for a fixed overhead on top of the payload time;
//    random page access additionally pays a page-index lookup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "azure/common/errors.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/payload.hpp"
#include "cluster/hash.hpp"
#include "cluster/storage_cluster.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/resource.hpp"
#include "simcore/task.hpp"

namespace azure {

struct BlobServiceConfig {
  /// Per-blob write stream bandwidth ("The throughput of a blob is up to
  /// 60 MB per second").
  double blob_write_bytes_per_sec = 60.0 * 1024 * 1024;

  /// Read bandwidth of each replica's stream of a given blob.
  double replica_read_bytes_per_sec = 60.0 * 1024 * 1024;

  /// Whether reads are spread over all replicas (ablation knob; turning
  /// this off collapses download saturation to one stream's bandwidth).
  bool replica_reads = true;

  /// Serialized per-blob block-index append paid by every staged block.
  sim::Duration block_commit_time = sim::millis(44);

  /// PutBlockList commit cost per listed block.
  sim::Duration block_list_per_block = sim::micros(200);

  /// Server work per chunk-wise read (GetBlock / GetPage), occupying the
  /// serving replica's stream.
  sim::Duration chunk_read_overhead = sim::millis(12);

  /// Additional page-index lookup for *random* page reads.
  sim::Duration page_lookup_overhead = sim::millis(14);

  /// Relative streaming efficiency of page blobs on full-blob reads
  /// (sparse page maps stream slightly worse than packed block lists).
  double page_stream_factor = 0.92;

  /// Fixed CPU costs.
  sim::Duration write_cpu = sim::micros(500);
  sim::Duration read_cpu = sim::micros(300);
  sim::Duration metadata_cpu = sim::micros(300);
};

/// Blob properties snapshot returned to clients.
struct BlobProperties {
  enum class Kind { kBlock, kPage };
  Kind kind = Kind::kBlock;
  std::int64_t size = 0;       // committed size (pages: max size)
  std::int64_t content_length = 0;  // pages: highest written byte
  std::string etag;
  int committed_blocks = 0;
  /// Content checksum of the stored version (Content-MD5 analogue; CRC32C
  /// composite over the blob's blocks/pages). Zero until the first write.
  std::uint32_t content_crc = 0;
};

class BlobService {
 public:
  BlobService(cluster::StorageCluster& cluster, const BlobServiceConfig& cfg)
      : cluster_(cluster), cfg_(cfg) {}

  const BlobServiceConfig& config() const noexcept { return cfg_; }

  // ----------------------------------------------------------- containers --
  sim::Task<void> create_container(netsim::Nic& client,
                                   std::string container);
  sim::Task<void> create_container_if_not_exists(netsim::Nic& client,
                                                 std::string container);
  sim::Task<void> delete_container(netsim::Nic& client,
                                   std::string container);
  sim::Task<bool> container_exists(netsim::Nic& client,
                                   std::string container);
  sim::Task<std::vector<std::string>> list_blobs(netsim::Nic& client,
                                                 std::string container);

  // ---------------------------------------------------------- block blobs --
  /// Single-shot upload (<= 64 MB). Replaces any existing blob.
  sim::Task<void> upload_block_blob(netsim::Nic& client,
                                    std::string container,
                                    std::string name, Payload data);

  /// Stages one block (<= 4 MB). Uncommitted until PutBlockList.
  sim::Task<void> put_block(netsim::Nic& client, std::string container,
                            std::string name,
                            std::string block_id, Payload data);

  /// Commits the listed blocks, in order, as the blob's content.
  sim::Task<void> put_block_list(netsim::Nic& client,
                                 std::string container,
                                 std::string name,
                                 std::vector<std::string> block_ids);

  /// Reads the index-th committed block (the paper reads blocks
  /// sequentially, "one block at a time").
  sim::Task<Payload> get_block(netsim::Nic& client,
                               std::string container,
                               std::string name, int index);

  /// Downloads the full committed content (BlockBlob.DownloadText()).
  sim::Task<Payload> download_block_blob(netsim::Nic& client,
                                         std::string container,
                                         std::string name);

  /// Downloads an arbitrary byte range of the committed content.
  sim::Task<Payload> download_range(netsim::Nic& client,
                                    std::string container, std::string name,
                                    std::int64_t offset, std::int64_t length);

  /// One block's id and size, as returned by GetBlockList.
  struct BlockDescriptor {
    std::string id;
    std::int64_t size;
  };
  struct BlockListing {
    std::vector<BlockDescriptor> committed;
    std::vector<BlockDescriptor> uncommitted;
  };
  /// Lists the committed and uncommitted blocks of a block blob.
  sim::Task<BlockListing> get_block_list(netsim::Nic& client,
                                         std::string container,
                                         std::string name);

  // ----------------------------------------------------------- page blobs --
  /// Creates (and zero-initializes) a page blob of the given maximum size.
  sim::Task<void> create_page_blob(netsim::Nic& client,
                                   std::string container,
                                   std::string name,
                                   std::int64_t max_size);

  /// Writes pages at a 512-aligned offset (<= 4 MB per call).
  sim::Task<void> put_page(netsim::Nic& client, std::string container,
                           std::string name, std::int64_t offset,
                           Payload data);

  /// Random-access page read (pays the page-index lookup when `random` —
  /// the paper's benchmark reads pages at random offsets).
  sim::Task<Payload> get_page(netsim::Nic& client,
                              std::string container,
                              std::string name, std::int64_t offset,
                              std::int64_t length, bool random = true);

  /// Streams the full written extent (PageBlob.openRead()).
  sim::Task<Payload> download_page_blob(netsim::Nic& client,
                                        std::string container,
                                        std::string name);

  // -------------------------------------------------------------- generic --
  sim::Task<void> delete_blob(netsim::Nic& client,
                              std::string container,
                              std::string name);
  sim::Task<bool> blob_exists(netsim::Nic& client,
                              std::string container,
                              std::string name);
  sim::Task<BlobProperties> get_properties(netsim::Nic& client,
                                           std::string container,
                                           std::string name);

 private:
  struct BlockInfo {
    std::string id;
    Payload data;
    std::uint32_t crc = 0;  // CRC32C of this block's payload
  };

  /// Per-blob contended runtime state (write stream, block index, replica
  /// read streams).
  struct BlobRuntime {
    BlobRuntime(sim::Simulation& sim, const BlobServiceConfig& cfg,
                int replicas);
    sim::FlowLimiter write_stream;
    sim::Resource block_index;  // capacity 1: serialized index appends
    std::vector<std::unique_ptr<sim::FlowLimiter>> read_streams;
    int next_read = 0;
  };

  struct BlobData {
    BlobProperties::Kind kind = BlobProperties::Kind::kBlock;
    std::string etag;
    // Block blob state.
    std::vector<BlockInfo> committed;
    std::map<std::string, Payload> uncommitted;
    std::int64_t committed_size = 0;
    // Page blob state: offset -> written range. Ranges never overlap.
    std::int64_t page_max_size = 0;
    std::map<std::int64_t, Payload> pages;
    std::int64_t page_extent = 0;  // highest written byte + 1
    /// Checksum of the blob's current physical version (committed blocks,
    /// staged blocks, written pages). Every tracked write advances it.
    std::uint32_t content_crc = 0;
    /// Tombstone: delete_blob clears the content but keeps the map node
    /// (and rt) alive, because in-flight reads suspended on the replica
    /// streams still reference both. All lookups treat it as absent.
    bool deleted = false;
    std::unique_ptr<BlobRuntime> rt;
  };

  struct Container {
    std::map<std::string, BlobData> blobs;
  };

  BlobData& require_blob(std::string container,
                         std::string name,
                         BlobProperties::Kind expected_kind);
  Container& require_container(std::string container);
  BlobData& make_blob(std::string container, std::string name,
                      BlobProperties::Kind kind);
  std::string next_etag() { return "0x" + std::to_string(++etag_counter_); }
  std::uint64_t hash(std::string container,
                     std::string name) const {
    return cluster::partition_hash(container, name);
  }

  /// Acquires the next replica read stream for `amount` effective bytes.
  sim::Task<int> read_stream_acquire(BlobData& blob, double amount);

  /// Per-blob integrity object id (salted so blob/queue/table objects with
  /// colliding partition hashes stay distinct; never 0, which means
  /// "untracked" to the cluster).
  std::uint64_t object_id(std::uint64_t part_hash) const;

  /// Chunk-wise read core shared by get_block/get_page. Throws
  /// ChecksumMismatchError when the response payload arrived corrupt.
  /// `trace` is the calling operation's span context (chunk reads suspend
  /// before reaching the cluster, so the ambient slot cannot carry it).
  sim::Task<void> chunk_read(netsim::Nic& client, BlobData& blob,
                             std::uint64_t part_hash, std::int64_t bytes,
                             sim::Duration extra_overhead,
                             obs::TraceContext trace = {});

  /// Simple metadata request (create/delete/exists/list).
  sim::Task<void> metadata_op(netsim::Nic& client, std::uint64_t part_hash,
                              bool write);

  cluster::StorageCluster& cluster_;
  BlobServiceConfig cfg_;
  std::map<std::string, Container> containers_;
  std::uint64_t etag_counter_ = 0;
};

}  // namespace azure
