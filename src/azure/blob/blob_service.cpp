#include "azure/blob/blob_service.hpp"

#include <algorithm>
#include <cassert>

#include "azure/common/checksum.hpp"
#include "obs/observer.hpp"

namespace azure {
namespace {

namespace lim = azure::limits;

/// Service salt for integrity object ids (keeps blob objects distinct from
/// queue/table objects that might share a partition hash).
constexpr std::uint64_t kBlobObjectSalt = 0xB10B'0B1E'C751'D000ull;

/// Slice [from, from+len) out of a payload, preserving synthetic-ness.
Payload payload_slice(const Payload& p, std::int64_t from, std::int64_t len) {
  assert(from >= 0 && len >= 0 && from + len <= p.size());
  if (p.is_synthetic() || p.size() == 0) return Payload::synthetic(len);
  return Payload::bytes(p.data().substr(static_cast<std::size_t>(from),
                                        static_cast<std::size_t>(len)));
}

}  // namespace

BlobService::BlobRuntime::BlobRuntime(sim::Simulation& sim,
                                      const BlobServiceConfig& cfg,
                                      int replicas)
    : write_stream(sim, cfg.blob_write_bytes_per_sec, /*burst=*/64 * 1024.0),
      block_index(sim, 1) {
  const int streams = cfg.replica_reads ? replicas : 1;
  read_streams.reserve(static_cast<std::size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    read_streams.push_back(std::make_unique<sim::FlowLimiter>(
        sim, cfg.replica_read_bytes_per_sec, /*burst=*/64 * 1024.0));
  }
}

// ------------------------------------------------------------ containers ----

sim::Task<void> BlobService::metadata_op(netsim::Nic& client,
                                         std::uint64_t part_hash, bool write) {
  obs::OpScope op(cluster_.simulation(), "blob.meta");
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = 256;
  cost.server_cpu = cfg_.metadata_cpu;
  cost.replicate = write;
  cost.disk_bytes = write ? 512 : 0;
  op.stage();
  co_await cluster_.execute(client, part_hash, cost);
}

sim::Task<void> BlobService::create_container(netsim::Nic& client,
                                              std::string container) {
  co_await metadata_op(client, cluster::partition_hash(container), true);
  auto [it, inserted] = containers_.try_emplace(container);
  if (!inserted) {
    throw ConflictError("container already exists: " + container);
  }
}

sim::Task<void> BlobService::create_container_if_not_exists(
    netsim::Nic& client, std::string container) {
  co_await metadata_op(client, cluster::partition_hash(container), true);
  containers_.try_emplace(container);
}

sim::Task<void> BlobService::delete_container(netsim::Nic& client,
                                              std::string container) {
  co_await metadata_op(client, cluster::partition_hash(container), true);
  if (containers_.erase(container) == 0) {
    throw NotFoundError("container not found: " + container);
  }
}

sim::Task<bool> BlobService::container_exists(netsim::Nic& client,
                                              std::string container) {
  co_await metadata_op(client, cluster::partition_hash(container), false);
  co_return containers_.count(container) > 0;
}

sim::Task<std::vector<std::string>> BlobService::list_blobs(
    netsim::Nic& client, std::string container) {
  co_await metadata_op(client, cluster::partition_hash(container), false);
  auto& c = require_container(container);
  std::vector<std::string> names;
  names.reserve(c.blobs.size());
  for (const auto& [name, blob] : c.blobs) {
    if (!blob.deleted) names.push_back(name);
  }
  co_return names;
}

// -------------------------------------------------------- shared helpers ----

std::uint64_t BlobService::object_id(std::uint64_t part_hash) const {
  const std::uint64_t id = mix_u64(kBlobObjectSalt, part_hash);
  return id != 0 ? id : 1;
}

BlobService::Container& BlobService::require_container(
    std::string container) {
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    throw NotFoundError("container not found: " + container);
  }
  return it->second;
}

BlobService::BlobData& BlobService::require_blob(
    std::string container, std::string name,
    BlobProperties::Kind expected_kind) {
  auto& c = require_container(container);
  auto it = c.blobs.find(name);
  if (it == c.blobs.end() || it->second.deleted) {
    throw NotFoundError("blob not found: " + container + "/" + name);
  }
  if (it->second.kind != expected_kind) {
    throw InvalidArgumentError("blob kind mismatch for " + container + "/" +
                               name);
  }
  return it->second;
}

BlobService::BlobData& BlobService::make_blob(std::string container,
                                              std::string name,
                                              BlobProperties::Kind kind) {
  auto& c = require_container(container);
  BlobData& blob = c.blobs[name];
  blob.deleted = false;  // writing to a tombstoned name resurrects it
  blob.kind = kind;
  blob.etag = next_etag();
  if (!blob.rt) {
    blob.rt = std::make_unique<BlobRuntime>(cluster_.simulation(), cfg_,
                                            cluster_.config().replicas);
  }
  return blob;
}

sim::Task<int> BlobService::read_stream_acquire(BlobData& blob,
                                                double amount) {
  const int idx = blob.rt->next_read++ %
                  static_cast<int>(blob.rt->read_streams.size());
  co_await blob.rt->read_streams[static_cast<std::size_t>(idx)]->acquire(
      amount);
  co_return idx;
}

sim::Task<void> BlobService::chunk_read(netsim::Nic& client, BlobData& blob,
                                        std::uint64_t part_hash,
                                        std::int64_t bytes,
                                        sim::Duration extra_overhead,
                                        obs::TraceContext trace) {
  // The chunk occupies the serving replica's stream for the payload time
  // plus the per-chunk server work (index walk, range assembly).
  const double overhead_bytes =
      cfg_.replica_read_bytes_per_sec * sim::to_seconds(extra_overhead);
  co_await read_stream_acquire(blob,
                               static_cast<double>(bytes) + overhead_bytes);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = bytes;
  cost.server_cpu = cfg_.read_cpu;
  cost.object_id = object_id(part_hash);
  if (obs::Observer* const o = cluster_.simulation().observer();
      o != nullptr) {
    o->set_ambient(trace);
  }
  const cluster::ExecResult r =
      co_await cluster_.execute(client, part_hash, cost);
  if (r.response_corrupted) {
    throw ChecksumMismatchError(
        "downloaded chunk failed its Content-MD5 check");
  }
}

// ------------------------------------------------------------ block blob ----

sim::Task<void> BlobService::upload_block_blob(netsim::Nic& client,
                                               std::string container,
                                               std::string name,
                                               Payload data) {
  obs::OpScope op(cluster_.simulation(), "blob.upload", data.size());
  if (data.size() > lim::kMaxSingleShotUploadBytes) {
    throw InvalidArgumentError(
        "block blobs over 64 MB must be uploaded as blocks");
  }
  require_container(container);
  BlobData& blob = make_blob(container, name, BlobProperties::Kind::kBlock);
  co_await blob.rt->write_stream.acquire(static_cast<double>(data.size()));
  const std::uint32_t block_crc = payload_crc(data);
  const std::uint32_t new_crc =
      Crc32c().update("<single-shot>").update_u64(block_crc).value();
  cluster::RequestCost cost;
  cost.request_bytes = data.size();
  cost.disk_bytes = data.size();
  cost.server_cpu = cfg_.write_cpu;
  cost.replicate = true;
  cost.object_id = object_id(hash(container, name));
  cost.content_crc = new_crc;
  op.stage();
  co_await cluster_.execute(client, hash(container, name), cost);
  blob.committed.clear();
  blob.committed_size = data.size();
  blob.committed.push_back(
      BlockInfo{"<single-shot>", std::move(data), block_crc});
  blob.uncommitted.clear();
  blob.content_crc = new_crc;
  blob.etag = next_etag();
}

sim::Task<void> BlobService::put_block(netsim::Nic& client,
                                       std::string container,
                                       std::string name,
                                       std::string block_id,
                                       Payload data) {
  obs::OpScope op(cluster_.simulation(), "blob.put_block", data.size());
  if (data.size() > lim::kMaxBlockBytes) {
    throw InvalidArgumentError("block exceeds 4 MB");
  }
  if (data.size() <= 0) {
    throw InvalidArgumentError("block must not be empty");
  }
  require_container(container);
  BlobData& blob = make_blob(container, name, BlobProperties::Kind::kBlock);
  co_await blob.rt->write_stream.acquire(static_cast<double>(data.size()));
  // Staged blocks are physically written and replicated, so staging advances
  // the blob's version checksum (folding the staged block into the current
  // version).
  const std::uint32_t new_crc = static_cast<std::uint32_t>(mix_u64(
      blob.content_crc,
      mix_u64(Crc32c::of(block_id), payload_crc(data))));
  cluster::RequestCost cost;
  cost.request_bytes = data.size();
  cost.disk_bytes = data.size();
  cost.server_cpu = cfg_.write_cpu;
  cost.replicate = true;
  cost.object_id = object_id(hash(container, name));
  cost.content_crc = new_crc;
  op.stage();
  co_await cluster_.execute(client, hash(container, name), cost);
  {
    // Appending to the blob's block index is serialized per blob — this is
    // what caps concurrent PutBlock ingest below the page-blob path.
    const sim::TimePoint commit_start = cluster_.simulation().now();
    auto lease = co_await blob.rt->block_index.acquire();
    co_await cluster_.simulation().delay(cfg_.block_commit_time);
    if (obs::Observer* const o = op.observer(); o != nullptr) {
      o->emit(obs::SpanKind::kLogCommit, op.ctx(), commit_start,
              cluster_.simulation().now(), o->label("blob.block_index"));
    }
  }
  blob.uncommitted[block_id] = std::move(data);
  blob.content_crc = new_crc;
}

sim::Task<void> BlobService::put_block_list(
    netsim::Nic& client, std::string container, std::string name,
    std::vector<std::string> block_ids) {
  obs::OpScope op(cluster_.simulation(), "blob.put_block_list");
  if (static_cast<int>(block_ids.size()) > lim::kMaxBlocksPerBlob) {
    throw InvalidArgumentError("more than 50,000 blocks in block list");
  }
  require_container(container);
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kBlock);

  // Resolve ids against uncommitted blocks first, then committed ones
  // (matching the service's "latest uncommitted wins" rule).
  std::vector<BlockInfo> new_committed;
  new_committed.reserve(block_ids.size());
  std::int64_t total = 0;
  for (const auto& id : block_ids) {
    if (auto it = blob.uncommitted.find(id); it != blob.uncommitted.end()) {
      total += it->second.size();
      new_committed.push_back(
          BlockInfo{id, it->second, payload_crc(it->second)});
      continue;
    }
    auto cit = std::find_if(blob.committed.begin(), blob.committed.end(),
                            [&](const BlockInfo& b) { return b.id == id; });
    if (cit == blob.committed.end()) {
      throw InvalidArgumentError("unknown block id in block list: " + id);
    }
    total += cit->data.size();
    new_committed.push_back(*cit);
  }
  if (total > lim::kMaxBlockBlobBytes) {
    throw InvalidArgumentError("block blob exceeds 200 GB");
  }

  // The committed content's checksum is the composite of the listed blocks'
  // checksums, in order.
  Crc32c composite;
  for (const auto& b : new_committed) {
    composite.update(b.id);
    composite.update_u64(b.crc);
  }
  const std::uint32_t new_crc = composite.value();

  cluster::RequestCost cost;
  cost.request_bytes = 64 * static_cast<std::int64_t>(block_ids.size());
  cost.disk_bytes = 1024;
  cost.server_cpu =
      cfg_.write_cpu + static_cast<sim::Duration>(block_ids.size()) *
                           cfg_.block_list_per_block;
  cost.replicate = true;
  cost.object_id = object_id(hash(container, name));
  cost.content_crc = new_crc;
  cost.object_bytes = total;
  op.set_bytes(total);
  op.stage();
  co_await cluster_.execute(client, hash(container, name), cost);

  blob.committed = std::move(new_committed);
  blob.committed_size = total;
  blob.uncommitted.clear();
  blob.content_crc = new_crc;
  blob.etag = next_etag();
}

sim::Task<Payload> BlobService::get_block(netsim::Nic& client,
                                          std::string container,
                                          std::string name, int index) {
  obs::OpScope op(cluster_.simulation(), "blob.get_block");
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kBlock);
  if (index < 0 || index >= static_cast<int>(blob.committed.size())) {
    throw InvalidArgumentError("block index out of range");
  }
  const Payload data = blob.committed[static_cast<std::size_t>(index)].data;
  op.set_bytes(data.size());
  co_await chunk_read(client, blob, hash(container, name), data.size(),
                      cfg_.chunk_read_overhead, op.ctx());
  co_return data;
}

sim::Task<Payload> BlobService::download_block_blob(
    netsim::Nic& client, std::string container,
    std::string name) {
  obs::OpScope op(cluster_.simulation(), "blob.download");
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kBlock);
  const std::int64_t total = blob.committed_size;
  op.set_bytes(total);
  co_await read_stream_acquire(blob, static_cast<double>(total));
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = total;
  cost.server_cpu = cfg_.read_cpu;
  cost.object_id = object_id(hash(container, name));
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, hash(container, name), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw ChecksumMismatchError(
        "downloaded blob failed its Content-MD5 check");
  }

  // Assemble the content: synthetic unless any block carries real bytes.
  bool any_real = false;
  for (const auto& b : blob.committed) {
    if (!b.data.is_synthetic() && b.data.size() > 0) any_real = true;
  }
  if (!any_real) co_return Payload::synthetic(total);
  std::string out;
  out.reserve(static_cast<std::size_t>(total));
  for (const auto& b : blob.committed) {
    if (b.data.is_synthetic()) {
      out.append(static_cast<std::size_t>(b.data.size()), '\0');
    } else {
      out.append(b.data.data());
    }
  }
  co_return Payload::bytes(std::move(out));
}

sim::Task<Payload> BlobService::download_range(netsim::Nic& client,
                                               std::string container,
                                               std::string name,
                                               std::int64_t offset,
                                               std::int64_t length) {
  obs::OpScope op(cluster_.simulation(), "blob.download_range", length);
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kBlock);
  if (offset < 0 || length <= 0 || offset + length > blob.committed_size) {
    throw InvalidArgumentError("range read outside committed content");
  }
  co_await chunk_read(client, blob, hash(container, name), length,
                      cfg_.chunk_read_overhead, op.ctx());

  // Assemble the range across committed block boundaries.
  bool any_real = false;
  std::string out;
  std::int64_t cursor = 0;
  for (const auto& b : blob.committed) {
    const std::int64_t bstart = cursor;
    const std::int64_t bend = cursor + b.data.size();
    cursor = bend;
    const std::int64_t from = std::max(bstart, offset);
    const std::int64_t to = std::min(bend, offset + length);
    if (from >= to) continue;
    if (b.data.is_synthetic()) {
      out.append(static_cast<std::size_t>(to - from), '\0');
    } else {
      any_real = true;
      out.append(b.data.data(), static_cast<std::size_t>(from - bstart),
                 static_cast<std::size_t>(to - from));
    }
  }
  if (!any_real) co_return Payload::synthetic(length);
  co_return Payload::bytes(std::move(out));
}

sim::Task<BlobService::BlockListing> BlobService::get_block_list(
    netsim::Nic& client, std::string container, std::string name) {
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kBlock);
  co_await metadata_op(client, hash(container, name), false);
  BlockListing listing;
  listing.committed.reserve(blob.committed.size());
  for (const auto& b : blob.committed) {
    listing.committed.push_back(BlockDescriptor{b.id, b.data.size()});
  }
  listing.uncommitted.reserve(blob.uncommitted.size());
  for (const auto& [id, data] : blob.uncommitted) {
    listing.uncommitted.push_back(BlockDescriptor{id, data.size()});
  }
  co_return listing;
}

// ------------------------------------------------------------- page blob ----

sim::Task<void> BlobService::create_page_blob(netsim::Nic& client,
                                              std::string container,
                                              std::string name,
                                              std::int64_t max_size) {
  if (max_size <= 0 || max_size > lim::kMaxPageBlobBytes) {
    throw InvalidArgumentError("page blob size must be in (0, 1 TB]");
  }
  if (max_size % lim::kPageAlignment != 0) {
    throw InvalidArgumentError("page blob size must be 512-aligned");
  }
  require_container(container);
  co_await metadata_op(client, hash(container, name), true);
  BlobData& blob = make_blob(container, name, BlobProperties::Kind::kPage);
  blob.page_max_size = max_size;
  blob.pages.clear();
  blob.page_extent = 0;
}

sim::Task<void> BlobService::put_page(netsim::Nic& client,
                                      std::string container,
                                      std::string name,
                                      std::int64_t offset, Payload data) {
  obs::OpScope op(cluster_.simulation(), "blob.put_page", data.size());
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kPage);
  if (offset % lim::kPageAlignment != 0 ||
      data.size() % lim::kPageAlignment != 0) {
    throw InvalidArgumentError("page writes must be 512-aligned");
  }
  if (data.size() <= 0 || data.size() > lim::kMaxPageWriteBytes) {
    throw InvalidArgumentError("page write must be in (0, 4 MB]");
  }
  if (offset < 0 || offset + data.size() > blob.page_max_size) {
    throw InvalidArgumentError("page write beyond blob size");
  }

  co_await blob.rt->write_stream.acquire(static_cast<double>(data.size()));
  // Page-blob versions chain: each write folds (offset, payload checksum)
  // into the previous version's checksum.
  const std::uint32_t new_crc = static_cast<std::uint32_t>(
      mix_u64(blob.content_crc,
              mix_u64(static_cast<std::uint64_t>(offset), payload_crc(data))));
  cluster::RequestCost cost;
  cost.request_bytes = data.size();
  cost.disk_bytes = data.size();
  cost.server_cpu = cfg_.write_cpu;
  cost.replicate = true;
  cost.object_id = object_id(hash(container, name));
  cost.content_crc = new_crc;
  cost.object_bytes = blob.page_extent > offset + data.size()
                          ? blob.page_extent
                          : offset + data.size();
  op.stage();
  co_await cluster_.execute(client, hash(container, name), cost);
  blob.content_crc = new_crc;

  // Overlap resolution: trim/split any existing ranges under [lo, hi).
  const std::int64_t lo = offset;
  const std::int64_t hi = offset + data.size();
  auto it = blob.pages.lower_bound(lo);
  if (it != blob.pages.begin()) {
    auto prev = std::prev(it);
    const std::int64_t pend = prev->first + prev->second.size();
    if (pend > lo) {
      // prev overlaps from the left: keep its prefix, maybe its suffix.
      Payload whole = std::move(prev->second);
      const std::int64_t pstart = prev->first;
      blob.pages.erase(prev);
      blob.pages[pstart] = payload_slice(whole, 0, lo - pstart);
      if (pend > hi) {
        blob.pages[hi] = payload_slice(whole, hi - pstart, pend - hi);
      }
    }
  }
  it = blob.pages.lower_bound(lo);
  while (it != blob.pages.end() && it->first < hi) {
    const std::int64_t pstart = it->first;
    const std::int64_t pend = pstart + it->second.size();
    if (pend <= hi) {
      it = blob.pages.erase(it);
    } else {
      Payload whole = std::move(it->second);
      blob.pages.erase(it);
      blob.pages[hi] = payload_slice(whole, hi - pstart, pend - hi);
      break;
    }
  }
  blob.page_extent = std::max(blob.page_extent, hi);
  blob.pages[lo] = std::move(data);
  blob.etag = next_etag();
}

sim::Task<Payload> BlobService::get_page(netsim::Nic& client,
                                         std::string container,
                                         std::string name,
                                         std::int64_t offset,
                                         std::int64_t length, bool random) {
  obs::OpScope op(cluster_.simulation(), "blob.get_page", length);
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kPage);
  if (offset < 0 || length <= 0 || offset + length > blob.page_max_size) {
    throw InvalidArgumentError("page read out of range");
  }
  const sim::Duration overhead =
      cfg_.chunk_read_overhead + (random ? cfg_.page_lookup_overhead : 0);
  co_await chunk_read(client, blob, hash(container, name), length, overhead,
                      op.ctx());

  // Assemble [offset, offset+length): zero-fill unwritten gaps.
  bool any_real = false;
  auto it = blob.pages.upper_bound(offset);
  if (it != blob.pages.begin()) --it;
  for (auto scan = it;
       scan != blob.pages.end() && scan->first < offset + length; ++scan) {
    if (!scan->second.is_synthetic() && scan->second.size() > 0 &&
        scan->first + scan->second.size() > offset) {
      any_real = true;
    }
  }
  if (!any_real) co_return Payload::synthetic(length);

  std::string out(static_cast<std::size_t>(length), '\0');
  for (auto scan = it;
       scan != blob.pages.end() && scan->first < offset + length; ++scan) {
    const std::int64_t pstart = scan->first;
    const std::int64_t pend = pstart + scan->second.size();
    const std::int64_t from = std::max(pstart, offset);
    const std::int64_t to = std::min(pend, offset + length);
    if (from >= to || scan->second.is_synthetic()) continue;
    out.replace(static_cast<std::size_t>(from - offset),
                static_cast<std::size_t>(to - from), scan->second.data(),
                static_cast<std::size_t>(from - pstart),
                static_cast<std::size_t>(to - from));
  }
  co_return Payload::bytes(std::move(out));
}

sim::Task<Payload> BlobService::download_page_blob(
    netsim::Nic& client, std::string container,
    std::string name) {
  obs::OpScope op(cluster_.simulation(), "blob.download_page");
  BlobData& blob = require_blob(container, name, BlobProperties::Kind::kPage);
  const std::int64_t extent = blob.page_extent;
  op.set_bytes(extent);
  const double effective =
      static_cast<double>(extent) / cfg_.page_stream_factor;
  co_await read_stream_acquire(blob, effective);
  cluster::RequestCost cost;
  cost.request_bytes = 256;
  cost.response_bytes = extent;
  cost.server_cpu = cfg_.read_cpu;
  cost.object_id = object_id(hash(container, name));
  op.stage();
  const cluster::ExecResult r =
      co_await cluster_.execute(client, hash(container, name), cost);
  op.set_server(r.served_by);
  if (r.response_corrupted) {
    op.set_error();
    throw ChecksumMismatchError(
        "downloaded page blob failed its Content-MD5 check");
  }
  if (extent == 0) co_return Payload{};
  bool any_real = false;
  for (const auto& [off, p] : blob.pages) {
    (void)off;
    if (!p.is_synthetic() && p.size() > 0) any_real = true;
  }
  if (!any_real) co_return Payload::synthetic(extent);
  std::string out(static_cast<std::size_t>(extent), '\0');
  for (const auto& [off, p] : blob.pages) {
    if (p.is_synthetic()) continue;
    out.replace(static_cast<std::size_t>(off),
                static_cast<std::size_t>(p.size()), p.data());
  }
  co_return Payload::bytes(std::move(out));
}

// --------------------------------------------------------------- generic ----

sim::Task<void> BlobService::delete_blob(netsim::Nic& client,
                                         std::string container,
                                         std::string name) {
  co_await metadata_op(client, hash(container, name), true);
  auto& c = require_container(container);
  auto it = c.blobs.find(name);
  if (it == c.blobs.end() || it->second.deleted) {
    throw NotFoundError("blob not found: " + container + "/" + name);
  }
  // Tombstone, don't erase: reads suspended on this blob's replica streams
  // hold references to the node and its runtime. Clearing the content
  // releases the payload memory; lookups treat the node as absent.
  BlobData& blob = it->second;
  blob.deleted = true;
  blob.committed.clear();
  blob.uncommitted.clear();
  blob.committed_size = 0;
  blob.pages.clear();
  blob.page_extent = 0;
  blob.page_max_size = 0;
  blob.content_crc = 0;
}

sim::Task<bool> BlobService::blob_exists(netsim::Nic& client,
                                         std::string container,
                                         std::string name) {
  co_await metadata_op(client, hash(container, name), false);
  auto it = containers_.find(container);
  if (it == containers_.end()) co_return false;
  const auto bit = it->second.blobs.find(name);
  co_return bit != it->second.blobs.end() && !bit->second.deleted;
}

sim::Task<BlobProperties> BlobService::get_properties(
    netsim::Nic& client, std::string container,
    std::string name) {
  co_await metadata_op(client, hash(container, name), false);
  auto& c = require_container(container);
  auto it = c.blobs.find(name);
  if (it == c.blobs.end() || it->second.deleted) {
    throw NotFoundError("blob not found: " + container + "/" + name);
  }
  const BlobData& b = it->second;
  BlobProperties props;
  props.kind = b.kind;
  props.etag = b.etag;
  props.content_crc = b.content_crc;
  if (b.kind == BlobProperties::Kind::kBlock) {
    props.size = b.committed_size;
    props.content_length = b.committed_size;
    props.committed_blocks = static_cast<int>(b.committed.size());
  } else {
    props.size = b.page_max_size;
    props.content_length = b.page_extent;
  }
  co_return props;
}

}  // namespace azure
