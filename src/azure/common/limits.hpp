// Documented Windows Azure storage limits (2011/2012 APIs), as quoted in the
// paper. These are *semantic* limits enforced by the services; the timing
// model's tuning constants live in the per-service config structs.
#pragma once

#include <cstdint>

namespace azure::limits {

// ------------------------------------------------------------------ blob ----
/// Maximum size of one block in a block blob.
inline constexpr std::int64_t kMaxBlockBytes = 4ll * 1024 * 1024;
/// Maximum number of blocks per block blob.
inline constexpr int kMaxBlocksPerBlob = 50'000;
/// Maximum block blob size (50,000 x 4 MB = 200 GB).
inline constexpr std::int64_t kMaxBlockBlobBytes =
    static_cast<std::int64_t>(kMaxBlocksPerBlob) * kMaxBlockBytes;
/// Block blobs up to this size may be uploaded as a single entity.
inline constexpr std::int64_t kMaxSingleShotUploadBytes = 64ll * 1024 * 1024;
/// Maximum page blob size.
inline constexpr std::int64_t kMaxPageBlobBytes = 1ll << 40;  // 1 TB
/// Page offsets/lengths must align to this boundary.
inline constexpr std::int64_t kPageAlignment = 512;
/// Maximum bytes updated by a single PutPage call.
inline constexpr std::int64_t kMaxPageWriteBytes = 4ll * 1024 * 1024;

// ----------------------------------------------------------------- queue ----
/// Maximum encoded message size ("64 KB since the October 2011 APIs").
inline constexpr std::int64_t kMaxEncodedMessageBytes = 64 * 1024;
/// Maximum usable message payload: "48 KB (49152 bytes to be precise) is the
/// maximum usable size of an Azure queue message, rest of the message
/// content is metadata".
inline constexpr std::int64_t kMaxMessagePayloadBytes = 49'152;
/// Messages not deleted within this TTL disappear ("a week; it used to be
/// 2 hours for previous APIs").
inline constexpr std::int64_t kMessageTtlSeconds = 7 * 24 * 3600;
/// A single queue handles at most this many messages per second.
inline constexpr std::int64_t kQueueMessagesPerSec = 500;

// ----------------------------------------------------------------- table ----
/// Maximum entity size.
inline constexpr std::int64_t kMaxEntityBytes = 1024 * 1024;
/// Maximum properties per entity (including the system properties).
inline constexpr int kMaxPropertiesPerEntity = 255;
/// A single table partition serves at most this many entities per second.
inline constexpr std::int64_t kPartitionEntitiesPerSec = 500;

}  // namespace azure::limits
