// End-to-end content checksums, modelling Azure's Content-MD5 contract: the
// client computes a checksum over the payload it uploads, the service
// validates it before committing, stores it with the object, and returns it
// with every download so the client can verify the bytes it received.
//
// CRC32C (Castagnoli) stands in for MD5: it is what Azure's storage backend
// uses internally per block, it is cheap enough to run on every simulated
// payload, and a 32-bit value keeps the replica ledger compact. Software
// table-driven implementation — bit-reproducible across platforms, no
// SSE4.2 dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "azure/common/payload.hpp"

namespace azure {

/// Incremental CRC32C (polynomial 0x1EDC6F41, reflected form 0x82F63B78).
/// Known answer: Crc32c over "123456789" yields 0xE3069283.
class Crc32c {
 public:
  Crc32c() = default;

  Crc32c& update(const char* data, std::size_t len) {
    std::uint32_t crc = ~value_;
    for (std::size_t i = 0; i < len; ++i) {
      crc = (crc >> 8) ^
            table()[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
    }
    value_ = ~crc;
    return *this;
  }

  Crc32c& update(std::string_view s) { return update(s.data(), s.size()); }

  /// Folds a raw integer into the digest (for structured values — entity
  /// properties, sizes — without materialising a byte string).
  Crc32c& update_u64(std::uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    return update(buf, sizeof(buf));
  }

  std::uint32_t value() const noexcept { return value_; }

  static std::uint32_t of(std::string_view s) {
    return Crc32c().update(s).value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> tbl{};
      for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
        }
        tbl[n] = c;
      }
      return tbl;
    }();
    return t;
  }

  std::uint32_t value_ = 0;
};

/// Content checksum of a payload. Real bytes get the real CRC32C; synthetic
/// (size-only) payloads get a deterministic hash of their size, so benchmark
/// workloads participate in the integrity machinery without materialising
/// bytes. The two ranges are not distinguished — a checksum is only ever
/// compared against another checksum computed the same way.
inline std::uint32_t payload_crc(const Payload& p) {
  if (!p.is_synthetic()) return Crc32c::of(p.data());
  // splitmix64 finalizer over the size.
  std::uint64_t z =
      static_cast<std::uint64_t>(p.size()) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint32_t>((z ^ (z >> 31)) >> 16);
}

/// Deterministic combiner for deriving object ids and version checksums
/// from parts (service salt, partition hash, mutation serials).
inline std::uint64_t mix_u64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace azure
