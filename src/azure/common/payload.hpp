// Payload abstraction: either real bytes (for applications and roundtrip
// tests) or a synthetic size-only payload (for benchmarks moving hundreds of
// gigabytes of simulated data without host-memory traffic).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace azure {

class Payload {
 public:
  Payload() = default;

  /// A payload backed by real bytes.
  static Payload bytes(std::string data) {
    Payload p;
    p.size_ = static_cast<std::int64_t>(data.size());
    p.data_ = std::move(data);
    return p;
  }

  /// A size-only payload: all limits and timing apply, no bytes are stored.
  static Payload synthetic(std::int64_t size) {
    Payload p;
    p.size_ = size;
    return p;
  }

  std::int64_t size() const noexcept { return size_; }
  bool is_synthetic() const noexcept {
    return data_.empty() && size_ > 0;
  }
  const std::string& data() const noexcept { return data_; }

  bool operator==(const Payload& o) const noexcept {
    return size_ == o.size_ && data_ == o.data_;
  }

 private:
  std::int64_t size_ = 0;
  std::string data_;
};

}  // namespace azure
