// Azure storage error hierarchy. The backend's throttling error types are
// shared (the SDK surfaces them directly); service-semantic failures are
// defined here.
#pragma once

#include <string>

#include "cluster/errors.hpp"

namespace azure {

using cluster::PartitionMovedError;
using cluster::RegionMovedError;
using cluster::ServerBusyError;
using cluster::StorageError;

// Injected infrastructure faults (see faults/errors.hpp): transient from the
// client's point of view, retryable per RetryPolicy's error classes.
using cluster::ChecksumMismatchError;
using cluster::ConnectionResetError;
using cluster::FaultError;
using cluster::TimeoutError;

/// Requested container/blob/queue/table/entity does not exist (HTTP 404).
class NotFoundError : public StorageError {
 public:
  explicit NotFoundError(const std::string& what) : StorageError(what) {}
};

/// Resource already exists where it must not (HTTP 409).
class ConflictError : public StorageError {
 public:
  explicit ConflictError(const std::string& what) : StorageError(what) {}
};

/// ETag condition failed on update/delete (HTTP 412).
class PreconditionFailedError : public StorageError {
 public:
  explicit PreconditionFailedError(const std::string& what)
      : StorageError(what) {}
};

/// Request violates a documented service limit (HTTP 400).
class InvalidArgumentError : public StorageError {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : StorageError(what) {}
};

}  // namespace azure
