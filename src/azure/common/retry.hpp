// Client-side retry policy. The paper's benchmarks handle ServerBusy by
// sleeping one second and retrying the same operation ("when we run into
// such exceptions, the worker sleeps for a second before retrying").
#pragma once

#include <utility>

#include "azure/common/errors.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace azure {

struct RetryPolicy {
  sim::Duration backoff = sim::kSecond;
  int max_attempts = 1'000;  // effectively "retry until it works"
};

/// Runs `make_op()` (a factory returning a fresh Task each attempt),
/// retrying on ServerBusyError according to `policy`. Other errors
/// propagate immediately. Rethrows ServerBusyError once attempts run out.
template <class MakeOp>
auto with_retry(sim::Simulation& sim, MakeOp make_op, RetryPolicy policy = {})
    -> decltype(make_op()) {
  int retries = 0;
  for (;;) {
    // co_await is not permitted inside a catch handler, so record the need
    // to back off and do it after the handler exits.
    bool backoff = false;
    try {
      co_return co_await make_op();
    } catch (const ServerBusyError&) {
      if (++retries >= policy.max_attempts) throw;
      backoff = true;
    }
    if (backoff) co_await sim.delay(policy.backoff);
  }
}

}  // namespace azure
