// Client-side retry policy.
//
// The paper's benchmarks handle ServerBusy by sleeping one second and
// retrying the same operation ("when we run into such exceptions, the worker
// sleeps for a second before retrying") — that exact behaviour is preserved
// as RetryPolicy::paper() and used by every figure-reproduction workload.
//
// New code defaults to capped exponential backoff with deterministic jitter
// and per-error-class retryability, covering the fault-injection layer's
// transient errors (TimeoutError, ConnectionResetError) alongside the
// paper-era ServerBusyError. Service-semantic errors (NotFound, Conflict,
// PreconditionFailed, InvalidArgument) are never retried: retrying them
// cannot succeed.
#pragma once

#include <cstdint>
#include <utility>

#include "azure/common/errors.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace azure {

enum class Backoff {
  /// Constant `backoff` between attempts (the paper's 1 s sleep).
  kFixed,
  /// backoff * multiplier^retry, capped at max_backoff.
  kExponential,
};

struct RetryPolicy {
  Backoff mode = Backoff::kExponential;
  /// First (and, in kFixed mode, every) backoff.
  sim::Duration backoff = sim::millis(500);
  /// Upper bound on any single backoff in kExponential mode.
  sim::Duration max_backoff = sim::seconds(32);
  double multiplier = 2.0;
  /// Deterministic jitter: each backoff is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]. The draw is a pure hash of
  /// (jitter_seed, retry index) — bit-reproducible, no shared RNG state.
  /// Give concurrent workers distinct seeds to decorrelate their retries.
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0;
  /// Total attempts (first try included) before the error is rethrown.
  int max_attempts = 1'000;  // effectively "retry until it works"

  /// Total per-operation wall-clock budget, measured from the start of the
  /// first attempt. A retryable error caught at or past the deadline is
  /// rethrown instead of retried (the attempt in flight is never cancelled
  /// — the budget bounds *retrying*, not execution). 0 disables the cap;
  /// paper() keeps it 0 so the frozen figures never observe it.
  sim::Duration total_deadline = 0;

  // Per-error-class retryability. Anything not listed here is rethrown
  // immediately.
  bool retry_server_busy = true;       // HTTP 503 throttling
  bool retry_timeouts = true;          // lost request/response
  bool retry_connection_resets = true; // server crashed mid-request
  bool retry_checksum_mismatch = true; // payload corrupted in flight
  bool retry_partition_moved = true;   // stale partition-map redirect
  bool retry_region_moved = true;      // stale geo-map redirect (failover)

  /// The paper's client policy: fixed 1 s sleep, ServerBusy only. With this
  /// preset (and no injected faults) retry timing is byte-identical to the
  /// original benchmarks. Timeouts, resets, and checksum mismatches did not
  /// exist in the paper's model, so the preset surfaces them instead of
  /// hiding them.
  static constexpr RetryPolicy paper() {
    RetryPolicy p;
    p.mode = Backoff::kFixed;
    p.backoff = sim::kSecond;
    p.jitter = 0.0;
    p.retry_timeouts = false;
    p.retry_connection_resets = false;
    p.retry_checksum_mismatch = false;
    // The paper-era model routes with a static partition placement: a moved
    // partition cannot occur in a frozen figure run, and the preset must
    // surface one (not absorb it) if a misconfiguration ever produces it.
    // The same goes for a region failover — the paper model is one stamp.
    p.retry_partition_moved = false;
    p.retry_region_moved = false;
    return p;
  }

  /// Whether an error of a class with retryability `class_retryable`,
  /// caught after `retries` completed retries (i.e. on attempt
  /// `retries + 1`) with `elapsed` spent since the operation started, must
  /// be rethrown instead of retried. Centralizes both budget boundaries:
  /// with max_attempts == N exactly N attempts run (first try plus N - 1
  /// retries), and with a total_deadline the operation stops retrying the
  /// moment the budget is spent — an error caught exactly *at* the deadline
  /// is rethrown, one caught a nanosecond earlier may retry.
  bool gives_up(bool class_retryable, int retries,
                sim::Duration elapsed = 0) const noexcept {
    return !class_retryable || retries + 1 >= max_attempts ||
           (total_deadline > 0 && elapsed >= total_deadline);
  }

  /// Backoff before retry number `retry` (0-based). Pure function of the
  /// policy and the retry index.
  sim::Duration backoff_for(int retry) const {
    sim::Duration base = backoff;
    if (mode == Backoff::kExponential) {
      double b = static_cast<double>(backoff);
      for (int i = 0; i < retry && b < static_cast<double>(max_backoff); ++i) {
        b *= multiplier;
      }
      base = b < static_cast<double>(max_backoff)
                 ? static_cast<sim::Duration>(b)
                 : max_backoff;
    }
    if (jitter > 0.0) {
      const double u = jitter_unit(jitter_seed, retry);
      double scaled =
          static_cast<double>(base) * (1.0 - jitter + 2.0 * jitter * u);
      if (mode == Backoff::kExponential &&
          scaled > static_cast<double>(max_backoff)) {
        scaled = static_cast<double>(max_backoff);
      }
      base = static_cast<sim::Duration>(scaled);
    }
    return base > 0 ? base : sim::kNanosecond;
  }

 private:
  /// splitmix64-style hash of (seed, retry) onto [0, 1) — platform-identical.
  static double jitter_unit(std::uint64_t seed, int retry) {
    std::uint64_t z =
        seed + 0x9E3779B97F4A7C15ull *
                   (static_cast<std::uint64_t>(retry) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

/// Runs `make_op()` (a factory returning a fresh Task each attempt),
/// retrying transient errors according to `policy` and counting retries
/// into `retries_out`. Non-retryable errors propagate immediately; the
/// transient error is rethrown once attempts run out.
namespace detail {
/// Error-class labels interned on first use (tracing only).
inline std::uint16_t error_label(obs::Observer* o, const char* name) {
  return o != nullptr ? o->label(name) : 0;
}
}  // namespace detail

template <class MakeOp>
auto with_retry_counted(sim::Simulation& sim, MakeOp make_op,
                        RetryPolicy policy, std::int64_t& retries_out)
    -> decltype(make_op()) {
  obs::RequestScope request(sim);  // root span over all attempts
  obs::Observer* const o = request.observer();
  const sim::TimePoint op_start = sim.now();
  // Elapsed budget is evaluated where the error is caught (after the failed
  // attempt), so the deadline bounds when retrying stops, never how long an
  // in-flight attempt may run.
  const auto elapsed = [&sim, op_start] { return sim.now() - op_start; };
  int retries = 0;
  for (;;) {
    // co_await is not permitted inside a catch handler, so record the need
    // to back off and do it after the handler exits.
    bool backoff = false;
    std::uint16_t error_class = 0;
    request.count_attempt();
    if (o != nullptr) {
      o->metrics().counter("retry.attempts").add(1);
      // Stage this request's context for the service op about to start; it
      // claims the slot synchronously on entry (or an unwinding scope
      // clears it), so it cannot leak to another request.
      o->set_ambient(request.ctx());
    }
    try {
      co_return co_await make_op();
    } catch (const ServerBusyError&) {
      error_class = detail::error_label(o, "server_busy");
      if (policy.gives_up(policy.retry_server_busy, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    } catch (const TimeoutError&) {
      error_class = detail::error_label(o, "timeout");
      if (policy.gives_up(policy.retry_timeouts, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    } catch (const ConnectionResetError&) {
      error_class = detail::error_label(o, "connection_reset");
      if (policy.gives_up(policy.retry_connection_resets, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    } catch (const ChecksumMismatchError&) {
      // Corruption in flight: the upload was rejected before any state was
      // touched, or the download's end-to-end checksum failed client-side.
      // Either way the operation is safe to repeat verbatim.
      error_class = detail::error_label(o, "checksum_mismatch");
      if (policy.gives_up(policy.retry_checksum_mismatch, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    } catch (const PartitionMovedError&) {
      // Stale partition-map redirect: the request never executed and the
      // redirect already refreshed this client's cached map, so the retry
      // routes against fresh state.
      error_class = detail::error_label(o, "partition_moved");
      if (policy.gives_up(policy.retry_partition_moved, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    } catch (const RegionMovedError&) {
      // Stale geo-map redirect: the primary region failed over since this
      // client last routed. The redirect refreshed the client's cached geo
      // map, so the retry reaches the promoted region.
      error_class = detail::error_label(o, "region_moved");
      if (policy.gives_up(policy.retry_region_moved, retries, elapsed())) {
        request.fail(error_class);
        throw;
      }
      backoff = true;
    }
    if (backoff) {
      ++retries_out;
      const sim::TimePoint backoff_start = sim.now();
      co_await sim.delay(policy.backoff_for(retries++));
      if (o != nullptr) {
        o->metrics().counter("retry.backoffs").add(1);
        o->emit(obs::SpanKind::kRetryBackoff, request.ctx(), backoff_start,
                sim.now(), error_class);
      }
    }
  }
}

/// with_retry_counted without the counter.
template <class MakeOp>
auto with_retry(sim::Simulation& sim, MakeOp make_op, RetryPolicy policy = {})
    -> decltype(make_op()) {
  std::int64_t dropped_count = 0;
  co_return co_await with_retry_counted(sim, std::move(make_op), policy,
                                        dropped_count);
}

}  // namespace azure
