// CloudEnvironment: one simulated Azure deployment — the storage cluster
// plus the three storage services. Client code connects through
// CloudStorageAccount (see cloud_storage_account.hpp).
#pragma once

#include "azure/blob/blob_service.hpp"
#include "azure/cache/cache_service.hpp"
#include "azure/queue/queue_service.hpp"
#include "azure/sql/sql_service.hpp"
#include "azure/table/table_service.hpp"
#include <memory>

#include "cluster/config.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/storage_cluster.hpp"
#include "faults/fault_plan.hpp"
#include "simcore/simulation.hpp"

namespace azure {

struct CloudConfig {
  cluster::ClusterConfig cluster;
  BlobServiceConfig blob;
  QueueServiceConfig queue;
  TableServiceConfig table;
  CacheServiceConfig cache;
  sql::SqlServiceConfig sql;
  /// Deterministic fault injection. The default config is disabled: no RNG
  /// draw, no extra event — byte-identical to a fault-free deployment.
  faults::FaultConfig faults;
};

class CloudEnvironment {
 public:
  explicit CloudEnvironment(sim::Simulation& sim, const CloudConfig& cfg = {})
      : sim_(sim),
        fault_plan_(sim, cfg.faults),
        cluster_(sim, cfg.cluster),
        blob_(cluster_, cfg.blob),
        queue_(cluster_, cfg.queue),
        table_(cluster_, cfg.table),
        cache_(sim, cluster_.network(), cfg.cache),
        sql_(sim, cluster_.network(), cfg.sql) {
    if (fault_plan_.enabled()) cluster_.enable_faults(fault_plan_);
    if (cfg.cluster.balancer.enabled) {
      balancer_ = std::make_unique<cluster::LoadBalancer>(cluster_);
      balancer_->start();
    }
  }

  CloudEnvironment(const CloudEnvironment&) = delete;
  CloudEnvironment& operator=(const CloudEnvironment&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  cluster::StorageCluster& storage_cluster() noexcept { return cluster_; }
  faults::FaultPlan& fault_plan() noexcept { return fault_plan_; }
  BlobService& blob_service() noexcept { return blob_; }
  QueueService& queue_service() noexcept { return queue_; }
  TableService& table_service() noexcept { return table_; }
  CacheService& cache_service() noexcept { return cache_; }
  sql::SqlService& sql_service() noexcept { return sql_; }
  /// The partition-map load balancer; null unless
  /// cfg.cluster.balancer.enabled.
  cluster::LoadBalancer* load_balancer() noexcept { return balancer_.get(); }

 private:
  sim::Simulation& sim_;
  faults::FaultPlan fault_plan_;
  cluster::StorageCluster cluster_;
  BlobService blob_;
  QueueService queue_;
  TableService table_;
  CacheService cache_;
  sql::SqlService sql_;
  std::unique_ptr<cluster::LoadBalancer> balancer_;
};

}  // namespace azure
