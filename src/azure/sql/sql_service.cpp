#include "azure/sql/sql_service.hpp"

namespace azure::sql {
namespace {

bool value_matches_type(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return std::holds_alternative<std::int64_t>(v);
    case ColumnType::kReal:
      return std::holds_alternative<double>(v);
    case ColumnType::kText:
      return std::holds_alternative<std::string>(v);
    case ColumnType::kBool:
      return std::holds_alternative<bool>(v);
  }
  return false;
}

int compare(const Value& a, const Value& b) {
  // Values of the same alternative compare with the variant's ordering.
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

// ------------------------------------------------------------- helpers ----

SqlService::Database& SqlService::require_database(const std::string& name) {
  auto it = databases_.find(name);
  if (it == databases_.end()) {
    throw NotFoundError("database not found: " + name);
  }
  return *it->second;
}

SqlService::Table& SqlService::require_table(Database& db,
                                             const std::string& table) {
  auto it = db.tables.find(table);
  if (it == db.tables.end()) {
    throw NotFoundError("table not found: " + table);
  }
  return it->second;
}

void SqlService::validate_row(const Table& t, const Row& row) const {
  if (row.size() != t.schema.size()) {
    throw InvalidArgumentError("row arity does not match the schema");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!value_matches_type(row[i], t.schema[i].type)) {
      throw InvalidArgumentError("type mismatch in column '" +
                                 t.schema[i].name + "'");
    }
  }
}

std::int64_t SqlService::row_bytes(const Row& row) {
  std::int64_t total = 16;  // row header
  for (const auto& v : row) {
    if (const auto* s = std::get_if<std::string>(&v)) {
      total += static_cast<std::int64_t>(s->size()) + 8;
    } else {
      total += 8;
    }
  }
  return total;
}

bool SqlService::matches(const Table& t, const Row& row,
                         const Predicate& p) {
  std::size_t column = t.schema.size();
  for (std::size_t i = 0; i < t.schema.size(); ++i) {
    if (t.schema[i].name == p.column) {
      column = i;
      break;
    }
  }
  if (column == t.schema.size()) {
    throw InvalidArgumentError("unknown column in predicate: " + p.column);
  }
  const Value& v = row[column];
  if (v.index() != p.operand.index()) {
    throw InvalidArgumentError("predicate operand type mismatch on '" +
                               p.column + "'");
  }
  const int c = compare(v, p.operand);
  switch (p.op) {
    case Predicate::Op::kEq:
      return c == 0;
    case Predicate::Op::kNe:
      return c != 0;
    case Predicate::Op::kLt:
      return c < 0;
    case Predicate::Op::kLe:
      return c <= 0;
    case Predicate::Op::kGt:
      return c > 0;
    case Predicate::Op::kGe:
      return c >= 0;
  }
  return false;
}

sim::Task<sim::ResourceLease> SqlService::begin(netsim::Nic& client,
                                                Database& db,
                                                std::int64_t request_bytes,
                                                sim::Duration cpu) {
  auto connection = co_await db.connections.acquire();
  co_await network_.transfer(client, nic_, request_bytes);
  co_await sim_.delay(cpu);
  co_return connection;
}

// -------------------------------------------------------------- schema ----

sim::Task<void> SqlService::create_database(netsim::Nic& client,
                                            std::string name,
                                            Edition edition) {
  co_await network_.transfer(client, nic_, 512);
  co_await sim_.delay(cfg_.connect_cpu);
  auto [it, inserted] = databases_.try_emplace(name, nullptr);
  if (!inserted) throw ConflictError("database already exists: " + name);
  it->second =
      std::make_unique<Database>(sim_, edition, cfg_.max_connections);
}

sim::Task<void> SqlService::drop_database(netsim::Nic& client,
                                          std::string name) {
  co_await network_.transfer(client, nic_, 256);
  co_await sim_.delay(cfg_.connect_cpu);
  if (databases_.erase(name) == 0) {
    throw NotFoundError("database not found: " + name);
  }
}

sim::Task<void> SqlService::create_table(netsim::Nic& client,
                                         std::string database,
                                         std::string table,
                                         std::vector<Column> schema) {
  if (schema.empty()) {
    throw InvalidArgumentError("a table needs at least its primary key");
  }
  Database& db = require_database(database);
  auto lease = co_await begin(client, db, 1024, cfg_.write_cpu);
  co_await sim_.delay(cfg_.replica_commit);
  auto [it, inserted] = db.tables.try_emplace(table);
  if (!inserted) throw ConflictError("table already exists: " + table);
  it->second.schema = std::move(schema);
}

// ---------------------------------------------------------------- data ----

sim::Task<void> SqlService::insert(netsim::Nic& client, std::string database,
                                   std::string table, Row row) {
  Database& db = require_database(database);
  Table& t = require_table(db, table);
  validate_row(t, row);
  const std::int64_t bytes = row_bytes(row);
  if (db.bytes + bytes > edition_cap_bytes(db.edition)) {
    throw InvalidArgumentError(
        "database full: edition size cap reached (upgrade the edition)");
  }
  auto lease = co_await begin(client, db, bytes + 256, cfg_.write_cpu);
  co_await sim_.delay(cfg_.replica_commit);
  Value key = row.front();
  if (!t.rows.emplace(std::move(key), std::move(row)).second) {
    throw ConflictError("duplicate primary key in " + table);
  }
  db.bytes += bytes;
}

sim::Task<std::optional<Row>> SqlService::select_by_key(netsim::Nic& client,
                                                        std::string database,
                                                        std::string table,
                                                        Value key) {
  Database& db = require_database(database);
  Table& t = require_table(db, table);
  auto lease = co_await begin(client, db, 256, cfg_.point_lookup_cpu);
  auto it = t.rows.find(key);
  if (it == t.rows.end()) {
    co_await network_.transfer(nic_, client, 64);
    co_return std::nullopt;
  }
  co_await network_.transfer(nic_, client, row_bytes(it->second) + 64);
  co_return it->second;
}

sim::Task<std::vector<Row>> SqlService::select_where(netsim::Nic& client,
                                                     std::string database,
                                                     std::string table,
                                                     Predicate predicate) {
  Database& db = require_database(database);
  Table& t = require_table(db, table);
  // A scan costs per-row CPU on the server.
  const auto scan_cpu = static_cast<sim::Duration>(
      static_cast<double>(t.rows.size()) *
      static_cast<double>(cfg_.per_row_scan_cpu));
  auto lease = co_await begin(client, db, 512,
                              cfg_.point_lookup_cpu + scan_cpu);
  std::vector<Row> out;
  std::int64_t wire = 64;
  for (const auto& [key, row] : t.rows) {
    if (matches(t, row, predicate)) {
      out.push_back(row);
      wire += row_bytes(row);
    }
  }
  co_await network_.transfer(nic_, client, wire);
  co_return out;
}

sim::Task<bool> SqlService::update_by_key(netsim::Nic& client,
                                          std::string database,
                                          std::string table, Value key,
                                          Row row) {
  Database& db = require_database(database);
  Table& t = require_table(db, table);
  validate_row(t, row);
  if (compare(row.front(), key) != 0) {
    throw InvalidArgumentError("updated row's primary key must match");
  }
  auto lease = co_await begin(client, db, row_bytes(row) + 256,
                              cfg_.write_cpu);
  co_await sim_.delay(cfg_.replica_commit);
  auto it = t.rows.find(key);
  if (it == t.rows.end()) co_return false;
  db.bytes += row_bytes(row) - row_bytes(it->second);
  it->second = std::move(row);
  co_return true;
}

sim::Task<std::int64_t> SqlService::delete_where(netsim::Nic& client,
                                                 std::string database,
                                                 std::string table,
                                                 Predicate predicate) {
  Database& db = require_database(database);
  Table& t = require_table(db, table);
  const auto scan_cpu = static_cast<sim::Duration>(
      static_cast<double>(t.rows.size()) *
      static_cast<double>(cfg_.per_row_scan_cpu));
  auto lease =
      co_await begin(client, db, 512, cfg_.write_cpu + scan_cpu);
  co_await sim_.delay(cfg_.replica_commit);
  std::int64_t removed = 0;
  for (auto it = t.rows.begin(); it != t.rows.end();) {
    if (matches(t, it->second, predicate)) {
      db.bytes -= row_bytes(it->second);
      it = t.rows.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  co_await network_.transfer(nic_, client, 64);
  co_return removed;
}

std::int64_t SqlService::database_bytes(const std::string& name) const {
  auto it = databases_.find(name);
  return it == databases_.end() ? 0 : it->second->bytes;
}

}  // namespace azure::sql
