// SQL Azure model — the other service the paper defers ("We have chosen
// not to include the assessment of ... SQL-Azure functionalities in this
// study ... We plan to address both these issues").
//
// This is deliberately a *relational* store, in contrast to the schemaless
// Table storage the paper benchmarks:
//  * databases come in the 2012 editions with hard size caps (Web: 1/5 GB,
//    Business: 10..150 GB) — exceeding the cap fails writes;
//  * each database admits a bounded number of concurrent connections
//    (SQL Azure throttled at ~180), modeled as a Resource clients acquire;
//  * tables have typed schemas with a primary key; inserts are validated
//    against the schema;
//  * point lookups use the primary-key index; predicate queries scan.
//
// No SQL text parser: the API is programmatic (schema + predicate
// objects), which is what a benchmark harness needs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "azure/common/errors.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"

namespace azure::sql {

enum class Edition { kWeb1GB, kWeb5GB, kBusiness10GB, kBusiness50GB };

constexpr std::int64_t edition_cap_bytes(Edition e) {
  switch (e) {
    case Edition::kWeb1GB:
      return 1ll << 30;
    case Edition::kWeb5GB:
      return 5ll << 30;
    case Edition::kBusiness10GB:
      return 10ll << 30;
    case Edition::kBusiness50GB:
      return 50ll << 30;
  }
  return 0;
}

enum class ColumnType { kInt, kReal, kText, kBool };

struct Column {
  std::string name;
  ColumnType type;
};

/// A typed cell value.
using Value = std::variant<std::int64_t, double, std::string, bool>;

/// One row: values in schema column order.
using Row = std::vector<Value>;

/// A simple comparison predicate over one column.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op;
  Value operand;
};

struct SqlServiceConfig {
  /// Concurrent connections per database (SQL Azure throttled ~180).
  int max_connections = 180;
  /// Server work per statement.
  sim::Duration connect_cpu = sim::millis(15);
  sim::Duration point_lookup_cpu = sim::millis(2);
  sim::Duration per_row_scan_cpu = sim::micros(4);
  sim::Duration write_cpu = sim::millis(5);
  /// SQL Azure keeps 3 replicas with synchronous commit, like storage.
  sim::Duration replica_commit = sim::millis(3);
  /// Database-server NIC bandwidth.
  double server_nic_bytes_per_sec = 800.0 * 1024 * 1024;
};

class SqlService {
 public:
  SqlService(sim::Simulation& sim, netsim::Network& network,
             const SqlServiceConfig& cfg)
      : sim_(sim),
        network_(network),
        cfg_(cfg),
        nic_(sim, netsim::NicConfig{cfg.server_nic_bytes_per_sec,
                                    cfg.server_nic_bytes_per_sec,
                                    sim::micros(30)}) {}

  const SqlServiceConfig& config() const noexcept { return cfg_; }

  // ------------------------------------------------------------- schema --
  sim::Task<void> create_database(netsim::Nic& client, std::string name,
                                  Edition edition);
  sim::Task<void> drop_database(netsim::Nic& client, std::string name);

  /// Creates a table; the first column is the primary key.
  sim::Task<void> create_table(netsim::Nic& client, std::string database,
                               std::string table, std::vector<Column> schema);

  // --------------------------------------------------------------- data --
  /// Inserts one row (validated against the schema; PK must be unique).
  sim::Task<void> insert(netsim::Nic& client, std::string database,
                         std::string table, Row row);

  /// Point lookup by primary key (index seek).
  sim::Task<std::optional<Row>> select_by_key(netsim::Nic& client,
                                              std::string database,
                                              std::string table, Value key);

  /// Predicate scan; returns matching rows.
  sim::Task<std::vector<Row>> select_where(netsim::Nic& client,
                                           std::string database,
                                           std::string table,
                                           Predicate predicate);

  /// Updates one row by primary key. Returns whether a row matched.
  sim::Task<bool> update_by_key(netsim::Nic& client, std::string database,
                                std::string table, Value key, Row row);

  /// Deletes rows matching the predicate; returns how many.
  sim::Task<std::int64_t> delete_where(netsim::Nic& client,
                                       std::string database,
                                       std::string table,
                                       Predicate predicate);

  /// Current logical size of a database.
  std::int64_t database_bytes(const std::string& name) const;

 private:
  struct Table {
    std::vector<Column> schema;
    std::map<Value, Row> rows;  // keyed by primary key
  };
  struct Database {
    explicit Database(sim::Simulation& sim, Edition ed, int max_connections)
        : edition(ed), connections(sim, max_connections) {}
    Edition edition;
    sim::Resource connections;
    std::map<std::string, Table> tables;
    std::int64_t bytes = 0;
  };

  Database& require_database(const std::string& name);
  static Table& require_table(Database& db, const std::string& table);
  void validate_row(const Table& t, const Row& row) const;
  static std::int64_t row_bytes(const Row& row);
  static bool matches(const Table& t, const Row& row, const Predicate& p);

  /// Connection + request transfer + server work, shared by every op.
  sim::Task<sim::ResourceLease> begin(netsim::Nic& client, Database& db,
                                      std::int64_t request_bytes,
                                      sim::Duration cpu);

  sim::Simulation& sim_;
  netsim::Network& network_;
  SqlServiceConfig cfg_;
  netsim::Nic nic_;
  std::map<std::string, std::unique_ptr<Database>> databases_;
};

}  // namespace azure::sql
