// Tunable parameters of the simulated Windows Azure storage cluster.
//
// Defaults encode the scalability targets the paper quotes (Section IV) and
// the architecture published in Calder et al., "Windows Azure Storage"
// (SOSP'11): 3-replica strong consistency, partitioned servers, per-account
// and per-partition transaction caps. Service-time constants are calibrated
// in bench/ so that reproduced figures match the paper's shapes; every knob
// is documented with its observable effect.
#pragma once

#include <cstdint>

#include "simcore/time.hpp"

namespace cluster {

/// What happens when the account transaction target is exceeded.
enum class ThrottleMode {
  /// Reject with ServerBusy, as real Azure does (clients back off/retry).
  kReject,
  /// Admission-queue the request until the next window (an ablation that
  /// shows why rejection + client backoff is the observable behaviour).
  kQueue,
  /// S3-style contract: no account-wide transaction gate at all; instead
  /// each key *prefix* carries independent read and write request-rate
  /// windows (prefix_read_requests_per_sec / prefix_write_requests_per_sec)
  /// and overruns raise SlowDownError (HTTP 503 SlowDown). Requests whose
  /// RequestCost carries no throttle_prefix are never throttled.
  kPrefixSlowdown,
};

/// The partition-map load balancer (Calder et al., SOSP'11 §5: the partition
/// master splits the key space into movable ranges and reassigns them across
/// servers under load). Disabled by default: with no balancer and no moves,
/// map routing is exactly the static `hash % partition_servers` placement.
struct BalancerConfig {
  /// Spawn the master balancing process. Off by default so the frozen paper
  /// figures (fig4–fig9) keep their static placement byte-for-byte.
  bool enabled = false;

  /// Movable hash-range buckets per partition server. The map holds
  /// partition_servers * buckets_per_server buckets; the default assignment
  /// (bucket % servers) equals modulo routing, so the knob only changes how
  /// finely load can be shed, never the unbalanced baseline.
  int buckets_per_server = 8;

  /// Balancing epoch: the master samples per-bucket request counters and
  /// makes its move decisions once per epoch.
  sim::Duration epoch = sim::millis(500);

  /// A server whose epoch load exceeds `offload_threshold * mean healthy
  /// load` sheds its hottest buckets until it is back under the limit.
  double offload_threshold = 1.25;

  /// Upper bound on bucket moves per epoch — bounds reassignment churn and
  /// the redirect storm a move burst would impose on clients.
  int max_moves_per_epoch = 4;

  /// Move cost: a bucket being handed off is unavailable for this window;
  /// requests for it arriving inside the window wait it out at the
  /// front-end (the paper's benchmarks never observe this — no moves).
  sim::Duration move_unavailable = sim::millis(10);

  /// The master parks itself after this many consecutive epochs with zero
  /// request traffic, so a drained simulation can terminate. A workload
  /// with quiet gaps longer than idle_epochs_to_exit * epoch loses
  /// balancing for its later bursts.
  int idle_epochs_to_exit = 4;

  /// Seed of the balancer's own RNG; decisions draw from a stream forked
  /// off it, so balancing randomness never perturbs (or is perturbed by)
  /// any other consumer's draws.
  std::uint64_t seed = 0xBA1A;
};

struct ClusterConfig {
  /// Throttling policy for the account transaction target.
  ThrottleMode throttle_mode = ThrottleMode::kReject;

  /// Partition-map load balancing (off by default).
  BalancerConfig balancer;

  // ----------------------------------------------------------- topology ----
  /// Number of partition servers data is spread across. Azure spreads
  /// partitions over many servers; 16 is plenty for 100 simulated clients.
  int partition_servers = 16;

  /// Replicas per storage object (Azure keeps 3 with strong consistency).
  int replicas = 3;

  /// Concurrent request executors per partition server.
  int executors_per_server = 64;

  // ------------------------------------------------------------ network ----
  /// Partition-server NIC bandwidth, each direction (bytes/s).
  double server_nic_bytes_per_sec = 800.0 * 1024 * 1024;

  /// Per-request NIC serialization latency on the server side.
  sim::Duration server_nic_latency = sim::micros(50);

  /// Front-end (load balancer + authentication + routing) latency added to
  /// every request before it reaches a partition server.
  sim::Duration frontend_latency = sim::millis(1);

  // --------------------------------------------------------------- disk ----
  /// Streaming disk bandwidth per partition server (bytes/s).
  double disk_bytes_per_sec = 400.0 * 1024 * 1024;

  /// Fixed per-request server-side processing time (request parsing,
  /// partition-map lookup, authorization).
  sim::Duration request_overhead = sim::micros(500);

  // -------------------------------------------------------- replication ----
  /// Commit latency added by each synchronous replica write (intra-stamp
  /// stream append + ack), on top of moving the payload to the replica.
  sim::Duration replica_commit_latency = sim::millis(2);

  // ----------------------------------------------------------- integrity ----
  /// Pause between a partition server's restart and the anti-entropy scrub
  /// of its replicas (lets the restart storm settle first).
  sim::Duration scrub_delay = sim::millis(100);

  /// Per-object checksum verification time paid by a scrub pass.
  sim::Duration scrub_check_time = sim::micros(20);

  // ------------------------------------------------ scalability targets ----
  /// "Windows Azure storage services can handle up to 5,000 transactions
  /// (entities/messages/blobs) per second" per account.
  std::int64_t account_transactions_per_sec = 5'000;

  /// "maximum bandwidth support for up to 3 GB per second for a single
  /// storage account".
  double account_bytes_per_sec = 3.0 * 1024 * 1024 * 1024;

  /// ThrottleMode::kPrefixSlowdown only: write (PUT/DELETE/COPY) requests
  /// per second each key prefix sustains before 503 SlowDown. The default
  /// mirrors S3's documented 3,500 write-requests-per-prefix target.
  std::int64_t prefix_write_requests_per_sec = 3'500;

  /// ThrottleMode::kPrefixSlowdown only: read (GET/HEAD/LIST) requests per
  /// second per prefix. Mirrors S3's documented 5,500 read target.
  std::int64_t prefix_read_requests_per_sec = 5'500;
};

}  // namespace cluster
