// Error types surfaced by the simulated storage backend.
#pragma once

#include <stdexcept>
#include <string>

#include "faults/errors.hpp"

namespace cluster {

// Injected infrastructure faults (lost messages, crashed servers) surface
// through the same surface as backend errors; see faults/errors.hpp for why
// they form a separate hierarchy from StorageError.
using faults::ChecksumMismatchError;
using faults::ConnectionResetError;
using faults::FaultError;
using faults::TimeoutError;

/// Base class for all simulated storage-backend failures.
class StorageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when a scalability target is exceeded (HTTP 503 in real Azure).
/// Clients are expected to back off and retry — the paper's benchmark
/// sleeps one second before retrying the same operation.
class ServerBusyError : public StorageError {
 public:
  explicit ServerBusyError(const std::string& what) : StorageError(what) {}
};

}  // namespace cluster
