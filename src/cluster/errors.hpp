// Error types surfaced by the simulated storage backend.
#pragma once

#include <stdexcept>
#include <string>

#include "faults/errors.hpp"

namespace cluster {

// Injected infrastructure faults (lost messages, crashed servers) surface
// through the same surface as backend errors; see faults/errors.hpp for why
// they form a separate hierarchy from StorageError.
using faults::ChecksumMismatchError;
using faults::ConnectionResetError;
using faults::FaultError;
using faults::TimeoutError;

/// Base class for all simulated storage-backend failures.
class StorageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when a scalability target is exceeded (HTTP 503 in real Azure).
/// Clients are expected to back off and retry — the paper's benchmark
/// sleeps one second before retrying the same operation.
class ServerBusyError : public StorageError {
 public:
  explicit ServerBusyError(const std::string& what) : StorageError(what) {}
};

/// S3-style per-prefix throttle response (HTTP 503 "SlowDown"). Raised by
/// ThrottleMode::kPrefixSlowdown when one key prefix exceeds its
/// read or write request-rate window. Derives from ServerBusyError so retry
/// policies and client backoff loops classify it uniformly as "back off and
/// retry" — the contract difference is the *scope* of the gate (one prefix
/// vs. the whole account), not the client's recovery action.
class SlowDownError : public ServerBusyError {
 public:
  explicit SlowDownError(const std::string& what) : ServerBusyError(what) {}
};

/// Raised when a request was routed with a stale partition-map version: the
/// bucket owning the key moved to another server since the client last saw
/// the map. The request was not executed; the redirect response refreshes
/// the client's cached map, so an immediate retry routes correctly. Maps to
/// the partition-move redirects real Azure front-ends issue while a range
/// is being reassigned. Retryable by default; excluded from
/// RetryPolicy::paper() because the paper-era model has no movable
/// partitions (and the frozen figures must never observe one).
class PartitionMovedError : public StorageError {
 public:
  explicit PartitionMovedError(const std::string& what) : StorageError(what) {}
};

/// Cross-region analogue of PartitionMovedError: the client routed a request
/// to a region that is no longer (or not yet) the home stamp for writes /
/// strong reads — the region failed over while the client held a stale geo
/// map. The redirect response carries the new geo-map version, so an
/// immediate retry routes to the promoted region. Retryable by default;
/// excluded from RetryPolicy::paper() because the paper-era model has a
/// single stamp (and the frozen figures must never observe one).
class RegionMovedError : public StorageError {
 public:
  explicit RegionMovedError(const std::string& what) : StorageError(what) {}
};

}  // namespace cluster
