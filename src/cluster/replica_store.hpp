// Integrity bookkeeping for the cluster's replicated objects.
//
// The services keep the *authoritative* object contents (blob blocks, queue
// messages, table entities) in their own maps; what the cluster needs to
// model end-to-end integrity is the per-replica *physical* state: which
// generation of each object every replica holds, whether that copy's CRC32C
// still validates, and whether a crash left it torn. This store is that
// ledger. It costs nothing when fault injection is off — the cluster only
// touches it for integrity-tracked requests under an armed plan.
//
// Placement mirrors the write path: the object's home (primary) partition
// server holds replica 0, and replica r lives on server (home + r) % N —
// the same ring order the failover and replication paths walk, so "the next
// healthy server" is exactly "the next replica".
//
// A replica copy is GOOD when it holds the committed generation, its stored
// checksum matches the committed checksum, and it is not torn. The committed
// (generation, checksum) only advance when a write is acknowledged to the
// client, so:
//  * a replica that missed a commit while its server was down is *stale*;
//  * a replica whose commit a crash interrupted may be *torn* (partial
//    write, checksum invalid);
//  * a replica that committed a generation whose write later failed (the
//    primary crashed before acking) is *divergent* — it holds real data the
//    service never acknowledged.
// All three are caught by the same verify() check and repaired by copying
// the committed content back in (read-repair or scrub).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace cluster {

class ReplicaStore {
 public:
  struct Replica {
    std::uint64_t gen = 0;
    std::uint32_t crc = 0;
    bool torn = false;
    /// Guards against concurrent repairs of the same copy (read-repair
    /// racing the scrubber).
    bool repairing = false;
  };

  struct Entry {
    std::uint64_t committed_gen = 0;
    std::uint32_t committed_crc = 0;
    /// Allocator for write-attempt generations. Concurrent writes to the
    /// same object must not share a generation number, and an attempt that
    /// fails (primary crash before ack) must not be reused — the copies it
    /// landed are divergent precisely because their generation was never
    /// committed.
    std::uint64_t next_gen = 0;
    /// Stored size of the object — what a repair has to move.
    std::int64_t bytes = 0;
    /// Partition server holding replica 0.
    int home = 0;
    std::vector<Replica> replicas;

    bool replica_good(int r) const noexcept {
      const Replica& rep = replicas[static_cast<std::size_t>(r)];
      return !rep.torn && rep.gen == committed_gen &&
             rep.crc == committed_crc;
    }
  };

  explicit ReplicaStore(int replicas_per_object, int servers) noexcept
      : replicas_per_object_(replicas_per_object), servers_(servers) {}

  /// Finds or creates the entry for `object_id`, homing new objects on
  /// `home`. (An object's home never changes: partition reassignment moves
  /// the *serving* role, not the stored replicas.)
  Entry& open(std::uint64_t object_id, int home) {
    auto [it, inserted] = entries_.try_emplace(object_id);
    if (inserted) {
      it->second.home = home;
      it->second.replicas.resize(
          static_cast<std::size_t>(replicas_per_object_));
    }
    return it->second;
  }

  /// The entry for `object_id`, or nullptr when it was never written through
  /// an integrity-tracked request.
  Entry* find(std::uint64_t object_id) noexcept {
    auto it = entries_.find(object_id);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Server index hosting replica `r` of `entry`.
  int server_of(const Entry& entry, int r) const noexcept {
    return (entry.home + r) % servers_;
  }

  /// Replica index of `entry` hosted on `server`, or -1.
  int replica_on(const Entry& entry, int server) const noexcept {
    for (int r = 0; r < replicas_per_object_; ++r) {
      if (server_of(entry, r) == server) return r;
    }
    return -1;
  }

  /// Deterministic iteration (ordered by object id) for the scrubber.
  std::map<std::uint64_t, Entry>& entries() noexcept { return entries_; }
  const std::map<std::uint64_t, Entry>& entries() const noexcept {
    return entries_;
  }

  std::int64_t tracked_objects() const noexcept {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Replica copies that currently fail verification, across all objects.
  /// Zero means every replica of every tracked object converged to its
  /// committed checksum — the scrubber's goal state.
  std::int64_t divergent_replicas() const noexcept {
    std::int64_t n = 0;
    for (const auto& [id, entry] : entries_) {
      for (int r = 0; r < replicas_per_object_; ++r) {
        if (!entry.replica_good(r)) ++n;
      }
    }
    return n;
  }

  int replicas_per_object() const noexcept { return replicas_per_object_; }

 private:
  int replicas_per_object_;
  int servers_;
  std::map<std::uint64_t, Entry> entries_;
};

}  // namespace cluster
