// Stable partition hashing. Azure partitions blobs by container+blob name,
// queues by queue name, and table entities by table+partition key; we use
// FNV-1a so the mapping is identical across platforms and runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace cluster {

constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Combines two key components (e.g. container + blob name) into one
/// partition hash, mirroring Azure's "PartitionKey = name1 + '/' + name2".
constexpr std::uint64_t partition_hash(std::string_view a,
                                       std::string_view b = {}) noexcept {
  std::uint64_t h = fnv1a(a);
  if (!b.empty()) {
    h ^= 0x9E3779B97F4A7C15ull;
    for (const char c : b) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ull;
    }
  }
  return h;
}

}  // namespace cluster
