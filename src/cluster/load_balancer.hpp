// The partition master's load balancer (Calder et al., SOSP'11 §5): a
// periodic process that samples per-bucket request counters each balancing
// epoch and reassigns the hottest buckets off overloaded servers.
//
// Decision procedure, once per epoch:
//   1. Compute each bucket's request delta since the previous epoch and each
//      healthy server's load (the sum over the buckets it owns).
//   2. Walk overloaded servers (load > offload_threshold * healthy mean) in
//      ascending index order; for each, shed its hottest buckets — hottest
//      first, bucket id breaking ties — onto the least-loaded healthy server
//      until it is back under the limit, the per-epoch move budget runs out,
//      or it is down to one bucket.
//   3. Every move pays the handoff cost: the bucket is unavailable for
//      cfg.move_unavailable, requests arriving inside the window wait it
//      out, and clients with the old map version pay one redirect.
//
// Determinism: every input (counters, health, map state) is simulation
// state, the walk orders are fixed, and the only randomness — breaking ties
// between equally loaded target servers — draws from a stream forked off
// the balancer's own seeded RNG, so balancing decisions replay
// byte-identically and never perturb any other consumer's draws.
//
// The process parks itself after cfg.idle_epochs_to_exit epochs with no
// traffic so a drained simulation can terminate (Simulation::run exits only
// when the event queue empties).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/storage_cluster.hpp"
#include "simcore/random.hpp"
#include "simcore/task.hpp"

namespace cluster {

class LoadBalancer {
 public:
  explicit LoadBalancer(StorageCluster& cluster)
      : cluster_(cluster),
        cfg_(cluster.config().balancer),
        rng_(cfg_.seed),
        decision_rng_(rng_.fork()) {}

  /// Spawns the master process. Call at most once, before Simulation::run.
  void start() { cluster_.simulation().spawn(run(), "partition-balancer"); }

  std::int64_t epochs() const noexcept { return epochs_; }
  std::int64_t moves() const noexcept { return moves_; }

 private:
  sim::Task<void> run() {
    const int buckets = cluster_.partition_map().buckets();
    std::vector<std::int64_t> prev(static_cast<std::size_t>(buckets), 0);
    std::vector<std::int64_t> delta(static_cast<std::size_t>(buckets), 0);
    int idle = 0;
    for (;;) {
      co_await cluster_.simulation().delay(cfg_.epoch);
      ++epochs_;
      const std::vector<std::int64_t>& cur = cluster_.bucket_requests();
      std::int64_t total = 0;
      for (int b = 0; b < buckets; ++b) {
        delta[b] = cur[b] - prev[b];
        prev[b] = cur[b];
        total += delta[b];
      }
      if (total == 0) {
        if (++idle >= cfg_.idle_epochs_to_exit) co_return;
        continue;
      }
      idle = 0;
      rebalance(delta, total);
    }
  }

  void rebalance(const std::vector<std::int64_t>& delta, std::int64_t total) {
    const PartitionMap& map = cluster_.partition_map();
    const int servers = cluster_.server_count();

    std::vector<std::int64_t> load(static_cast<std::size_t>(servers), 0);
    std::vector<int> owned(static_cast<std::size_t>(servers), 0);
    for (int b = 0; b < map.buckets(); ++b) {
      load[static_cast<std::size_t>(map.owner(b))] += delta[b];
      ++owned[static_cast<std::size_t>(map.owner(b))];
    }
    int healthy = 0;
    for (int s = 0; s < servers; ++s) healthy += cluster_.server(s).up();
    if (healthy == 0) return;
    const double limit = cfg_.offload_threshold *
                         (static_cast<double>(total) / healthy);

    int budget = cfg_.max_moves_per_epoch;
    for (int s = 0; s < servers && budget > 0; ++s) {
      if (!cluster_.server(s).up()) continue;
      if (static_cast<double>(load[s]) <= limit) continue;

      // This server's buckets, hottest first (bucket id breaks ties).
      std::vector<int> mine = map.buckets_of(s);
      std::sort(mine.begin(), mine.end(), [&](int a, int b) {
        if (delta[a] != delta[b]) return delta[a] > delta[b];
        return a < b;
      });
      for (const int b : mine) {
        if (budget == 0) break;
        if (static_cast<double>(load[s]) <= limit) break;
        if (owned[s] <= 1) break;     // never empty a server entirely
        if (delta[b] == 0) break;     // the rest are cold; moving is churn
        const int target = pick_target(load, s);
        if (target < 0) break;
        // Don't move a bucket that would just overload the target instead.
        if (load[target] + delta[b] >= load[s]) continue;
        cluster_.move_bucket(b, target, cfg_.move_unavailable);
        load[s] -= delta[b];
        load[target] += delta[b];
        --owned[s];
        ++owned[target];
        --budget;
        ++moves_;
      }
    }
  }

  /// Least-loaded healthy server other than `from`; equally loaded
  /// candidates are tied-broken by a draw from the decision stream.
  int pick_target(const std::vector<std::int64_t>& load, int from) {
    std::int64_t best = 0;
    std::vector<int> ties;
    for (int s = 0; s < cluster_.server_count(); ++s) {
      if (s == from || !cluster_.server(s).up()) continue;
      if (ties.empty() || load[s] < best) {
        best = load[s];
        ties.assign(1, s);
      } else if (load[s] == best) {
        ties.push_back(s);
      }
    }
    if (ties.empty()) return -1;
    if (ties.size() == 1) return ties.front();
    return ties[static_cast<std::size_t>(decision_rng_.uniform(
        0, static_cast<std::int64_t>(ties.size()) - 1))];
  }

  StorageCluster& cluster_;
  BalancerConfig cfg_;
  sim::Random rng_;
  sim::Random decision_rng_;
  std::int64_t epochs_ = 0;
  std::int64_t moves_ = 0;
};

}  // namespace cluster
