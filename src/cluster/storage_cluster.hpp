// The simulated storage stamp: partition servers behind a front-end, with
// account-level scalability targets and synchronous 3-replica commits.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/errors.hpp"
#include "cluster/partition_map.hpp"
#include "cluster/partition_server.hpp"
#include "cluster/replica_store.hpp"
#include "faults/fault_plan.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace cluster {

/// Cost description of one storage request, filled in by the service layer
/// (blob/queue/table), which knows the operation semantics.
struct RequestCost {
  /// Payload bytes client -> server (uploads, message bodies, entities).
  std::int64_t request_bytes = 0;
  /// Payload bytes server -> client (downloads, query results).
  std::int64_t response_bytes = 0;
  /// Extra server CPU beyond the fixed per-request overhead (index lookups,
  /// serialization, ETag checks).
  sim::Duration server_cpu = 0;
  /// Bytes moved through the primary's disk.
  std::int64_t disk_bytes = 0;
  /// Synchronously commit to the other replicas before acknowledging.
  bool replicate = false;
  /// Whether the request counts against the account's transactions/s target.
  bool counts_as_transaction = true;

  // ------------------------------------------- per-prefix throttling ----
  /// ThrottleMode::kPrefixSlowdown only: hash of the key prefix this
  /// request lands in. Each distinct value carries its own read and write
  /// rate windows; 0 means the request is exempt from prefix throttling.
  std::uint64_t throttle_prefix = 0;
  /// Classifies the request against the prefix's read window (GET/HEAD/
  /// LIST) instead of its write window (PUT/DELETE/COPY).
  bool prefix_read = false;

  // ----------------------------------------------------------- integrity ----
  /// Identity of the stored object this request reads or writes, for
  /// end-to-end integrity tracking (0 = untracked: metadata and other
  /// requests without a checksummed payload). Only consulted under an armed
  /// fault plan.
  std::uint64_t object_id = 0;
  /// CRC32C of the object's content *after* this mutation (writes only).
  std::uint32_t content_crc = 0;
  /// Stored size of the object after this mutation — what a replica repair
  /// has to copy. Defaults to disk_bytes when 0.
  std::int64_t object_bytes = 0;
};

/// What execute() tells the service layer beyond "it completed".
struct ExecResult {
  /// The response payload was corrupted in flight. Only integrity-tracked
  /// requests can observe this: the service's end-to-end checksum fails
  /// client-side and the caller must surface ChecksumMismatchError instead
  /// of handing corrupt bytes to the application.
  bool response_corrupted = false;
  /// Partition server that served the request (after any failover).
  int served_by = -1;
};

class StorageCluster {
 public:
  StorageCluster(sim::Simulation& sim, const ClusterConfig& cfg = {})
      : sim_(sim),
        cfg_(validated(cfg)),
        network_(sim),
        account_tx_(sim, cfg.account_transactions_per_sec),
        account_ingress_(sim, cfg.account_bytes_per_sec, 1024.0 * 1024),
        account_egress_(sim, cfg.account_bytes_per_sec, 1024.0 * 1024),
        map_(cfg.partition_servers, cfg.balancer.buckets_per_server),
        store_(cfg.replicas, cfg.partition_servers) {
    servers_.reserve(static_cast<std::size_t>(cfg.partition_servers));
    for (int i = 0; i < cfg.partition_servers; ++i) {
      servers_.push_back(std::make_unique<PartitionServer>(sim, cfg_, i));
    }
    bucket_requests_.assign(static_cast<std::size_t>(map_.buckets()), 0);
    crash_moved_.resize(servers_.size());
  }

  sim::Simulation& simulation() noexcept { return sim_; }
  const ClusterConfig& config() const noexcept { return cfg_; }
  netsim::Network& network() noexcept { return network_; }

  /// Arms fault injection: link faults on the network, plus — when the plan
  /// schedules server crashes — a driver process that crashes and restarts
  /// partition servers per the plan's precomputed schedule, and one
  /// anti-entropy scrubber per partition server that re-verifies and repairs
  /// that server's replicas after each restart. Requests routed to a down
  /// primary fail over to the next healthy server; a crash while a request
  /// is in flight resets the client's connection.
  void enable_faults(faults::FaultPlan& plan) {
    faults_ = &plan;
    network_.set_fault_plan(&plan);
    if (plan.config().server_faults_enabled()) {
      scrub_gates_.reserve(servers_.size());
      for (std::size_t i = 0; i < servers_.size(); ++i) {
        scrub_gates_.push_back(std::make_unique<sim::Gate>(sim_));
      }
      for (int i = 0; i < static_cast<int>(servers_.size()); ++i) {
        sim_.spawn(scrubber(i), "scrubber");
      }
      sim_.spawn(crash_driver(), "fault-crash-driver");
    }
  }
  faults::FaultPlan* fault_plan() const noexcept { return faults_; }

  /// Crashes server `s` now: marks it down, records the fault, and
  /// proactively reassigns its buckets across the healthy servers so most
  /// requests during the downtime pay only a stale-map redirect. Shared by
  /// the plan-driven crash driver and external chaos controllers (the
  /// sharded kernel delivers fleet-wide crash schedules as cross-domain
  /// events, see core/sharded_world.cpp).
  void crash_server(int s) {
    PartitionServer& victim = server(s);
    victim.crash();
    if (faults_ != nullptr) {
      faults_->record(faults::FaultKind::kServerCrash, victim.index());
    }
    reassign_off(victim.index(), /*throw_when_none_healthy=*/false);
  }

  /// Restarts server `s`: marks it up, records the restart, fails its
  /// pre-crash buckets back, and triggers the post-restart anti-entropy
  /// scrub — via the parked per-server scrubber when the plan armed one
  /// and it is still running, else (externally driven crashes, or restarts
  /// after the plan's own schedule released the scrubbers) as a one-shot
  /// delayed pass.
  void restart_server(int s) {
    PartitionServer& victim = server(s);
    victim.restart();
    if (faults_ != nullptr) {
      faults_->record(faults::FaultKind::kServerRestart, victim.index());
    }
    fail_back(victim.index());
    if (!scrub_shutdown_ && static_cast<std::size_t>(s) < scrub_gates_.size()) {
      // Wake the restarted server's scrubber: any replica it hosts may have
      // missed commits (stale) or been torn by the crash.
      scrub_gates_[static_cast<std::size_t>(s)]->set();
    } else if (faults_ != nullptr) {
      // No parked scrubber to wake — either the plan never armed one, or
      // the crash driver already exhausted its schedule and released them
      // (scrub_shutdown_): setting an exited scrubber's gate would silently
      // skip the scrub, so run it as a one-shot instead.
      sim_.spawn(post_restart_scrub(s), "scrub-once");
    }
  }

  /// The integrity ledger (which generation/checksum each replica of each
  /// tracked object holds). Mutable access so tests can stage damage.
  ReplicaStore& replica_store() noexcept { return store_; }
  const ReplicaStore& replica_store() const noexcept { return store_; }

  /// Server currently serving `partition_hash`, per the partition map. With
  /// no moves (balancer off, no crashes) this equals the historical static
  /// placement `hash % partition_servers`.
  int server_index(std::uint64_t partition_hash) const noexcept {
    return map_.server_of(partition_hash);
  }

  PartitionServer& server(int index) noexcept {
    return *servers_[static_cast<std::size_t>(index)];
  }

  int server_count() const noexcept {
    return static_cast<int>(servers_.size());
  }

  /// The authoritative hash-range -> server assignment (see
  /// partition_map.hpp). Mutate only through move_bucket(), which keeps the
  /// counters, gauges and span records consistent with the map.
  const PartitionMap& partition_map() const noexcept { return map_; }

  /// Requests routed per bucket since construction — the load signal the
  /// balancer samples each epoch (includes requests that then failed).
  const std::vector<std::int64_t>& bucket_requests() const noexcept {
    return bucket_requests_;
  }

  /// Buckets reassigned (by the balancer or by crash failover).
  std::int64_t partition_moves() const noexcept { return partition_moves_; }

  /// Requests redirected because the client's cached map version predated
  /// the target bucket's last move.
  std::int64_t stale_map_redirects() const noexcept {
    return stale_map_redirects_;
  }

  /// Reassigns `bucket` to `to`, optionally making it unavailable for
  /// `offline_for` (the move-cost window paid by requests arriving while
  /// the handoff is in progress). The single mutation point of the map.
  void move_bucket(int bucket, int to, sim::Duration offline_for) {
    if (map_.owner(bucket) == to) return;
    map_.assign(bucket, to,
                offline_for > 0 ? sim_.now() + offline_for : sim::TimePoint{0});
    ++partition_moves_;
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      o->metrics().counter("cluster.partition_moves").add(1);
      o->metrics().gauge("cluster.map_version").set(
          static_cast<std::int64_t>(map_.version()));
      o->emit(obs::SpanKind::kPartitionMove, obs::TraceContext{}, sim_.now(),
              sim_.now() + (offline_for > 0 ? offline_for : 0), 0, to,
              bucket);
    }
  }

  /// Executes one request against the partition owning `partition_hash` on
  /// behalf of the client endpoint `client`. Throws ServerBusyError when the
  /// account transaction target is exceeded (before any time is spent, as a
  /// front-end rejection). For integrity-tracked requests (cost.object_id
  /// != 0 under an armed fault plan) the cluster additionally verifies the
  /// request payload's checksum server-side, verifies the serving replica on
  /// reads (failing over and read-repairing on mismatch), and reports
  /// response-payload corruption to the caller via ExecResult.
  sim::Task<ExecResult> execute(netsim::Nic& client,
                                std::uint64_t partition_hash,
                                RequestCost cost) {
    // Claim the context the service layer staged for this request (empty
    // when tracing is off or the caller is untraced). Must be the first
    // statement: lazy Tasks run synchronously up to their first suspension,
    // so nothing can interleave between the caller's set and this take.
    obs::Observer* const o = sim_.observer();
    obs::TraceContext trace{};
    if (o != nullptr) trace = o->take_ambient();

    if (cfg_.throttle_mode == ThrottleMode::kPrefixSlowdown) {
      // S3-style contract: no account-wide gate. Each key prefix carries
      // independent read/write request-rate windows; overruns reject with
      // 503 SlowDown before any time is spent, like the front-end
      // rejection of kReject but scoped to one prefix.
      if (cost.throttle_prefix != 0) {
        PrefixWindows& w = prefix_windows(cost.throttle_prefix);
        sim::WindowCounter& gate = cost.prefix_read ? w.reads : w.writes;
        if (!gate.try_consume()) {
          ++prefix_slowdowns_;
          if (o != nullptr) {
            o->metrics().counter("cluster.prefix_slowdowns").add(1);
          }
          throw SlowDownError(cost.prefix_read
                                  ? "503 SlowDown: prefix read request "
                                    "rate exceeded"
                                  : "503 SlowDown: prefix write request "
                                    "rate exceeded");
        }
      }
    } else if (cost.counts_as_transaction) {
      const sim::TimePoint admission_start = sim_.now();
      bool throttled = false;
      if (cfg_.throttle_mode == ThrottleMode::kReject) {
        if (!account_tx_.try_consume()) {
          if (o != nullptr) {
            o->metrics().counter("cluster.throttle_rejects").add(1);
          }
          throw ServerBusyError(
              "account transaction target exceeded (5,000 tx/s)");
        }
      } else {
        // Ablation mode: over-target arrivals wait for a later admission
        // window instead of being rejected. Admission is FIFO by arrival
        // ticket: only the waiter at the head of the queue may consume
        // budget. Without the ticket, every waiter raced try_consume at the
        // window boundary and the event queue broke the tie by *scheduling*
        // time — so a late arrival whose wakeup happened to be scheduled
        // earlier could starve waiters that had been parked for windows.
        const std::uint64_t ticket = throttle_next_ticket_++;
        for (;;) {
          if (ticket == throttle_front_) {
            if (account_tx_.try_consume()) {
              ++throttle_front_;
              break;
            }
            // Head of the queue with the window exhausted: nothing can be
            // admitted before the next window boundary.
            throttled = true;
            co_await sim_.delay_until(
                (sim_.now() / sim::kSecond + 1) * sim::kSecond);
          } else if (account_tx_.current_window_count() >=
                     account_tx_.budget()) {
            // Not at the head and the window is dry anyway — park to the
            // boundary rather than spinning behind the head waiter.
            throttled = true;
            co_await sim_.delay_until(
                (sim_.now() / sim::kSecond + 1) * sim::kSecond);
          } else {
            // Not at the head but budget remains: yield to the back of this
            // instant's event queue so earlier tickets (whose events are
            // already pending) claim the budget first, then recheck.
            throttled = true;
            co_await sim_.delay(0);
          }
        }
      }
      if (o != nullptr && throttled) {
        o->emit(obs::SpanKind::kThrottleWait, trace, admission_start,
                sim_.now(), o->label("account.tx"));
      }
    }
    ++total_requests_;
    if (o != nullptr) o->metrics().counter("cluster.requests").add(1);

    // ------------------------------------------------------------ routing ----
    // The partition map owns the hash-range -> server assignment. On the
    // fast path (no bucket has ever moved: balancer off, no crash failover)
    // the default assignment equals the historical `hash % servers` modulo
    // and none of the staleness machinery below runs.
    const int bucket = map_.bucket_of(partition_hash);
    ++bucket_requests_[static_cast<std::size_t>(bucket)];
    if (map_.moves() > 0) {
      // Client-side map cache: a client whose cached version predates this
      // bucket's last move is routed on stale state. The front-end answers
      // with a redirect carrying the fresh map (modelled as one front-end
      // round trip plus a typed, retryable error) instead of executing the
      // request against the wrong server.
      std::uint64_t& cached = client_versions_[&client];
      if (cached < map_.changed_at(bucket)) {
        cached = map_.version();
        ++stale_map_redirects_;
        co_await sim_.delay(cfg_.frontend_latency);
        if (o != nullptr) {
          o->metrics().counter("cluster.stale_map_redirects").add(1);
        }
        throw PartitionMovedError(
            "partition map is stale: bucket " + std::to_string(bucket) +
            " moved to server " + std::to_string(map_.owner(bucket)) +
            " (map version " + std::to_string(map_.version()) + ")");
      }
      cached = map_.version();
      // Move cost: a bucket mid-handoff is briefly unavailable; requests
      // arriving inside the window wait out the remainder at the front-end.
      if (map_.unavailable_until(bucket) > sim_.now()) {
        const sim::TimePoint wait_start = sim_.now();
        co_await sim_.delay_until(map_.unavailable_until(bucket));
        if (o != nullptr) {
          o->emit(obs::SpanKind::kThrottleWait, trace, wait_start, sim_.now(),
                  o->label("partition.move"), map_.owner(bucket));
        }
      }
    }
    // Replica placement is anchored to the hash-derived default owner and
    // never follows the map: moves and failovers reassign the *serving*
    // role, not the stored copies.
    const int home = map_.default_owner(bucket);
    PartitionServer* primary = &server(map_.owner(bucket));
    if (!primary->up()) {
      // Crash failover is a partition-map update: every bucket of the down
      // server is reassigned across the healthy ring (throwing when no
      // healthy server remains), and this request pays the re-route latency
      // before reaching the bucket's new owner. Other clients learn of the
      // move through the redirect path above.
      const sim::TimePoint reroute_start = sim_.now();
      reassign_off(primary->index(), /*throw_when_none_healthy=*/true);
      primary = &server(map_.owner(bucket));
      client_versions_[&client] = map_.version();
      if (faults_ != nullptr) {
        co_await sim_.delay(faults_->config().failover_latency);
      }
      if (o != nullptr) {
        o->metrics().counter("cluster.failovers").add(1);
        o->emit(obs::SpanKind::kFailover, trace, reroute_start, sim_.now(),
                0, primary->index());
      }
    }

    // Integrity bookkeeping is engaged only for tracked requests under an
    // armed fault plan; everything below the `tracked` checks is otherwise
    // byte-identical to the fault-free path.
    const bool tracked = faults_ != nullptr && cost.object_id != 0;
    const bool tracked_write = tracked && cost.replicate;
    // An object's home is always hash-derived — failover moves the serving
    // role, never the stored replicas.
    ReplicaStore::Entry* entry =
        tracked ? (tracked_write ? &store_.open(cost.object_id, home)
                                 : store_.find(cost.object_id))
                : nullptr;

    // Request path: client uplink -> account ingress shaping -> front-end ->
    // primary NIC.
    if (cost.request_bytes > 0) {
      const sim::TimePoint shaping_start = sim_.now();
      co_await account_ingress_.acquire(
          static_cast<double>(cost.request_bytes));
      if (o != nullptr && sim_.now() > shaping_start) {
        o->emit(obs::SpanKind::kThrottleWait, trace, shaping_start,
                sim_.now(), o->label("account.ingress"), -1,
                cost.request_bytes);
      }
    }
    const bool request_corrupted = co_await network_.transfer_checked(
        client, primary->nic(), cost.request_bytes, trace);

    // Server span: front-end validation + executor + CPU + disk.
    obs::SpanHandle server_span{};
    if (o != nullptr) server_span = o->begin(trace, sim_.now());
    co_await sim_.delay(cfg_.frontend_latency);

    // The front-end validates the upload's checksum before any state is
    // touched: a payload damaged in flight is rejected outright (HTTP 400
    // Md5Mismatch in real Azure), never written to disk or replicated.
    if (request_corrupted && tracked_write) {
      ++request_checksum_rejects_;
      faults_->record(faults::FaultKind::kChecksumMismatch, primary->index());
      if (o != nullptr) {
        o->metrics().counter("cluster.checksum_rejects").add(1);
        o->end(server_span, obs::SpanKind::kServerProcess, 0,
               primary->index(), 0, /*error=*/true, sim_.now());
      }
      throw ChecksumMismatchError(
          "request payload failed checksum validation at partition server " +
          std::to_string(primary->index()));
    }

    // Server-side processing (executor + CPU + disk).
    co_await primary->process(cost.server_cpu, cost.disk_bytes,
                              server_span.ctx);
    if (o != nullptr) {
      o->end(server_span, obs::SpanKind::kServerProcess, 0, primary->index(),
             cost.disk_bytes, /*error=*/false, sim_.now());
    }

    // Read-path replica verification: the serving server re-checksums its
    // local copy. On mismatch (torn write, stale or divergent generation)
    // it fails over to the committed content — modelled as the partition
    // log replay cost — and queues background read-repair of every bad
    // copy, so one detected mismatch heals the object for later readers.
    if (tracked && !tracked_write && entry != nullptr &&
        entry->committed_gen > 0) {
      int serve = store_.replica_on(*entry, primary->index());
      if (serve < 0) serve = 0;  // failed-over off the replica set
      if (!entry->replica_good(serve)) {
        const auto& bad = entry->replicas[static_cast<std::size_t>(serve)];
        // Attribute the mismatch to the server that actually served the
        // read. When the serving server failed over off the replica set,
        // `serve` falls back to replica 0 for the *verification*, but
        // replica 0's server did not serve anything — logging
        // server_of(entry, serve) would blame it (typically the crashed
        // home server) for a mismatch observed elsewhere.
        faults_->record(bad.torn ? faults::FaultKind::kChecksumMismatch
                                 : faults::FaultKind::kReplicaDivergence,
                        primary->index());
        ++read_mismatches_;
        const sim::TimePoint verify_failover_start = sim_.now();
        co_await sim_.delay(faults_->config().failover_latency);
        if (o != nullptr) {
          o->metrics().counter("cluster.read_mismatches").add(1);
          o->emit(obs::SpanKind::kFailover, trace, verify_failover_start,
                  sim_.now(), o->label("read.verify"), primary->index());
        }
        for (int r = 0; r < store_.replicas_per_object(); ++r) {
          if (!entry->replica_good(r)) {
            sim_.spawn(repair_replica(*entry, r, /*scrub=*/false),
                       "read-repair");
          }
        }
      }
    }

    // Synchronous replication: payload flows from the primary to each of the
    // other replicas in parallel; the request acks when the slowest commits.
    std::uint64_t attempt_gen = 0;
    const bool will_replicate =
        (tracked_write && entry != nullptr) ||
        (cost.replicate && cfg_.replicas > 1);
    obs::SpanHandle replication_span{};
    if (o != nullptr && will_replicate) {
      replication_span = o->begin(trace, sim_.now());
    }
    if (tracked_write && entry != nullptr) {
      entry->next_gen = std::max(entry->next_gen, entry->committed_gen) + 1;
      attempt_gen = entry->next_gen;
      co_await replicate_tracked(*primary, *entry, cost, attempt_gen,
                                 replication_span.ctx);
    } else if (cost.replicate && cfg_.replicas > 1) {
      co_await replicate(*primary, cost.disk_bytes, replication_span.ctx);
    }
    if (o != nullptr && will_replicate) {
      o->end(replication_span, obs::SpanKind::kReplication, 0,
             primary->index(), cost.disk_bytes, /*error=*/false, sim_.now());
    }

    // A crash while the request was being served kills the connection: the
    // executor's output dies with the process and no response is sent. The
    // client cannot know whether the mutation was applied (here it was not —
    // services apply state only after execute() returns).
    if (faults_ != nullptr && !primary->up()) {
      if (tracked_write && entry != nullptr) {
        // The local append raced the crash: the primary's own copy may be
        // torn, and the fan-out copies hold an unacknowledged generation.
        // Neither is committed — the scrubber converges them back.
        const int lr = store_.replica_on(*entry, primary->index());
        if (lr >= 0) {
          auto& rep = entry->replicas[static_cast<std::size_t>(lr)];
          rep.gen = attempt_gen;
          if (faults_->draw_torn_write()) {
            rep.crc = cost.content_crc ^ 0x5A5A5A5Au;
            rep.torn = true;
            faults_->record(faults::FaultKind::kTornWrite, primary->index());
          } else {
            rep.crc = cost.content_crc;
            rep.torn = false;
          }
        }
      }
      if (o != nullptr) {
        o->metrics().counter("cluster.connection_resets").add(1);
      }
      throw ConnectionResetError("partition server " +
                                 std::to_string(primary->index()) +
                                 " crashed while serving the request");
    }

    // The write is now acknowledged: advance the committed generation and
    // mark the primary's local copy clean. A concurrent later write may
    // already have committed a higher generation — never regress it.
    if (tracked_write && entry != nullptr) {
      const int lr = store_.replica_on(*entry, primary->index());
      if (lr >= 0) {
        auto& rep = entry->replicas[static_cast<std::size_t>(lr)];
        if (rep.gen <= attempt_gen) {
          rep.gen = attempt_gen;
          rep.crc = cost.content_crc;
          rep.torn = false;
        }
      }
      if (attempt_gen > entry->committed_gen) {
        entry->committed_gen = attempt_gen;
        entry->committed_crc = cost.content_crc;
        entry->bytes =
            cost.object_bytes > 0 ? cost.object_bytes : cost.disk_bytes;
      }
    }

    // Response path mirrors the request path.
    if (cost.response_bytes > 0) {
      const sim::TimePoint shaping_start = sim_.now();
      co_await account_egress_.acquire(
          static_cast<double>(cost.response_bytes));
      if (o != nullptr && sim_.now() > shaping_start) {
        o->emit(obs::SpanKind::kThrottleWait, trace, shaping_start,
                sim_.now(), o->label("account.egress"), -1,
                cost.response_bytes);
      }
    }
    const bool response_corrupted = co_await network_.transfer_checked(
        primary->nic(), client, cost.response_bytes, trace);

    ExecResult result;
    result.served_by = primary->index();
    if (response_corrupted && tracked) {
      // The server sent good bytes; the wire damaged them. Only the client
      // can detect this (end-to-end checksum) — execute() reports it and the
      // service layer throws on the client's behalf.
      ++response_corruptions_;
      faults_->record(faults::FaultKind::kChecksumMismatch, primary->index());
      result.response_corrupted = true;
    }
    co_return result;
  }

  /// Applies one geo-replicated write (shipped from another stamp's log) to
  /// this stamp: the bucket owner's replica set commits the bytes through
  /// the normal replica-commit path (disk + executor occupancy on each live
  /// replica server, in ring order), and — for integrity-tracked objects —
  /// the local ledger advances to the shipped generation/CRC. `torn` stages
  /// a torn tail on the first replica copy (a crash mid-apply on the
  /// receiving stamp), which the scrub detects and heals. Generations never
  /// regress: a redelivered or reordered batch is a no-op on the ledger.
  sim::Task<void> apply_geo_write(std::uint64_t object_id, int home_server,
                                  std::uint64_t gen, std::uint32_t crc,
                                  std::int64_t bytes, bool torn = false) {
    ReplicaStore::Entry* entry =
        object_id != 0 ? &store_.open(object_id, home_server) : nullptr;
    const int copies =
        entry != nullptr ? store_.replicas_per_object() : cfg_.replicas;
    for (int r = 0; r < copies; ++r) {
      const int s = entry != nullptr
                        ? store_.server_of(*entry, r)
                        : (home_server + r) % cfg_.partition_servers;
      PartitionServer& target = server(s);
      if (!target.up()) continue;  // stale copy; the scrub converges it
      co_await target.replica_commit(bytes);
      if (entry == nullptr) continue;
      auto& rep = entry->replicas[static_cast<std::size_t>(r)];
      if (rep.gen > gen) continue;  // a later apply already landed here
      rep.gen = gen;
      if (torn && r == 0) {
        rep.crc = crc ^ 0x5A5A5A5Au;
        rep.torn = true;
      } else {
        rep.crc = crc;
        rep.torn = false;
      }
    }
    if (entry != nullptr && gen > entry->committed_gen) {
      entry->committed_gen = gen;
      entry->committed_crc = crc;
      entry->bytes = bytes;
    }
  }

  /// One full anti-entropy pass over every partition server, for tests and
  /// benchmarks that want to force convergence at a known point in time.
  /// No-op when faults are not armed.
  sim::Task<void> scrub_all() {
    if (faults_ == nullptr) co_return;
    for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
      co_await scrub_server(s);
    }
  }

  std::int64_t total_requests() const noexcept { return total_requests_; }
  std::int64_t throttle_rejections() const noexcept {
    return account_tx_.rejected();
  }
  /// Requests rejected with 503 SlowDown (ThrottleMode::kPrefixSlowdown).
  std::int64_t prefix_slowdowns() const noexcept { return prefix_slowdowns_; }

  // Integrity counters (all zero when faults are off).
  /// Uploads rejected at the front-end because the request payload arrived
  /// corrupt (the client retries; no state was touched).
  std::int64_t request_checksum_rejects() const noexcept {
    return request_checksum_rejects_;
  }
  /// Responses whose payload was corrupted in flight (detected client-side).
  std::int64_t response_corruptions() const noexcept {
    return response_corruptions_;
  }
  /// Read-path replica verifications that failed and triggered failover.
  std::int64_t read_mismatches() const noexcept { return read_mismatches_; }
  /// Replica copies healed by read-triggered repair.
  std::int64_t read_repairs() const noexcept { return read_repairs_; }
  /// Replica copies healed by the background anti-entropy scrubber.
  std::int64_t scrub_repairs() const noexcept { return scrub_repairs_; }
  /// Scrub passes started (per server, post-restart plus forced).
  std::int64_t scrub_passes() const noexcept { return scrub_passes_; }

  /// Per-server load snapshot, for capacity analysis and tests.
  struct ServerLoad {
    int server = 0;
    std::int64_t requests = 0;
    std::int64_t replica_commits = 0;
    std::int64_t disk_bytes = 0;
    int executor_high_watermark = 0;
  };
  struct LoadReport {
    std::int64_t total_requests = 0;
    std::int64_t throttle_rejections = 0;
    std::vector<ServerLoad> servers;

    /// Ratio of the busiest server's request count to the mean — 1.0 is a
    /// perfectly balanced partition map.
    double imbalance() const {
      if (servers.empty() || total_requests == 0) return 1.0;
      std::int64_t peak = 0;
      for (const auto& s : servers) peak = std::max(peak, s.requests);
      const double mean = static_cast<double>(total_requests) /
                          static_cast<double>(servers.size());
      return mean > 0 ? static_cast<double>(peak) / mean : 1.0;
    }
  };

  LoadReport load_report() const {
    LoadReport report;
    report.total_requests = total_requests_;
    report.throttle_rejections = account_tx_.rejected();
    report.servers.reserve(servers_.size());
    for (const auto& server : servers_) {
      const PartitionServer& s = *server;
      report.servers.push_back(ServerLoad{
          s.index(), s.requests(), s.replica_commits(), s.disk_bytes(),
          s.executors().high_watermark()});
    }
    return report;
  }

 private:
  /// Rejects impossible topologies before any dependent member (replica
  /// ring, partition map) is built from them. A Release build must fail as
  /// loudly as a Debug build here: replicas > servers would silently fold
  /// distinct replicas onto the same server and fake durability.
  static const ClusterConfig& validated(const ClusterConfig& cfg) {
    if (cfg.partition_servers <= 0) {
      throw std::invalid_argument(
          "ClusterConfig: partition_servers must be positive, got " +
          std::to_string(cfg.partition_servers));
    }
    if (cfg.replicas <= 0) {
      throw std::invalid_argument("ClusterConfig: replicas must be positive, "
                                  "got " +
                                  std::to_string(cfg.replicas));
    }
    if (cfg.partition_servers < cfg.replicas) {
      throw std::invalid_argument(
          "ClusterConfig: partition_servers (" +
          std::to_string(cfg.partition_servers) +
          ") must be >= replicas (" + std::to_string(cfg.replicas) +
          "): each replica of an object lives on a distinct server");
    }
    return cfg;
  }

  sim::Task<void> replicate(PartitionServer& primary, std::int64_t bytes,
                            obs::TraceContext trace = {}) {
    sim::WaitGroup wg(sim_);
    const int fanout = cfg_.replicas - 1;
    for (int k = 1; k <= fanout; ++k) {
      PartitionServer& replica =
          server((primary.index() + k) % cfg_.partition_servers);
      wg.add();
      sim_.spawn(replica_send(primary, replica, bytes, wg, trace));
    }
    co_await wg.wait();
  }

  sim::Task<void> replica_send(PartitionServer& primary,
                               PartitionServer& replica, std::int64_t bytes,
                               sim::WaitGroup& wg,
                               obs::TraceContext trace = {}) {
    if (faults_ != nullptr && !replica.up()) {
      // A down replica does not block the commit: the stream layer seals
      // its extent and re-routes the append to a healthy extent node, for
      // the price of the failover latency (Calder et al., SOSP'11 §4).
      co_await sim_.delay(cfg_.replica_commit_latency +
                          faults_->config().failover_latency);
      wg.done();
      co_return;
    }
    if (bytes > 0) co_await primary.nic().send(bytes);
    co_await sim_.delay(network_.config().propagation);
    co_await replica.replica_commit(bytes, trace);
    wg.done();
  }

  /// Tracked analogue of replicate(): fans the payload out to the object's
  /// replica set (same ring order, so the event sequence is identical to
  /// replicate() when the primary has not failed over), recording which
  /// generation each copy landed — including torn copies when a replica
  /// crashes mid-commit.
  sim::Task<void> replicate_tracked(PartitionServer& primary,
                                    ReplicaStore::Entry& entry,
                                    const RequestCost& cost,
                                    std::uint64_t attempt_gen,
                                    obs::TraceContext trace = {}) {
    sim::WaitGroup wg(sim_);
    for (int r = 0; r < store_.replicas_per_object(); ++r) {
      if (store_.server_of(entry, r) == primary.index()) continue;
      wg.add();
      sim_.spawn(replica_send_tracked(primary, entry, r, cost.disk_bytes,
                                      attempt_gen, cost.content_crc, wg,
                                      trace));
    }
    co_await wg.wait();
  }

  sim::Task<void> replica_send_tracked(PartitionServer& primary,
                                       ReplicaStore::Entry& entry, int r,
                                       std::int64_t bytes,
                                       std::uint64_t attempt_gen,
                                       std::uint32_t crc, sim::WaitGroup& wg,
                                       obs::TraceContext trace = {}) {
    PartitionServer& target = server(store_.server_of(entry, r));
    if (!target.up()) {
      // Stream-layer re-route (see replica_send); this copy stays on its old
      // generation — stale until repaired.
      co_await sim_.delay(cfg_.replica_commit_latency +
                          faults_->config().failover_latency);
      wg.done();
      co_return;
    }
    if (bytes > 0) co_await primary.nic().send(bytes);
    co_await sim_.delay(network_.config().propagation);
    co_await target.replica_commit(bytes, trace);
    auto& rep = entry.replicas[static_cast<std::size_t>(r)];
    if (rep.gen > attempt_gen) {
      // A concurrent later write already landed here; don't regress.
      wg.done();
      co_return;
    }
    rep.gen = attempt_gen;
    if (!target.up() && faults_->draw_torn_write()) {
      // Crash mid-append: the extent holds a partial record whose checksum
      // cannot validate.
      rep.crc = crc ^ 0x5A5A5A5Au;
      rep.torn = true;
      faults_->record(faults::FaultKind::kTornWrite, target.index());
    } else {
      rep.crc = crc;
      rep.torn = false;
    }
    wg.done();
  }

  /// Copies the committed content back onto replica `r` of `entry`. The
  /// source is always the committed (acknowledged) version — a repair never
  /// propagates bad bytes, and a crash mid-repair leaves the target no worse
  /// than before (the copy simply stays bad for the next pass).
  sim::Task<void> repair_replica(ReplicaStore::Entry& entry, int r,
                                 bool scrub) {
    auto& rep = entry.replicas[static_cast<std::size_t>(r)];
    if (rep.repairing || entry.replica_good(r)) co_return;
    PartitionServer& target = server(store_.server_of(entry, r));
    if (!target.up()) co_return;
    rep.repairing = true;
    co_await target.replica_commit(entry.bytes);
    rep.repairing = false;
    if (!target.up()) co_return;  // crashed mid-repair; copy stays bad
    if (entry.replica_good(r)) co_return;  // a concurrent write converged it
    rep.gen = entry.committed_gen;
    rep.crc = entry.committed_crc;
    rep.torn = false;
    if (scrub) {
      ++scrub_repairs_;
      faults_->record(faults::FaultKind::kScrubRepair, target.index());
    } else {
      ++read_repairs_;
      faults_->record(faults::FaultKind::kReadRepair, target.index());
    }
  }

  /// Per-server anti-entropy loop: parked on a gate the crash driver sets
  /// after each restart of this server, then (after a settling delay)
  /// verifies every replica the server hosts and repairs the bad ones.
  sim::Task<void> scrubber(int s) {
    sim::Gate& gate = *scrub_gates_[static_cast<std::size_t>(s)];
    for (;;) {
      co_await gate.wait();
      gate.reset();
      if (scrub_shutdown_) co_return;
      co_await sim_.delay(cfg_.scrub_delay);
      co_await scrub_server(s);
    }
  }

  /// One verification pass over every replica hosted on server `s`.
  sim::Task<void> scrub_server(int s) {
    ++scrub_passes_;
    for (auto& kv : store_.entries()) {
      if (!server(s).up()) co_return;  // server died mid-scrub
      ReplicaStore::Entry& entry = kv.second;
      const int r = store_.replica_on(entry, s);
      if (r < 0) continue;
      co_await sim_.delay(cfg_.scrub_check_time);
      if (!entry.replica_good(r) &&
          !entry.replicas[static_cast<std::size_t>(r)].repairing) {
        co_await repair_replica(entry, r, /*scrub=*/true);
      }
    }
  }

  /// Reassigns every bucket owned by `down` across the healthy servers, in
  /// ring order starting after `down` (round-robin, so a crash spreads the
  /// victim's load instead of doubling up one neighbour). The buckets are
  /// remembered for fail-back when `down` restarts. When no healthy server
  /// exists the guard either throws a retryable ConnectionResetError (the
  /// request path: the client must see a clean typed error, never a request
  /// served by a crashed process) or returns silently (the crash driver:
  /// nothing to reassign to, requests will hit the guard themselves).
  void reassign_off(int down, bool throw_when_none_healthy) {
    const int n = static_cast<int>(servers_.size());
    std::vector<int> healthy;
    healthy.reserve(static_cast<std::size_t>(n));
    for (int k = 1; k < n; ++k) {
      const int candidate = (down + k) % n;
      if (server(candidate).up()) healthy.push_back(candidate);
    }
    if (healthy.empty()) {
      if (throw_when_none_healthy) {
        throw ConnectionResetError(
            "no healthy partition server available: every server in the "
            "stamp is down");
      }
      return;
    }
    std::size_t next = 0;
    for (const int b : map_.buckets_of(down)) {
      move_bucket(b, healthy[next], /*offline_for=*/0);
      // A bucket that is *already* crash-displaced belongs to an earlier
      // victim: it was parked on `down` only temporarily, and fail-back must
      // return it to its original owner, not to `down`. Registering it under
      // `down` as well would hand it to whichever of the two victims
      // restarted *last* — with inverted restart order the bucket ended up
      // stranded on the second victim instead of its true pre-crash owner.
      if (crash_displaced_.empty()) {
        crash_displaced_.assign(static_cast<std::size_t>(map_.buckets()), 0);
      }
      if (crash_displaced_[static_cast<std::size_t>(b)] == 0) {
        crash_displaced_[static_cast<std::size_t>(b)] = 1;
        crash_moved_[static_cast<std::size_t>(down)].push_back(b);
      }
      next = (next + 1) % healthy.size();
    }
  }

  /// Returns the buckets that were on `restarted` when it went down (and
  /// were reassigned off it) back to it. Restores the pre-crash assignment
  /// so a crash-restart cycle converges instead of permanently skewing the
  /// map; the balancer remains free to move them again afterwards. Under
  /// overlapping failures each bucket is registered under exactly one victim
  /// (its original owner — see reassign_off), so restart order does not
  /// matter: A's buckets return to A whenever A restarts, even if they rode
  /// out B's crash on a third server in between.
  void fail_back(int restarted) {
    auto moved = std::move(crash_moved_[static_cast<std::size_t>(restarted)]);
    crash_moved_[static_cast<std::size_t>(restarted)].clear();
    for (const int b : moved) {
      crash_displaced_[static_cast<std::size_t>(b)] = 0;
      move_bucket(b, restarted, /*offline_for=*/0);
    }
  }

  /// One-shot settling-delay + scrub pass, for restarts driven from outside
  /// the plan's own crash schedule (no parked scrubber to wake).
  sim::Task<void> post_restart_scrub(int s) {
    co_await sim_.delay(cfg_.scrub_delay);
    co_await scrub_server(s);
  }

  /// Executes the plan's precomputed crash schedule, one crash at a time
  /// (the downtime serializes crashes, so at most one server is down).
  sim::Task<void> crash_driver() {
    for (const faults::FaultPlan::CrashEvent& ev : faults_->crash_schedule()) {
      co_await sim_.delay(ev.after_previous);
      const int victim = static_cast<int>(
          ev.victim_raw % static_cast<std::uint64_t>(servers_.size()));
      crash_server(victim);
      co_await sim_.delay(faults_->config().server_downtime);
      restart_server(victim);
    }
    // Schedule exhausted: release every parked scrubber so no coroutine is
    // left suspended on a gate when the simulation drains (Gate asserts it
    // has no waiters at destruction, and a forever-suspended frame leaks
    // under ASan).
    scrub_shutdown_ = true;
    for (auto& gate : scrub_gates_) gate->set();
  }

  sim::Simulation& sim_;
  ClusterConfig cfg_;
  faults::FaultPlan* faults_ = nullptr;
  netsim::Network network_;
  sim::WindowCounter account_tx_;
  sim::FlowLimiter account_ingress_;
  sim::FlowLimiter account_egress_;
  std::vector<std::unique_ptr<PartitionServer>> servers_;
  std::int64_t total_requests_ = 0;

  // Partition map state. client_versions_ models each client endpoint's
  // cached map version (keyed by NIC identity; never iterated, so the
  // unordered container cannot affect event order). crash_moved_ remembers,
  // per server, the buckets reassigned off it at crash time for fail-back.
  PartitionMap map_;
  std::vector<std::int64_t> bucket_requests_;
  std::unordered_map<const netsim::Nic*, std::uint64_t> client_versions_;
  std::vector<std::vector<int>> crash_moved_;
  // Per-bucket flag: 1 while the bucket is crash-displaced (registered in
  // exactly one crash_moved_ list). Lazily sized on first crash so the
  // crash-free path allocates nothing.
  std::vector<char> crash_displaced_;
  std::int64_t partition_moves_ = 0;
  std::int64_t stale_map_redirects_ = 0;

  // FIFO admission queue for ThrottleMode::kQueue: the next ticket to hand
  // out and the ticket currently allowed to consume window budget.
  std::uint64_t throttle_next_ticket_ = 0;
  std::uint64_t throttle_front_ = 0;

  // ThrottleMode::kPrefixSlowdown: one read window + one write window per
  // key prefix, created lazily on first touch (keyed lookups only, never
  // iterated, so the unordered container cannot affect event order).
  struct PrefixWindows {
    PrefixWindows(sim::Simulation& sim, const ClusterConfig& cfg)
        : reads(sim, cfg.prefix_read_requests_per_sec),
          writes(sim, cfg.prefix_write_requests_per_sec) {}
    sim::WindowCounter reads;
    sim::WindowCounter writes;
  };
  PrefixWindows& prefix_windows(std::uint64_t prefix) {
    auto it = prefix_windows_.find(prefix);
    if (it == prefix_windows_.end()) {
      it = prefix_windows_
               .emplace(prefix, std::make_unique<PrefixWindows>(sim_, cfg_))
               .first;
    }
    return *it->second;
  }
  std::unordered_map<std::uint64_t, std::unique_ptr<PrefixWindows>>
      prefix_windows_;
  std::int64_t prefix_slowdowns_ = 0;

  // Integrity state (quiescent unless a fault plan is armed).
  ReplicaStore store_;
  std::vector<std::unique_ptr<sim::Gate>> scrub_gates_;
  bool scrub_shutdown_ = false;
  std::int64_t request_checksum_rejects_ = 0;
  std::int64_t response_corruptions_ = 0;
  std::int64_t read_mismatches_ = 0;
  std::int64_t read_repairs_ = 0;
  std::int64_t scrub_repairs_ = 0;
  std::int64_t scrub_passes_ = 0;
};

}  // namespace cluster
