// The simulated storage stamp: partition servers behind a front-end, with
// account-level scalability targets and synchronous 3-replica commits.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/errors.hpp"
#include "cluster/partition_server.hpp"
#include "faults/fault_plan.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace cluster {

/// Cost description of one storage request, filled in by the service layer
/// (blob/queue/table), which knows the operation semantics.
struct RequestCost {
  /// Payload bytes client -> server (uploads, message bodies, entities).
  std::int64_t request_bytes = 0;
  /// Payload bytes server -> client (downloads, query results).
  std::int64_t response_bytes = 0;
  /// Extra server CPU beyond the fixed per-request overhead (index lookups,
  /// serialization, ETag checks).
  sim::Duration server_cpu = 0;
  /// Bytes moved through the primary's disk.
  std::int64_t disk_bytes = 0;
  /// Synchronously commit to the other replicas before acknowledging.
  bool replicate = false;
  /// Whether the request counts against the account's transactions/s target.
  bool counts_as_transaction = true;
};

class StorageCluster {
 public:
  StorageCluster(sim::Simulation& sim, const ClusterConfig& cfg = {})
      : sim_(sim),
        cfg_(cfg),
        network_(sim),
        account_tx_(sim, cfg.account_transactions_per_sec),
        account_ingress_(sim, cfg.account_bytes_per_sec, 1024.0 * 1024),
        account_egress_(sim, cfg.account_bytes_per_sec, 1024.0 * 1024) {
    assert(cfg.partition_servers >= cfg.replicas);
    servers_.reserve(static_cast<std::size_t>(cfg.partition_servers));
    for (int i = 0; i < cfg.partition_servers; ++i) {
      servers_.push_back(std::make_unique<PartitionServer>(sim, cfg_, i));
    }
  }

  sim::Simulation& simulation() noexcept { return sim_; }
  const ClusterConfig& config() const noexcept { return cfg_; }
  netsim::Network& network() noexcept { return network_; }

  /// Arms fault injection: link faults on the network, plus — when the plan
  /// schedules server crashes — a driver process that crashes and restarts
  /// partition servers per the plan's precomputed schedule. Requests routed
  /// to a down primary fail over to the next healthy server; a crash while
  /// a request is in flight resets the client's connection.
  void enable_faults(faults::FaultPlan& plan) {
    faults_ = &plan;
    network_.set_fault_plan(&plan);
    if (plan.config().server_faults_enabled()) {
      sim_.spawn(crash_driver(), "fault-crash-driver");
    }
  }
  faults::FaultPlan* fault_plan() const noexcept { return faults_; }

  int server_index(std::uint64_t partition_hash) const noexcept {
    return static_cast<int>(partition_hash %
                            static_cast<std::uint64_t>(servers_.size()));
  }

  PartitionServer& server(int index) noexcept {
    return *servers_[static_cast<std::size_t>(index)];
  }

  /// Executes one request against the partition owning `partition_hash` on
  /// behalf of the client endpoint `client`. Throws ServerBusyError when the
  /// account transaction target is exceeded (before any time is spent, as a
  /// front-end rejection).
  sim::Task<void> execute(netsim::Nic& client, std::uint64_t partition_hash,
                          RequestCost cost) {
    if (cost.counts_as_transaction) {
      while (!account_tx_.try_consume()) {
        if (cfg_.throttle_mode == ThrottleMode::kReject) {
          throw ServerBusyError(
              "account transaction target exceeded (5,000 tx/s)");
        }
        // Ablation mode: wait for the next admission window instead of
        // rejecting.
        co_await sim_.delay_until(
            (sim_.now() / sim::kSecond + 1) * sim::kSecond);
      }
    }
    ++total_requests_;

    PartitionServer* primary = &server(server_index(partition_hash));
    if (faults_ != nullptr && !primary->up()) {
      // The partition map reassigns the range to the next healthy server;
      // the client pays the re-route before reaching it.
      primary = &failover_target(*primary);
      co_await sim_.delay(faults_->config().failover_latency);
    }

    // Request path: client uplink -> account ingress shaping -> front-end ->
    // primary NIC.
    if (cost.request_bytes > 0) {
      co_await account_ingress_.acquire(
          static_cast<double>(cost.request_bytes));
    }
    co_await network_.transfer(client, primary->nic(), cost.request_bytes);
    co_await sim_.delay(cfg_.frontend_latency);

    // Server-side processing (executor + CPU + disk).
    co_await primary->process(cost.server_cpu, cost.disk_bytes);

    // Synchronous replication: payload flows from the primary to each of the
    // other replicas in parallel; the request acks when the slowest commits.
    if (cost.replicate && cfg_.replicas > 1) {
      co_await replicate(*primary, cost.disk_bytes);
    }

    // A crash while the request was being served kills the connection: the
    // executor's output dies with the process and no response is sent. The
    // client cannot know whether the mutation was applied (here it was not —
    // services apply state only after execute() returns).
    if (faults_ != nullptr && !primary->up()) {
      throw ConnectionResetError("partition server " +
                                 std::to_string(primary->index()) +
                                 " crashed while serving the request");
    }

    // Response path mirrors the request path.
    if (cost.response_bytes > 0) {
      co_await account_egress_.acquire(
          static_cast<double>(cost.response_bytes));
    }
    co_await network_.transfer(primary->nic(), client, cost.response_bytes);
  }

  std::int64_t total_requests() const noexcept { return total_requests_; }
  std::int64_t throttle_rejections() const noexcept {
    return account_tx_.rejected();
  }

  /// Per-server load snapshot, for capacity analysis and tests.
  struct ServerLoad {
    int server = 0;
    std::int64_t requests = 0;
    std::int64_t replica_commits = 0;
    std::int64_t disk_bytes = 0;
    int executor_high_watermark = 0;
  };
  struct LoadReport {
    std::int64_t total_requests = 0;
    std::int64_t throttle_rejections = 0;
    std::vector<ServerLoad> servers;

    /// Ratio of the busiest server's request count to the mean — 1.0 is a
    /// perfectly balanced partition map.
    double imbalance() const {
      if (servers.empty() || total_requests == 0) return 1.0;
      std::int64_t peak = 0;
      for (const auto& s : servers) peak = std::max(peak, s.requests);
      const double mean = static_cast<double>(total_requests) /
                          static_cast<double>(servers.size());
      return mean > 0 ? static_cast<double>(peak) / mean : 1.0;
    }
  };

  LoadReport load_report() const {
    LoadReport report;
    report.total_requests = total_requests_;
    report.throttle_rejections = account_tx_.rejected();
    report.servers.reserve(servers_.size());
    for (const auto& server : servers_) {
      const PartitionServer& s = *server;
      report.servers.push_back(ServerLoad{
          s.index(), s.requests(), s.replica_commits(), s.disk_bytes(),
          s.executors().high_watermark()});
    }
    return report;
  }

 private:
  sim::Task<void> replicate(PartitionServer& primary, std::int64_t bytes) {
    sim::WaitGroup wg(sim_);
    const int fanout = cfg_.replicas - 1;
    for (int k = 1; k <= fanout; ++k) {
      PartitionServer& replica =
          server((primary.index() + k) % cfg_.partition_servers);
      wg.add();
      sim_.spawn(replica_send(primary, replica, bytes, wg));
    }
    co_await wg.wait();
  }

  sim::Task<void> replica_send(PartitionServer& primary,
                               PartitionServer& replica, std::int64_t bytes,
                               sim::WaitGroup& wg) {
    if (faults_ != nullptr && !replica.up()) {
      // A down replica does not block the commit: the stream layer seals
      // its extent and re-routes the append to a healthy extent node, for
      // the price of the failover latency (Calder et al., SOSP'11 §4).
      co_await sim_.delay(cfg_.replica_commit_latency +
                          faults_->config().failover_latency);
      wg.done();
      co_return;
    }
    if (bytes > 0) co_await primary.nic().send(bytes);
    co_await sim_.delay(network_.config().propagation);
    co_await replica.replica_commit(bytes);
    wg.done();
  }

  /// Next healthy server after `down` in ring order.
  PartitionServer& failover_target(PartitionServer& down) {
    const int n = static_cast<int>(servers_.size());
    for (int k = 1; k < n; ++k) {
      PartitionServer& candidate = server((down.index() + k) % n);
      if (candidate.up()) return candidate;
    }
    throw ConnectionResetError("no healthy partition server available");
  }

  /// Executes the plan's precomputed crash schedule, one crash at a time
  /// (the downtime serializes crashes, so at most one server is down).
  sim::Task<void> crash_driver() {
    for (const faults::FaultPlan::CrashEvent& ev : faults_->crash_schedule()) {
      co_await sim_.delay(ev.after_previous);
      PartitionServer& victim = server(static_cast<int>(
          ev.victim_raw % static_cast<std::uint64_t>(servers_.size())));
      victim.crash();
      faults_->record(faults::FaultKind::kServerCrash, victim.index());
      co_await sim_.delay(faults_->config().server_downtime);
      victim.restart();
      faults_->record(faults::FaultKind::kServerRestart, victim.index());
    }
  }

  sim::Simulation& sim_;
  ClusterConfig cfg_;
  faults::FaultPlan* faults_ = nullptr;
  netsim::Network network_;
  sim::WindowCounter account_tx_;
  sim::FlowLimiter account_ingress_;
  sim::FlowLimiter account_egress_;
  std::vector<std::unique_ptr<PartitionServer>> servers_;
  std::int64_t total_requests_ = 0;
};

}  // namespace cluster
