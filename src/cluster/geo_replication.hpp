// Geo-replicated stamps: N regions, each an independent StorageCluster,
// connected by asymmetric inter-region links with asynchronous, sequenced
// log shipping (Calder et al., SOSP'11 §2: intra-stamp replication is
// synchronous, *inter*-stamp replication is asynchronous in the background).
//
// Write path: a write commits synchronously (3 replicas) in the home region
// and acks the client, then the per-bucket geo log carries it to every other
// region in sequence order. Staleness is bounded by construction: the
// shipper wakes at most `ship_interval` after an append, and config
// validation enforces ship_interval <= staleness_target.
//
// Read path: reads carry a typed consistency mode. Strong reads route to the
// home (primary) region and observe every acknowledged write; eventual reads
// route region-local and report the replica's staleness (the age of the
// oldest write not yet applied locally) in the result.
//
// Region loss is a first-class, deterministic fault: the FaultPlan's region
// schedule (its own forked RNG stream) takes a whole stamp down. If the
// victim was the primary, the next healthy region is promoted; clients
// holding the old geo map get a RegionMovedError redirect (the cross-region
// analogue of the PR 5 PartitionMovedError protocol). Writes the victim had
// not shipped are *lost* (the RPO of asynchronous geo-replication); the log
// is truncated to the promoted region's high-water mark and the loss is
// exported (unreplicated-write counter, staleness-at-failover histogram).
// Failback reconciles the returning region against the authoritative log —
// chain-CRC verification plus a ledger scrub reusing the PR 3 integrity
// machinery — before the original primary resumes its role.
//
// Determinism: fixed (config, seed) ⇒ byte-identical fault log and metrics
// across replays. All per-region state lives in index-ordered vectors; the
// only hash containers are keyed by client NIC identity and never iterated.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/errors.hpp"
#include "cluster/storage_cluster.hpp"
#include "faults/fault_plan.hpp"
#include "netsim/geo_link.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace cluster {

/// Consistency mode of a geo read.
enum class ReadConsistency {
  /// Route to the current primary region; observes every acknowledged write.
  kStrong,
  /// Route to the reader's local region; may miss recent writes, and the
  /// result reports how stale the local replica is.
  kEventual,
};

/// One region: a named, independently configured storage stamp.
struct GeoRegionConfig {
  std::string name;
  ClusterConfig cluster;
};

/// Asymmetric override for one direction of one inter-region path.
struct GeoLinkOverride {
  int from = 0;
  int to = 0;
  netsim::GeoLinkConfig link;
};

struct GeoConfig {
  /// The regions, index order = ring order for promotion.
  std::vector<GeoRegionConfig> regions;

  /// Link parameters used for every direction without an explicit override.
  netsim::GeoLinkConfig default_link;

  /// Per-direction overrides (east->west and west->east may differ).
  std::vector<GeoLinkOverride> link_overrides;

  /// Initial primary (home) region.
  int primary = 0;

  /// Bounded-staleness target: the lag the shipper is provisioned to hold.
  /// Validation enforces ship_interval <= staleness_target.
  sim::Duration staleness_target = sim::millis(500);

  /// Delay between an append and the shipping of its batch.
  sim::Duration ship_interval = sim::millis(100);

  /// Max log entries per shipped batch (per bucket, per destination).
  int ship_batch_max = 64;

  /// Promotion cost paid when a region fails over (used when no fault plan
  /// is armed; an armed plan's region_failover_latency takes precedence).
  sim::Duration failover_latency = sim::millis(100);

  /// After a failed-over original primary returns and catches up, hand the
  /// primary role back to it (a second geo-map bump + redirect round).
  bool auto_failback = true;
};

/// What a geo read reports beyond the stamp-level ExecResult.
struct GeoReadResult {
  ExecResult exec;
  /// Region that served the read.
  int region = -1;
  /// Age of the oldest write not yet applied at the serving region when the
  /// read was routed (0 for strong reads and fully caught-up replicas).
  sim::Duration staleness = 0;
};

/// N regional stamps + inter-region links + the geo replication log.
class GeoCluster {
 public:
  GeoCluster(sim::Simulation& sim, GeoConfig cfg);
  ~GeoCluster();
  GeoCluster(const GeoCluster&) = delete;
  GeoCluster& operator=(const GeoCluster&) = delete;

  /// Arms fault injection: link + server faults on every regional stamp,
  /// and — when the plan schedules region outages — a driver that executes
  /// the region-outage schedule (outage -> downtime -> restore/failback).
  void enable_faults(faults::FaultPlan& plan);

  /// A write from a client homed in `client_region`: routed to the current
  /// primary region (paying the inter-region hop when the client is
  /// remote), committed synchronously there, then appended to the geo log
  /// for asynchronous shipping. Throws RegionMovedError when the client's
  /// cached geo map predates a failover.
  sim::Task<ExecResult> write(netsim::Nic& client, int client_region,
                              std::uint64_t partition_hash, RequestCost cost);

  /// A read with the given consistency mode (see ReadConsistency).
  sim::Task<GeoReadResult> read(netsim::Nic& client, int client_region,
                                std::uint64_t partition_hash,
                                RequestCost cost, ReadConsistency mode);

  /// Takes `region` down now (whole-stamp loss). If it was the primary, the
  /// next healthy region is promoted: the geo map version bumps (clients
  /// redirect), the log truncates to the promoted region's high-water mark,
  /// and the lost suffix is exported as RPO. Exposed for tests and chaos
  /// controllers; the plan-driven region driver uses the same entry point.
  void force_region_outage(int region);

  /// Brings `region` back: chain-CRC verification of its applied log
  /// prefix, ledger reconciliation (geo scrub) against the current
  /// authority, synchronous catch-up shipping of everything it missed, and
  /// — when it was the original primary and auto_failback is set — handing
  /// the primary role back.
  sim::Task<void> force_region_restore(int region);

  /// One ledger-reconciliation pass: converges `region`'s replica store to
  /// the current primary's committed state (copy-back through the stamp's
  /// replica-commit path), healing stale, divergent and torn copies.
  sim::Task<void> geo_scrub(int region);

  /// Ships until every up region has applied every committed entry (test
  /// and shutdown helper; the drill calls it before reading final lag).
  sim::Task<void> catch_up();

  // ------------------------------------------------------------ topology ----
  int region_count() const noexcept {
    return static_cast<int>(regions_.size());
  }
  StorageCluster& region(int i) noexcept {
    return *regions_[static_cast<std::size_t>(i)];
  }
  const std::string& region_name(int i) const noexcept {
    return cfg_.regions[static_cast<std::size_t>(i)].name;
  }
  bool region_up(int i) const noexcept {
    return region_up_[static_cast<std::size_t>(i)] != 0;
  }
  int primary() const noexcept { return primary_; }
  netsim::GeoLink& link(int from, int to) noexcept {
    return *links_[static_cast<std::size_t>(from * region_count() + to)];
  }
  const GeoConfig& config() const noexcept { return cfg_; }
  faults::FaultPlan* fault_plan() const noexcept { return faults_; }

  // ------------------------------------------------------- log / lag state ----
  /// Committed (home-region) high-water sequence number of `bucket`.
  std::uint64_t committed_seq(int bucket) const noexcept {
    return committed_seq_[static_cast<std::size_t>(bucket)];
  }
  /// High-water sequence `region` has applied for `bucket`.
  std::uint64_t applied_seq(int region, int bucket) const noexcept {
    return applied_seq_[static_cast<std::size_t>(region)]
                       [static_cast<std::size_t>(bucket)];
  }
  /// Age of the oldest committed-but-unapplied write at `region` for
  /// `bucket` (0 when caught up).
  sim::Duration staleness(int region, int bucket) const noexcept;
  /// Worst staleness across all buckets at `region`.
  sim::Duration max_staleness(int region) const noexcept;
  /// Total committed-but-unapplied entries at `region` right now.
  std::int64_t replication_lag(int region) const noexcept;

  // ------------------------------------------------------------- counters ----
  /// Writes acknowledged at a failed primary but never shipped — lost at
  /// failover (the RPO, accumulated across all failovers).
  std::int64_t rpo_lost_writes() const noexcept { return rpo_lost_writes_; }
  /// Worst staleness-at-failover observed (RPO expressed as time).
  sim::Duration max_staleness_at_failover() const noexcept {
    return max_staleness_at_failover_;
  }
  /// Failover -> first successful operation at the promoted primary (the
  /// RTO of the most recent failover; 0 before any failover completed).
  sim::Duration last_rto() const noexcept { return last_rto_; }
  /// Batches that had to be re-shipped after a geo-link drop.
  std::int64_t redeliveries() const noexcept { return redeliveries_; }
  /// Primary promotions (region failovers) executed.
  std::int64_t region_failovers() const noexcept { return region_failovers_; }
  /// Primary roles handed back after catch-up (auto_failback).
  std::int64_t region_failbacks() const noexcept { return region_failbacks_; }
  /// Clients redirected because their cached geo map predated a failover.
  std::int64_t stale_geo_redirects() const noexcept {
    return stale_geo_redirects_;
  }
  /// (region, bucket) applied positions rolled back at failover because
  /// they were ahead of the promoted region (divergence).
  std::int64_t divergent_resets() const noexcept { return divergent_resets_; }
  /// Replica copies healed by the geo ledger scrub.
  std::int64_t geo_scrub_repairs() const noexcept {
    return geo_scrub_repairs_;
  }
  /// Per-bucket chain-CRC verifications run during failback reconciliation.
  std::int64_t chain_verifications() const noexcept {
    return chain_verifications_;
  }
  /// Geo log entries appended (acknowledged writes entering the shipper).
  std::int64_t log_appends() const noexcept { return log_appends_; }

 private:
  /// One entry of the per-bucket geo log. `chain` is a CRC32C accumulated
  /// over (previous chain, seq, crc): the failback reconciliation recomputes
  /// it over the survivor's prefix to prove the log was applied in sequence
  /// without corruption before trusting the high-water mark.
  struct GeoEntry {
    std::uint64_t seq = 0;  // 1-based within the bucket
    std::uint64_t object_id = 0;
    std::uint64_t gen = 0;  // ledger generation committed at home
    std::uint32_t crc = 0;
    std::uint32_t chain = 0;
    std::int64_t bytes = 0;
    int home_server = 0;
    sim::TimePoint committed_at = 0;
  };

  static GeoConfig validated(GeoConfig cfg);

  int buckets() const noexcept {
    return static_cast<int>(committed_seq_.size());
  }
  sim::Duration effective_failover_latency() const noexcept {
    return faults_ != nullptr ? faults_->config().region_failover_latency
                              : cfg_.failover_latency;
  }
  /// Routes the caller to the current primary: geo-map staleness check
  /// (RegionMovedError redirect), failover-window wait, inter-region hop.
  sim::Task<int> route_to_primary(netsim::Nic& client, int client_region);
  /// Records the first successful post-failover operation (the RTO).
  void note_primary_success();
  /// Appends an acknowledged write to the bucket's log and arms shipping.
  void append_to_log(int bucket, std::uint64_t object_id, int home_server,
                     std::uint64_t gen, std::uint32_t crc,
                     std::int64_t bytes);
  /// Arms an event-driven ship task for (region, bucket) unless one is
  /// already pending or there is nothing to ship.
  void arm_shipping(int region, int bucket);
  /// The ship task: waits ship_interval, then ships batches until the
  /// destination caught up (or the topology changed under it).
  sim::Task<void> ship_loop(int region, int bucket);
  /// Ships one batch [applied+1 .. min(committed, applied+batch_max)] from
  /// the current primary to `region`. Returns false on a link drop (the
  /// caller re-ships). Advances applied_seq_/applied_chain_ on success.
  sim::Task<bool> ship_batch(int region, int bucket);
  /// Synchronous catch-up of one region (used by restore; retries drops).
  sim::Task<void> catch_up_region(int region);
  /// Verifies `region`'s applied chain CRC against a from-scratch replay of
  /// the log prefix. Aborts (assert) on mismatch — a broken chain means the
  /// simulation itself corrupted the log, never an injected fault.
  void verify_chain(int region);
  /// Executes the plan's region-outage schedule.
  sim::Task<void> region_driver();

  sim::Simulation& sim_;
  GeoConfig cfg_;
  faults::FaultPlan* faults_ = nullptr;
  std::vector<std::unique_ptr<StorageCluster>> regions_;
  /// Dense (from * n + to) matrix; diagonal entries are null.
  std::vector<std::unique_ptr<netsim::GeoLink>> links_;
  std::vector<char> region_up_;
  int primary_ = 0;
  const int initial_primary_ = 0;

  // Geo map versioning (the cross-region redirect protocol): bumped on
  // every promotion; clients cache the version they last saw. Keyed by NIC
  // identity, never iterated — cannot affect event order.
  std::uint64_t geo_version_ = 1;
  std::unordered_map<const netsim::Nic*, std::uint64_t> client_geo_versions_;
  /// Ops arriving before this instant wait out the promotion handoff.
  sim::TimePoint geo_unavailable_until_ = 0;

  // The geo log. Index = bucket; entry seq is 1-based, so log_[b][s-1] is
  // the entry with seq s. Kept whole for the life of the run (drill-scale
  // workloads; trimming would complicate failover truncation for no
  // observable gain).
  std::vector<std::vector<GeoEntry>> log_;
  std::vector<std::uint64_t> committed_seq_;
  /// applied_seq_[region][bucket]; the primary's row tracks committed.
  std::vector<std::vector<std::uint64_t>> applied_seq_;
  std::vector<std::vector<std::uint32_t>> applied_chain_;
  /// One pending ship task max per (region, bucket).
  std::vector<std::vector<char>> ship_pending_;

  // RTO measurement state.
  sim::TimePoint outage_at_ = 0;
  bool rto_pending_ = false;

  std::int64_t rpo_lost_writes_ = 0;
  sim::Duration max_staleness_at_failover_ = 0;
  sim::Duration last_rto_ = 0;
  std::int64_t redeliveries_ = 0;
  std::int64_t region_failovers_ = 0;
  std::int64_t region_failbacks_ = 0;
  std::int64_t stale_geo_redirects_ = 0;
  std::int64_t divergent_resets_ = 0;
  std::int64_t geo_scrub_repairs_ = 0;
  std::int64_t chain_verifications_ = 0;
  std::int64_t log_appends_ = 0;
};

}  // namespace cluster
