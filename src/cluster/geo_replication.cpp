#include "cluster/geo_replication.hpp"

#include <algorithm>
#include <stdexcept>

#include "azure/common/checksum.hpp"
#include "obs/observer.hpp"

namespace cluster {
namespace {

/// Chain CRC32C step: accumulates (seq, crc) onto the previous chain value.
/// The failback reconciliation replays this over the survivor's log prefix;
/// a mismatch means the simulation corrupted its own log (a logic error,
/// never an injected fault) and aborts loudly in every build type.
std::uint32_t chain_step(std::uint32_t prev, std::uint64_t seq,
                         std::uint32_t crc) {
  return azure::Crc32c()
      .update_u64(prev)
      .update_u64(seq)
      .update_u64(crc)
      .value();
}

}  // namespace

GeoConfig GeoCluster::validated(GeoConfig cfg) {
  if (cfg.regions.empty()) {
    throw std::invalid_argument("GeoConfig: at least one region required");
  }
  const int n = static_cast<int>(cfg.regions.size());
  if (cfg.primary < 0 || cfg.primary >= n) {
    throw std::invalid_argument("GeoConfig: primary out of range");
  }
  if (cfg.ship_interval <= 0 || cfg.ship_interval > cfg.staleness_target) {
    throw std::invalid_argument(
        "GeoConfig: need 0 < ship_interval <= staleness_target (the bounded-"
        "staleness contract is provisioned by the shipping cadence)");
  }
  if (cfg.ship_batch_max < 1) {
    throw std::invalid_argument("GeoConfig: ship_batch_max must be >= 1");
  }
  const ClusterConfig& first = cfg.regions.front().cluster;
  for (const GeoRegionConfig& rc : cfg.regions) {
    if (rc.cluster.partition_servers != first.partition_servers ||
        rc.cluster.balancer.buckets_per_server !=
            first.balancer.buckets_per_server) {
      throw std::invalid_argument(
          "GeoConfig: every region must share the partition geometry "
          "(partition_servers, buckets_per_server) — the geo log is keyed "
          "by bucket and objects keep one home server index in all stamps");
    }
  }
  for (const GeoLinkOverride& ov : cfg.link_overrides) {
    if (ov.from < 0 || ov.from >= n || ov.to < 0 || ov.to >= n ||
        ov.from == ov.to) {
      throw std::invalid_argument("GeoConfig: link override out of range");
    }
  }
  return cfg;
}

GeoCluster::GeoCluster(sim::Simulation& sim, GeoConfig cfg)
    : sim_(sim),
      cfg_(validated(std::move(cfg))),
      primary_(cfg_.primary),
      initial_primary_(cfg_.primary) {
  const int n = static_cast<int>(cfg_.regions.size());
  regions_.reserve(static_cast<std::size_t>(n));
  for (const GeoRegionConfig& rc : cfg_.regions) {
    regions_.push_back(std::make_unique<StorageCluster>(sim_, rc.cluster));
  }
  links_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      if (from == to) continue;
      netsim::GeoLinkConfig lc = cfg_.default_link;
      for (const GeoLinkOverride& ov : cfg_.link_overrides) {
        if (ov.from == from && ov.to == to) lc = ov.link;
      }
      links_[static_cast<std::size_t>(from * n + to)] =
          std::make_unique<netsim::GeoLink>(sim_, lc);
    }
  }
  region_up_.assign(static_cast<std::size_t>(n), 1);
  const int buckets = regions_.front()->partition_map().buckets();
  log_.resize(static_cast<std::size_t>(buckets));
  committed_seq_.assign(static_cast<std::size_t>(buckets), 0);
  applied_seq_.assign(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(buckets), 0));
  applied_chain_.assign(
      static_cast<std::size_t>(n),
      std::vector<std::uint32_t>(static_cast<std::size_t>(buckets), 0));
  ship_pending_.assign(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(buckets), 0));
}

GeoCluster::~GeoCluster() = default;

void GeoCluster::enable_faults(faults::FaultPlan& plan) {
  faults_ = &plan;
  for (auto& region : regions_) region->enable_faults(plan);
  if (plan.config().region_faults_enabled() && region_count() > 1) {
    sim_.spawn(region_driver(), "geo-region-driver");
  }
}

// --------------------------------------------------------------- routing ----

sim::Task<int> GeoCluster::route_to_primary(netsim::Nic& client,
                                            int client_region) {
  if (region_count() > 1) {
    // Cross-region redirect protocol (mirrors the stamp-level stale-map
    // path): a client whose cached geo-map version predates a failover gets
    // a typed, retryable redirect carrying the fresh version instead of an
    // execution against the demoted region. geo_version_ starts at 1 and
    // only moves on promotion, so the check is dead until a failover.
    std::uint64_t& cached = client_geo_versions_[&client];
    if (geo_version_ > 1 && cached < geo_version_) {
      cached = geo_version_;
      ++stale_geo_redirects_;
      co_await sim_.delay(regions_[static_cast<std::size_t>(client_region)]
                              ->config()
                              .frontend_latency);
      if (obs::Observer* const o = sim_.observer(); o != nullptr) {
        o->metrics().counter("geo.stale_redirects").add(1);
      }
      throw RegionMovedError(
          "geo map is stale: primary moved to region " +
          std::to_string(primary_) + " (" + region_name(primary_) +
          "), geo map version " + std::to_string(geo_version_));
    }
    cached = geo_version_;
  }
  if (!region_up(primary_)) {
    throw ConnectionResetError(
        "no healthy region: the primary is down and nothing was promoted");
  }
  // A promotion in progress briefly stalls the whole geo endpoint (DNS/
  // traffic-manager repointing); arrivals inside the window wait it out.
  if (geo_unavailable_until_ > sim_.now()) {
    co_await sim_.delay_until(geo_unavailable_until_);
  }
  const int p = primary_;
  if (client_region != p) co_await link(client_region, p).hop();
  co_return p;
}

void GeoCluster::note_primary_success() {
  if (!rto_pending_) return;
  rto_pending_ = false;
  last_rto_ = sim_.now() - outage_at_;
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().histogram("geo.rto").record(last_rto_);
  }
}

// ------------------------------------------------------------- data path ----

sim::Task<ExecResult> GeoCluster::write(netsim::Nic& client,
                                        int client_region,
                                        std::uint64_t partition_hash,
                                        RequestCost cost) {
  const int p = co_await route_to_primary(client, client_region);
  StorageCluster& home = *regions_[static_cast<std::size_t>(p)];
  ExecResult res = co_await home.execute(client, partition_hash, cost);
  if (!region_up(p) || p != primary_) {
    // The region was lost while serving: the stamp committed locally but
    // the ack dies with the region, and the log authority has moved on. The
    // write must NOT enter the (possibly truncated) geo log — it is exactly
    // the kind of unacknowledged, unreplicated mutation the failover drill
    // counts as lost.
    throw ConnectionResetError("region " + region_name(p) +
                               " was lost while serving the request");
  }
  const int bucket = home.partition_map().bucket_of(partition_hash);
  const int home_server = home.partition_map().default_owner(bucket);
  // The shipped generation mirrors the home ledger for tracked objects so a
  // redelivered batch can never regress a secondary's ledger; untracked
  // writes just consume the bucket sequence.
  std::uint64_t gen = committed_seq_[static_cast<std::size_t>(bucket)] + 1;
  if (cost.object_id != 0) {
    if (ReplicaStore::Entry* e = home.replica_store().find(cost.object_id);
        e != nullptr && e->committed_gen > 0) {
      gen = e->committed_gen;
    }
  }
  const std::int64_t bytes =
      cost.object_bytes > 0 ? cost.object_bytes : cost.disk_bytes;
  append_to_log(bucket, cost.object_id, home_server, gen, cost.content_crc,
                bytes);
  note_primary_success();
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().counter("geo.writes").add(1);
  }
  if (client_region != p) co_await link(p, client_region).hop();
  co_return res;
}

sim::Task<GeoReadResult> GeoCluster::read(netsim::Nic& client,
                                          int client_region,
                                          std::uint64_t partition_hash,
                                          RequestCost cost,
                                          ReadConsistency mode) {
  GeoReadResult out;
  if (mode == ReadConsistency::kStrong) {
    const int p = co_await route_to_primary(client, client_region);
    out.exec = co_await regions_[static_cast<std::size_t>(p)]->execute(
        client, partition_hash, cost);
    out.region = p;
    if (p == primary_) note_primary_success();
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      o->metrics().counter("geo.reads.strong").add(1);
    }
    if (client_region != p) co_await link(p, client_region).hop();
    co_return out;
  }
  // Eventual: serve region-local when the local region is up, else fall
  // back to the primary (paying the hop). No geo-version check — an
  // eventual read does not care which region holds the primary role.
  int serve = client_region;
  if (!region_up(serve)) {
    serve = primary_;
    if (!region_up(serve)) {
      throw ConnectionResetError("no healthy region to serve the read");
    }
    co_await link(client_region, serve).hop();
  }
  StorageCluster& stamp = *regions_[static_cast<std::size_t>(serve)];
  const int bucket = stamp.partition_map().bucket_of(partition_hash);
  out.staleness = staleness(serve, bucket);
  out.exec = co_await stamp.execute(client, partition_hash, cost);
  out.region = serve;
  if (serve == primary_) note_primary_success();
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().counter("geo.reads.eventual").add(1);
    o->metrics().histogram("geo.read_staleness").record(out.staleness);
  }
  if (serve != client_region) co_await link(serve, client_region).hop();
  co_return out;
}

// ------------------------------------------------------------- log state ----

sim::Duration GeoCluster::staleness(int region, int bucket) const noexcept {
  const std::uint64_t applied = applied_seq_[static_cast<std::size_t>(region)]
                                            [static_cast<std::size_t>(bucket)];
  if (applied >= committed_seq_[static_cast<std::size_t>(bucket)]) return 0;
  // Oldest unapplied entry: seq applied+1 lives at index applied.
  return sim_.now() - log_[static_cast<std::size_t>(bucket)]
                          [static_cast<std::size_t>(applied)]
                              .committed_at;
}

sim::Duration GeoCluster::max_staleness(int region) const noexcept {
  sim::Duration worst = 0;
  for (int b = 0; b < buckets(); ++b) {
    worst = std::max(worst, staleness(region, b));
  }
  return worst;
}

std::int64_t GeoCluster::replication_lag(int region) const noexcept {
  std::int64_t lag = 0;
  for (int b = 0; b < buckets(); ++b) {
    lag += static_cast<std::int64_t>(
        committed_seq_[static_cast<std::size_t>(b)] -
        applied_seq_[static_cast<std::size_t>(region)]
                    [static_cast<std::size_t>(b)]);
  }
  return lag;
}

void GeoCluster::append_to_log(int bucket, std::uint64_t object_id,
                               int home_server, std::uint64_t gen,
                               std::uint32_t crc, std::int64_t bytes) {
  auto& bucket_log = log_[static_cast<std::size_t>(bucket)];
  GeoEntry e;
  e.seq = ++committed_seq_[static_cast<std::size_t>(bucket)];
  e.object_id = object_id;
  e.gen = gen;
  e.crc = crc;
  e.bytes = bytes;
  e.home_server = home_server;
  e.committed_at = sim_.now();
  e.chain = chain_step(bucket_log.empty() ? 0 : bucket_log.back().chain,
                       e.seq, e.crc);
  bucket_log.push_back(e);
  ++log_appends_;
  // The primary's applied row tracks committed by definition (it authored
  // the entry); the chain doubles as the authority value failback verifies.
  applied_seq_[static_cast<std::size_t>(primary_)]
             [static_cast<std::size_t>(bucket)] = e.seq;
  applied_chain_[static_cast<std::size_t>(primary_)]
               [static_cast<std::size_t>(bucket)] = e.chain;
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().counter("geo.log_appends").add(1);
  }
  for (int r = 0; r < region_count(); ++r) arm_shipping(r, bucket);
}

// -------------------------------------------------------------- shipping ----

void GeoCluster::arm_shipping(int region, int bucket) {
  if (region == primary_ || !region_up(region)) return;
  char& pending = ship_pending_[static_cast<std::size_t>(region)]
                               [static_cast<std::size_t>(bucket)];
  if (pending != 0) return;
  if (applied_seq_[static_cast<std::size_t>(region)]
                  [static_cast<std::size_t>(bucket)] >=
      committed_seq_[static_cast<std::size_t>(bucket)]) {
    return;
  }
  pending = 1;
  sim_.spawn(ship_loop(region, bucket), "geo-ship");
}

sim::Task<void> GeoCluster::ship_loop(int region, int bucket) {
  // Event-driven, finite: chains batches while the destination lags, exits
  // when caught up or the topology changed (region or primary down, region
  // promoted). Appends arriving while the task is alive extend its work;
  // appends after it exits arm a fresh task. Never parks on a gate, so a
  // drained simulation always terminates.
  for (;;) {
    co_await sim_.delay(cfg_.ship_interval);
    if (!region_up(region) || region == primary_ || !region_up(primary_) ||
        applied_seq_[static_cast<std::size_t>(region)]
                    [static_cast<std::size_t>(bucket)] >=
            committed_seq_[static_cast<std::size_t>(bucket)]) {
      break;
    }
    co_await ship_batch(region, bucket);
  }
  ship_pending_[static_cast<std::size_t>(region)]
              [static_cast<std::size_t>(bucket)] = 0;
}

sim::Task<bool> GeoCluster::ship_batch(int region, int bucket) {
  const int src = primary_;
  const std::uint64_t applied =
      applied_seq_[static_cast<std::size_t>(region)]
                  [static_cast<std::size_t>(bucket)];
  const std::uint64_t hi =
      std::min(committed_seq_[static_cast<std::size_t>(bucket)],
               applied + static_cast<std::uint64_t>(cfg_.ship_batch_max));
  if (applied >= hi) co_return true;
  std::int64_t batch_bytes = 0;
  for (std::uint64_t s = applied + 1; s <= hi; ++s) {
    batch_bytes += log_[static_cast<std::size_t>(bucket)]
                       [static_cast<std::size_t>(s - 1)]
                           .bytes;
  }
  const bool delivered =
      co_await link(src, region).carry(batch_bytes, faults_);
  if (!delivered) {
    ++redeliveries_;
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      o->metrics().counter("geo.redeliveries").add(1);
    }
    co_return false;
  }
  // Re-check everything after the await: a failover may have truncated the
  // log, a concurrent shipper may have advanced applied, the destination
  // may have died. The applied watermark is monotone — redelivered or
  // overlapping batches can never rewind it.
  for (;;) {
    std::uint64_t& cur = applied_seq_[static_cast<std::size_t>(region)]
                                     [static_cast<std::size_t>(bucket)];
    const std::uint64_t next = cur + 1;
    if (next > hi ||
        next > committed_seq_[static_cast<std::size_t>(bucket)]) {
      break;
    }
    if (!region_up(region) || region == primary_) break;
    // Copy, not reference: the apply below suspends, and a concurrent
    // append can reallocate the bucket's log vector (or a failover truncate
    // it) while this task is parked.
    const GeoEntry e = log_[static_cast<std::size_t>(bucket)]
                           [static_cast<std::size_t>(next - 1)];
    co_await regions_[static_cast<std::size_t>(region)]->apply_geo_write(
        e.object_id, e.home_server, e.gen, e.crc, e.bytes);
    if (!region_up(region) || region == primary_) break;
    // A failover during the apply may have truncated the log below e.seq
    // (and new writes may have re-filled the slot with a different entry).
    // Advancing the watermark with the stale copy would corrupt the chain;
    // leave it where it is and let the re-armed shipper resync.
    if (committed_seq_[static_cast<std::size_t>(bucket)] < e.seq ||
        log_[static_cast<std::size_t>(bucket)][static_cast<std::size_t>(
            e.seq - 1)].chain != e.chain) {
      break;
    }
    std::uint64_t& after = applied_seq_[static_cast<std::size_t>(region)]
                                       [static_cast<std::size_t>(bucket)];
    if (after < e.seq) {
      after = e.seq;
      applied_chain_[static_cast<std::size_t>(region)]
                   [static_cast<std::size_t>(bucket)] = e.chain;
    }
  }
  co_return true;
}

sim::Task<void> GeoCluster::catch_up_region(int region) {
  for (int b = 0; b < buckets(); ++b) {
    // Claim the bucket so no event-driven shipper double-ships while the
    // synchronous catch-up drains it.
    char& pending = ship_pending_[static_cast<std::size_t>(region)]
                                 [static_cast<std::size_t>(b)];
    const char was_pending = pending;
    pending = 1;
    while (region_up(region) && region != primary_ && region_up(primary_) &&
           applied_seq_[static_cast<std::size_t>(region)]
                       [static_cast<std::size_t>(b)] <
               committed_seq_[static_cast<std::size_t>(b)]) {
      co_await ship_batch(region, b);
    }
    pending = was_pending;
  }
}

sim::Task<void> GeoCluster::catch_up() {
  for (int r = 0; r < region_count(); ++r) {
    if (r == primary_ || !region_up(r)) continue;
    co_await catch_up_region(r);
  }
}

// ------------------------------------------------------ outage / failover ----

void GeoCluster::force_region_outage(int region) {
  if (!region_up(region)) return;
  region_up_[static_cast<std::size_t>(region)] = 0;
  if (faults_ != nullptr) {
    faults_->record(faults::FaultKind::kRegionOutage, region);
  }
  obs::Observer* const o = sim_.observer();
  if (o != nullptr) o->metrics().counter("geo.region_outages").add(1);
  if (region != primary_) return;

  // Promote the next healthy region in ring order.
  int promoted = -1;
  for (int k = 1; k < region_count(); ++k) {
    const int c = (region + k) % region_count();
    if (region_up(c)) {
      promoted = c;
      break;
    }
  }
  if (promoted < 0) return;  // total geo outage: ops throw until a restore

  // The promoted region's high-water mark becomes the truth. Everything the
  // dead primary committed beyond it is lost — the RPO of asynchronous
  // geo-replication — and regions that were *ahead* of the new truth (the
  // victim itself, or a faster secondary) roll their watermarks back and
  // count as divergent until the scrub reconciles their ledgers.
  std::int64_t lost_total = 0;
  for (int b = 0; b < buckets(); ++b) {
    auto& bucket_log = log_[static_cast<std::size_t>(b)];
    const std::uint64_t keep =
        applied_seq_[static_cast<std::size_t>(promoted)]
                    [static_cast<std::size_t>(b)];
    const std::uint64_t lost =
        committed_seq_[static_cast<std::size_t>(b)] - keep;
    if (lost > 0) {
      lost_total += static_cast<std::int64_t>(lost);
      const sim::Duration stale =
          sim_.now() -
          bucket_log[static_cast<std::size_t>(keep)].committed_at;
      max_staleness_at_failover_ = std::max(max_staleness_at_failover_, stale);
      if (o != nullptr) {
        o->metrics().histogram("geo.staleness_at_failover").record(stale);
      }
      bucket_log.resize(static_cast<std::size_t>(keep));
      committed_seq_[static_cast<std::size_t>(b)] = keep;
    }
    for (int r = 0; r < region_count(); ++r) {
      std::uint64_t& a = applied_seq_[static_cast<std::size_t>(r)]
                                     [static_cast<std::size_t>(b)];
      if (a > keep) {
        a = keep;
        applied_chain_[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(b)] =
            keep > 0 ? bucket_log[static_cast<std::size_t>(keep - 1)].chain
                     : 0;
        ++divergent_resets_;
        if (o != nullptr) {
          o->metrics().counter("geo.divergent_resets").add(1);
        }
      }
    }
  }
  rpo_lost_writes_ += lost_total;
  if (lost_total == 0 && o != nullptr) {
    // Mark the zero-loss failover in the histogram so replays distinguish
    // "no failover" from "failover with empty pipeline".
    o->metrics().histogram("geo.staleness_at_failover").record(0);
  }

  primary_ = promoted;
  ++geo_version_;
  ++region_failovers_;
  outage_at_ = sim_.now();
  rto_pending_ = true;
  geo_unavailable_until_ = sim_.now() + effective_failover_latency();
  if (faults_ != nullptr) {
    faults_->record(faults::FaultKind::kRegionFailover, promoted);
  }
  if (o != nullptr) {
    o->metrics().counter("geo.region_failovers").add(1);
    o->metrics().counter("geo.rpo_lost_writes").add(lost_total);
    o->metrics().gauge("geo.primary").set(promoted);
    o->metrics().gauge("geo.map_version").set(
        static_cast<std::int64_t>(geo_version_));
  }
  // Re-arm shipping from the new primary: surviving secondaries whose ship
  // tasks exited against the old topology pick up where their watermark is.
  for (int r = 0; r < region_count(); ++r) {
    for (int b = 0; b < buckets(); ++b) arm_shipping(r, b);
  }
}

void GeoCluster::verify_chain(int region) {
  for (int b = 0; b < buckets(); ++b) {
    ++chain_verifications_;
    const std::uint64_t applied =
        applied_seq_[static_cast<std::size_t>(region)]
                    [static_cast<std::size_t>(b)];
    std::uint32_t chain = 0;
    for (std::uint64_t s = 1; s <= applied; ++s) {
      const GeoEntry& e =
          log_[static_cast<std::size_t>(b)][static_cast<std::size_t>(s - 1)];
      chain = chain_step(chain, e.seq, e.crc);
      if (chain != e.chain) {
        throw std::logic_error(
            "geo log chain CRC mismatch at bucket " + std::to_string(b) +
            " seq " + std::to_string(s) + " — the log was corrupted");
      }
    }
    if (chain != applied_chain_[static_cast<std::size_t>(region)]
                               [static_cast<std::size_t>(b)]) {
      throw std::logic_error(
          "geo applied-chain mismatch at region " + std::to_string(region) +
          " bucket " + std::to_string(b) +
          " — the region applied entries out of sequence");
    }
  }
  if (obs::Observer* const o = sim_.observer(); o != nullptr) {
    o->metrics().counter("geo.chain_verifications").add(buckets());
  }
}

sim::Task<void> GeoCluster::geo_scrub(int region) {
  // Ledger reconciliation against the current authority (the primary's
  // store): every tracked object's committed (gen, crc, bytes) is forced
  // onto the target region, healing stale, torn and divergent copies via
  // the stamp's replica-commit path. Unlike apply_geo_write this may *roll
  // back* a ledger — a failed-over old primary holds generations the new
  // authority never acknowledged, and they must not survive failback.
  StorageCluster& auth = *regions_[static_cast<std::size_t>(primary_)];
  StorageCluster& target = *regions_[static_cast<std::size_t>(region)];
  obs::Observer* const o = sim_.observer();
  for (auto& [object_id, src] : auth.replica_store().entries()) {
    if (src.committed_gen == 0) continue;
    co_await sim_.delay(target.config().scrub_check_time);
    ReplicaStore::Entry& dst = target.replica_store().open(object_id,
                                                           src.home);
    for (int r = 0; r < target.replica_store().replicas_per_object(); ++r) {
      auto& rep = dst.replicas[static_cast<std::size_t>(r)];
      const bool good = !rep.torn && rep.gen == src.committed_gen &&
                        rep.crc == src.committed_crc;
      if (good) continue;
      PartitionServer& host =
          target.server(target.replica_store().server_of(dst, r));
      if (!host.up()) continue;  // stays bad for the next pass
      co_await host.replica_commit(src.bytes);
      if (!host.up()) continue;  // crashed mid-repair
      rep.gen = src.committed_gen;
      rep.crc = src.committed_crc;
      rep.torn = false;
      ++geo_scrub_repairs_;
      if (faults_ != nullptr) {
        faults_->record(faults::FaultKind::kScrubRepair, host.index());
      }
      if (o != nullptr) o->metrics().counter("geo.scrub_repairs").add(1);
    }
    dst.committed_gen = src.committed_gen;
    dst.committed_crc = src.committed_crc;
    dst.bytes = src.bytes;
    dst.next_gen = std::max(dst.next_gen, src.next_gen);
  }
}

sim::Task<void> GeoCluster::force_region_restore(int region) {
  if (region_up(region)) co_return;
  region_up_[static_cast<std::size_t>(region)] = 1;
  if (faults_ != nullptr) {
    faults_->record(faults::FaultKind::kRegionRestore, region);
  }
  obs::Observer* const o = sim_.observer();
  if (o != nullptr) o->metrics().counter("geo.region_restores").add(1);
  if (!region_up(primary_)) {
    // Total outage: the returning region is the only survivor — it resumes
    // as the authority over exactly what it had applied.
    primary_ = region;
    ++geo_version_;
    ++region_failovers_;
    if (faults_ != nullptr) {
      faults_->record(faults::FaultKind::kRegionFailover, region);
    }
    if (o != nullptr) {
      o->metrics().counter("geo.region_failovers").add(1);
      o->metrics().gauge("geo.primary").set(region);
    }
    co_return;
  }
  // Failback reconciliation, in order: (1) prove the survivor's log prefix
  // and this region's applied watermark are internally consistent (chain
  // CRC), (2) converge the region's replica ledger onto the authority's
  // committed state (the PR 3 scrub machinery), (3) ship everything it
  // missed while down.
  verify_chain(region);
  co_await geo_scrub(region);
  co_await catch_up_region(region);
  if (cfg_.auto_failback && region == initial_primary_ &&
      primary_ != region && region_up(region)) {
    primary_ = region;
    ++geo_version_;
    ++region_failbacks_;
    geo_unavailable_until_ = sim_.now() + effective_failover_latency();
    if (faults_ != nullptr) {
      faults_->record(faults::FaultKind::kRegionFailback, region);
    }
    if (o != nullptr) {
      o->metrics().counter("geo.region_failbacks").add(1);
      o->metrics().gauge("geo.primary").set(region);
      o->metrics().gauge("geo.map_version").set(
          static_cast<std::int64_t>(geo_version_));
    }
    // The demoted region keeps shipping targets honest: re-arm everything
    // that lags the (unchanged) log under the restored authority.
    for (int r = 0; r < region_count(); ++r) {
      for (int b = 0; b < buckets(); ++b) arm_shipping(r, b);
    }
  }
}

sim::Task<void> GeoCluster::region_driver() {
  for (const faults::FaultPlan::RegionOutageEvent& ev :
       faults_->region_schedule()) {
    co_await sim_.delay(ev.after_previous);
    const int victim =
        faults_->config().region_outage_victim >= 0
            ? faults_->config().region_outage_victim % region_count()
            : static_cast<int>(ev.victim_raw %
                               static_cast<std::uint64_t>(region_count()));
    force_region_outage(victim);
    co_await sim_.delay(faults_->config().region_downtime);
    co_await force_region_restore(victim);
  }
}

}  // namespace cluster
