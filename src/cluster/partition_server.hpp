// One partition server: a pool of request executors in front of a disk and
// a NIC. Services (blob/queue/table) describe each request's cost and the
// server models queueing, disk occupancy, and replication fan-out load.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/config.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/stats.hpp"
#include "simcore/task.hpp"

namespace cluster {

class PartitionServer {
 public:
  PartitionServer(sim::Simulation& sim, const ClusterConfig& cfg, int index)
      : sim_(sim),
        cfg_(cfg),
        index_(index),
        executors_(sim, cfg.executors_per_server),
        disk_(sim, cfg.disk_bytes_per_sec, /*burst=*/256.0 * 1024),
        nic_(sim, netsim::NicConfig{cfg.server_nic_bytes_per_sec,
                                    cfg.server_nic_bytes_per_sec,
                                    cfg.server_nic_latency}) {}

  int index() const noexcept { return index_; }
  netsim::Nic& nic() noexcept { return nic_; }
  sim::Resource& executors() noexcept { return executors_; }
  const sim::Resource& executors() const noexcept { return executors_; }

  /// Whether the server is serving requests. The fault layer's crash driver
  /// flips this; routing (failover, replica skip) is the cluster's job.
  /// In-flight work on a crashing server is not unwound — the cluster
  /// observes the crash when the request completes and resets the client
  /// (the executor's output is lost with the process).
  bool up() const noexcept { return up_; }
  void crash() noexcept {
    up_ = false;
    ++crashes_;
  }
  void restart() noexcept {
    up_ = true;
    ++restarts_;
  }
  std::int64_t crashes() const noexcept { return crashes_; }
  std::int64_t restarts() const noexcept { return restarts_; }

  /// Occupies one executor, then pays fixed processing plus extra CPU time
  /// plus disk occupancy for `disk_bytes`.
  sim::Task<void> process(sim::Duration cpu, std::int64_t disk_bytes,
                          obs::TraceContext trace = {}) {
    const sim::TimePoint enqueued = sim_.now();
    auto lease = co_await executors_.acquire();
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      const sim::Duration waited = sim_.now() - enqueued;
      o->metrics().histogram("server.exec_queue_ns").record(waited);
      if (waited > 0) {
        // Only contended acquisitions leave a span; the histogram above
        // still records every request (zeros included).
        o->emit(obs::SpanKind::kExecutorQueue, trace, enqueued, sim_.now(),
                0, index_);
      }
    }
    co_await sim_.delay(cfg_.request_overhead + cpu);
    if (disk_bytes > 0) {
      co_await disk_.acquire(static_cast<double>(disk_bytes));
    }
    ++requests_;
    disk_bytes_ += disk_bytes;
  }

  /// Models this server acting as a replica: receive the payload on the NIC,
  /// append to the local disk, ack after the commit latency.
  sim::Task<void> replica_commit(std::int64_t bytes,
                                 obs::TraceContext trace = {}) {
    const sim::TimePoint started = sim_.now();
    if (bytes > 0) {
      co_await nic_.receive(bytes);
      co_await disk_.acquire(static_cast<double>(bytes));
    }
    co_await sim_.delay(cfg_.replica_commit_latency);
    ++replica_commits_;
    if (obs::Observer* const o = sim_.observer(); o != nullptr) {
      o->metrics().counter("cluster.replica_commits").add(1);
      o->emit(obs::SpanKind::kReplicaCommit, trace, started, sim_.now(), 0,
              index_, bytes);
    }
  }

  std::int64_t requests() const noexcept { return requests_; }
  std::int64_t replica_commits() const noexcept { return replica_commits_; }
  std::int64_t disk_bytes() const noexcept { return disk_bytes_; }

 private:
  sim::Simulation& sim_;
  const ClusterConfig& cfg_;
  int index_;
  sim::Resource executors_;
  sim::FlowLimiter disk_;
  netsim::Nic nic_;
  bool up_ = true;
  std::int64_t crashes_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t requests_ = 0;
  std::int64_t replica_commits_ = 0;
  std::int64_t disk_bytes_ = 0;
};

}  // namespace cluster
