// Versioned partition map: the authoritative hash-range -> server assignment
// consulted by StorageCluster::execute on every request.
//
// The key space is carved into `partition_servers * buckets_per_server`
// fixed residue-class buckets (bucket = partition_hash % buckets). Buckets
// are the unit of movement: the load balancer and the crash-failover path
// reassign whole buckets between servers and bump the map version. Because
// the bucket count is a multiple of the server count, the *default*
// assignment (bucket % servers) routes every hash to exactly the server the
// old static `hash % servers` modulo picked — so a cluster that never moves
// a bucket behaves bit-for-bit like the pre-map code. This is a deliberate
// deviation from Calder et al.'s contiguous key ranges: residue classes
// keep the frozen paper figures byte-identical while still giving the
// balancer `buckets_per_server` independently movable slices of each
// server's load.
//
// Versioning models the Azure front-end's partition-map cache protocol:
// every mutation (move) bumps `version()` and stamps the moved bucket with
// `changed_at(bucket) = version`. A client whose cached version is older
// than a bucket's change stamp is routed with stale state and pays a
// redirect (PartitionMovedError) before retrying against the fresh map.
//
// The map itself is pure bookkeeping — no simulation time, no RNG — so it
// is trivially deterministic; all policy lives in LoadBalancer and
// StorageCluster.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "simcore/time.hpp"

namespace cluster {

class PartitionMap {
 public:
  PartitionMap(int servers, int buckets_per_server)
      : servers_(servers), buckets_(servers * buckets_per_server) {
    if (servers <= 0 || buckets_per_server <= 0) {
      throw std::invalid_argument(
          "PartitionMap: servers and buckets_per_server must be positive");
    }
    owner_.resize(static_cast<std::size_t>(buckets_));
    changed_at_.assign(static_cast<std::size_t>(buckets_), 0);
    unavailable_until_.assign(static_cast<std::size_t>(buckets_), 0);
    for (int b = 0; b < buckets_; ++b) owner_[b] = default_owner(b);
  }

  int servers() const noexcept { return servers_; }
  int buckets() const noexcept { return buckets_; }

  /// The bucket a partition hash falls into.
  int bucket_of(std::uint64_t hash) const noexcept {
    return static_cast<int>(hash % static_cast<std::uint64_t>(buckets_));
  }

  /// Current owner of a bucket.
  int owner(int bucket) const { return owner_[bucket]; }

  /// Where a hash routes under the current assignment.
  int server_of(std::uint64_t hash) const { return owner_[bucket_of(hash)]; }

  /// The assignment every bucket starts with; equals hash % servers routing.
  int default_owner(int bucket) const noexcept { return bucket % servers_; }

  /// Monotonic map version. Starts at 1 so a client cache of 0 always reads
  /// as "never fetched".
  std::uint64_t version() const noexcept { return version_; }

  /// Version at which this bucket last moved (0 = never moved). A cached
  /// client version below this value is stale *for this bucket* and must be
  /// redirected; caches older than moves of other buckets stay usable.
  std::uint64_t changed_at(int bucket) const { return changed_at_[bucket]; }

  /// Total bucket moves ever applied. Zero means the map is still the
  /// default assignment and the fast path can skip all staleness checks.
  std::int64_t moves() const noexcept { return moves_; }

  /// End of the move-unavailability window for a bucket (0 = available).
  sim::TimePoint unavailable_until(int bucket) const {
    return unavailable_until_[bucket];
  }

  /// Reassigns `bucket` to `server`, bumping the version and stamping the
  /// bucket. `offline_until` models the move cost: requests for the bucket
  /// arriving before that instant wait it out.
  void assign(int bucket, int server, sim::TimePoint offline_until) {
    owner_[bucket] = server;
    ++version_;
    ++moves_;
    changed_at_[bucket] = version_;
    unavailable_until_[bucket] = offline_until;
  }

  /// Buckets currently owned by `server`, in ascending bucket order.
  std::vector<int> buckets_of(int server) const {
    std::vector<int> out;
    for (int b = 0; b < buckets_; ++b) {
      if (owner_[b] == server) out.push_back(b);
    }
    return out;
  }

  /// Number of buckets currently owned by `server`.
  int owned_count(int server) const {
    int n = 0;
    for (int b = 0; b < buckets_; ++b) n += (owner_[b] == server) ? 1 : 0;
    return n;
  }

 private:
  int servers_;
  int buckets_;
  std::uint64_t version_ = 1;
  std::int64_t moves_ = 0;
  std::vector<int> owner_;
  std::vector<std::uint64_t> changed_at_;
  std::vector<sim::TimePoint> unavailable_until_;
};

}  // namespace cluster
