// Deterministic, seeded fault injection for the simulated cloud.
//
// A FaultPlan is a pure schedule: every decision (does this transfer drop?
// which server crashes next? how long is this latency spike?) derives from
// a seeded sim::Random, so two runs with the same seed inject byte-identical
// fault sequences. Determinism rests on two properties:
//
//  1. The server-crash schedule is materialized eagerly at construction from
//     its own forked RNG stream, so it cannot be perturbed by how many link
//     faults the workload happens to draw.
//  2. Link-fault decisions consume exactly one RNG draw per consulted
//     transfer (plus one more only when a latency spike fires), and
//     transfers are executed in the scheduler's (at, seq) total order — so
//     the draw sequence is itself a deterministic function of the seed.
//
// With a default-constructed FaultConfig the plan is disabled: no RNG is
// ever consulted, no events are scheduled, and the simulation is
// byte-identical to one without a plan.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace faults {

struct FaultConfig {
  std::uint64_t seed = 0xFA'017;

  // ------------------------------------------- link faults (per transfer) ----
  /// Probability that a transfer is lost (client observes TimeoutError
  /// after `drop_timeout`; the operation is not applied).
  double drop_probability = 0;
  /// Probability that a transfer's payload is retransmitted (the flow pays
  /// its occupancy twice; the transport dedupes, so no semantic effect).
  double duplicate_probability = 0;
  /// Probability of a latency spike on a transfer's propagation path.
  double latency_spike_probability = 0;
  /// Probability that a transfer's payload arrives with flipped bits. The
  /// transfer completes with normal timing; whether the damage is *detected*
  /// depends on the receiving layer's checksums (the cluster verifies
  /// integrity-tracked payloads, see cluster/replica_store.hpp).
  double corruption_probability = 0;
  /// Mean of the (exponential) latency-spike duration.
  sim::Duration latency_spike_mean = sim::millis(20);
  /// How long a client waits before declaring a lost message timed out.
  sim::Duration drop_timeout = sim::seconds(2);

  // ---------------------------------------------------- server faults ----
  /// Total partition-server crashes to inject (0 disables the crash driver).
  int server_crashes = 0;
  /// Mean (exponential) interval between crash injections.
  sim::Duration crash_mean_interval = sim::seconds(30);
  /// How long a crashed server stays down before restarting. Crashes are
  /// injected sequentially, so at most one server is down at a time.
  sim::Duration server_downtime = sim::seconds(5);
  /// Extra latency a request pays when its partition is re-routed to a
  /// healthy server because the primary is down.
  sim::Duration failover_latency = sim::millis(20);
  /// Probability that a replica write interrupted by a crash lands *torn*
  /// (partially written, checksum invalid) instead of not at all. Only
  /// consulted when a crash actually interrupts a commit, from its own
  /// forked RNG stream.
  double torn_write_probability = 0.75;

  // ---------------------------------------------------- region faults ----
  // Whole-region (stamp) outages, executed by the geo layer's outage driver
  // (cluster/geo_replication.hpp). Like server crashes, the schedule is
  // materialized eagerly at construction from its own forked stream, so the
  // number of link or geo-link draws a workload makes can never perturb
  // outage timing. Outages are injected sequentially (at most one region is
  // down at a time).
  /// Total region outages to inject (0 disables the region-outage driver).
  int region_outages = 0;
  /// Mean (exponential) interval between region outages.
  sim::Duration region_outage_mean_interval = sim::seconds(30);
  /// How long a lost region stays down before it is restored.
  sim::Duration region_downtime = sim::seconds(5);
  /// Latency a client pays on a cross-region redirect (stale region routing
  /// or a request that reached a region mid-outage) before the typed
  /// RegionMovedError is surfaced.
  sim::Duration region_failover_latency = sim::millis(100);
  /// Pins every scheduled outage to one region index (-1 draws the victim
  /// from the forked stream). Drills that must lose the *primary* region at
  /// a deterministic target pin it here; the victim draw is consumed either
  /// way so the schedule's timing is identical.
  int region_outage_victim = -1;

  // ------------------------------------- geo link faults (per batch) ----
  // Inter-region links are long-haul: they lose whole replication batches
  // (the shipper redelivers next round) and suffer latency spikes, but
  // intra-batch corruption is already covered by the end-to-end checksums
  // the entries carry. One draw per shipped batch, from a dedicated stream.
  /// Probability that a shipped replication batch is lost in transit.
  double geo_drop_probability = 0;
  /// Probability of a latency spike on a shipped batch's path.
  double geo_latency_spike_probability = 0;
  /// Mean of the (exponential) geo latency-spike duration.
  sim::Duration geo_latency_spike_mean = sim::millis(50);

  bool link_faults_enabled() const noexcept {
    return drop_probability > 0 || duplicate_probability > 0 ||
           latency_spike_probability > 0 || corruption_probability > 0;
  }
  bool server_faults_enabled() const noexcept { return server_crashes > 0; }
  bool region_faults_enabled() const noexcept { return region_outages > 0; }
  bool geo_link_faults_enabled() const noexcept {
    return geo_drop_probability > 0 || geo_latency_spike_probability > 0;
  }
  bool enabled() const noexcept {
    return link_faults_enabled() || server_faults_enabled() ||
           region_faults_enabled() || geo_link_faults_enabled();
  }
};

enum class FaultKind : std::uint8_t {
  // ------------------------------------------------------------ injections --
  kDrop,
  kDuplicate,
  kLatencySpike,
  kServerCrash,
  kServerRestart,
  /// A transfer's payload was corrupted in flight.
  kBitFlip,
  /// A crash interrupted a replica commit mid-write, leaving a partial
  /// (checksum-invalid) copy on that replica.
  kTornWrite,
  // ------------------------------------------- detections and repairs ------
  /// A checksum verification caught corrupt data (on the wire or on a torn
  /// replica) before it could reach a client.
  kChecksumMismatch,
  /// A replica was found holding a different generation than the committed
  /// one (a write that died before acknowledging, or a missed commit).
  kReplicaDivergence,
  /// A bad replica was re-synced inline on the read path.
  kReadRepair,
  /// A bad replica was re-synced by the background anti-entropy scrubber.
  kScrubRepair,
  // ----------------------------------------------------- geo / regions -----
  /// An entire region (stamp) went dark.
  kRegionOutage,
  /// A lost region came back and rejoined the geo cluster.
  kRegionRestore,
  /// The primary role moved to a secondary region (the lost region was the
  /// primary). detail = the promoted region's index.
  kRegionFailover,
  /// The primary role moved back to the original region after reconciliation.
  kRegionFailback,
  /// A shipped inter-region replication batch was lost in transit (the
  /// shipper redelivers it next round). detail = payload bytes.
  kGeoBatchDrop,
  /// A shipped batch hit a latency spike on the inter-region link.
  kGeoLatencySpike,
};

/// One injected fault, as recorded in the plan's log. The log is part of
/// the determinism contract: identical seeds must yield identical logs.
struct FaultRecord {
  sim::TimePoint at = 0;
  FaultKind kind{};
  /// Link faults: payload bytes of the affected transfer.
  /// Server faults / integrity events: index of the affected server.
  std::int64_t detail = 0;
  bool operator==(const FaultRecord&) const = default;
};

/// Outcome of one link-fault consultation.
enum class LinkFault : std::uint8_t {
  kNone,
  kDrop,
  kDuplicate,
  kLatencySpike,
  kBitFlip,
};

class FaultPlan {
 public:
  FaultPlan(sim::Simulation& sim, const FaultConfig& cfg = {})
      : sim_(&sim), cfg_(cfg), link_rng_(cfg.seed) {
    // Fork the crash stream off the link stream *before* any link draws,
    // then materialize the whole crash schedule up front.
    sim::Random crash_rng = link_rng_.fork();
    crash_schedule_.reserve(static_cast<std::size_t>(cfg.server_crashes));
    for (int i = 0; i < cfg.server_crashes; ++i) {
      CrashEvent ev;
      ev.after_previous = static_cast<sim::Duration>(crash_rng.exponential(
          static_cast<double>(cfg.crash_mean_interval)));
      ev.victim_raw = crash_rng.next_u64();
      crash_schedule_.push_back(ev);
    }
    // A third independent stream decides whether a crash-interrupted commit
    // lands torn. Forked here (construction time) so the number of link
    // draws a workload makes cannot perturb torn decisions, and vice versa.
    torn_rng_ = link_rng_.fork();
    // Geo streams fork only when their feature is configured: a plan without
    // region outages or geo-link faults leaves link_rng_'s state — and hence
    // every pre-geo draw sequence — byte-identical to a pre-geo build.
    if (cfg.region_faults_enabled()) {
      sim::Random region_rng = link_rng_.fork();
      region_schedule_.reserve(static_cast<std::size_t>(cfg.region_outages));
      for (int i = 0; i < cfg.region_outages; ++i) {
        RegionOutageEvent ev;
        ev.after_previous = static_cast<sim::Duration>(region_rng.exponential(
            static_cast<double>(cfg.region_outage_mean_interval)));
        // The victim draw is consumed even when the config pins the victim,
        // so pinning never shifts outage timing.
        ev.victim_raw = region_rng.next_u64();
        region_schedule_.push_back(ev);
      }
    }
    if (cfg.geo_link_faults_enabled()) geo_rng_ = link_rng_.fork();
  }

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultConfig& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled(); }

  /// Consulted once per network transfer. Draws exactly one uniform value
  /// (the four probabilities partition [0, 1)); non-kNone outcomes are
  /// appended to the log. A plan with corruption_probability == 0 maps the
  /// same draws to the same outcomes as a pre-corruption plan.
  LinkFault draw_link_fault(std::int64_t bytes) {
    if (!cfg_.link_faults_enabled()) return LinkFault::kNone;
    const double u = link_rng_.next_double();
    double edge = cfg_.drop_probability;
    if (u < edge) {
      record(FaultKind::kDrop, bytes);
      return LinkFault::kDrop;
    }
    edge += cfg_.duplicate_probability;
    if (u < edge) {
      record(FaultKind::kDuplicate, bytes);
      return LinkFault::kDuplicate;
    }
    edge += cfg_.latency_spike_probability;
    if (u < edge) {
      record(FaultKind::kLatencySpike, bytes);
      return LinkFault::kLatencySpike;
    }
    edge += cfg_.corruption_probability;
    if (u < edge) {
      // Flipping bits in a zero-byte control hop has nothing to damage.
      if (bytes <= 0) return LinkFault::kNone;
      record(FaultKind::kBitFlip, bytes);
      return LinkFault::kBitFlip;
    }
    return LinkFault::kNone;
  }

  /// Duration of the latency spike just drawn (call only after
  /// draw_link_fault returned kLatencySpike; consumes one RNG draw).
  sim::Duration draw_spike_duration() {
    const auto d = static_cast<sim::Duration>(link_rng_.exponential(
        static_cast<double>(cfg_.latency_spike_mean)));
    return d > 0 ? d : sim::kNanosecond;
  }

  /// Whether a commit that a crash just interrupted lands torn (partially
  /// written) rather than not at all. Consumes one draw from the dedicated
  /// torn stream; call only when a crash actually interrupted a commit.
  bool draw_torn_write() {
    return torn_rng_.next_double() < cfg_.torn_write_probability;
  }

  /// The precomputed crash schedule, executed by the cluster's crash driver.
  struct CrashEvent {
    sim::Duration after_previous = 0;
    /// Reduced modulo the server count at execution time (the plan does not
    /// know the topology).
    std::uint64_t victim_raw = 0;
  };
  const std::vector<CrashEvent>& crash_schedule() const noexcept {
    return crash_schedule_;
  }

  /// Consulted once per shipped inter-region replication batch. Draws
  /// exactly one uniform value from the dedicated geo stream (the two
  /// probabilities partition [0, 1)); non-kNone outcomes are logged.
  LinkFault draw_geo_link_fault(std::int64_t bytes) {
    if (!cfg_.geo_link_faults_enabled()) return LinkFault::kNone;
    const double u = geo_rng_.next_double();
    double edge = cfg_.geo_drop_probability;
    if (u < edge) {
      record(FaultKind::kGeoBatchDrop, bytes);
      return LinkFault::kDrop;
    }
    edge += cfg_.geo_latency_spike_probability;
    if (u < edge) {
      record(FaultKind::kGeoLatencySpike, bytes);
      return LinkFault::kLatencySpike;
    }
    return LinkFault::kNone;
  }

  /// Duration of the geo latency spike just drawn (call only after
  /// draw_geo_link_fault returned kLatencySpike; consumes one geo draw).
  sim::Duration draw_geo_spike_duration() {
    const auto d = static_cast<sim::Duration>(geo_rng_.exponential(
        static_cast<double>(cfg_.geo_latency_spike_mean)));
    return d > 0 ? d : sim::kNanosecond;
  }

  /// The precomputed region-outage schedule, executed by the geo layer's
  /// outage driver (cluster/geo_replication.hpp).
  struct RegionOutageEvent {
    sim::Duration after_previous = 0;
    /// Reduced modulo the region count at execution time, unless the config
    /// pins region_outage_victim.
    std::uint64_t victim_raw = 0;
  };
  const std::vector<RegionOutageEvent>& region_schedule() const noexcept {
    return region_schedule_;
  }

  /// Appends a fault to the log, stamped with the current virtual time.
  void record(FaultKind kind, std::int64_t detail) {
    log_.push_back(FaultRecord{sim_->now(), kind, detail});
  }

  const std::vector<FaultRecord>& log() const noexcept { return log_; }

  std::int64_t count(FaultKind kind) const noexcept {
    std::int64_t n = 0;
    for (const FaultRecord& r : log_) n += (r.kind == kind) ? 1 : 0;
    return n;
  }

 private:
  sim::Simulation* sim_;
  FaultConfig cfg_;
  sim::Random link_rng_;
  sim::Random torn_rng_;
  sim::Random geo_rng_;
  std::vector<CrashEvent> crash_schedule_;
  std::vector<RegionOutageEvent> region_schedule_;
  std::vector<FaultRecord> log_;
};

}  // namespace faults
