// Error types surfaced by injected infrastructure faults.
//
// These are deliberately *not* part of the storage-service error hierarchy
// (cluster::StorageError): a 404 or an ETag mismatch is a semantic answer
// from the service, while a timeout or a reset is the absence of an answer —
// the client cannot know whether the operation was applied. The retry layer
// (azure/common/retry.hpp) classifies each class separately.
#pragma once

#include <stdexcept>
#include <string>

namespace faults {

/// Base class for client-visible infrastructure failures injected by a
/// FaultPlan (as opposed to service-semantic errors like NotFound).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The request or its response was lost in the network; the client gave up
/// after its detection timeout. The operation may or may not have been
/// applied server-side (HTTP client timeout in real Azure).
class TimeoutError : public FaultError {
 public:
  explicit TimeoutError(const std::string& what) : FaultError(what) {}
};

/// The connection died mid-request — the serving partition server crashed
/// (or every candidate server was down). The operation's fate is unknown.
class ConnectionResetError : public FaultError {
 public:
  explicit ConnectionResetError(const std::string& what) : FaultError(what) {}
};

/// An end-to-end checksum did not validate. On a write the server rejected
/// the corrupt request body before applying anything (Content-MD5 check,
/// HTTP 400 in real Azure); on a read the client rejected the corrupt
/// response. Either way the data on the wire was damaged, not the stored
/// copy — retrying (against another replica) is safe and expected.
class ChecksumMismatchError : public FaultError {
 public:
  explicit ChecksumMismatchError(const std::string& what) : FaultError(what) {}
};

}  // namespace faults
