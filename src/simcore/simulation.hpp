// The discrete-event simulation engine: a virtual clock plus an ordered
// event queue of resumable callbacks.
//
// Processes are `sim::Task<void>` coroutines registered with `spawn()`.
// Same-timestamp events run in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace sim {

class Simulation;

namespace detail {

/// State shared between a running root process and its ProcessHandle(s).
struct ProcessState {
  bool done = false;
  std::exception_ptr error{};
  std::vector<std::coroutine_handle<>> joiners;
  std::string name;
};

/// Fire-and-forget coroutine wrapper used by Simulation::spawn. The frame
/// destroys itself at final_suspend.
struct Detached {
  struct promise_type {
    Detached get_return_object() {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<> handle;
};

}  // namespace detail

/// A joinable reference to a spawned root process.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool done() const { return state_ && state_->done; }
  const std::string& name() const { return state_->name; }

  /// Awaitable: suspends the caller until the process finishes. Rethrows
  /// nothing itself — process failures are surfaced by Simulation::run().
  auto join() noexcept {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        st->joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  friend class Simulation;
  ProcessHandle(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

/// The simulation engine. Not thread-safe by design: a simulation is a
/// single-threaded deterministic event loop; parallelism inside the modeled
/// world is expressed with coroutine processes, not host threads.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  TimePoint now() const noexcept { return now_; }

  /// Schedules an arbitrary callback at `at` (must be >= now()).
  void schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules a callback `delay` from now.
  void schedule_in(Duration delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules resumption of a suspended coroutine.
  void schedule_resume(TimePoint at, std::coroutine_handle<> h) {
    schedule_at(at, [h] { h.resume(); });
  }

  /// Awaitable that suspends the caller for `d` of virtual time.
  /// `delay(0)` still yields through the event queue (a fair "yield").
  auto delay(Duration d) noexcept {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_resume(sim.now_ + (d < 0 ? 0 : d), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that suspends the caller until absolute time `t` (or yields
  /// immediately through the queue if `t` is in the past).
  auto delay_until(TimePoint t) noexcept {
    return delay(t > now_ ? t - now_ : 0);
  }

  /// Registers a root process; it starts at the current virtual time.
  ProcessHandle spawn(Task<void> task, std::string name = {});

  /// Runs until the event queue is empty (or a process failed).
  /// Rethrows the first exception that escaped any root process.
  void run();

  /// Runs until virtual time would exceed `t`; the clock is left at
  /// min(t, time of last executed event). Returns true if events remain.
  bool run_until(TimePoint t);

  /// Executes a single event. Returns false if the queue was empty.
  bool step();

  /// Number of events executed so far (for kernel microbenchmarks).
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Number of still-live root processes.
  int live_processes() const noexcept { return live_processes_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  detail::Detached run_process(Task<void> task,
                               std::shared_ptr<detail::ProcessState> st);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  int live_processes_ = 0;
  std::exception_ptr first_error_{};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sim
