// The discrete-event simulation engine: a virtual clock plus an ordered
// event queue of resumable callbacks.
//
// Processes are `sim::Task<void>` coroutines registered with `spawn()`.
// Same-timestamp events run in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run deterministic.
//
// The event core is allocation-free in steady state: coroutine resumptions
// (delay(), Gate/Resource/FlowLimiter wakeups) are stored as bare handles,
// callbacks live in the event slab's inline storage (see event.hpp), process
// bookkeeping blocks are pooled across spawns, and coroutine frames come from
// a size-bucketed free list (frame_pool.hpp).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/event.hpp"
#include "simcore/frame_pool.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace obs {
class Observer;  // see obs/observer.hpp; forward-declared to avoid a cycle
}

namespace sim {

class Simulation;

namespace detail {

/// State shared between a running root process and its ProcessHandle(s).
/// Recycled through Simulation's state pool when no handles are left, so the
/// joiners vector keeps its capacity across spawns.
struct ProcessState {
  bool done = false;
  std::exception_ptr error{};
  std::vector<std::coroutine_handle<>> joiners;
  std::string name;
};

/// Fire-and-forget coroutine wrapper used by Simulation::spawn. The frame
/// destroys itself at final_suspend.
struct Detached {
  struct promise_type {
    void* operator new(std::size_t n) { return FramePool::allocate(n); }
    void operator delete(void* p, std::size_t n) noexcept {
      FramePool::deallocate(p, n);
    }

    Detached get_return_object() {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<> handle;
};

}  // namespace detail

/// A joinable reference to a spawned root process.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool done() const { return state_ && state_->done; }
  const std::string& name() const { return state_->name; }

  /// Awaitable: suspends the caller until the process finishes. Rethrows
  /// nothing itself — process failures are surfaced by Simulation::run().
  auto join() noexcept {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        st->joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  friend class Simulation;
  ProcessHandle(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

/// The simulation engine. Not thread-safe by design: a simulation is a
/// single-threaded deterministic event loop; parallelism inside the modeled
/// world is expressed with coroutine processes, not host threads.
class Simulation {
 public:
  /// Execution options for the sharded parallel kernel (see
  /// simcore/parallel.hpp). `domains == 1` — the default — is the plain
  /// sequential engine; nothing in this class changes behaviour based on
  /// these options, they are consumed by sim::par::ShardedSimulation.
  struct Options {
    /// Number of logical event-queue shards. Outputs are a function of the
    /// domain decomposition only, never of `threads`.
    int domains = 1;
    /// Worker threads driving the domains (0 = one per domain). `threads=1`
    /// executes the identical sharded algorithm sequentially and is the
    /// parity reference for any `threads>1` run.
    int threads = 0;
    /// Conservative lookahead: the minimum virtual-time distance of any
    /// cross-domain send, derived from the minimum inter-domain link
    /// latency (netsim::min_link_latency). Must be > 0 when domains > 1.
    Duration lookahead = 0;
  };

  /// Sentinel "no pending event" timestamp.
  static constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  TimePoint now() const noexcept { return now_; }

  /// Pre-sizes the event heap and payload slab for `n` simultaneously
  /// pending events (optional; the queue grows on demand either way).
  void reserve(std::size_t n) { queue_.reserve(n); }

  /// Schedules an arbitrary callback at `at` (must be >= now()). Callables
  /// up to detail::Event::kInlineCapacity bytes are stored inline.
  template <class F>
  void schedule_at(TimePoint at, F&& fn) {
    assert(at >= now_ && "cannot schedule into the past");
    queue_.push_callable(at, next_seq_++, std::forward<F>(fn));
  }

  /// Schedules a callback `delay` from now.
  template <class F>
  void schedule_in(Duration delay, F&& fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Schedules resumption of a suspended coroutine. This is the kernel's
  /// hot path: the handle is stored directly in the event node, no callable
  /// wrapper is materialized.
  void schedule_resume(TimePoint at, std::coroutine_handle<> h) {
    assert(at >= now_ && "cannot schedule into the past");
    queue_.push_resume(at, next_seq_++, h);
  }

  /// Awaitable that suspends the caller for `d` of virtual time.
  /// `delay(0)` still yields through the event queue (a fair "yield").
  auto delay(Duration d) noexcept {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_resume(sim.now_ + (d < 0 ? 0 : d), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that suspends the caller until absolute time `t` (or yields
  /// immediately through the queue if `t` is in the past).
  auto delay_until(TimePoint t) noexcept {
    return delay(t > now_ ? t - now_ : 0);
  }

  /// Registers a root process; it starts at the current virtual time.
  ProcessHandle spawn(Task<void> task, std::string name = {});

  /// Runs until the event queue is empty (or a process failed).
  /// Rethrows the first exception that escaped any root process.
  void run();

  /// Runs until virtual time would exceed `t`; the clock is left at
  /// min(t, time of last executed event). Returns true if events remain.
  bool run_until(TimePoint t);

  /// Executes a single event. Returns false if the queue was empty.
  bool step();

  /// Timestamp of the earliest pending event, or kNever when the queue is
  /// empty. The parallel kernel derives each domain's earliest-output-time
  /// bound from this.
  TimePoint next_event_time() const noexcept {
    return queue_.empty() ? kNever : queue_.min_time();
  }

  /// Moves the clock forward to `t` without executing anything — used by the
  /// parallel kernel to deliver a cross-domain event at its stamped time
  /// when no local event precedes it. No-op if `t <= now()`.
  void advance_to(TimePoint t) noexcept {
    assert(t >= now_ && "cannot advance into the past");
    if (t > now_) now_ = t;
  }

  /// Counts an externally delivered (cross-domain) event against
  /// events_executed(), keeping the statistic decomposition-independent.
  void note_external_event() noexcept { ++events_executed_; }

  /// True when a root process failed and run() has not yet rethrown.
  bool failed() const noexcept { return first_error_ != nullptr; }

  /// Claims the pending process failure (null if none). The parallel kernel
  /// checks this after every step so a shard error aborts the whole run.
  std::exception_ptr take_error() noexcept {
    return std::exchange(first_error_, nullptr);
  }

  /// Number of events executed so far (for kernel microbenchmarks).
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// Number of still-live root processes.
  int live_processes() const noexcept { return live_processes_; }

  /// Attaches (or detaches, with nullptr) the observability hub. The engine
  /// itself never calls into it — layers built on the simulation check this
  /// pointer and skip all instrumentation when it is null, so an unobserved
  /// run is byte-identical to a build without the obs layer.
  void set_observer(obs::Observer* observer) noexcept {
    observer_ = observer;
  }
  obs::Observer* observer() const noexcept { return observer_; }

 private:
  detail::Detached run_process(Task<void> task,
                               std::shared_ptr<detail::ProcessState> st);
  std::shared_ptr<detail::ProcessState> acquire_state(std::string name);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  int live_processes_ = 0;
  std::exception_ptr first_error_{};
  detail::EventQueue queue_;
  std::vector<std::shared_ptr<detail::ProcessState>> state_pool_;
  obs::Observer* observer_ = nullptr;
};

}  // namespace sim
