// Size-bucketed free lists backing coroutine frame allocation.
//
// Simulated workloads create and destroy coroutine frames at enormous rates:
// every storage op awaits several sub-tasks, and spawn()-heavy scenarios
// (96-worker contention, 1000-waiter broadcasts) otherwise churn the global
// allocator. Frames of a given coroutine type have a fixed size, so a block
// returned on frame destruction is immediately reusable by the next frame of
// the same coroutine; bucketing by 64-byte size class turns steady-state
// frame allocation into a pointer pop.
//
// Ownership model: every thread has an implicit default Arena (thread-local,
// created on first use), and the parallel kernel binds an explicit per-domain
// Arena for the extent of each execution round via FramePool::Scope. A block
// freed while a domain's arena is bound goes back to that domain's free list
// only — free lists are never shared across threads, so domain workers can
// allocate/recycle frames concurrently without synchronization, and a block
// cached by one domain can never be handed out by another (see
// parallel_test.cpp's aliasing regression). Each bucket is capped so a
// one-off burst of frames cannot pin memory forever.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sim::detail {

class FramePool {
 public:
  static constexpr std::size_t kGranularityShift = 6;  // 64-byte size classes
  static constexpr std::size_t kBuckets = 32;          // frames up to 2 KiB
  static constexpr std::size_t kMaxBlocksPerBucket = 4096;

  /// One independent set of free lists. Not thread-safe: an Arena must only
  /// be used by one thread at a time (the parallel kernel guarantees this by
  /// binding each domain's arena only inside that domain's execution round).
  class Arena {
   public:
    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    ~Arena() {
      for (auto& list : bucket_) {
        for (void* p : list) ::operator delete(p);
      }
    }

    /// Blocks currently cached for allocations of `n` bytes (test hook).
    std::size_t cached(std::size_t n) const noexcept {
      const std::size_t b = bucket(n);
      return b < kBuckets ? bucket_[b].size() : 0;
    }

   private:
    friend class FramePool;
    std::vector<void*> bucket_[kBuckets];
  };

  /// RAII binding of `arena` as the calling thread's frame source. Nests:
  /// the previous binding (possibly the thread default) is restored on exit.
  class Scope {
   public:
    explicit Scope(Arena& arena) noexcept : prev_(bound_) { bound_ = &arena; }
    ~Scope() noexcept { bound_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena* prev_;
  };

  static void* allocate(std::size_t n) {
    const std::size_t b = bucket(n);
    if (b >= kBuckets) return ::operator new(n);
    auto& list = current().bucket_[b];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new(bucket_bytes(b));
  }

  static void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket(n);
    if (b < kBuckets) {
      auto& list = current().bucket_[b];
      if (list.size() < kMaxBlocksPerBucket) {
        try {
          list.push_back(p);
          return;
        } catch (...) {
          // Growing the free list failed; fall through to a plain delete.
        }
      }
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t bucket(std::size_t n) noexcept {
    return (n - 1) >> kGranularityShift;  // frame sizes are never zero
  }
  static constexpr std::size_t bucket_bytes(std::size_t b) noexcept {
    return (b + 1) << kGranularityShift;
  }

  static Arena& current() {
    if (bound_ != nullptr) return *bound_;
    static thread_local Arena tls_default;
    return tls_default;
  }

  inline static thread_local Arena* bound_ = nullptr;
};

}  // namespace sim::detail
