// Thread-local, size-bucketed free lists backing coroutine frame allocation.
//
// Simulated workloads create and destroy coroutine frames at enormous rates:
// every storage op awaits several sub-tasks, and spawn()-heavy scenarios
// (96-worker contention, 1000-waiter broadcasts) otherwise churn the global
// allocator. Frames of a given coroutine type have a fixed size, so a block
// returned on frame destruction is immediately reusable by the next frame of
// the same coroutine; bucketing by 64-byte size class turns steady-state
// frame allocation into a pointer pop.
//
// The pool is thread-local because a Simulation is single-threaded by design;
// concurrent benchmark threads each get an independent pool. Each bucket is
// capped so a one-off burst of frames cannot pin memory forever.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sim::detail {

class FramePool {
 public:
  static void* allocate(std::size_t n) {
    const std::size_t b = bucket(n);
    if (b >= kBuckets) return ::operator new(n);
    auto& list = lists().bucket[b];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new(bucket_bytes(b));
  }

  static void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t b = bucket(n);
    if (b < kBuckets) {
      auto& list = lists().bucket[b];
      if (list.size() < kMaxBlocksPerBucket) {
        try {
          list.push_back(p);
          return;
        } catch (...) {
          // Growing the free list failed; fall through to a plain delete.
        }
      }
    }
    ::operator delete(p);
  }

 private:
  static constexpr std::size_t kGranularityShift = 6;  // 64-byte size classes
  static constexpr std::size_t kBuckets = 32;          // frames up to 2 KiB
  static constexpr std::size_t kMaxBlocksPerBucket = 4096;

  static constexpr std::size_t bucket(std::size_t n) noexcept {
    return (n - 1) >> kGranularityShift;  // frame sizes are never zero
  }
  static constexpr std::size_t bucket_bytes(std::size_t b) noexcept {
    return (b + 1) << kGranularityShift;
  }

  struct Lists {
    std::vector<void*> bucket[kBuckets];
    ~Lists() {
      for (auto& list : bucket) {
        for (void* p : list) ::operator delete(p);
      }
    }
  };
  static Lists& lists() {
    static thread_local Lists tls;
    return tls;
  }
};

}  // namespace sim::detail
