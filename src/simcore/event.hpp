// Zero-allocation event representation and d-ary heap scheduler for the DES
// kernel.
//
// Every pending event is a 24-byte POD heap node `(at, key, payload)` where
// `key` packs the scheduling sequence number with a 2-bit payload tag:
//
//   kTagResume    — `payload` is a coroutine handle address; resumption runs
//                   with no indirection through any callable wrapper. This is
//                   the hot path for delay() / schedule_resume() / Gate /
//                   FlowLimiter / Resource wakeups.
//   kTagStateless — `payload` is a plain `void(*)()`; empty callables
//                   (captureless lambdas, stateless functors) are carried
//                   entirely inside the node.
//   kTagSlot      — `payload` indexes an Event in the chunked slab below;
//                   stateful callables up to Event::kInlineCapacity bytes are
//                   stored inline there, larger ones fall back to the heap.
//
// The scheduler (EventQueue) keeps the nodes in a cache-friendly 4-ary
// min-heap; sift operations move 24-byte PODs, never payloads, and
// steady-state scheduling performs no allocation at all (slab slots are
// recycled through a free list whose capacity always covers the slab).
//
// Ordering guarantee: the heap is a strict total order on (at, seq). The tag
// occupies the low bits of `key`, so comparing keys is exactly comparing
// sequence numbers (seq is unique per event); same-timestamp events pop in
// scheduling order and every run is deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "simcore/time.hpp"

namespace sim::detail {

/// Type-erased callable payload with inline storage. Payloads live at stable
/// slab addresses, so the type is deliberately immovable.
class Event {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  Event() noexcept {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { reset(); }

  bool empty() const noexcept { return invoke_ == nullptr; }

  template <class F>
  void set_callable(F&& fn) {
    assert(empty());
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](Event& e) {
        D* f = std::launder(reinterpret_cast<D*>(e.buf_));
        struct Guard {  // destroys exactly once, also when (*f)() throws
          D* f;
          ~Guard() { f->~D(); }
        } guard{f};
        (*f)();
      };
      destroy_ = [](Event& e) noexcept {
        std::launder(reinterpret_cast<D*>(e.buf_))->~D();
      };
    } else {
      heap_ = new D(std::forward<F>(fn));
      invoke_ = [](Event& e) {
        std::unique_ptr<D> f(static_cast<D*>(e.heap_));
        (*f)();
      };
      destroy_ = [](Event& e) noexcept { delete static_cast<D*>(e.heap_); };
    }
  }

  /// Runs the payload and leaves the event empty. The payload is destroyed
  /// exactly once, even if the call throws.
  void invoke() {
    if (auto f = std::exchange(invoke_, nullptr)) f(*this);
  }

  /// Destroys a pending payload without running it.
  void reset() noexcept {
    if (std::exchange(invoke_, nullptr)) destroy_(*this);
  }

 private:
  using InvokeFn = void (*)(Event&);
  using DestroyFn = void (*)(Event&) noexcept;

  InvokeFn invoke_ = nullptr;   // doubles as the "payload present" flag
  DestroyFn destroy_ = nullptr;
  union {
    void* heap_;
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  };
};

/// 4-ary min-heap of (at, seq)-ordered POD nodes; stateful callables spill
/// into a chunked, free-listed Event slab.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Virtual time of the next event. Precondition: !empty().
  TimePoint min_time() const noexcept { return heap_.front().at; }

  /// Pre-sizes the heap and payload slab for `n` simultaneously pending
  /// events (the slab only ever grows in whole chunks).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    while ((chunks_.size() << kChunkShift) < n) add_chunk();
  }

  void push_resume(TimePoint at, std::uint64_t seq,
                   std::coroutine_handle<> h) {
    heap_push(Node{at, make_key(seq, kTagResume),
                   reinterpret_cast<std::uintptr_t>(h.address())});
  }

  template <class F>
  void push_callable(TimePoint at, std::uint64_t seq, F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>,
                  "scheduled callbacks must be invocable with no arguments");
    if constexpr (std::is_empty_v<D> && std::is_trivially_destructible_v<D> &&
                  std::is_default_constructible_v<D>) {
      // Stateless callback: carried as a bare function pointer in the node.
      // (Conditionally-supported function-pointer <-> integer round-trip;
      // exact on every platform this kernel targets.)
      void (*thunk)() = [] { D{}(); };
      heap_push(Node{at, make_key(seq, kTagStateless),
                     reinterpret_cast<std::uintptr_t>(thunk)});
    } else {
      const std::uint32_t slot = alloc_slot();
      try {
        slot_at(slot).set_callable(std::forward<F>(fn));
        heap_push(Node{at, make_key(seq, kTagSlot), slot});
      } catch (...) {
        slot_at(slot).reset();
        free_.push_back(slot);  // capacity pre-reserved: cannot throw
        throw;
      }
    }
  }

  struct Popped {
    TimePoint at;
    std::uint64_t key;
    std::uintptr_t payload;
  };

  /// Removes the minimum (at, seq) node. Precondition: !empty().
  Popped pop() noexcept {
    const Node top = heap_.front();
    const Node last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(last);
    return Popped{top.at, top.key, top.payload};
  }

  /// Runs a popped node's payload; slab slots are recycled exactly once,
  /// also when the callable throws.
  void run(const Popped& p) {
    switch (p.key & kTagMask) {
      case kTagResume:
        std::coroutine_handle<>::from_address(
            reinterpret_cast<void*>(p.payload))
            .resume();
        break;
      case kTagStateless:
        reinterpret_cast<void (*)()>(p.payload)();
        break;
      default:
        run_slot(static_cast<std::uint32_t>(p.payload));
        break;
    }
  }

 private:
  // 24-byte POD heap node; sifts move these, never the payloads.
  struct Node {
    TimePoint at;
    std::uint64_t key;       // (seq << 2) | tag
    std::uintptr_t payload;  // handle address, fn pointer, or slab slot
  };

  static constexpr std::uint64_t kTagResume = 0;
  static constexpr std::uint64_t kTagStateless = 1;
  static constexpr std::uint64_t kTagSlot = 2;
  static constexpr std::uint64_t kTagMask = 3;

  static std::uint64_t make_key(std::uint64_t seq,
                                std::uint64_t tag) noexcept {
    // 62 bits of sequence number: overflow would need ~4.6e18 events.
    return (seq << 2) | tag;
  }

  static bool node_less(const Node& a, const Node& b) noexcept {
    // Key comparison is sequence-number comparison: seq is unique and
    // occupies the high bits, so the tag never influences the order.
    return a.at < b.at || (a.at == b.at && a.key < b.key);
  }

  static constexpr std::uint32_t kChunkShift = 9;  // 512 events per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  Event& slot_at(std::uint32_t s) noexcept {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }

  std::uint32_t alloc_slot() {
    if (free_.empty()) add_chunk();
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }

  void add_chunk() {
    const auto base =
        static_cast<std::uint32_t>(chunks_.size() << kChunkShift);
    // Default- (not value-) initialize: Event's default constructor already
    // establishes the empty state, no memset of the chunk needed.
    chunks_.push_back(std::unique_ptr<Event[]>(new Event[kChunkSize]));
    free_.reserve(std::size_t{chunks_.size()} << kChunkShift);
    // Lower slot indices pop first (back of the free list) for locality.
    for (std::uint32_t i = kChunkSize; i-- > 0;) free_.push_back(base + i);
  }

  void run_slot(std::uint32_t slot) {
    struct Recycle {
      EventQueue* q;
      std::uint32_t s;
      // free_ capacity always covers every slab slot, so push_back here
      // cannot allocate (and thus cannot throw during unwinding).
      ~Recycle() { q->free_.push_back(s); }
    } recycle{this, slot};
    slot_at(slot).invoke();
  }

  void heap_push(const Node& n) {
    std::size_t i = heap_.size();
    heap_.push_back(n);  // placeholder; hole-based sift-up below
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!node_less(n, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = n;
  }

  void sift_down(const Node& v) noexcept {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t k = first + 1; k < end; ++k) {
        if (node_less(heap_[k], heap_[best])) best = k;
      }
      if (!node_less(heap_[best], v)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = v;
  }

  std::vector<Node> heap_;
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<std::uint32_t> free_;
};

}  // namespace sim::detail
