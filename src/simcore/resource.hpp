// Counted resource with FIFO admission — models a server's pool of request
// executors, a disk with k channels, etc.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "simcore/simulation.hpp"

namespace sim {

class Resource;

/// RAII lease over one unit of a Resource. Releasing (or destroying) the
/// lease hands the unit to the next FIFO waiter.
class [[nodiscard]] ResourceLease {
 public:
  ResourceLease() = default;
  explicit ResourceLease(Resource* r) : res_(r) {}
  ResourceLease(ResourceLease&& o) noexcept
      : res_(std::exchange(o.res_, nullptr)) {}
  ResourceLease& operator=(ResourceLease&& o) noexcept;
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;
  ~ResourceLease() { release(); }

  bool held() const noexcept { return res_ != nullptr; }
  void release() noexcept;

 private:
  Resource* res_ = nullptr;
};

/// A capacity-limited resource with strictly FIFO waiters.
class Resource {
 public:
  Resource(Simulation& sim, int capacity)
      : sim_(sim), capacity_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  ~Resource() { assert(waiters_.empty() && "resource destroyed with waiters"); }

  int capacity() const noexcept { return capacity_; }
  int in_use() const noexcept { return in_use_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  /// Peak concurrent holders observed (for tests/metrics).
  int high_watermark() const noexcept { return high_watermark_; }

  /// Awaitable acquiring one unit; resolves to a ResourceLease.
  ///
  /// When a holder releases while waiters are queued, the freed unit is
  /// transferred directly to the head waiter (it stays counted in `in_use_`),
  /// so late arrivals can never jump the FIFO queue.
  auto acquire() noexcept {
    struct Awaiter {
      Resource& r;
      bool suspended = false;
      bool await_ready() const noexcept {
        return r.waiters_.empty() && r.in_use_ < r.capacity_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        r.waiters_.push_back(h);
      }
      ResourceLease await_resume() noexcept {
        if (!suspended) ++r.in_use_;  // transferred units are already counted
        if (r.in_use_ > r.high_watermark_) r.high_watermark_ = r.in_use_;
        return ResourceLease{&r};
      }
    };
    return Awaiter{*this};
  }

 private:
  friend class ResourceLease;

  void release_one() noexcept {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_resume(sim_.now(), h);  // unit transfers; in_use_ unchanged
    } else {
      --in_use_;
    }
  }

  Simulation& sim_;
  int capacity_;
  int in_use_ = 0;
  int high_watermark_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

inline ResourceLease& ResourceLease::operator=(ResourceLease&& o) noexcept {
  if (this != &o) {
    release();
    res_ = std::exchange(o.res_, nullptr);
  }
  return *this;
}

inline void ResourceLease::release() noexcept {
  if (res_) {
    res_->release_one();
    res_ = nullptr;
  }
}

}  // namespace sim
