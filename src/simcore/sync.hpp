// Coordination primitives for simulated processes: Gate (broadcast event)
// and WaitGroup (barrier on N completions).
#pragma once

#include <cassert>
#include <coroutine>
#include <vector>

#include "simcore/simulation.hpp"

namespace sim {

/// A one-shot (resettable) broadcast event. `wait()` suspends until `set()`.
class Gate {
 public:
  explicit Gate(Simulation& sim) : sim_(sim) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;
  ~Gate() { assert(waiters_.empty() && "gate destroyed with waiters"); }

  bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.schedule_resume(sim_.now(), h);
    waiters_.clear();
  }

  /// Re-arms the gate. Only valid when no one is waiting.
  void reset() noexcept {
    assert(waiters_.empty());
    set_ = false;
  }

  auto wait() noexcept {
    struct Awaiter {
      Gate& g;
      bool await_ready() const noexcept { return g.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        g.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Waits for a dynamic count of completions (like Go's sync.WaitGroup).
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : gate_(sim) {}

  void add(int n = 1) {
    assert(!gate_.is_set() || count_ == 0);
    if (gate_.is_set()) gate_.reset();
    count_ += n;
  }

  void done() {
    assert(count_ > 0);
    if (--count_ == 0) gate_.set();
  }

  int pending() const noexcept { return count_; }

  /// Awaitable: resumes when the count reaches zero. If the count is already
  /// zero, resumes immediately.
  auto wait() noexcept {
    if (count_ == 0) gate_.set();
    return gate_.wait();
  }

 private:
  Gate gate_;
  int count_ = 0;
};

}  // namespace sim
