#include "simcore/time.hpp"

#include <cstdio>

namespace sim {

std::string format_duration(Duration d) {
  char buf[64];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(d));
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_millis(d));
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3fus",
                  static_cast<double>(d) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace sim
