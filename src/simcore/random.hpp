// Deterministic pseudo-random source for simulated processes.
//
// xoshiro256** seeded via splitmix64 — fast, high quality, and identical on
// every platform (unlike std:: distributions, whose output is
// implementation-defined). All distribution helpers here are hand-rolled so
// runs are bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace sim {

class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to spread the seed across all 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's multiply-shift bounded generation (tiny bias is irrelevant
    // at simulation scale and keeps the generator branch-free).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * span;
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// True with probability `p` (one draw; p <= 0 never, p >= 1 always).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normally distributed value (Box–Muller, one value per call).
  double normal(double mean, double stddev) noexcept {
    double u1 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
  }

  /// Forks an independent stream (for per-process determinism).
  Random fork() noexcept { return Random(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace sim
