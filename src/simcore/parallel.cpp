#include "simcore/parallel.hpp"

#include <algorithm>
#include <chrono>

namespace sim::par {

namespace {

constexpr TimePoint kNever = Simulation::kNever;

/// Multi-thread stall threshold: consecutive 2 ms idle-wait timeouts (summed
/// across workers) with zero progress signals fleet-wide before the schedule
/// is declared stalled. Scaled by the worker count in worker_loop, this is
/// roughly two wall-clock seconds of every worker provably doing nothing —
/// far beyond any transient (a worker mid-round publishes progress when it
/// finishes, resetting the count), so it only fires on a real livelock.
constexpr std::uint64_t kStallTimeoutsPerWorker = 1024;

/// bound = t + lookahead, saturating at kNever.
TimePoint bound_of(TimePoint t, Duration lookahead) noexcept {
  if (t >= kNever - lookahead) return kNever;
  return t + lookahead;
}

}  // namespace

ShardedSimulation::ShardedSimulation(const Simulation::Options& opt)
    : opt_(opt) {
  if (opt.domains < 1) {
    throw std::invalid_argument("ShardedSimulation: domains must be >= 1");
  }
  if (opt.domains > 1 && opt.lookahead <= 0) {
    throw std::invalid_argument(
        "ShardedSimulation: a positive lookahead (the minimum cross-domain "
        "link latency) is required when domains > 1");
  }
  threads_ = opt.threads > 0 ? opt.threads : opt.domains;
  if (threads_ > opt.domains) threads_ = opt.domains;
  doms_.reserve(static_cast<std::size_t>(opt.domains));
  for (int d = 0; d < opt.domains; ++d) {
    doms_.push_back(std::make_unique<Domain>());
  }
  mail_.reserve(doms_.size() * doms_.size());
  for (std::size_t i = 0; i < doms_.size() * doms_.size(); ++i) {
    mail_.push_back(std::make_unique<detail::Mailbox>());
  }
}

ShardedSimulation::~ShardedSimulation() = default;

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& dom : doms_) total += dom->sim.events_executed();
  return total;
}

std::int64_t ShardedSimulation::mailbox_spills() const {
  std::int64_t total = 0;
  for (const auto& box : mail_) total += box->spilled();
  return total;
}

TimePoint ShardedSimulation::max_now() const {
  TimePoint t = 0;
  for (const auto& dom : doms_) t = std::max(t, dom->sim.now());
  return t;
}

void ShardedSimulation::signal_progress() {
  inert_timeouts_.store(0, std::memory_order_relaxed);
  progress_version_.fetch_add(1, std::memory_order_release);
  if (idle_waiters_.load(std::memory_order_acquire) == 0) return;
  // A waiter between registering and parking holds the mutex; the empty
  // critical section orders this notify after it reaches the wait, so the
  // wakeup cannot be lost.
  { const std::lock_guard<std::mutex> lock(progress_mu_); }
  progress_cv_.notify_all();
}

// Termination: no message in flight AND every domain published "nothing
// pending". Order matters — inflight is read first (acquire): if it reads 0,
// every receiver that drained a message has already (release-)published the
// non-empty flag covering it before decrementing, so a message anywhere in
// the system is reflected in either the count or a flag.
bool ShardedSimulation::quiescent() const {
  if (inflight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& dom : doms_) {
    if (!dom->drained_empty.load(std::memory_order_acquire)) return false;
  }
  return true;
}

void ShardedSimulation::fail(int d, std::exception_ptr err) {
  Domain& dom = *doms_[index(d)];
  if (!dom.error) dom.error = std::move(err);
  aborted_.store(true, std::memory_order_release);
  done_.store(true, std::memory_order_release);
  signal_progress();
}

bool ShardedSimulation::run_domain_round(int d) {
  Domain& dom = *doms_[index(d)];

  // (a) Safe horizon: the minimum bound published by every other domain,
  // loaded BEFORE draining. A message not visible to the drain below was
  // pushed after its sender (release-)stored the bound we just read, and
  // every such message is stamped >= that bound (bounds are monotone), so
  // executing strictly below `safe` can never miss an arrival.
  TimePoint safe = kNever;
  const int dcount = domains();
  for (int s = 0; s < dcount; ++s) {
    if (s == d) continue;
    safe = std::min(safe, doms_[index(s)]->eot.load(std::memory_order_acquire));
  }

  // (b) Drain every inbound mailbox into the staging heap.
  const std::size_t staged_before = dom.staging.size();
  for (int s = 0; s < dcount; ++s) {
    mail_[mailbox_index(s, d)]->drain(dom.staging);
  }
  const std::size_t drained = dom.staging.size() - staged_before;
  for (std::size_t i = staged_before; i < dom.staging.size(); ++i) {
    std::push_heap(dom.staging.begin(),
                   dom.staging.begin() + static_cast<std::ptrdiff_t>(i + 1),
                   detail::CrossEventAfter{});
  }

  // (c)+(d) Publish this domain's earliest-output-time bound BEFORE
  // executing anything. The bound covers sends caused by pending work
  // (>= nt + lookahead) and sends caused by messages still in flight toward
  // this domain (>= safe + lookahead) — see the fixed-point argument in the
  // header. Only then is the drained count released to the termination
  // check, so the check can never race past a staged message.
  const TimePoint nt = std::min(dom.sim.next_event_time(), staged_min(dom));
  const TimePoint eot = bound_of(std::min(nt, safe), opt_.lookahead);
  const bool raised = eot != dom.eot.load(std::memory_order_relaxed);
  dom.eot.store(eot, std::memory_order_release);
  dom.drained_empty.store(nt == kNever, std::memory_order_release);
  if (drained > 0) {
    inflight_.fetch_sub(static_cast<std::int64_t>(drained),
                        std::memory_order_release);
  }

  // (e) Execute everything strictly below the safe horizon, in (at, src,
  // seq) order with cross-domain messages winning ties against local events
  // at equal `at` (a message stamped T was emitted no later than
  // T - lookahead, strictly before any local event created at T). Frames
  // allocated and recycled during execution stay in this domain's arena.
  std::uint64_t executed = 0;
  {
    const sim::detail::FramePool::Scope frames(dom.arena);
    while (!aborted_.load(std::memory_order_relaxed)) {
      const TimePoint lt = dom.sim.next_event_time();
      const TimePoint mt = staged_min(dom);
      const TimePoint t = std::min(lt, mt);
      if (t >= safe) break;
      try {
        if (mt <= lt) {
          std::pop_heap(dom.staging.begin(), dom.staging.end(),
                        detail::CrossEventAfter{});
          detail::CrossEvent ev = std::move(dom.staging.back());
          dom.staging.pop_back();
          dom.sim.advance_to(ev.at);
          dom.sim.note_external_event();
          cross_delivered_.fetch_add(1, std::memory_order_relaxed);
          ev.fn();
        } else {
          dom.sim.step();
        }
      } catch (...) {
        fail(d, std::current_exception());
        return true;
      }
      ++executed;
      if (dom.sim.failed()) {
        fail(d, dom.sim.take_error());
        return true;
      }
    }
  }

  return executed > 0 || drained > 0 || raised;
}

void ShardedSimulation::worker_loop(int w) {
  const int dcount = domains();
  while (!done_.load(std::memory_order_acquire)) {
    // Snapshot the progress version before sweeping: any progress published
    // by another worker between now and a decision to sleep must turn that
    // sleep into an immediate re-sweep (the wait predicate below).
    const std::uint64_t seen =
        progress_version_.load(std::memory_order_acquire);
    bool progressed = false;
    for (int d = w; d < dcount; d += threads_) {
      // The try covers the whole round — drains and heap growth included,
      // not just event execution — so an allocation failure surfaces as a
      // shard error through fail() instead of escaping worker_loop and
      // terminating the process via jthread.
      try {
        progressed = run_domain_round(d) || progressed;
      } catch (...) {
        fail(d, std::current_exception());
        return;
      }
    }
    // One signal per sweep, not per domain round: waiters re-read every
    // published bound when they wake, so batching wakeups loses nothing and
    // spares the futex round-trips that dominate on loaded hosts.
    if (progressed) signal_progress();
    // Check quiescence every sweep, not only on idle ones: the eot fixed
    // point keeps "progressing" (creeping by lookahead increments) after
    // the last real event, and must not mask termination.
    if (quiescent()) {
      done_.store(true, std::memory_order_release);
      signal_progress();
      break;
    }
    if (progressed) continue;
    if (threads_ == 1) {
      // Single-threaded execution of the sharded algorithm cannot stall:
      // the domain holding the globally earliest event always clears its
      // neighbours' bounds within a fixed-point sweep. A fully inert sweep
      // that is not quiescent means the protocol (or a caller's lookahead
      // promise) broke.
      throw std::logic_error(
          "ShardedSimulation: conservative schedule stalled (lookahead "
          "violated?)");
    }
    // Idle: wait for another worker to publish progress. The predicate
    // catches progress published while this worker was sweeping, so a
    // signal is never lost; the timeout only bounds staleness if the
    // progress accounting ever under-reports.
    bool woke = false;
    {
      std::unique_lock<std::mutex> lock(progress_mu_);
      idle_waiters_.fetch_add(1, std::memory_order_acq_rel);
      woke = progress_cv_.wait_for(lock, std::chrono::milliseconds(2), [&] {
        return progress_version_.load(std::memory_order_acquire) != seen ||
               done_.load(std::memory_order_acquire);
      });
      idle_waiters_.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (!woke) {
      // Timed out with no progress published anywhere since this sweep
      // began. Enough of these in a row (any signal_progress resets the
      // count) means every worker is provably inert while the system is
      // not quiescent — the multi-thread equivalent of the single-thread
      // stall below, which would otherwise spin silently forever.
      const std::uint64_t inert =
          inert_timeouts_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (inert >= kStallTimeoutsPerWorker *
                       static_cast<std::uint64_t>(threads_)) {
        fail(w, std::make_exception_ptr(std::logic_error(
                    "ShardedSimulation: conservative schedule stalled "
                    "(lookahead violated?)")));
        return;
      }
    }
  }
}

void ShardedSimulation::run() {
  done_.store(false, std::memory_order_release);
  aborted_.store(false, std::memory_order_release);
  // Pre-drain setup-time posts (no workers are running yet) and seed every
  // published bound with the global minimum next-event time: the safe,
  // conservative start of the fixed point. Seeding each domain with only
  // its local bound would let an empty domain publish kNever while a
  // message chain toward it is still in flight.
  TimePoint global_min = kNever;
  for (std::size_t d = 0; d < doms_.size(); ++d) {
    Domain& dom = *doms_[d];
    const std::size_t staged_before = dom.staging.size();
    for (std::size_t s = 0; s < doms_.size(); ++s) {
      mail_[s * doms_.size() + d]->drain(dom.staging);
    }
    const std::size_t drained = dom.staging.size() - staged_before;
    for (std::size_t i = staged_before; i < dom.staging.size(); ++i) {
      std::push_heap(dom.staging.begin(),
                     dom.staging.begin() + static_cast<std::ptrdiff_t>(i + 1),
                     detail::CrossEventAfter{});
    }
    if (drained > 0) {
      inflight_.fetch_sub(static_cast<std::int64_t>(drained),
                          std::memory_order_release);
    }
    global_min =
        std::min(global_min,
                 std::min(dom.sim.next_event_time(), staged_min(dom)));
  }
  for (const auto& dom : doms_) {
    const TimePoint nt =
        std::min(dom->sim.next_event_time(), staged_min(*dom));
    dom->eot.store(bound_of(global_min, opt_.lookahead),
                   std::memory_order_release);
    dom->drained_empty.store(nt == kNever, std::memory_order_release);
  }
  if (threads_ == 1) {
    worker_loop(0);
  } else {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w) {
      workers.emplace_back([this, w] { worker_loop(w); });
    }
  }
  for (auto& dom : doms_) {
    if (dom->error) {
      std::exception_ptr err = std::exchange(dom->error, nullptr);
      std::rethrow_exception(err);
    }
  }
}

}  // namespace sim::par
