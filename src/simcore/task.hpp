// Lazy coroutine task type used by every simulated process.
//
// A `sim::Task<T>` is a coroutine that starts suspended and runs when
// awaited (symmetric transfer), or when handed to `Simulation::spawn` as a
// root process. Exceptions propagate to the awaiter; an exception escaping a
// root process aborts the simulation run (see Simulation::run).
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "simcore/frame_pool.hpp"

namespace sim {

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  // Frames are pooled: sub-task-heavy workloads allocate/free coroutine
  // frames on every simulated op, and the size-bucketed free list makes
  // that a pointer pop in steady state.
  void* operator new(std::size_t n) { return FramePool::allocate(n); }
  void operator delete(void* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n);
  }

  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <class T>
struct Promise final : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> final : PromiseBase {
  Task<void> get_return_object();
  void return_void() const noexcept {}
};

}  // namespace detail

/// An owning handle to a lazily-started coroutine.
///
/// Move-only. Destroying an un-started or finished Task destroys the frame;
/// a Task must not be destroyed while suspended mid-execution (the kernel's
/// structured usage — always awaited or spawned — guarantees this).
template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Releases ownership of the coroutine handle (used by Simulation::spawn).
  Handle release() noexcept { return std::exchange(h_, {}); }

  /// Awaiting a Task starts it and resumes the awaiter on completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

namespace detail {

template <class T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail
}  // namespace sim
