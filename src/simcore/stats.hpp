// Lightweight statistics accumulators used by services (metrics) and by the
// benchmark harness (reported series).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sim {

/// Streaming mean/min/max/variance (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::int64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return n_ ? max_ : 0.0;
  }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * o.mean_) / (n1 + n2);
    m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles. Intended for per-op latency
/// distributions at benchmark scale (tens of thousands of samples).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  const OnlineStats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Exact percentile by nearest-rank (p in [0, 100]).
  double percentile(double p) {
    if (values_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double median() { return percentile(50.0); }

 private:
  std::vector<double> values_;
  OnlineStats stats_;
  bool sorted_ = true;
};

}  // namespace sim
