// Sharded parallel DES kernel: domain-partitioned event queues synchronized
// with conservative lookahead (Chandy–Misra–Bryant style).
//
// The simulation is split into `domains` logical shards. Each domain owns a
// complete sequential sim::Simulation — its own 4-ary-heap event queue, its
// own frame-pool arena, and (at the harness layer) its own forked RNG
// streams — so domains share no mutable state and can execute concurrently.
// Cross-domain interaction goes exclusively through post(): a callable
// stamped (at, src_domain, seq) travels over a bounded SPSC mailbox and is
// merged into the destination's timeline at `at`.
//
// Synchronization is conservative and barrier-free. Every send must be at
// least `lookahead` of virtual time in the future (lookahead is derived from
// the minimum inter-domain link latency, netsim::min_link_latency), so each
// domain can publish an earliest-output-time bound
//
//     eot(d) = min(next_event_time(d), min over s != d of eot(s)) + lookahead
//
// before executing anything: no message it will ever emit — whether caused
// by an event already queued locally or by a message it has not received
// yet — can be stamped earlier. (The second min term is what makes the bound
// transitively safe: a domain with an empty queue still cannot run ahead of
// messages in flight toward it, and the per-round republication of this
// fixed point plays the role of CMB null messages.) A domain may then safely
// execute all events with
//
//     at < safe(d) = min over s != d of eot(s)
//
// in rounds, with no global barrier — each domain advances as far as its
// neighbours' published bounds allow. Published bounds are monotone
// non-decreasing, and a sender always pushes a message before (release-)
// storing the bound covering it, so a receiver that loads bounds before
// draining can never miss a message those bounds promise.
//
// Determinism contract: the merge order at a domain is the total order
// (at, source, sequence), with cross-domain messages winning ties against
// local events at equal `at` (a message stamped T was emitted at most
// T - lookahead, strictly before any local event created at T). That order
// is a function of the domain decomposition and the scenario only — never of
// the number of worker threads or of wall-clock interleaving — so a
// `threads=N` run is byte-identical to the `threads=1` run of the same
// decomposition (see tests/parallel_test.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "simcore/frame_pool.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace sim::par {

namespace detail {

/// One cross-domain message: run `fn` in the destination domain at `at`.
/// (at, src, seq) is the deterministic merge key; seq counts sends per
/// source domain, so the key is unique and decomposition-deterministic.
struct CrossEvent {
  TimePoint at = 0;
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
};

/// Merge order at the destination: earliest timestamp first, ties broken by
/// (src, seq). Used as a max-heap comparator (std::push_heap), so "greater".
struct CrossEventAfter {
  bool operator()(const CrossEvent& a, const CrossEvent& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    if (a.src != b.src) return a.src > b.src;
    return a.seq > b.seq;
  }
};

/// Bounded single-producer single-consumer ring with a mutex-protected
/// overflow spill. The spill keeps post() non-blocking when a burst
/// overruns the ring — mandatory when one worker thread runs both endpoint
/// domains (threads < domains), where blocking on a full ring would
/// deadlock. Producer = the worker executing the source domain; consumer =
/// the worker executing the destination domain (domain→worker assignment is
/// static, so both roles are single-threaded).
class Mailbox {
 public:
  static constexpr std::size_t kRingCapacity = 1024;

  Mailbox() : ring_(kRingCapacity) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(CrossEvent&& ev) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (t - h < ring_.size()) {
      ring_[t % ring_.size()] = std::move(ev);
      tail_.store(t + 1, std::memory_order_release);
      return;
    }
    const std::lock_guard<std::mutex> lock(spill_mu_);
    spill_.push_back(std::move(ev));
    ++spilled_;
    has_spill_.store(true, std::memory_order_release);
  }

  /// Moves every queued message into `out` (appending). Consumer-side only.
  void drain(std::vector<CrossEvent>& out) {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    std::size_t h = head_.load(std::memory_order_relaxed);
    while (h != t) {
      out.push_back(std::move(ring_[h % ring_.size()]));
      ++h;
    }
    head_.store(h, std::memory_order_release);
    if (has_spill_.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(spill_mu_);
      for (CrossEvent& ev : spill_) out.push_back(std::move(ev));
      spill_.clear();
      has_spill_.store(false, std::memory_order_release);
    }
  }

  /// Messages that overflowed into the spill so far (contention metric).
  std::int64_t spilled() const noexcept { return spilled_; }

 private:
  std::vector<CrossEvent> ring_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  std::mutex spill_mu_;
  std::vector<CrossEvent> spill_;
  std::atomic<bool> has_spill_{false};
  std::int64_t spilled_ = 0;  // producer-side only
};

}  // namespace detail

/// The parallel executor: owns one sim::Simulation per domain and drives
/// them on std::jthreads under the conservative-lookahead protocol above.
///
/// Thread affinity is static — domain d is always executed by worker
/// d % threads — so each domain's Simulation, frame arena, and mailbox
/// endpoints stay single-threaded. All cross-thread visibility goes through
/// the mailbox cursors and the published eot atomics (release/acquire).
class ShardedSimulation {
 public:
  explicit ShardedSimulation(const Simulation::Options& opt);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  int domains() const noexcept { return static_cast<int>(doms_.size()); }
  int threads() const noexcept { return threads_; }
  Duration lookahead() const noexcept { return opt_.lookahead; }

  Simulation& domain(int d) { return doms_[index(d)]->sim; }
  const Simulation& domain(int d) const { return doms_[index(d)]->sim; }

  /// The frame arena backing domain `d`'s coroutine frames (test hook).
  const sim::detail::FramePool::Arena& arena(int d) const {
    return doms_[index(d)]->arena;
  }

  /// Schedules `fn` to run inside domain `dst` at virtual time `at`.
  /// Must be issued from code executing inside domain `src` (or from the
  /// setup thread before run()), and `at` must respect the lookahead:
  /// at >= domain(src).now() + lookahead. Delivery order at `dst` is the
  /// deterministic (at, src, seq) merge order. src == dst is allowed: the
  /// message joins the same merge order, delivered before any local event
  /// later than its stamp.
  template <class F>
  void post(int src, int dst, TimePoint at, F&& fn) {
    if (src < 0 || src >= domains() || dst < 0 || dst >= domains()) {
      throw std::out_of_range("ShardedSimulation::post: domain id out of range");
    }
    Domain& s = *doms_[index(src)];
    if (at < s.sim.now() + opt_.lookahead) {
      throw std::logic_error(
          "ShardedSimulation::post violates the conservative lookahead: "
          "cross-domain sends must be >= lookahead in the future");
    }
    detail::CrossEvent ev{at, static_cast<std::uint32_t>(src), s.send_seq++,
                          std::function<void()>(std::forward<F>(fn))};
    if (src == dst) {
      // Self-posts must not take the mailbox path: mailboxes are drained
      // only at round start, and the safe horizon is the minimum over the
      // *other* domains' bounds, so a mailboxed self-post could sit
      // undelivered while local events later than its stamp execute
      // (generically up to now + 2*lookahead; unboundedly with a single
      // domain). The posting thread owns this domain's staging heap, so
      // staging the message directly keeps it in the same deterministic
      // (at, src, seq) merge order while making it visible to the very
      // next scheduling decision. No inflight accounting: it never leaves
      // the domain, and the staged entry itself keeps the domain's
      // drained_empty flag false until delivery.
      s.staging.push_back(std::move(ev));
      std::push_heap(s.staging.begin(), s.staging.end(),
                     detail::CrossEventAfter{});
      return;
    }
    // Count the message in flight before it becomes visible; the receiver
    // uncounts it only after republishing a finite eot that covers it, so
    // the termination check (inflight == 0 and all eots == never) can never
    // observe a quiescent-looking system with a message still in the air.
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    mail_[mailbox_index(src, dst)]->push(std::move(ev));
  }

  /// Runs every domain to completion (all queues empty, no messages in
  /// flight). Rethrows the first shard failure, smallest domain id first.
  /// Callable repeatedly: processes spawned after a run() extend the world.
  void run();

  /// Events executed across all domains, including delivered cross-domain
  /// messages — invariant across thread counts for a fixed decomposition.
  std::uint64_t events_executed() const;

  /// Cross-domain messages delivered so far.
  std::uint64_t cross_events_delivered() const noexcept {
    return cross_delivered_.load(std::memory_order_relaxed);
  }

  /// Messages that overflowed a mailbox ring into its spill.
  std::int64_t mailbox_spills() const;

  /// Largest domain clock — the virtual makespan of the run.
  TimePoint max_now() const;

 private:
  struct Domain {
    Simulation sim;
    sim::detail::FramePool::Arena arena;
    std::vector<detail::CrossEvent> staging;  // heap, CrossEventAfter order
    std::uint64_t send_seq = 0;               // stamps for sends FROM here
    std::exception_ptr error{};
    alignas(64) std::atomic<TimePoint> eot{0};
    /// True when the domain had nothing pending (local or staged) at its
    /// last bound publication. Termination is detected from these flags
    /// plus the in-flight count — not from the eot fixed point, which
    /// creeps upward in lookahead increments instead of reaching kNever.
    std::atomic<bool> drained_empty{false};
  };

  std::size_t index(int d) const {
    assert(d >= 0 && d < domains() && "domain id out of range");
    return static_cast<std::size_t>(d);
  }
  std::size_t mailbox_index(int src, int dst) const {
    return index(src) * doms_.size() + index(dst);
  }

  /// One execution round for domain `d`; returns true if it made progress
  /// (drained, executed, or raised its published bound — the last counts
  /// because the eot fixed point converges over rounds). Called only by
  /// worker d % threads.
  bool run_domain_round(int d);

  /// Publishes domain `d`'s earliest-output-time bound from its current
  /// next event (local queue merged with staged messages).
  TimePoint staged_min(const Domain& dom) const noexcept {
    return dom.staging.empty() ? Simulation::kNever : dom.staging.front().at;
  }

  void worker_loop(int w);
  void signal_progress();
  bool quiescent() const;
  void fail(int d, std::exception_ptr err);

  Simulation::Options opt_;
  int threads_ = 1;
  std::vector<std::unique_ptr<Domain>> doms_;
  std::vector<std::unique_ptr<detail::Mailbox>> mail_;  // [src * D + dst]
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<std::uint64_t> cross_delivered_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> aborted_{false};
  std::mutex progress_mu_;
  std::condition_variable progress_cv_;
  std::atomic<std::uint64_t> progress_version_{0};
  /// Workers currently parked in the idle wait. signal_progress() skips the
  /// mutex + notify entirely while this is zero, keeping the productive
  /// round path free of futex traffic.
  std::atomic<int> idle_waiters_{0};
  /// Idle waits that timed out with no progress published anywhere since
  /// the waiter's sweep began. Reset by every signal_progress(); reaching
  /// the stall threshold turns a silent multi-thread livelock (a protocol
  /// or lookahead violation) into the same logic_error the single-threaded
  /// schedule raises.
  std::atomic<std::uint64_t> inert_timeouts_{0};
};

}  // namespace sim::par
