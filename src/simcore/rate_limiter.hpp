// Rate/bandwidth limiting primitives.
//
// FlowLimiter — a fluid-flow FIFO pipe: acquiring `amount` units occupies the
// pipe for amount/rate of virtual time; used for NIC/disk/blob bandwidth and
// for blocking transaction-rate shaping. A burst window lets short bursts
// pass without delay (token-bucket credit).
//
// WindowCounter — a fixed-window transaction counter used for *rejecting*
// throttles (Azure's scalability targets): `try_consume()` fails once the
// per-window budget is exhausted, and the caller surfaces ServerBusy.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>

#include "simcore/simulation.hpp"

namespace sim {

/// Fluid-flow FIFO rate limiter ("virtual finish time" model).
class FlowLimiter {
 public:
  /// @param rate   units per second (e.g. bytes/s, messages/s); must be > 0.
  /// @param burst  units of instantaneous credit (0 = strictly serialized).
  FlowLimiter(Simulation& sim, double rate, double burst = 0.0)
      : sim_(sim), rate_(rate), burst_(burst) {
    assert(rate > 0.0);
  }
  FlowLimiter(const FlowLimiter&) = delete;
  FlowLimiter& operator=(const FlowLimiter&) = delete;

  double rate() const noexcept { return rate_; }

  /// Virtual time at which the pipe next becomes free (for metrics/tests).
  TimePoint next_free() const noexcept { return next_free_; }

  /// Awaitable: suspends until `amount` units have flowed through the pipe.
  /// FIFO by construction: each acquire books its slot synchronously.
  auto acquire(double amount) noexcept {
    // Service time for this acquisition.
    const auto service =
        static_cast<Duration>(amount / rate_ * static_cast<double>(kSecond));
    const auto burst_window =
        static_cast<Duration>(burst_ / rate_ * static_cast<double>(kSecond));
    const TimePoint now = sim_.now();
    TimePoint start = next_free_;
    if (start < now - burst_window) start = now - burst_window;
    next_free_ = start + service;
    const TimePoint resume_at = next_free_ < now ? now : next_free_;

    struct Awaiter {
      Simulation& sim;
      TimePoint at;
      bool await_ready() const noexcept { return at <= sim.now(); }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_resume(at, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{sim_, resume_at};
  }

 private:
  Simulation& sim_;
  double rate_;
  double burst_;
  TimePoint next_free_ = 0;
};

/// Fixed-window admission counter for rejecting throttles.
class WindowCounter {
 public:
  /// @param budget  admissions allowed per window.
  /// @param window  window length (default: 1 second, matching Azure's
  ///                "transactions per second" scalability targets).
  WindowCounter(Simulation& sim, std::int64_t budget,
                Duration window = kSecond)
      : sim_(sim), budget_(budget), window_(window) {
    assert(budget > 0 && window > 0);
  }

  std::int64_t budget() const noexcept { return budget_; }

  /// Attempts to admit `n` transactions in the current window, atomically
  /// (all admitted or none — used by batched operations).
  bool try_consume(std::int64_t n = 1) noexcept {
    roll();
    if (count_ + n > budget_) {
      ++rejected_;
      return false;
    }
    count_ += n;
    return true;
  }

  /// Total rejected admissions (for metrics and tests).
  std::int64_t rejected() const noexcept { return rejected_; }

  /// Admissions in the current window.
  std::int64_t current_window_count() noexcept {
    roll();
    return count_;
  }

 private:
  void roll() noexcept {
    const TimePoint now = sim_.now();
    if (now - window_start_ >= window_) {
      // Jump directly to the window containing `now`.
      window_start_ = now - ((now - window_start_) % window_);
      count_ = 0;
    }
  }

  Simulation& sim_;
  std::int64_t budget_;
  Duration window_;
  TimePoint window_start_ = 0;
  std::int64_t count_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace sim
