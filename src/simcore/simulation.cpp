#include "simcore/simulation.hpp"

#include <cassert>
#include <stdexcept>

namespace sim {

std::shared_ptr<detail::ProcessState> Simulation::acquire_state(
    std::string name) {
  if (!state_pool_.empty()) {
    auto st = std::move(state_pool_.back());
    state_pool_.pop_back();
    st->done = false;
    st->error = nullptr;
    st->name = std::move(name);
    assert(st->joiners.empty());
    return st;
  }
  auto st = std::make_shared<detail::ProcessState>();
  st->name = std::move(name);
  return st;
}

detail::Detached Simulation::run_process(
    Task<void> task, std::shared_ptr<detail::ProcessState> st) {
  try {
    co_await std::move(task);
  } catch (...) {
    st->error = std::current_exception();
    if (!first_error_) first_error_ = st->error;
  }
  st->done = true;
  --live_processes_;
  for (auto j : st->joiners) schedule_resume(now_, j);
  st->joiners.clear();
  // A use count of 1 means no ProcessHandle (or join awaiter) references
  // this state and none can appear later, so the block is recyclable.
  if (st.use_count() == 1) state_pool_.push_back(std::move(st));
}

ProcessHandle Simulation::spawn(Task<void> task, std::string name) {
  auto st = acquire_state(std::move(name));
  ++live_processes_;
  auto d = run_process(std::move(task), st);
  schedule_resume(now_, d.handle);
  return ProcessHandle{std::move(st)};
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Pop-then-run: the node is fully removed from the heap before the payload
  // executes, so the payload may freely schedule new events.
  const auto popped = queue_.pop();
  now_ = popped.at;
  ++events_executed_;
  queue_.run(popped);
  return true;
}

void Simulation::run() {
  while (!first_error_ && step()) {
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool Simulation::run_until(TimePoint t) {
  while (!first_error_ && !queue_.empty() && queue_.min_time() <= t) {
    step();
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

}  // namespace sim
