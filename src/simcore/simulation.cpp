#include "simcore/simulation.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace sim {

void Simulation::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

detail::Detached Simulation::run_process(
    Task<void> task, std::shared_ptr<detail::ProcessState> st) {
  try {
    co_await std::move(task);
  } catch (...) {
    st->error = std::current_exception();
    if (!first_error_) first_error_ = st->error;
  }
  st->done = true;
  --live_processes_;
  for (auto j : st->joiners) schedule_resume(now_, j);
  st->joiners.clear();
}

ProcessHandle Simulation::spawn(Task<void> task, std::string name) {
  auto st = std::make_shared<detail::ProcessState>();
  st->name = std::move(name);
  ++live_processes_;
  auto d = run_process(std::move(task), st);
  schedule_at(now_, [h = d.handle] { h.resume(); });
  return ProcessHandle{std::move(st)};
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast of the handle is
  // UB-adjacent, so copy the small struct members we need instead.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulation::run() {
  while (!first_error_ && step()) {
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

bool Simulation::run_until(TimePoint t) {
  while (!first_error_ && !queue_.empty() && queue_.top().at <= t) {
    step();
  }
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

}  // namespace sim
