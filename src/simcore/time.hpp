// Virtual-time types for the discrete-event simulation kernel.
//
// All simulation time is kept as integer nanoseconds so that event ordering
// is exact and runs are bit-reproducible across platforms (no floating-point
// clock drift).
#pragma once

#include <cstdint>
#include <string>

namespace sim {

/// A point in virtual time, in nanoseconds since simulation start.
using TimePoint = std::int64_t;

/// A span of virtual time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Builds a Duration from a (possibly fractional) count of seconds.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Builds a Duration from a (possibly fractional) count of milliseconds.
constexpr Duration millis(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Builds a Duration from a (possibly fractional) count of microseconds.
constexpr Duration micros(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond));
}

/// Converts a Duration to fractional seconds (for reporting/throughput math).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a Duration to fractional milliseconds.
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Human-readable rendering, e.g. "12.5ms", "3.2s". Intended for logs.
std::string format_duration(Duration d);

}  // namespace sim
