// Deployment provisioning model — the paper's future work explicitly lists
// "resource provisioning times and application deployment timings".
//
// The 2011/2012 Azure deployment pipeline, as modeled here:
//   1. the application package uploads once to the fabric controller;
//   2. the fabric allocates VMs in bounded-parallelism batches;
//   3. each VM boots the guest OS and starts the role entry point.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fabric/vm_size.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace fabric {

struct ProvisioningConfig {
  /// Application package size and the portal/fabric upload bandwidth.
  std::int64_t package_bytes = 50ll << 20;
  double package_upload_bytes_per_sec = 4.0 * 1024 * 1024;

  /// Wall time the fabric takes to allocate one VM slot.
  sim::Duration vm_allocation = sim::seconds(150);

  /// Extra allocation time per CPU core (bigger VMs are harder to place).
  sim::Duration allocation_per_core = sim::seconds(20);

  /// Guest OS boot + role host start.
  sim::Duration guest_boot = sim::seconds(90);
  sim::Duration role_start = sim::seconds(30);

  /// The fabric allocates at most this many VMs concurrently.
  int parallel_allocations = 12;
};

/// Result of provisioning one deployment.
struct ProvisioningReport {
  sim::Duration package_upload = 0;
  /// Per-instance ready time, measured from provisioning start.
  std::vector<sim::Duration> instance_ready;

  sim::Duration time_to_first_instance() const {
    return instance_ready.empty()
               ? 0
               : *std::min_element(instance_ready.begin(),
                                   instance_ready.end());
  }
  sim::Duration time_to_all_instances() const {
    return instance_ready.empty()
               ? 0
               : *std::max_element(instance_ready.begin(),
                                   instance_ready.end());
  }
};

/// Simulates provisioning `instances` VMs of the given size. Pure model —
/// usable standalone (for the provisioning bench) or before starting roles.
inline sim::Task<ProvisioningReport> provision_deployment(
    sim::Simulation& sim, int instances, VmSize size,
    ProvisioningConfig cfg = {}) {
  ProvisioningReport report;
  const sim::TimePoint start = sim.now();

  // 1. Package upload happens once for the whole deployment.
  const auto upload = static_cast<sim::Duration>(
      static_cast<double>(cfg.package_bytes) /
      cfg.package_upload_bytes_per_sec * static_cast<double>(sim::kSecond));
  co_await sim.delay(upload);
  report.package_upload = sim.now() - start;

  // 2+3. Allocation batches, then boot, in parallel per instance.
  sim::Resource allocator(sim, cfg.parallel_allocations);
  sim::WaitGroup done(sim);
  report.instance_ready.assign(static_cast<std::size_t>(instances), 0);

  struct Ctx {
    sim::Simulation& sim;
    sim::Resource& allocator;
    const ProvisioningConfig& cfg;
    VmSize size;
    sim::TimePoint start;
    ProvisioningReport& report;
    sim::WaitGroup& done;
  } ctx{sim, allocator, cfg, size, start, report, done};

  auto boot_one = [](Ctx& c, int index) -> sim::Task<void> {
    {
      auto slot = co_await c.allocator.acquire();
      const auto cores = spec_of(c.size).cpu_cores;
      co_await c.sim.delay(c.cfg.vm_allocation +
                           static_cast<sim::Duration>(
                               cores * static_cast<double>(
                                           c.cfg.allocation_per_core)));
    }
    co_await c.sim.delay(c.cfg.guest_boot + c.cfg.role_start);
    c.report.instance_ready[static_cast<std::size_t>(index)] =
        c.sim.now() - c.start;
    c.done.done();
  };
  for (int i = 0; i < instances; ++i) {
    done.add();
    sim.spawn(boot_one(ctx, i));
  }
  co_await done.wait();
  co_return report;
}

}  // namespace fabric
