// Per-role local storage: a scratch disk private to one role instance
// (Azure's "LocalResource"). The paper notes it behaves like a local hard
// disk and excludes it from the storage benchmarks; the fabric still
// provides it for applications that stage intermediate data.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "azure/common/errors.hpp"
#include "azure/common/payload.hpp"

namespace fabric {

class LocalStorage {
 public:
  explicit LocalStorage(std::int64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::int64_t capacity() const noexcept { return capacity_; }
  std::int64_t used() const noexcept { return used_; }

  /// Writes (or replaces) a named scratch file. Throws when the disk would
  /// overflow.
  void write(const std::string& name, azure::Payload data) {
    std::int64_t delta = data.size();
    if (auto it = files_.find(name); it != files_.end()) {
      delta -= it->second.size();
    }
    if (used_ + delta > capacity_) {
      throw azure::InvalidArgumentError("local storage full: " + name);
    }
    used_ += delta;
    files_[name] = std::move(data);
  }

  std::optional<azure::Payload> read(const std::string& name) const {
    auto it = files_.find(name);
    if (it == files_.end()) return std::nullopt;
    return it->second;
  }

  bool remove(const std::string& name) {
    auto it = files_.find(name);
    if (it == files_.end()) return false;
    used_ -= it->second.size();
    files_.erase(it);
    return true;
  }

  std::size_t file_count() const noexcept { return files_.size(); }

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::map<std::string, azure::Payload> files_;
};

}  // namespace fabric
