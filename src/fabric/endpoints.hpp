// Internal TCP endpoints between role instances.
//
// Section III: "Azure platform also supports TCP endpoints that can be
// configured to facilitate an application to listen on an assigned TCP
// port for incoming requests. TCP messages can be sent/received among
// Azure roles" — the paper does not study them; this module implements
// them so applications (and the extension benches) can compare direct
// role-to-role messaging against queue-mediated communication.
//
// Model: connection-less message endpoints. A send occupies the sender's
// NIC uplink, the fabric, and the receiver's NIC downlink; messages from
// one sender arrive in order; receives suspend until a message arrives.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <utility>

#include "azure/common/payload.hpp"
#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"

namespace fabric {

class InternalEndpoint {
 public:
  /// @param sim      the simulation this endpoint lives in.
  /// @param network  the datacenter fabric connecting the roles.
  /// @param nic      the owning role instance's NIC.
  InternalEndpoint(sim::Simulation& sim, netsim::Network& network,
                   netsim::Nic& nic)
      : sim_(sim), network_(network), nic_(nic) {}
  InternalEndpoint(const InternalEndpoint&) = delete;
  InternalEndpoint& operator=(const InternalEndpoint&) = delete;
  ~InternalEndpoint() { assert(waiters_.empty()); }

  /// Sends `message` to `dst`. Completes when the payload has been
  /// delivered into the destination inbox.
  sim::Task<void> send(InternalEndpoint& dst, azure::Payload message) {
    ++sent_;
    co_await network_.transfer(nic_, dst.nic_, message.size() + 64);
    dst.deliver(std::move(message));
  }

  /// Awaits the next message (FIFO across arrival order).
  sim::Task<azure::Payload> receive() {
    // Re-check after every wake-up: a concurrent receiver scheduled at the
    // same timestamp may have consumed the message first.
    while (inbox_.empty()) {
      co_await Waiter{*this};
    }
    azure::Payload front = std::move(inbox_.front());
    inbox_.pop_front();
    co_return front;
  }

  std::size_t pending() const noexcept { return inbox_.size(); }
  std::int64_t messages_sent() const noexcept { return sent_; }
  std::int64_t messages_received() const noexcept { return received_; }

 private:
  struct Waiter {
    InternalEndpoint& ep;
    bool await_ready() const noexcept { return !ep.inbox_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      ep.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  void deliver(azure::Payload message) {
    inbox_.push_back(std::move(message));
    ++received_;
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_resume(sim_.now(), h);
    }
  }

  sim::Simulation& sim_;
  netsim::Network& network_;
  netsim::Nic& nic_;
  std::deque<azure::Payload> inbox_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::int64_t sent_ = 0;
  std::int64_t received_ = 0;
};

}  // namespace fabric
