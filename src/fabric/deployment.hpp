// Deployment model: web/worker role instances running on VMs inside one
// hosted service, each with its own NIC and local storage, all sharing a
// storage account (the CloudEnvironment).
//
//   fabric::Deployment dep(env);
//   dep.add_web_role(VmSize::kSmall);
//   dep.add_worker_roles(8, VmSize::kSmall);
//   dep.start_workers([](fabric::RoleContext& ctx) -> sim::Task<void> {
//     auto queue = ctx.account().create_cloud_queue_client()...;
//     ...
//   });
//   env.simulation().run();
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "fabric/local_storage.hpp"
#include "fabric/vm_size.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace fabric {

enum class RoleKind { kWeb, kWorker };

/// Everything a role's entry point can touch: its identity, its VM's NIC,
/// local storage, and a storage account bound to this instance.
class RoleContext {
 public:
  RoleContext(azure::CloudEnvironment& env, RoleKind kind, int id, VmSize size)
      : env_(env),
        kind_(kind),
        id_(id),
        size_(size),
        nic_(env.simulation(), nic_config_of(size)),
        local_(spec_of(size).local_storage_gb * (1ll << 30)),
        account_(env, nic_) {}

  RoleKind kind() const noexcept { return kind_; }
  int id() const noexcept { return id_; }
  VmSize vm_size() const noexcept { return size_; }
  const VmSpec& vm_spec() const noexcept { return spec_; }

  sim::Simulation& simulation() noexcept { return env_.simulation(); }
  azure::CloudEnvironment& environment() noexcept { return env_; }
  netsim::Nic& nic() noexcept { return nic_; }
  LocalStorage& local_storage() noexcept { return local_; }
  azure::CloudStorageAccount& account() noexcept { return account_; }

 private:
  azure::CloudEnvironment& env_;
  RoleKind kind_;
  int id_;
  VmSize size_;
  VmSpec spec_ = spec_of(size_);
  netsim::Nic nic_;
  LocalStorage local_;
  azure::CloudStorageAccount account_;
};

/// A hosted service: one optional web role plus N worker role instances.
class Deployment {
 public:
  /// A role entry point: a coroutine taking the role's context.
  using EntryPoint = std::function<sim::Task<void>(RoleContext&)>;

  explicit Deployment(azure::CloudEnvironment& env)
      : env_(env), done_(env.simulation()) {}

  /// Adds the web role instance (at most one, as in Azure's default model).
  RoleContext& add_web_role(VmSize size = VmSize::kSmall) {
    assert(!web_);
    web_ = std::make_unique<RoleContext>(env_, RoleKind::kWeb, 0, size);
    return *web_;
  }

  /// Adds `count` worker role instances.
  void add_worker_roles(int count, VmSize size = VmSize::kSmall) {
    for (int i = 0; i < count; ++i) {
      workers_.push_back(std::make_unique<RoleContext>(
          env_, RoleKind::kWorker, static_cast<int>(workers_.size()), size));
    }
  }

  RoleContext& web_role() {
    assert(web_);
    return *web_;
  }
  RoleContext& worker(int i) { return *workers_.at(static_cast<size_t>(i)); }
  int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Launches the web role's entry point.
  void start_web(EntryPoint entry) { start_one(web_role(), std::move(entry)); }

  /// Launches every worker role instance with the same entry point.
  void start_workers(EntryPoint entry) {
    for (auto& w : workers_) start_one(*w, entry);
  }

  /// Awaitable: resumes when every launched role entry point has returned.
  auto wait_all() { return done_.wait(); }

 private:
  void start_one(RoleContext& ctx, EntryPoint entry) {
    done_.add();
    env_.simulation().spawn(run_role(ctx, std::move(entry)),
                            role_name(ctx));
  }

  sim::Task<void> run_role(RoleContext& ctx, EntryPoint entry) {
    // `entry` is held by value in this coroutine's frame for the entire
    // await below. That is what makes capturing lambdas safe as entry
    // points (CP.51's hazard is a closure dying before resumption — here
    // the closure provably outlives the role's coroutine).
    co_await entry(ctx);
    done_.done();
  }

  static std::string role_name(const RoleContext& ctx) {
    return (ctx.kind() == RoleKind::kWeb ? "web-" : "worker-") +
           std::to_string(ctx.id());
  }

  azure::CloudEnvironment& env_;
  std::unique_ptr<RoleContext> web_;
  std::vector<std::unique_ptr<RoleContext>> workers_;
  sim::WaitGroup done_;
};

}  // namespace fabric
