// Windows Azure compute instance sizes — Table I of the paper.
//
// | VM Size     | CPU Cores | Memory | Storage  |
// |-------------|-----------|--------|----------|
// | Extra Small | Shared    | 768 MB | 20 GB    |
// | Small       | 1         | 1.75GB | 225 GB   |
// | Medium      | 2         | 3.5 GB | 490 GB   |
// | Large       | 4         | 7 GB   | 1000 GB  |
// | Extra Large | 8         | 14 GB  | 2040 GB  |
//
// NIC allocations are not in Table I; they follow the contemporaneous Azure
// documentation (5 Mbps for Extra Small, then 100 Mbps per core).
#pragma once

#include <cstdint>
#include <string_view>

#include "netsim/nic.hpp"
#include "simcore/time.hpp"

namespace fabric {

enum class VmSize { kExtraSmall, kSmall, kMedium, kLarge, kExtraLarge };

struct VmSpec {
  std::string_view name;
  double cpu_cores;  // 0.5 models the "shared" core of Extra Small
  std::int64_t memory_mb;
  std::int64_t local_storage_gb;
  double nic_mbps;
};

constexpr VmSpec spec_of(VmSize size) {
  switch (size) {
    case VmSize::kExtraSmall:
      return {"Extra Small", 0.5, 768, 20, 5.0};
    case VmSize::kSmall:
      return {"Small", 1.0, 1'792, 225, 100.0};
    case VmSize::kMedium:
      return {"Medium", 2.0, 3'584, 490, 200.0};
    case VmSize::kLarge:
      return {"Large", 4.0, 7'168, 1'000, 400.0};
    case VmSize::kExtraLarge:
      return {"Extra Large", 8.0, 14'336, 2'040, 800.0};
  }
  return {"Unknown", 0, 0, 0, 0};
}

/// NIC configuration for a role instance of the given size.
inline netsim::NicConfig nic_config_of(VmSize size) {
  const VmSpec spec = spec_of(size);
  const double bytes_per_sec = spec.nic_mbps * 1'000'000.0 / 8.0;
  return netsim::NicConfig{bytes_per_sec, bytes_per_sec, sim::micros(50),
                           /*burst_bytes=*/64 * 1024.0};
}

}  // namespace fabric
