#!/usr/bin/env bash
# CI entry point: builds the Release and ASan+UBSan configurations and runs
# the full test suite under both. Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # The chaos suite (fault injection over the paper workloads) runs again
  # explicitly by label so a regression in it is loud and attributable.
  # Every chaos test carries a 60 s wall-clock budget (TIMEOUT property).
  echo "=== chaos ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L chaos
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_config build-ci-sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAZUREBENCH_SANITIZE=ON

echo "=== all configurations green ==="
