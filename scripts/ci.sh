#!/usr/bin/env bash
# CI entry point: builds the Release and ASan+UBSan configurations and runs
# the full test suite under both. Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # The chaos suite (fault injection over the paper workloads) runs again
  # explicitly by label so a regression in it is loud and attributable.
  # Every chaos test carries a 60 s wall-clock budget (TIMEOUT property).
  echo "=== chaos ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L chaos
  # The observability suite likewise re-runs by label: its byte-identical
  # replay contract must hold in the sanitizer configuration too (ASan
  # changes allocation patterns, which the obs layer must be immune to).
  echo "=== obs ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L obs
  # The partition-map / load-balancer suite re-runs by label for the same
  # reason, and the balancer benchmark's smoke run proves the binary drives
  # an actual rebalance end-to-end in this configuration.
  echo "=== partition ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L partition
  "${dir}/bench/bench_ext_partition_lb" --smoke
  # The parallel-kernel suite re-runs by label: the byte-parity contract
  # (threads=N identical to threads=1) must hold under sanitizers too.
  echo "=== parallel ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L parallel
  # The open-loop load suite re-runs by label (arrival statistics, admission
  # window, session-pool lifecycle), and the saturation bench's smoke run
  # proves the binary produces a byte-identical sweep (--selfcheck runs the
  # populations twice and compares) in this configuration.
  echo "=== load ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L load
  "${dir}/bench/bench_ext_load" --smoke --selfcheck
  # The geo-replication suite re-runs by label (bounded-staleness shipping,
  # the region-failover drill, cross-stamp reconciliation), and the drill
  # benchmark's smoke run proves an end-to-end region-loss drill in this
  # configuration: byte-identical replay (--selfcheck) plus the built-in
  # RPO bound (staleness-at-failover <= the provisioned target).
  echo "=== geo ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L geo
  "${dir}/bench/bench_ext_geo" --smoke --selfcheck
  # The scenario suite re-runs by label (DSL diagnostics, generator KATs,
  # flag-parsing regressions, byte-identical driver replays), and the
  # generic driver's smoke run proves end-to-end replay determinism in this
  # configuration. The full-paper-scale fig-parity checks (label `parity`)
  # are excluded in the sanitizer lap — they re-run every legacy figure
  # under ASan for minutes without adding coverage the Release lap lacks.
  echo "=== scenario ${dir} ==="
  if [[ "${dir}" == *sanitize* ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -L scenario -LE parity
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L scenario
  fi
  "${dir}/bench/bench_scenario" --smoke --selfcheck
  # The driver suite re-runs by label: backend conformance (the same op
  # contract asserted against azure, s3, and tiered), the S3 throttling /
  # visibility-lag semantics, and the cross-backend scenario packs'
  # byte-identical --selfcheck replays. Coroutine-heavy code over three
  # driver implementations — exactly what the sanitizer lap exists for.
  echo "=== driver ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L driver
}

# TSan config: builds only the parallel-kernel suite and runs it under
# ThreadSanitizer. This is the configuration that gates the hand-rolled
# release/acquire protocol in src/simcore/parallel.{hpp,cpp} (mailbox
# cursors, published eot bounds, in-flight accounting).
run_tsan() {
  local dir="build-ci-tsan"
  echo "=== configure ${dir} (ThreadSanitizer) ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAZUREBENCH_SANITIZE_THREAD=ON
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}" --target parallel_test
  echo "=== parallel under TSan ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L parallel
}

run_tidy() {
  local dir="$1"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy not found on PATH; skipping static analysis ==="
    return 0
  fi
  echo "=== clang-tidy (${dir}) ==="
  # Checks come from the checked-in .clang-tidy (bugprone-*, performance-*).
  # Headers are covered transitively via HeaderFilterRegex.
  local srcs
  srcs=$(find src tests bench examples -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p "${dir}" -quiet -j "${JOBS}" ${srcs}
  else
    # shellcheck disable=SC2086
    clang-tidy -p "${dir}" --quiet ${srcs}
  fi
  # The obs layer, the load engine, and the geo-replication layer are the
  # newest subsystems and their hot paths are all pointer and lifetime
  # discipline (coroutines holding references across suspension points) —
  # hold them to a hard bugprone-* gate (warnings fail the build) rather
  # than the advisory repo-wide pass above.
  echo "=== clang-tidy hard gate: src/obs + src/framework + src/cluster" \
       "+ src/storage ==="
  # scenario.cpp carries the DSL parser (hand-rolled recursive descent over
  # raw pointers) and scenario_test.cpp is the TU that instantiates the
  # whole keygen + runner header stack — both join the hard gate. The
  # storage driver layer joins too: every method is a coroutine dispatching
  # across backend state, the precise lifetime territory the gate polices.
  clang-tidy -p "${dir}" --quiet --warnings-as-errors='bugprone-*' \
    src/obs/observer.cpp src/framework/load_engine.cpp \
    src/framework/scenario.cpp src/cluster/geo_replication.cpp \
    src/storage/driver.cpp src/storage/azure_driver.cpp \
    src/storage/s3_object_service.cpp src/storage/s3_driver.cpp \
    src/storage/tiered_driver.cpp \
    tests/scenario_test.cpp
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_tidy build-ci-release
run_config build-ci-sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAZUREBENCH_SANITIZE=ON
run_tsan

echo "=== all configurations green ==="
