// Fault-injection sweep: queue + blob throughput vs. injected fault rate.
//
// A fleet of workers drives one queue each (the Fig. 6 shape: put a batch,
// then drain it with get+delete) followed by a blob upload/download phase,
// through the fault-tolerant retry policy (capped exponential backoff,
// deterministic jitter), while the fault plan injects message drops,
// duplications, latency spikes, payload bit-flips, and partition-server
// crash/restart cycles. Reported per profile:
//
//   * virtual completion time and client-observed throughput;
//   * retries the policy absorbed (the client-side cost of the faults);
//   * the injected fault counts from the plan's log (the ground truth);
//   * integrity accounting: bit-flips injected vs. checksum detections vs.
//     replica repairs (read-repair + scrub), plus residual divergence after
//     a forced anti-entropy pass (must be zero).
//
// The zero-fault row is the control: it must match a run without any plan
// armed, because a disabled plan draws no randomness and schedules nothing.
//
// Flags: --workers=N, --messages=N (per worker), --seed=N, --quick, --csv.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "azure/cloud_storage_account.hpp"
#include "azure/common/retry.hpp"
#include "azure/environment.hpp"
#include "bench_util.hpp"
#include "faults/fault_plan.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"

namespace {

struct World {
  explicit World(const azure::CloudConfig& cfg) : env(sim, cfg) {}
  sim::Simulation sim;
  azure::CloudEnvironment env;
  netsim::Nic nic{sim,
                  netsim::NicConfig{100e6, 100e6, sim::micros(50), 65536.0}};
  azure::CloudStorageAccount account{env, nic};
};

struct FaultProfile {
  const char* name;
  double drop = 0;
  double duplicate = 0;
  double spike = 0;
  int crashes = 0;
  double corrupt = 0;
};

struct Point {
  double seconds = 0;
  std::int64_t ops = 0;
  std::int64_t retries = 0;
  std::int64_t injected_drops = 0;
  std::int64_t injected_dups = 0;
  std::int64_t injected_spikes = 0;
  std::int64_t injected_crashes = 0;
  std::int64_t injected_flips = 0;
  std::int64_t injected_torn = 0;
  std::int64_t checksum_detections = 0;
  std::int64_t repairs = 0;
  std::int64_t residual_divergence = 0;
};

sim::Task<void> worker(World& w, int id, int messages, std::int64_t& ops,
                       std::int64_t& retries, sim::WaitGroup& wg) {
  azure::RetryPolicy retry;
  retry.backoff = sim::millis(250);
  retry.max_backoff = sim::seconds(2);
  retry.jitter_seed = static_cast<std::uint64_t>(id);
  auto q = w.account.create_cloud_queue_client().get_queue_reference(
      "flt-q-" + std::to_string(id));
  co_await azure::with_retry_counted(
      w.sim, [&] { return q.create_if_not_exists(); }, retry, retries);
  for (int k = 0; k < messages; ++k) {
    co_await azure::with_retry_counted(w.sim, [&] {
      return q.add_message(azure::Payload::synthetic(4096));
    }, retry, retries);
    ++ops;
  }
  int done = 0;
  while (done < messages) {
    auto m = co_await azure::with_retry_counted(
        w.sim, [&] { return q.get_message(sim::seconds(30)); }, retry,
        retries);
    ++ops;
    if (!m.has_value()) {
      co_await w.sim.delay(sim::millis(100));
      continue;
    }
    co_await azure::with_retry_counted(
        w.sim, [&] { return q.delete_message(*m); }, retry, retries);
    ++ops;
    ++done;
  }
  // Blob phase: round-trip a handful of 64 KB blobs through the same wire,
  // so the sweep also exercises the upload-reject and download-verify
  // integrity paths (blob payloads dwarf queue message bodies).
  auto c = w.account.create_cloud_blob_client().get_container_reference(
      "flt-c-" + std::to_string(id));
  co_await azure::with_retry_counted(
      w.sim, [&] { return c.create_if_not_exists(); }, retry, retries);
  const int blobs = std::max(1, messages / 8);
  for (int b = 0; b < blobs; ++b) {
    auto blob = c.get_block_blob_reference("b-" + std::to_string(b));
    co_await azure::with_retry_counted(w.sim, [&] {
      return blob.upload_text(azure::Payload::synthetic(64 << 10));
    }, retry, retries);
    ++ops;
    (void)co_await azure::with_retry_counted(
        w.sim, [&] { return blob.download_text(); }, retry, retries);
    ++ops;
  }
  wg.done();
}

Point run_profile(const FaultProfile& p, int workers, int messages,
                  std::uint64_t seed) {
  azure::CloudConfig cfg;
  cfg.faults.seed = seed;
  cfg.faults.drop_probability = p.drop;
  cfg.faults.duplicate_probability = p.duplicate;
  cfg.faults.latency_spike_probability = p.spike;
  cfg.faults.drop_timeout = sim::millis(300);
  cfg.faults.server_crashes = p.crashes;
  cfg.faults.crash_mean_interval = sim::seconds(10);
  cfg.faults.server_downtime = sim::seconds(2);
  cfg.faults.corruption_probability = p.corrupt;
  World w(cfg);
  Point out;
  sim::WaitGroup wg(w.sim);
  for (int i = 0; i < workers; ++i) {
    wg.add();
    w.sim.spawn(worker(w, i, messages, out.ops, out.retries, wg));
  }
  w.sim.run();
  out.seconds =
      static_cast<double>(w.sim.now()) / static_cast<double>(sim::kSecond);
  // Force one anti-entropy pass so the residual-divergence column reports
  // the scrubber's converged end state, not a mid-repair snapshot.
  auto& cluster = w.env.storage_cluster();
  if (w.env.fault_plan().enabled()) {
    w.sim.spawn(cluster.scrub_all());
    w.sim.run();
  }
  const faults::FaultPlan& plan = w.env.fault_plan();
  out.injected_drops = plan.count(faults::FaultKind::kDrop);
  out.injected_dups = plan.count(faults::FaultKind::kDuplicate);
  out.injected_spikes = plan.count(faults::FaultKind::kLatencySpike);
  out.injected_crashes = plan.count(faults::FaultKind::kServerCrash);
  out.injected_flips = plan.count(faults::FaultKind::kBitFlip);
  out.injected_torn = plan.count(faults::FaultKind::kTornWrite);
  out.checksum_detections = cluster.request_checksum_rejects() +
                            cluster.response_corruptions() +
                            cluster.read_mismatches();
  out.repairs = cluster.read_repairs() + cluster.scrub_repairs();
  out.residual_divergence = cluster.replica_store().divergent_replicas();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = benchutil::flag_set(argc, argv, "--quick");
  const int workers = static_cast<int>(
      benchutil::flag_int(argc, argv, "--workers", quick ? 8 : 32, 1));
  const int messages = static_cast<int>(
      benchutil::flag_int(argc, argv, "--messages", quick ? 20 : 100, 1));
  const auto seed = static_cast<std::uint64_t>(
      benchutil::flag_int(argc, argv, "--seed", 0xFA017));
  const bool csv = benchutil::flag_set(argc, argv, "--csv");

  std::printf(
      "AzureBench fault sweep — queue throughput vs. injected fault rate\n"
      "%d workers x %d messages; retry: 250 ms exponential, 2 s cap\n\n",
      workers, messages);

  const std::vector<FaultProfile> profiles = {
      {"none", 0, 0, 0, 0, 0},
      {"drop-0.1%", 0.001, 0, 0, 0, 0},
      {"drop-1%", 0.01, 0, 0, 0, 0},
      {"drop-5%", 0.05, 0, 0, 0, 0},
      {"drop-10%", 0.10, 0, 0, 0, 0},
      {"corrupt-0.1%", 0, 0, 0, 0, 0.001},
      {"corrupt-1%", 0, 0, 0, 0, 0.01},
      {"corrupt-5%", 0, 0, 0, 0, 0.05},
      {"mixed-links", 0.01, 0.01, 0.02, 0, 0.01},
      {"links+crashes", 0.01, 0.01, 0.02, 4, 0.01},
  };

  benchutil::Table table({"profile", "sim_s", "ops", "ops/s", "retries",
                          "inj_drop", "inj_flip", "inj_torn", "inj_crash",
                          "crc_detect", "repairs", "resid_div"});
  for (const FaultProfile& p : profiles) {
    const Point r = run_profile(p, workers, messages, seed);
    table.add_row({p.name,
                   benchutil::fmt(r.seconds),
                   std::to_string(r.ops),
                   benchutil::fmt(static_cast<double>(r.ops) / r.seconds, 1),
                   std::to_string(r.retries),
                   std::to_string(r.injected_drops),
                   std::to_string(r.injected_flips),
                   std::to_string(r.injected_torn),
                   std::to_string(r.injected_crashes),
                   std::to_string(r.checksum_detections),
                   std::to_string(r.repairs),
                   std::to_string(r.residual_divergence)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nExpected shape: throughput degrades gracefully with the drop "
        "rate (each drop\ncosts one 300 ms timeout plus a backoff), and "
        "retries track injected faults;\nbit-flip profiles show checksum "
        "detections scaling with the corruption rate and\nresid_div 0 — "
        "every divergent replica healed by read-repair or scrub; the\n"
        "zero-fault row is byte-identical to a run without fault "
        "injection.\n");
  }
  return 0;
}
