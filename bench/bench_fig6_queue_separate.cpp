// Reproduces Fig. 6 of the paper: Queue storage with a separate queue per
// worker — Put / Peek / Get(+Delete) time vs. workers, one series per
// message size (4, 8, 16, 32, 64 KB; the 64 KB point carries the 48 KB
// usable payload).
//
// 20,000 messages in total regardless of worker count. The consistently
// slow 16 KB Get the paper reports is reproduced; pass --no-anomaly to
// disable that quirk.
//
// Flags: --workers=N, --messages=N, --quick, --no-anomaly, --csv,
//        --obs, --obs-json=FILE, --trace (print one GetMessage span tree).
//
// Sharded parallel path: --domains=N switches to the domain-sharded driver
// (core/sharded_world.hpp) — the queue workload decomposed into N stamp
// shards on the parallel DES kernel, with --threads=N worker threads,
// --ops=N puts per worker, and --chaos arming faults + the fleet crash
// schedule. The printed table is byte-identical across thread counts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/queue_benchmark.hpp"
#include "core/sharded_world.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const auto sweep = benchutil::worker_sweep(argc, argv);
  const std::int64_t messages = benchutil::flag_int(
      argc, argv, "--messages",
      benchutil::flag_set(argc, argv, "--quick") ? 2'000 : 20'000);
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const bool no_anomaly = benchutil::flag_set(argc, argv, "--no-anomaly");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  const int domains =
      static_cast<int>(benchutil::flag_int(argc, argv, "--domains", 0));
  if (domains > 0) {
    azurebench::ShardedCloudConfig cfg;
    cfg.mode = azurebench::ShardedCloudConfig::Mode::kQueue;
    cfg.domains = domains;
    cfg.threads =
        static_cast<int>(benchutil::flag_int(argc, argv, "--threads", 0));
    cfg.total_servers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--servers", 64));
    cfg.total_workers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--workers", 96));
    cfg.ops_per_worker = benchutil::flag_int(argc, argv, "--ops", 20);
    cfg.chaos = benchutil::flag_set(argc, argv, "--chaos");
    const auto r = azurebench::run_sharded_cloud(cfg);
    std::printf(
        "AzureBench Fig. 6 (sharded) — queue workload, %d domains x %d "
        "threads%s\n\n%s\nwall_s=%.3f\n",
        cfg.domains, cfg.threads > 0 ? cfg.threads : cfg.domains,
        cfg.chaos ? " [chaos]" : "", r.figure_table.c_str(), r.wall_seconds);
    return 0;
  }

  std::printf(
      "AzureBench Fig. 6 — Queue storage, separate queue per worker\n"
      "%lld messages total; phase times in seconds%s\n\n",
      static_cast<long long>(messages),
      no_anomaly ? " [ablation: 16 KB Get anomaly OFF]" : "");

  benchutil::Table table({"workers", "size_KB", "put_s", "peek_s", "get_s",
                          "put_ms/op", "peek_ms/op", "get_ms/op"});

  for (const int workers : sweep) {
    azurebench::QueueSeparateConfig cfg;
    cfg.workers = workers;
    cfg.total_messages = messages;
    cfg.cloud.queue.model_16k_get_anomaly = !no_anomaly;
    if (obs_flags.enabled) cfg.observer = &observer;
    const auto r = azurebench::run_queue_separate_benchmark(cfg);
    for (const auto& p : r.points) {
      table.add_row(
          {std::to_string(workers), std::to_string(p.message_size / 1024),
           benchutil::fmt(p.put.seconds), benchutil::fmt(p.peek.seconds),
           benchutil::fmt(p.get.seconds),
           benchutil::fmt(p.put.ms_per_op() * workers),
           benchutil::fmt(p.peek.ms_per_op() * workers),
           benchutil::fmt(p.get.ms_per_op() * workers)});
    }
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shapes: near-flat scaling across workers and sizes; "
        "Peek < Put < Get;\nthe 16 KB Get point is consistently slower than "
        "both smaller and larger sizes.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  if (obs_flags.trace) benchutil::print_obs_trace(observer, "queue.get");
  return 0;
}
