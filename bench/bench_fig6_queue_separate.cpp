// Reproduces Fig. 6 of the paper: Queue storage with a separate queue per
// worker — Put / Peek / Get(+Delete) time vs. workers, one series per
// message size (4, 8, 16, 32, 64 KB; the 64 KB point carries the 48 KB
// usable payload).
//
// 20,000 messages in total regardless of worker count. The consistently
// slow 16 KB Get the paper reports is reproduced; pass --no-anomaly to
// disable that quirk.
//
// The table itself is built by benchfig::fig6_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N, --messages=N, --quick, --no-anomaly, --csv,
//        --obs, --obs-json=FILE, --trace (print one GetMessage span tree).
//
// Sharded parallel path: --domains=N switches to the domain-sharded driver
// (core/sharded_world.hpp) — the queue workload decomposed into N stamp
// shards on the parallel DES kernel, with --threads=N worker threads,
// --ops=N puts per worker, and --chaos arming faults + the fleet crash
// schedule. The printed table is byte-identical across thread counts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sharded_world.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  const int domains = static_cast<int>(
      benchutil::flag_int(argc, argv, "--domains", 0, 0, 1'024));
  if (domains > 0) {
    azurebench::ShardedCloudConfig cfg;
    cfg.mode = azurebench::ShardedCloudConfig::Mode::kQueue;
    cfg.domains = domains;
    cfg.threads = static_cast<int>(
        benchutil::flag_int(argc, argv, "--threads", 0, 0, 1'024));
    cfg.total_servers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--servers", 64, 1));
    cfg.total_workers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--workers", 96, 1));
    cfg.ops_per_worker = benchutil::flag_int(argc, argv, "--ops", 20, 1);
    cfg.chaos = benchutil::flag_set(argc, argv, "--chaos");
    const auto r = azurebench::run_sharded_cloud(cfg);
    std::printf(
        "AzureBench Fig. 6 (sharded) — queue workload, %d domains x %d "
        "threads%s\n\n%s\nwall_s=%.3f\n",
        cfg.domains, cfg.threads > 0 ? cfg.threads : cfg.domains,
        cfg.chaos ? " [chaos]" : "", r.figure_table.c_str(), r.wall_seconds);
    return 0;
  }

  benchfig::Fig6Options opt;
  opt.workers = benchutil::worker_sweep(argc, argv);
  opt.messages = benchutil::flag_int(
      argc, argv, "--messages",
      benchutil::flag_set(argc, argv, "--quick") ? 2'000 : 20'000, 1);
  opt.no_anomaly = benchutil::flag_set(argc, argv, "--no-anomaly");
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 6 — Queue storage, separate queue per worker\n"
      "%lld messages total; phase times in seconds%s\n\n",
      static_cast<long long>(opt.messages),
      opt.no_anomaly ? " [ablation: 16 KB Get anomaly OFF]" : "");

  const benchutil::Table table = benchfig::fig6_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shapes: near-flat scaling across workers and sizes; "
        "Peek < Put < Get;\nthe 16 KB Get point is consistently slower than "
        "both smaller and larger sizes.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  if (obs_flags.trace) benchutil::print_obs_trace(observer, "queue.get");
  return 0;
}
