// Extension benchmark: the dynamic partition map's load balancer under a
// hot-spot workload. Not a paper figure — the paper's account-level targets
// assume Azure's internal range-partition balancing is invisible; this
// experiment makes that machinery explicit and measures what it buys.
//
// Workload: N clients drive requests straight at the storage cluster;
// `--hot` percent of requests hash onto one server's buckets (the hot
// ranges), the rest are uniform. With the balancer off the hot server's
// executor queue gates the whole run; with it on, the hottest buckets are
// reassigned to idle servers at epoch boundaries and stale clients pay one
// redirect each to learn the new map.
//
// Flags:
//   --smoke        tiny run for CI (fixed workers/ops)
//   --workers=N    client count        (default 64)
//   --ops=N        requests per client (default 64)
//   --hot=P        hot-spot percentage (default 90)
//   --csv          CSV instead of the fixed-width table
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/config.hpp"
#include "cluster/errors.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/storage_cluster.hpp"
#include "netsim/nic.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

namespace {

struct RunResult {
  double seconds = 0;        // virtual completion time of the workload
  double ops_per_sec = 0;    // completed requests / completion time
  double imbalance = 1.0;    // peak-server requests / mean
  std::int64_t moves = 0;
  std::int64_t redirects = 0;
  std::uint64_t map_version = 1;
};

RunResult run(int workers, int ops_per_worker, int hot_percent,
              bool balance) {
  sim::Simulation s;
  cluster::ClusterConfig cfg;
  cfg.executors_per_server = 4;
  cfg.account_transactions_per_sec = 1'000'000;  // isolate server capacity
  cfg.balancer.enabled = balance;
  cfg.balancer.epoch = sim::millis(100);
  cfg.balancer.offload_threshold = 1.10;
  cfg.balancer.max_moves_per_epoch = 8;
  cfg.balancer.move_unavailable = sim::millis(5);
  cfg.balancer.idle_epochs_to_exit = 2;
  cluster::StorageCluster c(s, cfg);
  cluster::LoadBalancer lb(c);
  if (balance) lb.start();

  std::vector<std::unique_ptr<netsim::Nic>> nics;
  nics.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    nics.push_back(std::make_unique<netsim::Nic>(
        s, netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0}));
  }
  sim::TimePoint done = 0;
  const double hot_p = static_cast<double>(hot_percent) / 100.0;
  for (int i = 0; i < workers; ++i) {
    s.spawn([](sim::Simulation& sim, cluster::StorageCluster& cl,
               netsim::Nic& n, int id, int ops, double hot_p,
               sim::TimePoint& finished) -> sim::Task<> {
      sim::Random rng(0xBE7C4 + static_cast<std::uint64_t>(id));
      for (int k = 0; k < ops; ++k) {
        // Hot requests land on server 3's buckets: residues 3 + 16j.
        const std::uint64_t hash =
            rng.next_double() < hot_p
                ? 3u + 16u * static_cast<std::uint64_t>(rng.uniform(0, 7))
                : rng.next_u64();
        cluster::RequestCost cost;
        cost.server_cpu = sim::millis(2);
        for (;;) {
          try {
            co_await cl.execute(n, hash, cost);
            break;
          } catch (const cluster::PartitionMovedError&) {
            // Redirect refreshed this client's cached map; retry at once.
          }
        }
      }
      finished = sim.now();  // last finisher wins
    }(s, c, *nics[static_cast<std::size_t>(i)], i, ops_per_worker, hot_p,
      done));
  }
  s.run();

  RunResult r;
  r.seconds = static_cast<double>(done) / sim::kSecond;
  const double total = static_cast<double>(workers) *
                       static_cast<double>(ops_per_worker);
  r.ops_per_sec = r.seconds > 0 ? total / r.seconds : 0;
  r.imbalance = c.load_report().imbalance();
  r.moves = c.partition_moves();
  r.redirects = c.stale_map_redirects();
  r.map_version = c.partition_map().version();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::flag_set(argc, argv, "--smoke");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const int workers = smoke ? 16 : static_cast<int>(benchutil::flag_int(
                                       argc, argv, "--workers", 64, 1));
  const int ops = smoke ? 10
                        : static_cast<int>(benchutil::flag_int(argc, argv,
                                                               "--ops", 64, 1));
  const int hot =
      static_cast<int>(benchutil::flag_int(argc, argv, "--hot", 90, 0, 100));

  benchutil::Table table({"balancer", "workers", "ops/client", "hot%",
                          "completion_s", "ops_per_s", "imbalance", "moves",
                          "redirects", "map_version"});
  for (const bool balance : {false, true}) {
    const RunResult r = run(workers, ops, hot, balance);
    table.add_row({balance ? "on" : "off", std::to_string(workers),
                   std::to_string(ops), std::to_string(hot),
                   benchutil::fmt(r.seconds, 3),
                   benchutil::fmt(r.ops_per_sec, 1),
                   benchutil::fmt(r.imbalance, 2), std::to_string(r.moves),
                   std::to_string(r.redirects),
                   std::to_string(r.map_version)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
