// Extension benchmark: the geo-replication region-loss drill. Not a paper
// figure — the paper benchmarks a single storage stamp. This drill builds
// two geo-replicated stamps (cluster/geo_replication.hpp) and measures what
// the paper's model cannot: the cost of *losing a region*.
//
// An open-loop Poisson session stream (1 replicated write + 1 eventual read
// per session, standard bounded retry) runs while the fault plan's region
// schedule takes the home region down mid-window and brings it back. The
// sweep varies the log-shipping interval: the longer writes sit unshipped,
// the more of them die with the region — RPO (lost acknowledged writes and
// staleness-at-failover) grows with the shipping interval, while RTO (the
// redirect-driven promotion) stays flat. Failback runs the chain-CRC verify
// + ledger scrub + catch-up reconciliation before the home region resumes.
//
// Flags:
//   --smoke        two sweep points, smaller session count (CI)
//   --ship_ms=N    single shipping interval instead of the sweep
//   --csv          CSV instead of the fixed-width table
//   --json         JSON rows instead of the table
//   --selfcheck    run the sweep twice, fail unless byte-identical
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "azure/common/retry.hpp"
#include "bench_util.hpp"
#include "cluster/config.hpp"
#include "cluster/geo_replication.hpp"
#include "faults/fault_plan.hpp"
#include "framework/load_engine.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace {

constexpr int kClientNics = 32;

/// The drill's provisioned staleness bound. Sized to cover the worst sweep
/// point's replication lag including one dropped-batch redelivery round
/// (2 x ship_interval + WAN transfer); the binary fails if any drill's
/// observed staleness-at-failover exceeds it, so "RPO is bounded by the
/// configured target" is checked on every run, not just eyeballed.
constexpr sim::Duration kStalenessTarget = sim::kSecond;

struct DrillResult {
  std::int64_t ship_ms = 0;
  framework::LoadStats stats;
  std::int64_t failovers = 0;
  std::int64_t failbacks = 0;
  std::int64_t rpo_lost_writes = 0;
  double staleness_at_failover_ms = 0;
  double rto_ms = 0;
  std::int64_t redirects = 0;
  std::int64_t redeliveries = 0;
  std::int64_t scrub_repairs = 0;
  std::int64_t chain_verifications = 0;
  double final_s = 0;
};

cluster::GeoConfig drill_geo(sim::Duration ship_interval) {
  cluster::GeoConfig g;
  cluster::ClusterConfig stamp;
  stamp.partition_servers = 8;
  stamp.balancer.buckets_per_server = 4;
  g.regions.push_back(cluster::GeoRegionConfig{"east", stamp});
  g.regions.push_back(cluster::GeoRegionConfig{"west", stamp});
  g.default_link.latency = sim::millis(30);  // a realistic WAN one-way
  g.ship_interval = ship_interval;
  g.staleness_target = kStalenessTarget;
  return g;
}

faults::FaultConfig drill_faults(std::uint64_t seed) {
  faults::FaultConfig f;
  f.seed = seed;
  f.region_outages = 1;
  f.region_outage_mean_interval = sim::millis(900);
  f.region_downtime = sim::millis(800);
  f.region_outage_victim = 0;  // always the home region: the drill is the point
  f.geo_drop_probability = 0.05;
  return f;
}

sim::Task<void> drill_session(sim::Simulation& s, cluster::GeoCluster& geo,
                              netsim::Nic& nic,
                              framework::LoadEngine::Session& sess) {
  azure::RetryPolicy retry;
  retry.backoff = sim::millis(50);
  retry.max_backoff = sim::millis(400);
  retry.max_attempts = 8;
  retry.jitter_seed = static_cast<std::uint64_t>(sess.id);
  const int home = static_cast<int>(sess.id % 2);
  const std::uint64_t hash = sess.rng.next_u64();
  cluster::RequestCost wcost;
  wcost.disk_bytes = 4 * 1024;
  wcost.replicate = true;
  co_await azure::with_retry(
      s, [&] { return geo.write(nic, home, hash, wcost); }, retry);
  co_await azure::with_retry(
      s,
      [&] {
        return geo.read(nic, home, hash, cluster::RequestCost{},
                        cluster::ReadConsistency::kEventual);
      },
      retry);
}

DrillResult run_drill(sim::Duration ship_interval, std::int64_t sessions,
                      std::uint64_t seed) {
  sim::Simulation s;
  obs::Observer observer;
  s.set_observer(&observer);
  cluster::GeoCluster geo(s, drill_geo(ship_interval));
  faults::FaultPlan plan(s, drill_faults(seed));
  geo.enable_faults(plan);

  std::vector<std::unique_ptr<netsim::Nic>> nics;
  nics.reserve(kClientNics);
  for (int i = 0; i < kClientNics; ++i) {
    nics.push_back(std::make_unique<netsim::Nic>(
        s, netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0}));
  }

  framework::LoadEngineConfig ecfg;
  ecfg.arrivals.kind = framework::ArrivalConfig::Kind::kPoisson;
  ecfg.arrivals.rate_per_sec = 200.0;
  ecfg.arrivals.seed = seed ^ 0x6E0ull;
  ecfg.max_sessions = sessions;
  ecfg.max_in_flight = 64;
  ecfg.max_pending = 256;
  framework::LoadEngine engine(
      s, ecfg, [&](framework::LoadEngine::Session& sess) {
        netsim::Nic& nic =
            *nics[static_cast<std::size_t>(sess.id) % kClientNics];
        return drill_session(s, geo, nic, sess);
      });
  engine.start();
  s.run();

  DrillResult r;
  r.ship_ms = static_cast<std::int64_t>(ship_interval / sim::kMillisecond);
  r.stats = engine.stats();
  r.failovers = geo.region_failovers();
  r.failbacks = geo.region_failbacks();
  r.rpo_lost_writes = geo.rpo_lost_writes();
  r.staleness_at_failover_ms =
      sim::to_seconds(geo.max_staleness_at_failover()) * 1e3;
  r.rto_ms = sim::to_seconds(geo.last_rto()) * 1e3;
  r.redirects = geo.stale_geo_redirects();
  r.redeliveries = geo.redeliveries();
  r.scrub_repairs = geo.geo_scrub_repairs();
  r.chain_verifications = geo.chain_verifications();
  r.final_s = sim::to_seconds(s.now());
  return r;
}

const std::vector<std::string>& headers() {
  static const std::vector<std::string> h = {
      "ship_ms",    "offered",   "completed", "deadlet",  "failovers",
      "failbacks",  "rpo_writes", "stale_fo_ms", "rto_ms", "redirects",
      "redeliv",    "scrubbed",  "chain_ok",  "final_s"};
  return h;
}

std::vector<std::string> row_cells(const DrillResult& r) {
  return {std::to_string(r.ship_ms),
          std::to_string(r.stats.offered),
          std::to_string(r.stats.completed),
          std::to_string(r.stats.dead_lettered),
          std::to_string(r.failovers),
          std::to_string(r.failbacks),
          std::to_string(r.rpo_lost_writes),
          benchutil::fmt(r.staleness_at_failover_ms, 3),
          benchutil::fmt(r.rto_ms, 3),
          std::to_string(r.redirects),
          std::to_string(r.redeliveries),
          std::to_string(r.scrub_repairs),
          std::to_string(r.chain_verifications),
          benchutil::fmt(r.final_s, 3)};
}

std::string render_canonical(
    const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }
  return out;
}

std::vector<DrillResult> run_sweep(const std::vector<sim::Duration>& intervals,
                                   std::int64_t sessions,
                                   std::uint64_t seed) {
  std::vector<DrillResult> results;
  results.reserve(intervals.size());
  for (const sim::Duration d : intervals) {
    results.push_back(run_drill(d, sessions, seed));
  }
  return results;
}

std::vector<std::vector<std::string>> render_rows(
    const std::vector<DrillResult>& results) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (const DrillResult& r : results) rows.push_back(row_cells(r));
  return rows;
}

void print_json(const std::vector<std::vector<std::string>>& rows) {
  std::printf("[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  {");
    for (std::size_t c = 0; c < rows[i].size(); ++c) {
      std::printf("\"%s\": %s%s", headers()[c].c_str(), rows[i][c].c_str(),
                  (c + 1 < rows[i].size()) ? ", " : "");
    }
    std::printf("}%s\n", (i + 1 < rows.size()) ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::flag_set(argc, argv, "--smoke");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const bool json = benchutil::flag_set(argc, argv, "--json");
  const bool selfcheck = benchutil::flag_set(argc, argv, "--selfcheck");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      benchutil::flag_int(argc, argv, "--seed", 0x6E0D));

  std::vector<sim::Duration> intervals;
  if (const std::int64_t ms = benchutil::flag_int(argc, argv, "--ship_ms", 0, 1, 60'000);
      ms > 0) {
    intervals = {sim::millis(ms)};
  } else if (smoke) {
    intervals = {sim::millis(10), sim::millis(100)};
  } else {
    intervals = {sim::millis(5), sim::millis(25), sim::millis(100),
                 sim::millis(250)};
  }
  const std::int64_t sessions = smoke ? 400 : 1'000;

  const auto results = run_sweep(intervals, sessions, seed);
  const auto rows = render_rows(results);
  for (const DrillResult& r : results) {
    if (r.staleness_at_failover_ms > sim::to_seconds(kStalenessTarget) * 1e3) {
      std::fprintf(stderr,
                   "RPO bound FAILED: ship_ms=%lld staleness-at-failover "
                   "%.3f ms exceeds the %.0f ms target\n",
                   static_cast<long long>(r.ship_ms),
                   r.staleness_at_failover_ms,
                   sim::to_seconds(kStalenessTarget) * 1e3);
      return 1;
    }
  }
  if (selfcheck) {
    const auto again = render_rows(run_sweep(intervals, sessions, seed));
    if (render_canonical(rows) != render_canonical(again)) {
      std::fprintf(stderr, "selfcheck FAILED: replay diverged\n");
      return 1;
    }
    std::fprintf(stderr, "selfcheck ok: two runs byte-identical\n");
  }

  benchutil::Table table(headers());
  for (const auto& row : rows) table.add_row(row);
  if (json) {
    print_json(rows);
  } else if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
