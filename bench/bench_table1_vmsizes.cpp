// Reproduces Table I of the paper: the Windows Azure VM configurations
// available for web and worker role instances, as encoded in the fabric.
#include <cstdio>

#include "bench_util.hpp"
#include "fabric/vm_size.hpp"

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  std::printf("AzureBench Table I — VM configurations\n\n");
  benchutil::Table table(
      {"VM Size", "CPU Cores", "Memory", "Storage", "NIC (model)"});
  for (const auto size :
       {fabric::VmSize::kExtraSmall, fabric::VmSize::kSmall,
        fabric::VmSize::kMedium, fabric::VmSize::kLarge,
        fabric::VmSize::kExtraLarge}) {
    const auto spec = fabric::spec_of(size);
    char cores[16];
    if (spec.cpu_cores < 1.0) {
      std::snprintf(cores, sizeof cores, "Shared");
    } else {
      std::snprintf(cores, sizeof cores, "%.0f", spec.cpu_cores);
    }
    char memory[32];
    if (spec.memory_mb < 1024) {
      std::snprintf(memory, sizeof memory, "%lld MB",
                    static_cast<long long>(spec.memory_mb));
    } else {
      std::snprintf(memory, sizeof memory, "%.2f GB",
                    static_cast<double>(spec.memory_mb) / 1024.0);
    }
    table.add_row({std::string(spec.name), cores, memory,
                   std::to_string(spec.local_storage_gb) + " GB",
                   benchutil::fmt(spec.nic_mbps, 0) + " Mbps"});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
