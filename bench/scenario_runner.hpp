// Generic-mode interpreter for declarative scenario specs
// (framework/scenario.hpp): one open-loop LoadEngine run against whichever
// storage backend the spec names (`"backend"` key — azure | s3 | tiered),
// reached exclusively through the storage::Driver interface. Lives in
// bench/ as a header so both the driver binary (bench_scenario.cpp) and the
// replay tests (tests/scenario_test.cpp) execute the exact same code path.
//
// Execution model:
//   setup phase  — create the containers/queues/tables/databases the mix
//                  touches and pre-populate `populate_count()` objects per
//                  service (sizes drawn from a dedicated seeded stream), so
//                  read-heavy mixes start warm instead of drowning in
//                  NotFound. Runs on the virtual clock before any arrival.
//   load phase   — LoadEngine sessions arrive per the spec's arrival
//                  process. Each session draws: mix entry, key, value size,
//                  think time — all from deterministic streams — then issues
//                  one storage operation, retrying ServerBusy (which covers
//                  the S3 backend's 503 SlowDown subclass) with doubling
//                  backoff up to 4 attempts.
//
// Accounting is plain integers plus obs::LatencyHistogram (integer log2
// buckets), so the whole report — including quantiles — is a pure function
// of the spec: two runs are byte-identical, which --selfcheck and the
// `ctest -L scenario` replay tests enforce.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faults/errors.hpp"
#include "framework/keygen.hpp"
#include "framework/load_engine.hpp"
#include "framework/scenario.hpp"
#include "netsim/nic.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "storage/driver.hpp"

namespace benchscn {

/// Per-mix-entry outcome counters. "mixed" entries accumulate both of
/// their resolved directions into the same row.
struct MixStat {
  std::int64_t count = 0;  ///< operations that completed
  std::int64_t err = 0;    ///< failed after retries (busy, fault, cap, ...)
  std::int64_t miss = 0;   ///< read of an absent key / get on an empty queue
  std::int64_t bytes = 0;  ///< payload bytes moved by completed ops
  obs::LatencyHistogram latency;  ///< completed-op latency, think excluded
};

struct ScenarioRunResult {
  framework::LoadStats stats;
  std::vector<MixStat> per_entry;  ///< parallel to Scenario::mix
  double duration_s = 0;           ///< virtual time of the last completion
  double ops_per_sec = 0;
};

namespace detail {

/// (service, op, read?) resolved to one concrete storage call.
enum class OpCode {
  kBlobRead,
  kBlobWrite,
  kBlobList,
  kBlobDelete,
  kQueuePut,
  kQueueGet,
  kQueuePeek,
  kTableRead,
  kTableInsert,
  kTableUpdate,
  kTableScan,
  kTableRmw,
  kSqlRead,
  kSqlWrite,
};

inline OpCode resolve_op(const framework::ScenarioMixEntry& e, bool read) {
  using S = framework::ScenarioMixEntry::Service;
  const std::string& op = e.op;
  switch (e.service) {
    case S::kBlob:
      if (op == "read" || (op == "mixed" && read)) return OpCode::kBlobRead;
      if (op == "list") return OpCode::kBlobList;
      if (op == "delete") return OpCode::kBlobDelete;
      return OpCode::kBlobWrite;
    case S::kQueue:
      if (op == "get" || (op == "mixed" && read)) return OpCode::kQueueGet;
      if (op == "peek") return OpCode::kQueuePeek;
      return OpCode::kQueuePut;
    case S::kTable:
      if (op == "read" || (op == "mixed" && read)) return OpCode::kTableRead;
      if (op == "insert") return OpCode::kTableInsert;
      if (op == "scan") return OpCode::kTableScan;
      if (op == "rmw") return OpCode::kTableRmw;
      return OpCode::kTableUpdate;
    case S::kSql:
      if (op == "read" || (op == "mixed" && read)) return OpCode::kSqlRead;
      return OpCode::kSqlWrite;
  }
  return OpCode::kTableRead;
}

constexpr int kClientNics = 16;
constexpr int kMaxAttempts = 4;
constexpr std::int64_t kQueueSeedCap = 1'000;

struct Driver {
  const framework::Scenario& sc;
  sim::Simulation s;
  std::unique_ptr<storage::Driver> backend;
  std::vector<std::unique_ptr<netsim::Nic>> nics;
  framework::KeyGen keygen;
  std::vector<double> cum_weight;
  std::vector<MixStat> stat;
  bool use[4] = {false, false, false, false};  // blob/queue/table/sql

  explicit Driver(const framework::Scenario& scenario)
      : sc(scenario),
        backend(storage::make_driver(s, scenario)),
        keygen(scenario.keys) {
    for (int i = 0; i < kClientNics; ++i) {
      nics.push_back(std::make_unique<netsim::Nic>(
          s, netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0}));
    }
    stat.resize(sc.mix.size());
    double total = 0;
    for (const framework::ScenarioMixEntry& e : sc.mix) {
      total += e.weight;
      cum_weight.push_back(total);
      use[static_cast<int>(e.service)] = true;
    }
  }

  netsim::Nic& nic_for(std::int64_t session_id) {
    return *nics[static_cast<std::size_t>(session_id) % kClientNics];
  }

  std::size_t pick_entry(sim::Random& rng) {
    const double u = rng.next_double() * cum_weight.back();
    for (std::size_t i = 0; i + 1 < cum_weight.size(); ++i) {
      if (u < cum_weight[i]) return i;
    }
    return cum_weight.size() - 1;
  }

  std::int64_t pick_bytes(sim::Random& rng) const {
    if (sc.values.lo == sc.values.hi) return sc.values.lo;
    return rng.uniform(sc.values.lo, sc.values.hi);
  }

  // prefix + insert instead of `"x" + std::to_string(...)`: GCC 12 emits a
  // -Wrestrict false positive on literal + string-rvalue concatenation.
  static std::string tagged(char tag, std::uint64_t v) {
    std::string n = std::to_string(v);
    n.insert(n.begin(), tag);
    return n;
  }
  std::string blob_name(std::uint64_t key) const { return tagged('b', key); }
  std::string queue_name(std::uint64_t key) const {
    return tagged('q', key % static_cast<std::uint64_t>(sc.queue_fanout));
  }
  std::string partition_of(std::uint64_t key) const {
    return tagged('p',
                  key / static_cast<std::uint64_t>(sc.rows_per_partition));
  }
  std::string row_of(std::uint64_t key) const { return tagged('r', key); }

  // One resolved operation, delegated to the backend driver. Returns bytes
  // moved; records miss via out-param so the caller keeps all the
  // per-entry accounting in one place.
  sim::Task<std::int64_t> execute(OpCode op, std::uint64_t key,
                                  std::int64_t bytes, netsim::Nic& nic,
                                  bool& miss) {
    storage::OpResult r;
    switch (op) {
      case OpCode::kBlobRead:
        r = co_await backend->object_read(nic, blob_name(key));
        break;
      case OpCode::kBlobWrite:
        r = co_await backend->object_write(nic, blob_name(key), bytes);
        break;
      case OpCode::kBlobList:
        r = co_await backend->object_list(nic);
        break;
      case OpCode::kBlobDelete:
        // Contract difference stays visible here: Azure books a delete of
        // an absent blob as a miss (404); S3 books it as a completed op
        // (idempotent 204).
        r = co_await backend->object_delete(nic, blob_name(key));
        break;
      case OpCode::kQueuePut: {
        // Pub/sub fanout: one put publishes the message to every queue.
        for (int f = 0; f < sc.queue_fanout; ++f) {
          const storage::OpResult one = co_await backend->queue_put(
              nic, tagged('q', static_cast<std::uint64_t>(f)), bytes);
          r.bytes += one.bytes;
        }
        break;
      }
      case OpCode::kQueueGet:
        r = co_await backend->queue_get(nic, queue_name(key));
        break;
      case OpCode::kQueuePeek:
        r = co_await backend->queue_peek(nic, queue_name(key));
        break;
      case OpCode::kTableRead:
        r = co_await backend->table_read(nic, partition_of(key), row_of(key));
        break;
      case OpCode::kTableInsert:
        r = co_await backend->table_insert(nic, partition_of(key),
                                           row_of(key), bytes);
        break;
      case OpCode::kTableUpdate:
        r = co_await backend->table_update(nic, partition_of(key),
                                           row_of(key), bytes);
        break;
      case OpCode::kTableScan:
        r = co_await backend->table_scan(nic, partition_of(key));
        break;
      case OpCode::kTableRmw:
        r = co_await backend->table_rmw(nic, partition_of(key), row_of(key),
                                        bytes);
        break;
      case OpCode::kSqlRead:
        r = co_await backend->sql_read(nic, key);
        break;
      case OpCode::kSqlWrite:
        r = co_await backend->sql_write(nic, key, bytes);
        break;
    }
    miss = r.miss;
    co_return r.bytes;
  }

  sim::Task<void> session(framework::LoadEngine::Session& sess) {
    const std::size_t ei = pick_entry(sess.rng);
    const bool read = sess.rng.bernoulli(sc.read_ratio);
    const OpCode op = resolve_op(sc.mix[ei], read);
    const std::uint64_t key = keygen.next();
    const std::int64_t bytes = pick_bytes(sess.rng);
    if (sc.think.mean > 0) {
      // mean * (1 + jitter * u), u uniform in [-1, 1).
      const double u = 2.0 * sess.rng.next_double() - 1.0;
      const double scale = 1.0 + sc.think.jitter * u;
      co_await s.delay(static_cast<sim::Duration>(
          static_cast<double>(sc.think.mean) * scale));
    }
    netsim::Nic& nic = nic_for(sess.id);
    MixStat& ms = stat[ei];
    const sim::TimePoint t0 = s.now();
    for (int attempt = 1;; ++attempt) {
      bool busy = false;
      try {
        bool miss = false;
        const std::int64_t moved =
            co_await execute(op, key, bytes, nic, miss);
        if (miss) {
          ms.miss += 1;
        } else {
          ms.count += 1;
          ms.bytes += moved;
          ms.latency.record(s.now() - t0);
        }
        co_return;
      } catch (const cluster::ServerBusyError&) {
        // Covers both the Azure account gate and the S3 per-prefix 503
        // SlowDown (a ServerBusyError subclass): same backoff policy.
        if (attempt >= kMaxAttempts) {
          ms.err += 1;
          throw;  // the engine books the throttle failure
        }
        busy = true;
      } catch (const cluster::StorageError&) {
        ms.err += 1;  // conflict, precondition, cap, corruption, ...
        co_return;
      } catch (const faults::FaultError&) {
        ms.err += 1;  // injected drop timed out
        co_return;
      }
      if (busy) {
        const sim::Duration backoff =
            std::min(sim::millis(250) << (attempt - 1), sim::seconds(1));
        co_await s.delay(backoff +
                         sim::micros(sess.rng.uniform(0, 1'000)));
      }
    }
  }

  /// Pre-populate with ServerBusy and injected faults absorbed by a 1 s
  /// retry (the populate phase may exceed partition targets or lose
  /// transfers under an armed fault plan; the run phase must not inherit a
  /// cold miss storm instead).
  template <class MakeOp>
  sim::Task<void> patient(MakeOp make_op) {
    for (;;) {
      try {
        co_await make_op();
        co_return;
      } catch (const cluster::ServerBusyError&) {
      } catch (const faults::FaultError&) {
      }
      co_await s.delay(sim::seconds(1));
    }
  }

  sim::Task<void> setup(framework::LoadEngine& engine) {
    using S = framework::ScenarioMixEntry::Service;
    netsim::Nic& nic = *nics[0];
    const std::int64_t pop = sc.populate_count();
    sim::Random sizes(framework::scenario_derive_seed(sc.seed, 0x5E7F));

    if (use[static_cast<int>(S::kBlob)]) {
      co_await backend->prepare_objects(nic);
      for (std::int64_t k = 0; k < pop; ++k) {
        const std::string name = blob_name(static_cast<std::uint64_t>(k));
        const std::int64_t b = pick_bytes(sizes);
        co_await patient(
            [&]() { return backend->object_write(nic, name, b); });
      }
    }
    if (use[static_cast<int>(S::kQueue)]) {
      const std::int64_t seed_msgs = std::min(pop, kQueueSeedCap);
      for (int f = 0; f < sc.queue_fanout; ++f) {
        const std::string q = tagged('q', static_cast<std::uint64_t>(f));
        co_await backend->prepare_queue(nic, q);
        for (std::int64_t m = 0; m < seed_msgs; ++m) {
          const std::int64_t b = pick_bytes(sizes);
          co_await patient([&]() { return backend->queue_put(nic, q, b); });
        }
      }
    }
    if (use[static_cast<int>(S::kTable)]) {
      co_await backend->prepare_table(nic);
      for (std::int64_t k = 0; k < pop; ++k) {
        const std::uint64_t kk = static_cast<std::uint64_t>(k);
        const std::string part = partition_of(kk);
        const std::string row = row_of(kk);
        const std::int64_t b = pick_bytes(sizes);
        co_await patient(
            [&]() { return backend->table_insert(nic, part, row, b); });
      }
    }
    if (use[static_cast<int>(S::kSql)]) {
      co_await backend->prepare_sql(nic);
      for (std::int64_t k = 0; k < pop; ++k) {
        const std::int64_t b = pick_bytes(sizes);
        co_await patient([&]() {
          return backend->sql_write(nic, static_cast<std::uint64_t>(k), b);
        });
      }
    }
    // Arrivals start on the post-setup clock (the engine walks forward
    // from sim.now()), so the load phase always begins on a warm store.
    engine.start();
  }
};

}  // namespace detail

inline ScenarioRunResult run_generic_scenario(const framework::Scenario& sc,
                                              obs::Observer* observer) {
  detail::Driver d(sc);
  if (observer != nullptr) d.s.set_observer(observer);

  framework::LoadEngineConfig ecfg;
  ecfg.arrivals = sc.arrivals;
  ecfg.max_sessions = sc.operations;
  ecfg.max_in_flight = sc.max_in_flight;
  ecfg.max_pending = sc.max_pending;
  ecfg.session_seed = framework::scenario_derive_seed(sc.seed, 0x5E55);
  framework::LoadEngine engine(
      d.s, ecfg,
      [&d](framework::LoadEngine::Session& sess) { return d.session(sess); });

  d.s.spawn(d.setup(engine), "scenario-setup");
  d.s.run();

  ScenarioRunResult r;
  r.stats = engine.stats();
  r.per_entry = std::move(d.stat);
  r.duration_s = sim::to_seconds(r.stats.last_completion);
  r.ops_per_sec = r.duration_s > 0
                      ? static_cast<double>(r.stats.completed) / r.duration_s
                      : 0;
  return r;
}

/// Per-mix-entry outcome table (plus a totals row).
inline benchutil::Table mix_table(const framework::Scenario& sc,
                                  const ScenarioRunResult& r) {
  benchutil::Table t({"service", "op", "weight", "count", "err", "miss",
                      "MiB", "p50_ms", "p95_ms", "p99_ms", "max_ms"});
  MixStat total;
  for (std::size_t i = 0; i < sc.mix.size(); ++i) {
    const framework::ScenarioMixEntry& e = sc.mix[i];
    const MixStat& ms = r.per_entry[i];
    t.add_row({framework::service_name(e.service), e.op,
               benchutil::fmt(e.weight, 1), std::to_string(ms.count),
               std::to_string(ms.err), std::to_string(ms.miss),
               benchutil::fmt(static_cast<double>(ms.bytes) / (1024.0 * 1024.0),
                              2),
               benchutil::fmt(sim::to_millis(ms.latency.quantile(0.50)), 3),
               benchutil::fmt(sim::to_millis(ms.latency.quantile(0.95)), 3),
               benchutil::fmt(sim::to_millis(ms.latency.quantile(0.99)), 3),
               benchutil::fmt(sim::to_millis(ms.latency.max()), 3)});
    total.count += ms.count;
    total.err += ms.err;
    total.miss += ms.miss;
    total.bytes += ms.bytes;
  }
  t.add_row({"total", "-", "-", std::to_string(total.count),
             std::to_string(total.err), std::to_string(total.miss),
             benchutil::fmt(static_cast<double>(total.bytes) /
                                (1024.0 * 1024.0),
                            2),
             "-", "-", "-", "-"});
  return t;
}

/// Engine-level accounting (the open-loop invariants line).
inline benchutil::Table load_table(const ScenarioRunResult& r) {
  const framework::LoadStats& st = r.stats;
  benchutil::Table t({"offered", "completed", "shed", "dead", "throttle",
                      "peak_if", "duration_s", "ops_per_s"});
  t.add_row({std::to_string(st.offered), std::to_string(st.completed),
             std::to_string(st.shed), std::to_string(st.dead_lettered),
             std::to_string(st.throttle_failures),
             std::to_string(st.peak_in_flight),
             benchutil::fmt(r.duration_s, 3),
             benchutil::fmt(r.ops_per_sec, 1)});
  return t;
}

/// The canonical byte-comparable report: scenario name, backend, and both
/// tables as CSV. --selfcheck and the replay tests diff exactly this
/// string.
inline std::string canonical_report(const framework::Scenario& sc,
                                    const ScenarioRunResult& r) {
  std::string out = "scenario," + sc.name + "\n";
  out += std::string("backend,") + framework::backend_name(sc.backend) + "\n";
  out += mix_table(sc, r).csv_string();
  out += "\n";
  out += load_table(r).csv_string();
  return out;
}

}  // namespace benchscn
