// Reproduces Fig. 5 of the paper: chunk-wise blob download — each worker
// reads one 1 MB page/block at a time — time and aggregate throughput vs.
// workers. Pages are read at random offsets (paying the page-index lookup);
// blocks are read sequentially.
//
// Flags: --workers=N, --repeats=N, --quick, --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "core/blob_benchmark.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const auto sweep = benchutil::worker_sweep(argc, argv);
  const int repeats = static_cast<int>(benchutil::flag_int(
      argc, argv, "--repeats", benchutil::flag_set(argc, argv, "--quick") ? 3
                                                                          : 10));
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  std::printf(
      "AzureBench Fig. 5 — chunk-wise blob download vs. workers\n"
      "100 chunks of 1 MB per worker per repeat, %d repeats\n\n",
      repeats);

  benchutil::Table table({"workers", "pageRand_s", "pageRand_MiBps",
                          "pageRand_ms/op", "blockSeq_s", "blockSeq_MiBps",
                          "blockSeq_ms/op"});

  for (const int workers : sweep) {
    azurebench::BlobBenchConfig cfg;
    cfg.workers = workers;
    cfg.repeats = repeats;
    if (obs_flags.enabled) cfg.observer = &observer;
    const auto r = azurebench::run_blob_benchmark(cfg);
    table.add_row({std::to_string(workers),
                   benchutil::fmt(r.page_random_read.seconds),
                   benchutil::fmt(r.page_random_read.mib_per_sec()),
                   benchutil::fmt(r.page_random_read.ms_per_op() * workers),
                   benchutil::fmt(r.block_seq_read.seconds),
                   benchutil::fmt(r.block_seq_read.mib_per_sec()),
                   benchutil::fmt(r.block_seq_read.ms_per_op() * workers)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper reference points: random page-wise download reaches "
        "~71 MB/s and\nsequential block-wise download ~104 MB/s at 96 "
        "workers.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
