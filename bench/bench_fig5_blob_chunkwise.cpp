// Reproduces Fig. 5 of the paper: chunk-wise blob download — each worker
// reads one 1 MB page/block at a time — time and aggregate throughput vs.
// workers. Pages are read at random offsets (paying the page-index lookup);
// blocks are read sequentially.
//
// The table itself is built by benchfig::fig5_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N, --repeats=N, --quick, --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  benchfig::Fig5Options opt;
  opt.workers = benchutil::worker_sweep(argc, argv);
  opt.repeats = static_cast<int>(benchutil::flag_int(
      argc, argv, "--repeats",
      benchutil::flag_set(argc, argv, "--quick") ? 3 : 10, 1, 1'000));
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 5 — chunk-wise blob download vs. workers\n"
      "100 chunks of 1 MB per worker per repeat, %d repeats\n\n",
      opt.repeats);

  const benchutil::Table table = benchfig::fig5_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper reference points: random page-wise download reaches "
        "~71 MB/s and\nsequential block-wise download ~104 MB/s at 96 "
        "workers.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
