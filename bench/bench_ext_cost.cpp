// Operating-cost assessment — the study the paper defers to future work:
// what would each benchmark experiment have cost on the 2012 pay-as-you-go
// price sheet? Usage (transactions, instance-hours, stored bytes) comes
// from the simulation's own accounting.
//
// Flags: --csv.
#include <cstdio>

#include "bench_util.hpp"
#include "core/blob_benchmark.hpp"
#include "core/cost_model.hpp"
#include "core/queue_benchmark.hpp"
#include "core/table_benchmark.hpp"

namespace {

std::string money(double usd) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "$%.4f", usd);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  benchutil::Table table({"experiment", "workers", "virtual_time_s",
                          "transactions", "compute", "transactions_cost",
                          "storage", "total"});

  for (const int workers : {8, 96}) {
    // Fig. 4/5 workload (blob).
    {
      azurebench::BlobBenchConfig cfg;
      cfg.workers = workers;
      cfg.repeats = 10;
      const auto r = azurebench::run_blob_benchmark(cfg);
      azurebench::UsageSample usage;
      usage.transactions = r.storage_transactions;
      usage.instances = workers;
      usage.duration = sim::seconds(r.virtual_seconds);
      usage.peak_stored_bytes = 200ll << 20;  // two 100 MB blobs
      const auto cost = azurebench::estimate_cost(usage);
      table.add_row({"blob (Fig. 4/5)", std::to_string(workers),
                     benchutil::fmt(r.virtual_seconds, 0),
                     std::to_string(r.storage_transactions),
                     money(cost.compute_usd), money(cost.transactions_usd),
                     money(cost.storage_usd), money(cost.total())});
    }
    // Fig. 6 workload (queue, separate).
    {
      azurebench::QueueSeparateConfig cfg;
      cfg.workers = workers;
      const auto r = azurebench::run_queue_separate_benchmark(cfg);
      azurebench::UsageSample usage;
      usage.transactions = r.storage_transactions;
      usage.instances = workers;
      usage.duration = sim::seconds(r.virtual_seconds);
      usage.peak_stored_bytes = 49'152ll * 20'000;
      const auto cost = azurebench::estimate_cost(usage);
      table.add_row({"queue (Fig. 6)", std::to_string(workers),
                     benchutil::fmt(r.virtual_seconds, 0),
                     std::to_string(r.storage_transactions),
                     money(cost.compute_usd), money(cost.transactions_usd),
                     money(cost.storage_usd), money(cost.total())});
    }
    // Fig. 8 workload (table).
    {
      azurebench::TableBenchConfig cfg;
      cfg.workers = workers;
      const auto r = azurebench::run_table_benchmark(cfg);
      azurebench::UsageSample usage;
      usage.transactions = r.storage_transactions;
      usage.instances = workers;
      usage.duration = sim::seconds(r.virtual_seconds);
      usage.peak_stored_bytes =
          static_cast<std::int64_t>(workers) * 500 * (64 << 10);
      const auto cost = azurebench::estimate_cost(usage);
      table.add_row({"table (Fig. 8)", std::to_string(workers),
                     benchutil::fmt(r.virtual_seconds, 0),
                     std::to_string(r.storage_transactions),
                     money(cost.compute_usd), money(cost.transactions_usd),
                     money(cost.storage_usd), money(cost.total())});
    }
  }

  std::printf(
      "AzureBench operating costs — the paper's deferred cost assessment\n"
      "(2012 pay-as-you-go prices: $0.12/Small-hour, $0.01/10k "
      "transactions,\n$0.125/GB-month, Small VMs; costs per full "
      "experiment)\n\n");
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nObservation the paper anticipated: at this scale the compute "
        "hours dominate;\nthe storage transactions the benchmarks hammer "
        "cost cents. Fewer, larger\nrequests save money as well as time.\n");
  }
  return 0;
}
