// Shared helpers for the figure-reproduction benchmark binaries: a tiny
// flag parser, fixed-width table / CSV emitters, and the observability
// exporters (`--obs` / `--obs-json=` / `--trace`) shared by fig4–fig9.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.hpp"
#include "simcore/time.hpp"
#include "strict_parse.hpp"

namespace benchutil {

// Flag conventions, shared by every bench binary:
//  * value flags are `--name=value`; boolean flags are bare `--name`;
//  * when a flag is passed more than once, the FIRST occurrence wins (a
//    scripted baseline prepended to a saved command line overrides it);
//  * numeric values are parsed strictly — empty values, trailing junk, and
//    overflow are typed usage errors (exit code 2), never silent zeros. An
//    earlier version used std::atoll, which turned `--workers=abc` into 0
//    and `--workers=9999999999999999999999` into undefined behaviour.
//
// The parsers themselves (UsageError, parse_int, parse_double, ...) live in
// strict_parse.hpp so tests and examples can reuse them without pulling in
// the simulator headers this file needs for the observability exporters.

/// Returns the value of `--name=value` (first occurrence wins), or
/// `fallback` when the flag is absent. Explicitly-passed values must parse
/// strictly and lie in [min, max]; violations throw UsageError. The
/// fallback is returned as-is — bounds constrain the command line, not the
/// binary's defaults.
inline std::int64_t flag_int_checked(
    int argc, char** argv, const char* name, std::int64_t fallback,
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    const std::string_view text(argv[i] + prefix.size());
    const std::int64_t value = require_int(name, text);
    if (value < min || value > max) {
      throw UsageError(name, std::string(text),
                       "value out of range [" + std::to_string(min) + ", " +
                           std::to_string(max) + "]");
    }
    return value;
  }
  return fallback;
}

/// flag_int_checked with the UsageError rendered to stderr + exit(2) — the
/// form the bench mains call so a bad flag fails loudly instead of running
/// a garbage configuration.
inline std::int64_t flag_int(
    int argc, char** argv, const char* name, std::int64_t fallback,
    std::int64_t min = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max = std::numeric_limits<std::int64_t>::max()) {
  try {
    return flag_int_checked(argc, argv, name, fallback, min, max);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    std::exit(2);
  }
}

/// Renders a double bound compactly for range-error messages ("0.25", not
/// "0.250000"); std::to_string's fixed six decimals would garble 1e18.
inline std::string fmt_bound(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Double-valued counterpart of flag_int_checked: strict full-token parse
/// (from_chars — no locale, no partial consumption), finite-only, bounds
/// checked, first occurrence wins, fallback returned as-is.
inline double flag_double_checked(
    int argc, char** argv, const char* name, double fallback,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max()) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    const std::string_view text(argv[i] + prefix.size());
    const double value = require_double(name, text);
    if (value < min || value > max) {
      throw UsageError(name, std::string(text),
                       "value out of range [" + fmt_bound(min) + ", " +
                           fmt_bound(max) + "]");
    }
    return value;
  }
  return fallback;
}

/// flag_double_checked with the UsageError rendered to stderr + exit(2).
inline double flag_double(
    int argc, char** argv, const char* name, double fallback,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max()) {
  try {
    return flag_double_checked(argc, argv, name, fallback, min, max);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    std::exit(2);
  }
}

/// Returns the string value of `--name=value` (first occurrence wins), or
/// `fallback`.
inline std::string flag_value(int argc, char** argv, const char* name,
                              const char* fallback = "") {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Returns true when `--name` is present.
inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Worker-count sweep: the paper scales "up to 100 processors". An explicit
/// `--workers=N` must be positive — an earlier version treated `--workers=0`
/// (and, via atoll, `--workers=abc`) as "not set" and silently ran the full
/// ten-point sweep instead of the point the user asked for.
inline std::vector<int> worker_sweep(int argc, char** argv) {
  if (const std::int64_t w = flag_int(argc, argv, "--workers", 0, 1, 100'000);
      w > 0) {
    return {static_cast<int>(w)};
  }
  if (flag_set(argc, argv, "--quick")) return {1, 4, 16, 48, 96};
  return {1, 2, 4, 8, 16, 32, 48, 64, 80, 96};
}

/// Fixed-width table row printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      rule += (c + 1 < width.size()) ? "-+-" : "";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

  void print_csv() const { std::fputs(csv_string().c_str(), stdout); }

  /// The CSV rendering as a string — the canonical byte-comparable form the
  /// scenario driver's --selfcheck and the replay tests diff.
  std::string csv_string() const {
    std::string out;
    append_csv_row(out, headers_);
    for (const auto& row : rows_) append_csv_row(out, row);
    return out;
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  (c + 1 < row.size()) ? " | " : "\n");
    }
  }
  static void append_csv_row(std::string& out,
                             const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

// ---------------------------------------------------------------------------
// Observability wiring shared by the figure binaries. All of it is opt-in:
// with none of the flags below, no Observer is constructed and every
// instrumentation point in the simulator stays inert, so paper-mode outputs
// are byte-identical to an unobserved build.
// ---------------------------------------------------------------------------

/// Observability flags common to fig4–fig9:
///   --obs              print per-layer / per-operation latency breakdowns
///   --obs-json=FILE    dump the full Observer JSON (metrics + histograms +
///                      span ring) to FILE ("-" = stdout)
///   --trace            (where supported) also print one sample request's
///                      span tree — implies --obs
struct ObsFlags {
  bool enabled = false;
  bool trace = false;
  std::string json_path;
};

inline ObsFlags obs_flags(int argc, char** argv) {
  ObsFlags f;
  f.trace = flag_set(argc, argv, "--trace");
  f.json_path = flag_value(argc, argv, "--obs-json");
  f.enabled = f.trace || !f.json_path.empty() || flag_set(argc, argv, "--obs");
  return f;
}

/// Per-layer latency summary: one row per span kind that recorded anything.
inline void print_obs_layers(const obs::Observer& o) {
  Table table({"layer", "count", "p50_ms", "p95_ms", "p99_ms", "max_ms"});
  for (int k = 0; k < obs::kSpanKindCount; ++k) {
    const auto kind = static_cast<obs::SpanKind>(k);
    const obs::LatencyHistogram& h = o.layer(kind);
    if (h.count() == 0) continue;
    table.add_row({obs::span_kind_name(kind), std::to_string(h.count()),
                   fmt(sim::to_seconds(h.quantile(0.50)) * 1e3, 3),
                   fmt(sim::to_seconds(h.quantile(0.95)) * 1e3, 3),
                   fmt(sim::to_seconds(h.quantile(0.99)) * 1e3, 3),
                   fmt(sim::to_seconds(h.max()) * 1e3, 3)});
  }
  std::printf("\nPer-layer latency breakdown:\n");
  table.print();
}

/// Per-operation latency summary keyed by interned label (blob.upload,
/// queue.get, throttle gates, error classes, ...), in intern order — which
/// is deterministic because label interning is deterministic.
inline void print_obs_ops(const obs::Observer& o) {
  Table table({"operation", "count", "p50_ms", "p95_ms", "p99_ms", "max_ms"});
  for (std::size_t id = 1; id < o.label_count(); ++id) {
    const obs::LatencyHistogram& h = o.op(static_cast<std::uint16_t>(id));
    if (h.count() == 0) continue;
    table.add_row({o.label_name(static_cast<std::uint16_t>(id)),
                   std::to_string(h.count()),
                   fmt(sim::to_seconds(h.quantile(0.50)) * 1e3, 3),
                   fmt(sim::to_seconds(h.quantile(0.95)) * 1e3, 3),
                   fmt(sim::to_seconds(h.quantile(0.99)) * 1e3, 3),
                   fmt(sim::to_seconds(h.max()) * 1e3, 3)});
  }
  std::printf("\nPer-operation latency breakdown:\n");
  table.print();
}

/// Prints the span tree of one sample trace — the newest trace containing a
/// span labeled `want_label` (any trace when the label is empty or never
/// seen). Children print indented beneath their parent, in span-id
/// (creation) order.
inline void print_obs_trace(const obs::Observer& o,
                            std::string_view want_label = "") {
  const std::vector<obs::Span> spans = o.spans();
  std::uint64_t trace_id = 0;
  for (const obs::Span& s : spans) {  // oldest → newest; keep the last match
    if (!want_label.empty() && o.label_name(s.label) != want_label) continue;
    trace_id = s.trace_id;
  }
  if (trace_id == 0 && !spans.empty()) {  // fall back to the newest trace
    trace_id = spans.back().trace_id;
  }
  if (trace_id == 0) {
    std::printf("\n(no complete trace captured)\n");
    return;
  }

  std::vector<obs::Span> trace;
  for (const obs::Span& s : spans) {
    if (s.trace_id == trace_id) trace.push_back(s);
  }
  std::sort(trace.begin(), trace.end(),
            [](const obs::Span& a, const obs::Span& b) {
              return a.span_id < b.span_id;
            });
  const sim::TimePoint t0 = [&] {
    sim::TimePoint first = trace.front().start;
    for (const obs::Span& s : trace) first = std::min(first, s.start);
    return first;
  }();

  std::printf("\nSample trace %llu (%zu spans, times relative to request "
              "start):\n",
              static_cast<unsigned long long>(trace_id), trace.size());
  // Recursive indent by parentage; depth-first so children follow parents.
  auto print_node = [&](auto&& self, std::uint32_t parent, int depth) -> void {
    for (const obs::Span& s : trace) {
      if (s.parent_id != parent) continue;
      const std::string& label = o.label_name(s.label);
      std::printf("%*s%s%s%s  [%.3f ms .. %.3f ms]  %.3f ms%s%s\n", depth * 2,
                  "", obs::span_kind_name(s.kind), label.empty() ? "" : ":",
                  label.c_str(), sim::to_seconds(s.start - t0) * 1e3,
                  sim::to_seconds(s.end - t0) * 1e3,
                  sim::to_seconds(s.duration()) * 1e3,
                  s.server >= 0 ? ("  server=" + std::to_string(s.server)).c_str()
                                : "",
                  s.error ? "  ERROR" : "");
      self(self, s.span_id, depth + 1);
    }
  };
  // Roots of the trace: spans whose parent is not in the captured set (the
  // ring may have evicted ancestors). Linear scans — traces are small.
  for (const obs::Span& s : trace) {
    bool has_parent = false;
    for (const obs::Span& p : trace) {
      if (p.span_id == s.parent_id) { has_parent = true; break; }
    }
    if (!has_parent) {
      const std::string& label = o.label_name(s.label);
      std::printf("%s%s%s  [%.3f ms .. %.3f ms]  %.3f ms%s\n",
                  obs::span_kind_name(s.kind), label.empty() ? "" : ":",
                  label.c_str(), sim::to_seconds(s.start - t0) * 1e3,
                  sim::to_seconds(s.end - t0) * 1e3,
                  sim::to_seconds(s.duration()) * 1e3,
                  s.error ? "  ERROR" : "");
      print_node(print_node, s.span_id, 1);
    }
  }
}

/// End-of-run export: breakdown tables on stdout, plus the full JSON dump
/// when `--obs-json=` was given. Call once, after the sweep completes.
inline void finish_obs(const ObsFlags& flags, const obs::Observer& o) {
  if (!flags.enabled) return;
  print_obs_layers(o);
  print_obs_ops(o);
  if (flags.json_path.empty()) return;
  const std::string json = o.to_json();
  if (flags.json_path == "-") {
    std::printf("%s\n", json.c_str());
    return;
  }
  if (std::FILE* f = std::fopen(flags.json_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nObserver JSON written to %s\n", flags.json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 flags.json_path.c_str());
  }
}

}  // namespace benchutil
