// Shared helpers for the figure-reproduction benchmark binaries: a tiny
// flag parser and fixed-width table / CSV emitters.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace benchutil {

/// Returns the value of `--name=value`, or `fallback`.
inline std::int64_t flag_int(int argc, char** argv, const char* name,
                             std::int64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Returns true when `--name` is present.
inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Worker-count sweep: the paper scales "up to 100 processors".
inline std::vector<int> worker_sweep(int argc, char** argv) {
  if (const std::int64_t w = flag_int(argc, argv, "--workers", 0); w > 0) {
    return {static_cast<int>(w)};
  }
  if (flag_set(argc, argv, "--quick")) return {1, 4, 16, 48, 96};
  return {1, 2, 4, 8, 16, 32, 48, 64, 80, 96};
}

/// Fixed-width table row printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      rule += (c + 1 < width.size()) ? "-+-" : "";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

  void print_csv() const {
    print_csv_row(headers_);
    for (const auto& row : rows_) print_csv_row(row);
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  (c + 1 < row.size()) ? " | " : "\n");
    }
  }
  static void print_csv_row(const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", row[c].c_str(), (c + 1 < row.size()) ? "," : "\n");
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace benchutil
