// Strict numeric parsing shared by the bench flag parser (bench_util.hpp),
// the chaos harness, and the example programs. Deliberately dependency-free
// (no simulator headers) so tests and examples can include just this.
//
// The contract for every parser here: the WHOLE token must parse (no
// trailing junk), empty input is an error, overflow is an error, and
// doubles must additionally be finite — never the atoi/atof/unchecked-stod
// behaviour of turning "abc" into 0 or "1e999" into inf.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>

namespace benchutil {

/// Typed usage error: names the flag, the offending text, and the reason.
class UsageError : public std::runtime_error {
 public:
  UsageError(std::string flag, std::string value, std::string reason)
      : std::runtime_error(flag + "=" + value + ": " + reason),
        flag_(std::move(flag)),
        value_(std::move(value)),
        reason_(std::move(reason)) {}

  const std::string& flag() const noexcept { return flag_; }
  const std::string& value() const noexcept { return value_; }
  const std::string& reason() const noexcept { return reason_; }

 private:
  std::string flag_, value_, reason_;
};

enum class IntParse { kOk, kEmpty, kBadDigit, kTrailingJunk, kOverflow };

/// Strict full-string integer parse (optional leading '-', decimal only).
inline IntParse parse_int(std::string_view text, std::int64_t& out) {
  if (text.empty()) return IntParse::kEmpty;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) return IntParse::kOverflow;
  if (ec != std::errc{}) return IntParse::kBadDigit;
  if (ptr != last) return IntParse::kTrailingJunk;
  return IntParse::kOk;
}

/// Strict full-string unsigned 64-bit parse (decimal only, no sign) — for
/// seed-valued flags whose range exceeds int64.
inline IntParse parse_uint64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return IntParse::kEmpty;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) return IntParse::kOverflow;
  if (ec != std::errc{}) return IntParse::kBadDigit;
  if (ptr != last) return IntParse::kTrailingJunk;
  return IntParse::kOk;
}

enum class DoubleParse { kOk, kEmpty, kBadDigit, kTrailingJunk, kNotFinite };

/// Strict full-string double parse. The entire token must be consumed and
/// the result must be finite ("nan", "inf", and overflowing exponents are
/// all errors — a rate or probability of inf is never what the user meant).
inline DoubleParse parse_double(std::string_view text, double& out) {
  if (text.empty()) return DoubleParse::kEmpty;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) return DoubleParse::kNotFinite;
  if (ec != std::errc{}) return DoubleParse::kBadDigit;
  if (ptr != last) return DoubleParse::kTrailingJunk;
#else
  // Fallback: strtod on a NUL-terminated copy, full-consumption enforced.
  const std::string copy(text);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str()) return DoubleParse::kBadDigit;
  if (end != copy.c_str() + copy.size()) return DoubleParse::kTrailingJunk;
#endif
  if (!std::isfinite(out)) return DoubleParse::kNotFinite;
  return DoubleParse::kOk;
}

/// parse_int with the failure modes rendered as UsageError — the shared
/// "one flag value, or die with a message naming it" helper.
inline std::int64_t require_int(const char* flag, std::string_view text) {
  std::int64_t value = 0;
  switch (parse_int(text, value)) {
    case IntParse::kEmpty:
      throw UsageError(flag, std::string(text),
                       "expected an integer, got an empty value");
    case IntParse::kBadDigit:
    case IntParse::kTrailingJunk:
      throw UsageError(flag, std::string(text),
                       "expected an integer, got non-numeric text");
    case IntParse::kOverflow:
      throw UsageError(flag, std::string(text),
                       "value does not fit in a 64-bit integer");
    case IntParse::kOk:
      break;
  }
  return value;
}

/// parse_uint64 rendered as UsageError.
inline std::uint64_t require_uint64(const char* flag, std::string_view text) {
  std::uint64_t value = 0;
  switch (parse_uint64(text, value)) {
    case IntParse::kEmpty:
      throw UsageError(flag, std::string(text),
                       "expected an unsigned integer, got an empty value");
    case IntParse::kBadDigit:
    case IntParse::kTrailingJunk:
      throw UsageError(flag, std::string(text),
                       "expected an unsigned integer, got non-numeric text");
    case IntParse::kOverflow:
      throw UsageError(flag, std::string(text),
                       "value does not fit in an unsigned 64-bit integer");
    case IntParse::kOk:
      break;
  }
  return value;
}

/// parse_double rendered as UsageError.
inline double require_double(const char* flag, std::string_view text) {
  double value = 0;
  switch (parse_double(text, value)) {
    case DoubleParse::kEmpty:
      throw UsageError(flag, std::string(text),
                       "expected a number, got an empty value");
    case DoubleParse::kBadDigit:
    case DoubleParse::kTrailingJunk:
      throw UsageError(flag, std::string(text),
                       "expected a number, got non-numeric text");
    case DoubleParse::kNotFinite:
      throw UsageError(flag, std::string(text),
                       "value must be a finite number");
    case DoubleParse::kOk:
      break;
  }
  return value;
}

}  // namespace benchutil
