// Reproduces Fig. 4 of the paper: Blob storage upload and (full) download
// time and aggregate throughput vs. number of worker role instances, for
// block and page blobs.
//
// Workload (Algorithm 1): per repeat, the fleet collectively uploads one
// 100 MB page blob and one 100 MB block blob in 1 MB chunks, then every
// worker downloads both blobs in full. 10 repeats; synchronization via the
// queue barrier is excluded from the timings.
//
// Flags: --workers=N (single point), --repeats=N, --quick,
//        --no-replica-reads (ablation), --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "core/blob_benchmark.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const auto sweep = benchutil::worker_sweep(argc, argv);
  const int repeats = static_cast<int>(benchutil::flag_int(
      argc, argv, "--repeats", benchutil::flag_set(argc, argv, "--quick") ? 3
                                                                          : 10));
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const bool no_replica = benchutil::flag_set(argc, argv, "--no-replica-reads");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  std::printf(
      "AzureBench Fig. 4 — Blob storage upload/download vs. workers\n"
      "100 MB blobs, 1 MB chunks, %d repeats%s\n\n",
      repeats, no_replica ? " [ablation: replica reads OFF]" : "");

  benchutil::Table table({"workers", "pageUp_s", "pageUp_MiBps", "blockUp_s",
                          "blockUp_MiBps", "pageDown_s", "pageDown_MiBps",
                          "blockDown_s", "blockDown_MiBps", "barrier_s"});

  for (const int workers : sweep) {
    azurebench::BlobBenchConfig cfg;
    cfg.workers = workers;
    cfg.repeats = repeats;
    cfg.cloud.blob.replica_reads = !no_replica;
    if (obs_flags.enabled) cfg.observer = &observer;
    const auto r = azurebench::run_blob_benchmark(cfg);
    table.add_row({std::to_string(workers),
                   benchutil::fmt(r.page_upload.seconds),
                   benchutil::fmt(r.page_upload.mib_per_sec()),
                   benchutil::fmt(r.block_upload.seconds),
                   benchutil::fmt(r.block_upload.mib_per_sec()),
                   benchutil::fmt(r.page_full_read.seconds),
                   benchutil::fmt(r.page_full_read.mib_per_sec()),
                   benchutil::fmt(r.block_full_read.seconds),
                   benchutil::fmt(r.block_full_read.mib_per_sec()),
                   benchutil::fmt(r.barrier_seconds)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper reference points (Azure, 2012): page upload saturates at "
        "~60 MB/s,\nblock upload at ~21 MB/s, block download reaches "
        "~165 MB/s at 96 workers.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
