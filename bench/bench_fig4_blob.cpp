// Reproduces Fig. 4 of the paper: Blob storage upload and (full) download
// time and aggregate throughput vs. number of worker role instances, for
// block and page blobs.
//
// Workload (Algorithm 1): per repeat, the fleet collectively uploads one
// 100 MB page blob and one 100 MB block blob in 1 MB chunks, then every
// worker downloads both blobs in full. 10 repeats; synchronization via the
// queue barrier is excluded from the timings.
//
// The table itself is built by benchfig::fig4_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N (single point), --repeats=N, --quick,
//        --no-replica-reads (ablation), --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  benchfig::Fig4Options opt;
  opt.workers = benchutil::worker_sweep(argc, argv);
  opt.repeats = static_cast<int>(benchutil::flag_int(
      argc, argv, "--repeats",
      benchutil::flag_set(argc, argv, "--quick") ? 3 : 10, 1, 1'000));
  opt.no_replica_reads = benchutil::flag_set(argc, argv, "--no-replica-reads");
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 4 — Blob storage upload/download vs. workers\n"
      "100 MB blobs, 1 MB chunks, %d repeats%s\n\n",
      opt.repeats,
      opt.no_replica_reads ? " [ablation: replica reads OFF]" : "");

  const benchutil::Table table = benchfig::fig4_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper reference points (Azure, 2012): page upload saturates at "
        "~60 MB/s,\nblock upload at ~21 MB/s, block download reaches "
        "~165 MB/s at 96 workers.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
