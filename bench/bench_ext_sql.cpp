// SQL Azure vs. Table storage — the comparison the paper deferred with its
// SQL-Azure future work: point reads, writes, and predicate queries on the
// relational service against the schemaless Table storage.
//
// Flags: --csv.
#include <cstdio>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "azure/sql/sql_service.hpp"
#include "bench_util.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"

namespace {

namespace sql = azure::sql;
using sim::Task;

struct World {
  sim::Simulation sim;
  azure::CloudEnvironment env{sim};
  netsim::Nic nic{sim,
                  netsim::NicConfig{12.5e6, 12.5e6, sim::micros(50), 65536.0}};
  azure::CloudStorageAccount account{env, nic};
};

constexpr int kRows = 1'000;

sim::Task<void> seed(World& w) {
  auto& db = w.env.sql_service();
  co_await db.create_database(w.nic, "bench", sql::Edition::kWeb5GB);
  std::vector<sql::Column> schema = {{"id", sql::ColumnType::kInt},
                                     {"bucket", sql::ColumnType::kInt},
                                     {"payload", sql::ColumnType::kText}};
  co_await db.create_table(w.nic, "bench", "items", std::move(schema));
  auto table =
      w.account.create_cloud_table_client().get_table_reference("items");
  co_await table.create();
  const std::string payload(4096, 'd');
  for (int i = 0; i < kRows; ++i) {
    // Named row: GCC 12 miscompiles brace-init-list temporaries in
    // co_await expressions.
    sql::Row row;
    row.emplace_back(std::int64_t{i});
    row.emplace_back(std::int64_t{i % 10});
    row.emplace_back(payload);
    co_await db.insert(w.nic, "bench", "items", std::move(row));
    azure::TableEntity e;
    e.partition_key = "bucket-" + std::to_string(i % 10);
    e.row_key = "item-" + std::to_string(i);
    e.properties["payload"] = azure::Payload::synthetic(4096);
    co_await table.insert(e);
    // Stay under the table partition targets while seeding.
    co_await w.sim.delay(sim::millis(4));
  }
}

template <class Op>
double measure_ms(World& w, Op op, int repeats) {
  const sim::TimePoint t0 = w.sim.now();
  w.sim.spawn([](World& ww, Op o, int n) -> Task<> {
    for (int i = 0; i < n; ++i) co_await o(ww, i);
  }(w, op, repeats));
  w.sim.run();
  return sim::to_millis(w.sim.now() - t0) / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  World w;
  w.sim.spawn(seed(w));
  w.sim.run();

  benchutil::Table table({"operation", "SQL Azure", "Table storage"});

  const double sql_seek = measure_ms(
      w,
      [](World& ww, int i) -> Task<> {
        (void)co_await ww.env.sql_service().select_by_key(
            ww.nic, "bench", "items",
            sql::Value{std::int64_t{(i * 37) % kRows}});
      },
      100);
  const double tbl_seek = measure_ms(
      w,
      [](World& ww, int i) -> Task<> {
        const int id = (i * 37) % kRows;
        (void)co_await ww.account.create_cloud_table_client()
            .get_table_reference("items")
            .query("bucket-" + std::to_string(id % 10),
                   "item-" + std::to_string(id));
      },
      100);
  table.add_row({"point read (4 KB row)", benchutil::fmt(sql_seek) + " ms",
                 benchutil::fmt(tbl_seek) + " ms"});

  const double sql_scan = measure_ms(
      w,
      [](World& ww, int) -> Task<> {
        sql::Predicate p{"bucket", sql::Predicate::Op::kEq,
                         sql::Value{std::int64_t{3}}};
        (void)co_await ww.env.sql_service().select_where(ww.nic, "bench",
                                                         "items", p);
      },
      20);
  const double tbl_scan = measure_ms(
      w,
      [](World& ww, int) -> Task<> {
        (void)co_await ww.account.create_cloud_table_client()
            .get_table_reference("items")
            .query_partition("bucket-3");
      },
      20);
  table.add_row({"100-row predicate/partition query",
                 benchutil::fmt(sql_scan) + " ms",
                 benchutil::fmt(tbl_scan) + " ms"});

  std::printf(
      "AzureBench extension — SQL Azure vs. Table storage (the comparison "
      "the paper\ndeferred; 1,000 seeded 4 KB rows; means per "
      "operation)\n\n");
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nTakeaway: the relational service wins point lookups (no "
        "partition-server\njourney, in-memory index) but offers hard size "
        "caps and a connection limit;\nTable storage trades latency for "
        "elastic capacity — the paper's Section IV-C\nguidance in numbers."
        "\n");
  }
  return 0;
}
