// Reproduces Fig. 7 of the paper: Queue storage with a single queue shared
// by all workers — Put / Peek / Get(+Delete) communication time vs.
// workers, one series per think time (1..5 s). 32 KB messages; 20,000
// messages total split into <=500-message rounds; think time between
// accesses is excluded from the reported times.
//
// The table itself is built by benchfig::fig7_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N, --messages=N, --quick, --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  auto sweep = benchutil::worker_sweep(argc, argv);
  // A single worker cycling 20,000 messages with 1-5 s think times spans
  // >10 virtual days — past the 7-day message TTL that Algorithm 2's
  // barrier (and any long-lived queue state) depends on. The sweep
  // therefore starts at 2 workers unless --workers forces a point.
  if (sweep.size() > 1) {
    std::erase_if(sweep, [](int w) { return w < 2; });
  }
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  benchfig::Fig7Options opt;
  opt.workers = sweep;
  opt.messages = benchutil::flag_int(
      argc, argv, "--messages",
      benchutil::flag_set(argc, argv, "--quick") ? 2'000 : 20'000, 1);
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 7 — Queue storage, single shared queue\n"
      "%lld messages total, 32 KB each; per-worker communication time "
      "(think time excluded)\n\n",
      static_cast<long long>(opt.messages));

  const benchutil::Table table = benchfig::fig7_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shapes: shared-queue ops cost more than with per-worker "
        "queues; the\ntime per operation falls as think time grows (by up to "
        "~2x) and total\ncommunication time falls as workers grow (fixed "
        "total transactions).\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
