// Google-benchmark microbenchmarks of the DES kernel itself: host-side cost
// of event dispatch, coroutine processes, resources, and flow limiters.
// These bound how fast the figure benches can simulate the cloud.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "simcore/rate_limiter.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace {

void BM_EventDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < events; ++i) {
      s.schedule_at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventDispatch)->Arg(1'000)->Arg(100'000);

// Raw coroutine-resume path: schedule_resume stores the handle directly in
// the heap node, so this measures pure push/pop/resume with no callable
// wrapper and no slab traffic.
void BM_ScheduleResume(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.reserve(static_cast<std::size_t>(events));
    const auto h = std::noop_coroutine();
    for (int i = 0; i < events; ++i) s.schedule_resume(i, h);
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_ScheduleResume)->Arg(1'000)->Arg(100'000);

// Heap stress: a large pending set with random timestamps keeps the 4-ary
// heap at full depth, so sift costs (not dispatch) dominate.
void BM_HeapStress(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::vector<sim::TimePoint> stamps(static_cast<std::size_t>(events));
  std::mt19937_64 rng(0xA2B3C4D5u);  // fixed seed: identical heap shapes
  for (auto& t : stamps) t = static_cast<sim::TimePoint>(rng() >> 24);
  for (auto _ : state) {
    sim::Simulation s;
    s.reserve(stamps.size());
    for (const auto t : stamps) s.schedule_at(t, [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_HeapStress)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

sim::Task<void> delay_loop(sim::Simulation& s, int n) {
  for (int i = 0; i < n; ++i) co_await s.delay(sim::millis(1));
}

void BM_CoroutineDelays(benchmark::State& state) {
  const int delays = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.spawn(delay_loop(s, delays));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * delays);
}
BENCHMARK(BM_CoroutineDelays)->Arg(10'000);

sim::Task<void> contend(sim::Simulation& s, sim::Resource& r, int n) {
  for (int i = 0; i < n; ++i) {
    auto lease = co_await r.acquire();
    co_await s.delay(sim::micros(10));
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kOpsPerWorker = 100;
  for (auto _ : state) {
    sim::Simulation s;
    sim::Resource r(s, 4);
    for (int w = 0; w < workers; ++w) s.spawn(contend(s, r, kOpsPerWorker));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * workers * kOpsPerWorker);
}
BENCHMARK(BM_ResourceContention)->Arg(8)->Arg(96);

sim::Task<void> flow(sim::FlowLimiter& l, int n) {
  for (int i = 0; i < n; ++i) co_await l.acquire(1024.0);
}

void BM_FlowLimiter(benchmark::State& state) {
  constexpr int kOps = 10'000;
  for (auto _ : state) {
    sim::Simulation s;
    sim::FlowLimiter limiter(s, 1e6);
    s.spawn(flow(limiter, kOps));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_FlowLimiter);

sim::Task<void> wait_gate(sim::Gate& g) { co_await g.wait(); }

void BM_GateBroadcast(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    sim::Gate gate(s);
    for (int i = 0; i < waiters; ++i) s.spawn(wait_gate(gate));
    s.schedule_at(1, [&gate] { gate.set(); });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_GateBroadcast)->Arg(1'000);

}  // namespace

BENCHMARK_MAIN();
