// Google-benchmark microbenchmarks of the DES kernel itself: host-side cost
// of event dispatch, coroutine processes, resources, and flow limiters.
// These bound how fast the figure benches can simulate the cloud.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "simcore/rate_limiter.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

#include "core/sharded_world.hpp"

namespace {

void BM_EventDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < events; ++i) {
      s.schedule_at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventDispatch)->Arg(1'000)->Arg(100'000);

// Raw coroutine-resume path: schedule_resume stores the handle directly in
// the heap node, so this measures pure push/pop/resume with no callable
// wrapper and no slab traffic.
void BM_ScheduleResume(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.reserve(static_cast<std::size_t>(events));
    const auto h = std::noop_coroutine();
    for (int i = 0; i < events; ++i) s.schedule_resume(i, h);
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_ScheduleResume)->Arg(1'000)->Arg(100'000);

// Heap stress: a large pending set with random timestamps keeps the 4-ary
// heap at full depth, so sift costs (not dispatch) dominate.
void BM_HeapStress(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::vector<sim::TimePoint> stamps(static_cast<std::size_t>(events));
  std::mt19937_64 rng(0xA2B3C4D5u);  // fixed seed: identical heap shapes
  for (auto& t : stamps) t = static_cast<sim::TimePoint>(rng() >> 24);
  for (auto _ : state) {
    sim::Simulation s;
    s.reserve(stamps.size());
    for (const auto t : stamps) s.schedule_at(t, [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_HeapStress)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

sim::Task<void> delay_loop(sim::Simulation& s, int n) {
  for (int i = 0; i < n; ++i) co_await s.delay(sim::millis(1));
}

void BM_CoroutineDelays(benchmark::State& state) {
  const int delays = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.spawn(delay_loop(s, delays));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * delays);
}
BENCHMARK(BM_CoroutineDelays)->Arg(10'000);

sim::Task<void> contend(sim::Simulation& s, sim::Resource& r, int n) {
  for (int i = 0; i < n; ++i) {
    auto lease = co_await r.acquire();
    co_await s.delay(sim::micros(10));
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kOpsPerWorker = 100;
  for (auto _ : state) {
    sim::Simulation s;
    sim::Resource r(s, 4);
    for (int w = 0; w < workers; ++w) s.spawn(contend(s, r, kOpsPerWorker));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * workers * kOpsPerWorker);
}
BENCHMARK(BM_ResourceContention)->Arg(8)->Arg(96);

sim::Task<void> flow(sim::FlowLimiter& l, int n) {
  for (int i = 0; i < n; ++i) co_await l.acquire(1024.0);
}

void BM_FlowLimiter(benchmark::State& state) {
  constexpr int kOps = 10'000;
  for (auto _ : state) {
    sim::Simulation s;
    sim::FlowLimiter limiter(s, 1e6);
    s.spawn(flow(limiter, kOps));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_FlowLimiter);

sim::Task<void> wait_gate(sim::Gate& g) { co_await g.wait(); }

void BM_GateBroadcast(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    sim::Gate gate(s);
    for (int i = 0; i < waiters; ++i) s.spawn(wait_gate(gate));
    s.schedule_at(1, [&gate] { gate.set(); });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_GateBroadcast)->Arg(1'000);

// ----------------------------------------------------- parallel kernel ----
// Wall-clock scaling of the sharded DES kernel on the paper's 64-server ×
// 96-worker scenario (chaos variant: link faults + fleet crash schedule).
// The decomposition is fixed at 8 domains for the thread sweep, so every
// configuration executes the byte-identical event sequence and only the
// worker-thread count varies; the domain sweep additionally measures the
// decomposition's own cost at threads == domains. UseRealTime because the
// work happens on kernel worker threads, not the benchmark thread.

azurebench::ShardedCloudConfig sharded_chaos_scenario() {
  azurebench::ShardedCloudConfig cfg;
  cfg.domains = 8;
  cfg.total_servers = 64;
  cfg.total_workers = 96;
  cfg.ops_per_worker = 20;
  cfg.chaos = true;
  return cfg;
}

void BM_ShardedCloudDomains(benchmark::State& state) {
  azurebench::ShardedCloudConfig cfg = sharded_chaos_scenario();
  cfg.domains = static_cast<int>(state.range(0));
  cfg.threads = cfg.domains;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = azurebench::run_sharded_cloud(cfg);
    events = r.events_executed;
    benchmark::DoNotOptimize(r.final_time);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedCloudDomains)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardedCloudThreads(benchmark::State& state) {
  azurebench::ShardedCloudConfig cfg = sharded_chaos_scenario();
  cfg.threads = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = azurebench::run_sharded_cloud(cfg);
    events = r.events_executed;
    benchmark::DoNotOptimize(r.final_time);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedCloudThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
