// Google-benchmark microbenchmarks of the DES kernel itself: host-side cost
// of event dispatch, coroutine processes, resources, and flow limiters.
// These bound how fast the figure benches can simulate the cloud.
#include <benchmark/benchmark.h>

#include "simcore/rate_limiter.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"
#include "simcore/task.hpp"

namespace {

void BM_EventDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < events; ++i) {
      s.schedule_at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventDispatch)->Arg(1'000)->Arg(100'000);

sim::Task<void> delay_loop(sim::Simulation& s, int n) {
  for (int i = 0; i < n; ++i) co_await s.delay(sim::millis(1));
}

void BM_CoroutineDelays(benchmark::State& state) {
  const int delays = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    s.spawn(delay_loop(s, delays));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * delays);
}
BENCHMARK(BM_CoroutineDelays)->Arg(10'000);

sim::Task<void> contend(sim::Simulation& s, sim::Resource& r, int n) {
  for (int i = 0; i < n; ++i) {
    auto lease = co_await r.acquire();
    co_await s.delay(sim::micros(10));
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kOpsPerWorker = 100;
  for (auto _ : state) {
    sim::Simulation s;
    sim::Resource r(s, 4);
    for (int w = 0; w < workers; ++w) s.spawn(contend(s, r, kOpsPerWorker));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * workers * kOpsPerWorker);
}
BENCHMARK(BM_ResourceContention)->Arg(8)->Arg(96);

sim::Task<void> flow(sim::FlowLimiter& l, int n) {
  for (int i = 0; i < n; ++i) co_await l.acquire(1024.0);
}

void BM_FlowLimiter(benchmark::State& state) {
  constexpr int kOps = 10'000;
  for (auto _ : state) {
    sim::Simulation s;
    sim::FlowLimiter limiter(s, 1e6);
    s.spawn(flow(limiter, kOps));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_FlowLimiter);

sim::Task<void> wait_gate(sim::Gate& g) { co_await g.wait(); }

void BM_GateBroadcast(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    sim::Gate gate(s);
    for (int i = 0; i < waiters; ++i) s.spawn(wait_gate(gate));
    s.schedule_at(1, [&gate] { gate.set(); });
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_GateBroadcast)->Arg(1'000);

}  // namespace

BENCHMARK_MAIN();
