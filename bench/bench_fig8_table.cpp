// Reproduces Fig. 8 of the paper: Table storage Insert / Query / Update /
// Delete time vs. workers, one series per entity size (4..64 KB). Each
// worker works on 500 entities in its own partition; updates are
// unconditional (ETag "*"); ServerBusy is retried after a 1 s sleep.
//
// The table itself is built by benchfig::fig8_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N, --entities=N, --quick, --csv, --obs, --obs-json=FILE.
//
// Sharded parallel path: --domains=N switches to the domain-sharded driver
// (core/sharded_world.hpp) — the table workload decomposed into N stamp
// shards on the parallel DES kernel, with --threads=N worker threads,
// --ops=N inserts per worker, and --chaos arming faults + the fleet crash
// schedule. The printed table is byte-identical across thread counts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sharded_world.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  const int domains = static_cast<int>(
      benchutil::flag_int(argc, argv, "--domains", 0, 0, 1'024));
  if (domains > 0) {
    azurebench::ShardedCloudConfig cfg;
    cfg.mode = azurebench::ShardedCloudConfig::Mode::kTable;
    cfg.domains = domains;
    cfg.threads = static_cast<int>(
        benchutil::flag_int(argc, argv, "--threads", 0, 0, 1'024));
    cfg.total_servers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--servers", 64, 1));
    cfg.total_workers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--workers", 96, 1));
    cfg.ops_per_worker = benchutil::flag_int(argc, argv, "--ops", 20, 1);
    cfg.chaos = benchutil::flag_set(argc, argv, "--chaos");
    const auto r = azurebench::run_sharded_cloud(cfg);
    std::printf(
        "AzureBench Fig. 8 (sharded) — table workload, %d domains x %d "
        "threads%s\n\n%s\nwall_s=%.3f\n",
        cfg.domains, cfg.threads > 0 ? cfg.threads : cfg.domains,
        cfg.chaos ? " [chaos]" : "", r.figure_table.c_str(), r.wall_seconds);
    return 0;
  }

  benchfig::Fig8Options opt;
  opt.workers = benchutil::worker_sweep(argc, argv);
  opt.entities = static_cast<int>(benchutil::flag_int(
      argc, argv, "--entities",
      benchutil::flag_set(argc, argv, "--quick") ? 100 : 500, 1));
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 8 — Table storage operations vs. workers\n"
      "%d entities per worker per phase; per-phase times in seconds\n\n",
      opt.entities);

  const benchutil::Table table = benchfig::fig8_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shapes: times near-constant through ~4 workers; for 32/64 "
        "KB entities\nthe times rise drastically with workers; Update is the "
        "most expensive\noperation and Query the cheapest.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
