// Reproduces Fig. 8 of the paper: Table storage Insert / Query / Update /
// Delete time vs. workers, one series per entity size (4..64 KB). Each
// worker works on 500 entities in its own partition; updates are
// unconditional (ETag "*"); ServerBusy is retried after a 1 s sleep.
//
// Flags: --workers=N, --entities=N, --quick, --csv, --obs, --obs-json=FILE.
//
// Sharded parallel path: --domains=N switches to the domain-sharded driver
// (core/sharded_world.hpp) — the table workload decomposed into N stamp
// shards on the parallel DES kernel, with --threads=N worker threads,
// --ops=N inserts per worker, and --chaos arming faults + the fleet crash
// schedule. The printed table is byte-identical across thread counts.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sharded_world.hpp"
#include "core/table_benchmark.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const auto sweep = benchutil::worker_sweep(argc, argv);
  const int entities = static_cast<int>(benchutil::flag_int(
      argc, argv, "--entities",
      benchutil::flag_set(argc, argv, "--quick") ? 100 : 500));
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  const int domains =
      static_cast<int>(benchutil::flag_int(argc, argv, "--domains", 0));
  if (domains > 0) {
    azurebench::ShardedCloudConfig cfg;
    cfg.mode = azurebench::ShardedCloudConfig::Mode::kTable;
    cfg.domains = domains;
    cfg.threads =
        static_cast<int>(benchutil::flag_int(argc, argv, "--threads", 0));
    cfg.total_servers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--servers", 64));
    cfg.total_workers =
        static_cast<int>(benchutil::flag_int(argc, argv, "--workers", 96));
    cfg.ops_per_worker = benchutil::flag_int(argc, argv, "--ops", 20);
    cfg.chaos = benchutil::flag_set(argc, argv, "--chaos");
    const auto r = azurebench::run_sharded_cloud(cfg);
    std::printf(
        "AzureBench Fig. 8 (sharded) — table workload, %d domains x %d "
        "threads%s\n\n%s\nwall_s=%.3f\n",
        cfg.domains, cfg.threads > 0 ? cfg.threads : cfg.domains,
        cfg.chaos ? " [chaos]" : "", r.figure_table.c_str(), r.wall_seconds);
    return 0;
  }

  std::printf(
      "AzureBench Fig. 8 — Table storage operations vs. workers\n"
      "%d entities per worker per phase; per-phase times in seconds\n\n",
      entities);

  benchutil::Table table({"workers", "size_KB", "insert_s", "query_s",
                          "update_s", "delete_s", "busy_retries"});

  for (const int workers : sweep) {
    azurebench::TableBenchConfig cfg;
    cfg.workers = workers;
    cfg.entities = entities;
    if (obs_flags.enabled) cfg.observer = &observer;
    const auto r = azurebench::run_table_benchmark(cfg);
    bool first = true;
    for (const auto& p : r.points) {
      table.add_row({std::to_string(workers),
                     std::to_string(p.entity_size / 1024),
                     benchutil::fmt(p.insert.seconds),
                     benchutil::fmt(p.query.seconds),
                     benchutil::fmt(p.update.seconds),
                     benchutil::fmt(p.erase.seconds),
                     first ? std::to_string(r.server_busy_retries) : ""});
      first = false;
    }
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shapes: times near-constant through ~4 workers; for 32/64 "
        "KB entities\nthe times rise drastically with workers; Update is the "
        "most expensive\noperation and Query the cheapest.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
