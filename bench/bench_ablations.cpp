// Ablation benches for the design choices DESIGN.md calls out: each run
// toggles one modeling decision and reports how the headline numbers move.
//
//   1. replica-served reads        -> blob download saturation (Fig. 4)
//   2. 16 KB Get anomaly           -> queue Get cost at 16 KB (Fig. 6)
//   3. reject- vs queue-throttling -> table phase time under overload
//   4. queue sharding              -> shared vs per-worker queues (Fig. 6/7)
//
// Flags: --csv.
#include <cstdio>

#include "bench_util.hpp"
#include "core/blob_benchmark.hpp"
#include "core/queue_benchmark.hpp"
#include "core/table_benchmark.hpp"

namespace {

azurebench::BlobBenchConfig blob_cfg(bool replica_reads) {
  azurebench::BlobBenchConfig cfg;
  cfg.workers = 48;
  cfg.repeats = 3;
  cfg.cloud.blob.replica_reads = replica_reads;
  return cfg;
}

azurebench::QueueSeparateConfig queue_cfg(bool anomaly) {
  azurebench::QueueSeparateConfig cfg;
  cfg.workers = 16;
  cfg.total_messages = 4'000;
  cfg.message_sizes = {8 << 10, 16 << 10, 32 << 10};
  cfg.cloud.queue.model_16k_get_anomaly = anomaly;
  return cfg;
}

azurebench::TableBenchConfig table_cfg(cluster::ThrottleMode mode) {
  azurebench::TableBenchConfig cfg;
  cfg.workers = 96;
  cfg.entities = 150;
  cfg.entity_sizes = {4 << 10};
  // Push past the account target so the throttle policy matters.
  cfg.cloud.table.query_cpu = sim::millis(2);
  cfg.cloud.table.insert_cpu = sim::millis(3);
  cfg.cloud.table.update_cpu = sim::millis(4);
  cfg.cloud.table.delete_cpu = sim::millis(3);
  cfg.cloud.cluster.throttle_mode = mode;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  benchutil::Table table({"ablation", "variant", "metric", "value"});

  // 1. Replica-served reads.
  for (const bool replicas : {true, false}) {
    const auto r = azurebench::run_blob_benchmark(blob_cfg(replicas));
    table.add_row({"replica-reads", replicas ? "on (default)" : "off",
                   "block full download MiB/s @48 workers",
                   benchutil::fmt(r.block_full_read.mib_per_sec())});
  }

  // 2. The 16 KB Get anomaly.
  for (const bool anomaly : {true, false}) {
    const auto r = azurebench::run_queue_separate_benchmark(queue_cfg(anomaly));
    table.add_row({"16KB-get-anomaly", anomaly ? "on (default)" : "off",
                   "Get ms/op at 8/16/32 KB",
                   benchutil::fmt(r.points[0].get.ms_per_op() * 16) + " / " +
                       benchutil::fmt(r.points[1].get.ms_per_op() * 16) +
                       " / " +
                       benchutil::fmt(r.points[2].get.ms_per_op() * 16)});
  }

  // 3. Rejection- vs queueing-throttle under deliberate overload.
  for (const auto mode :
       {cluster::ThrottleMode::kReject, cluster::ThrottleMode::kQueue}) {
    const auto r = azurebench::run_table_benchmark(table_cfg(mode));
    table.add_row(
        {"throttle-mode",
         mode == cluster::ThrottleMode::kReject ? "reject (default)" : "queue",
         "4KB insert phase s @96 workers (retries)",
         benchutil::fmt(r.points[0].insert.seconds) + " (" +
             std::to_string(r.server_busy_retries) + ")"});
  }

  // 4. Queue sharding: per-worker queues vs one shared queue.
  {
    azurebench::QueueSeparateConfig sep;
    sep.workers = 32;
    sep.total_messages = 4'000;
    sep.message_sizes = {32 << 10};
    const auto s = azurebench::run_queue_separate_benchmark(sep);
    table.add_row({"queue-sharding", "separate (Fig. 6)",
                   "Get ms/op @32 workers",
                   benchutil::fmt(s.points[0].get.ms_per_op() * 32)});

    azurebench::QueueSharedConfig sh;
    sh.workers = 32;
    sh.total_messages = 4'000;
    sh.think_seconds = {1};
    const auto r = azurebench::run_queue_shared_benchmark(sh);
    table.add_row({"queue-sharding", "shared (Fig. 7, think=1s)",
                   "Get ms/op @32 workers",
                   benchutil::fmt(r.points[0].get.ms_per_op())});
  }

  std::printf("AzureBench ablations — model design choices\n\n");
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
