// Generic scenario driver: interprets a declarative spec file
// (framework/scenario.hpp) instead of hard-coding one workload per binary.
//
//   bench_scenario --spec=scenarios/ycsb_a.json
//   bench_scenario --spec=scenarios/fig4.json --csv
//   bench_scenario --smoke --selfcheck
//
// Figure-mode specs replay a paper figure through the shared
// benchfig::figN_table builders, so their table output is byte-identical to
// the legacy fig binary with the same parameters (the `ctest -L scenario`
// parity tests diff the two). Generic-mode specs run an open-loop
// LoadEngine workload (scenario_runner.hpp).
//
// Flags:
//   --spec=FILE    the scenario spec (required unless --smoke)
//   --smoke        built-in tiny four-service spec for CI
//   --backend=B    override the spec's backend (azure | s3 | tiered);
//                  generic mode only, and the mix must fit the target
//                  backend's capabilities
//   --csv          machine-diffable output: the table(s) only, as CSV
//   --selfcheck    run twice, fail (exit 1) unless byte-identical —
//                  including the obs JSON export when --obs is on
//   --obs, --obs-json=FILE   observability export (bench_util.hpp)
//
// Exit codes: 0 ok, 1 selfcheck divergence, 2 usage/spec error.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "fig_workloads.hpp"
#include "framework/scenario.hpp"
#include "obs/observer.hpp"
#include "scenario_runner.hpp"

namespace {

// A little of everything, sized to finish in well under a second of wall
// time: all four services, a zipf hot spot, faults off.
constexpr const char* kSmokeSpec = R"({
  "name": "smoke",
  "description": "CI smoke: every service, tiny scale",
  "seed": 7,
  "operations": 400,
  "read_ratio": 0.6,
  "populate": 64,
  "arrivals": {"kind": "poisson", "rate_per_sec": 200.0},
  "keys": {"kind": "zipf", "space": 64, "zipf_s": 0.99},
  "values": {"bytes": 2048},
  "mix": [
    {"service": "blob", "op": "mixed", "weight": 1.0},
    {"service": "queue", "op": "mixed", "weight": 1.0},
    {"service": "table", "op": "mixed", "weight": 1.0},
    {"service": "sql", "op": "mixed", "weight": 1.0}
  ]
})";

benchutil::Table figure_table(const framework::Scenario& sc,
                              obs::Observer* observer) {
  const framework::ScenarioFigure& f = *sc.figure;
  switch (f.id) {
    case 4: {
      benchfig::Fig4Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.repeats = f.repeats;
      o.no_replica_reads = f.no_replica_reads;
      o.observer = observer;
      return benchfig::fig4_table(o);
    }
    case 5: {
      benchfig::Fig5Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.repeats = f.repeats;
      o.observer = observer;
      return benchfig::fig5_table(o);
    }
    case 6: {
      benchfig::Fig6Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.messages = f.messages;
      o.no_anomaly = f.no_anomaly;
      o.observer = observer;
      return benchfig::fig6_table(o);
    }
    case 7: {
      benchfig::Fig7Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.messages = f.messages;
      o.observer = observer;
      return benchfig::fig7_table(o);
    }
    case 8: {
      benchfig::Fig8Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.entities = f.entities;
      o.observer = observer;
      return benchfig::fig8_table(o);
    }
    default: {
      benchfig::Fig9Options o;
      if (!f.workers.empty()) o.workers = f.workers;
      o.entities = f.entities;
      o.messages = f.messages;
      o.observer = observer;
      return benchfig::fig9_table(o);
    }
  }
}

/// One full run: canonical report string plus the obs JSON (empty when no
/// observer). The selfcheck contract compares both.
struct RunOutput {
  std::string canonical;
  std::string obs_json;
  benchutil::Table table;          // figure table or mix table
  benchutil::Table extra{{}};      // generic mode: the load table
  bool has_extra = false;
};

RunOutput run_once(const framework::Scenario& sc, bool want_obs) {
  obs::Observer observer;
  obs::Observer* op = want_obs ? &observer : nullptr;
  if (sc.figure_mode()) {
    RunOutput out{.canonical = "", .obs_json = "", .table = figure_table(sc, op)};
    out.canonical = "scenario," + sc.name + "\n" + out.table.csv_string();
    if (want_obs) out.obs_json = observer.to_json();
    return out;
  }
  const benchscn::ScenarioRunResult r = benchscn::run_generic_scenario(sc, op);
  RunOutput out{.canonical = benchscn::canonical_report(sc, r),
                .obs_json = "",
                .table = benchscn::mix_table(sc, r)};
  out.extra = benchscn::load_table(r);
  out.has_extra = true;
  if (want_obs) out.obs_json = observer.to_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::flag_set(argc, argv, "--smoke");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const bool selfcheck = benchutil::flag_set(argc, argv, "--selfcheck");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  // Both `--spec=FILE` and `--spec FILE` are accepted.
  std::string spec_path = benchutil::flag_value(argc, argv, "--spec");
  if (spec_path.empty()) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--spec") == 0) {
        spec_path = argv[i + 1];
        break;
      }
    }
  }

  framework::Scenario sc;
  try {
    if (smoke) {
      sc = framework::parse_scenario(kSmokeSpec);
    } else if (!spec_path.empty()) {
      sc = framework::load_scenario_file(spec_path);
    } else {
      std::fprintf(stderr,
                   "usage error: give --spec=FILE (or --smoke); see "
                   "scenarios/ for the pack\n");
      return 2;
    }
  } catch (const framework::ScenarioError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 2;
  }

  // --backend=B re-targets a generic spec at another backend without
  // editing the file (the cross-backend cost sweeps run one spec N times).
  const std::string backend_flag =
      benchutil::flag_value(argc, argv, "--backend");
  if (!backend_flag.empty()) {
    if (sc.figure_mode()) {
      std::fprintf(stderr,
                   "usage error: --backend does not apply to figure-replay "
                   "specs (figures are defined by the Azure contract)\n");
      return 2;
    }
    if (backend_flag == "azure") {
      sc.backend = framework::BackendKind::kAzure;
    } else if (backend_flag == "s3") {
      sc.backend = framework::BackendKind::kS3;
    } else if (backend_flag == "tiered") {
      sc.backend = framework::BackendKind::kTiered;
    } else {
      std::fprintf(stderr,
                   "usage error: unknown backend '%s' (azure | s3 | tiered)\n",
                   backend_flag.c_str());
      return 2;
    }
    // The parser validated the mix against the spec's own backend; the
    // override must re-check against the new one.
    for (const framework::ScenarioMixEntry& e : sc.mix) {
      if (!framework::backend_supports(sc.backend, e.service)) {
        std::fprintf(stderr,
                     "usage error: backend '%s' has no %s service — the mix "
                     "in this spec does not fit it\n",
                     framework::backend_name(sc.backend),
                     framework::service_name(e.service));
        return 2;
      }
    }
  }

  const RunOutput out = run_once(sc, obs_flags.enabled);
  if (selfcheck) {
    const RunOutput replay = run_once(sc, obs_flags.enabled);
    if (replay.canonical != out.canonical ||
        replay.obs_json != out.obs_json) {
      std::fprintf(stderr,
                   "selfcheck FAILED: replay of scenario '%s' diverged\n",
                   sc.name.c_str());
      return 1;
    }
  }

  if (csv) {
    out.table.print_csv();
    if (out.has_extra) {
      std::printf("\n");
      out.extra.print_csv();
    }
  } else {
    std::printf("AzureBench scenario '%s'%s%s\n", sc.name.c_str(),
                sc.description.empty() ? "" : " — ",
                sc.description.c_str());
    if (sc.figure_mode()) {
      std::printf("figure-replay mode: fig%d (tables shared with the legacy "
                  "binary)\n\n",
                  sc.figure->id);
    } else {
      std::printf(
          "generic mode: backend %s, %lld ops, seed %llu, populate %lld per "
          "service\n\n",
          framework::backend_name(sc.backend),
          static_cast<long long>(sc.operations),
          static_cast<unsigned long long>(sc.seed),
          static_cast<long long>(sc.populate_count()));
    }
    out.table.print();
    if (out.has_extra) {
      std::printf("\n");
      out.extra.print();
    }
    if (selfcheck) std::printf("\nselfcheck: PASS (byte-identical replay)\n");
  }

  // Export from the *first* run's observer state is gone by now (scoped in
  // run_once), so re-run the export path only via the flags contract:
  if (obs_flags.enabled && !obs_flags.json_path.empty()) {
    std::FILE* f = std::fopen(obs_flags.json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", obs_flags.json_path.c_str());
      return 2;
    }
    std::fwrite(out.obs_json.data(), 1, out.obs_json.size(), f);
    std::fclose(f);
    std::printf("obs: wrote %s\n", obs_flags.json_path.c_str());
  }
  return 0;
}
