// Google-benchmark microbenchmarks of the simulated storage services:
// host-side cost per simulated operation, plus the operation's virtual-time
// latency as a reported counter.
#include <benchmark/benchmark.h>

#include <optional>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"

namespace {

struct World {
  sim::Simulation sim;
  azure::CloudEnvironment env{sim};
  netsim::Nic nic{sim,
                  netsim::NicConfig{100e6, 100e6, sim::micros(50), 65536.0}};
  azure::CloudStorageAccount account{env, nic};
};

constexpr int kOpsPerRun = 200;

sim::Task<void> queue_ops(World& w) {
  auto q = w.account.create_cloud_queue_client().get_queue_reference("q");
  co_await q.create();
  for (int i = 0; i < kOpsPerRun; ++i) {
    co_await q.add_message(azure::Payload::synthetic(4096));
    auto msg = co_await q.get_message();
    if (msg) co_await q.delete_message(*msg);
    // Stay under the 500 msg/s target (3 transactions per loop).
    co_await w.sim.delay(sim::millis(10));
  }
}

void BM_QueuePutGetDelete(benchmark::State& state) {
  double virtual_seconds = 0;
  for (auto _ : state) {
    World w;
    w.sim.spawn(queue_ops(w));
    w.sim.run();
    virtual_seconds += sim::to_seconds(w.sim.now());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerRun * 3);
  state.counters["virt_ms_per_op"] = benchmark::Counter(
      virtual_seconds * 1000.0 /
      static_cast<double>(state.iterations() * kOpsPerRun * 3));
}
BENCHMARK(BM_QueuePutGetDelete);

sim::Task<void> blob_ops(World& w) {
  auto c = w.account.create_cloud_blob_client().get_container_reference("c");
  co_await c.create();
  auto blob = c.get_page_blob_reference("p");
  co_await blob.create(static_cast<std::int64_t>(kOpsPerRun) << 20);
  for (int i = 0; i < kOpsPerRun; ++i) {
    co_await blob.put_page(static_cast<std::int64_t>(i) << 20,
                           azure::Payload::synthetic(1 << 20));
  }
  for (int i = 0; i < kOpsPerRun; ++i) {
    co_await blob.get_page(static_cast<std::int64_t>(i) << 20, 1 << 20);
  }
}

void BM_BlobPagePutGet(benchmark::State& state) {
  double virtual_seconds = 0;
  for (auto _ : state) {
    World w;
    w.sim.spawn(blob_ops(w));
    w.sim.run();
    virtual_seconds += sim::to_seconds(w.sim.now());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerRun * 2);
  state.counters["virt_ms_per_op"] = benchmark::Counter(
      virtual_seconds * 1000.0 /
      static_cast<double>(state.iterations() * kOpsPerRun * 2));
}
BENCHMARK(BM_BlobPagePutGet);

sim::Task<void> table_ops(World& w) {
  auto t = w.account.create_cloud_table_client().get_table_reference("t");
  co_await t.create();
  for (int i = 0; i < kOpsPerRun; ++i) {
    azure::TableEntity e;
    e.partition_key = "p";
    e.row_key = "r" + std::to_string(i);
    e.properties["data"] = azure::Payload::synthetic(4096);
    co_await t.insert(e);
    (void)co_await t.query("p", e.row_key);
    // Two transactions per loop; stay under the 500 entities/s target.
    co_await w.sim.delay(sim::millis(6));
  }
}

void BM_TableInsertQuery(benchmark::State& state) {
  double virtual_seconds = 0;
  for (auto _ : state) {
    World w;
    w.sim.spawn(table_ops(w));
    w.sim.run();
    virtual_seconds += sim::to_seconds(w.sim.now());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerRun * 2);
  state.counters["virt_ms_per_op"] = benchmark::Counter(
      virtual_seconds * 1000.0 /
      static_cast<double>(state.iterations() * kOpsPerRun * 2));
}
BENCHMARK(BM_TableInsertQuery);

}  // namespace

BENCHMARK_MAIN();
