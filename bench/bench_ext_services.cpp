// Extension benches for the services the paper defers to future work:
//
//   * caching service vs. durable storage: read latency and hot-read
//     throughput;
//   * internal TCP endpoints vs. queue-mediated messaging;
//   * deployment provisioning: time-to-ready vs. instance count and VM
//     size ("resource provisioning times and application deployment
//     timings").
//
// Flags: --csv.
#include <cstdio>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "bench_util.hpp"
#include "fabric/endpoints.hpp"
#include "fabric/provisioning.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"

namespace {

using sim::Task;

struct World {
  sim::Simulation sim;
  azure::CloudEnvironment env{sim};
  netsim::Nic nic{sim,
                  netsim::NicConfig{12.5e6, 12.5e6, sim::micros(50), 65536.0}};
  azure::CloudStorageAccount account{env, nic};
};

/// Measures the virtual time of one coroutine op.
template <class Op>
double measure_ms(World& w, Op op) {
  const sim::TimePoint t0 = w.sim.now();
  w.sim.spawn(op(w));
  w.sim.run();
  return sim::to_millis(w.sim.now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  benchutil::Table table({"experiment", "variant", "value"});

  // ------------------------------------------- cache vs. durable storage --
  {
    World w;
    w.sim.spawn([](World& ww) -> Task<> {
      auto c = ww.account.create_cloud_blob_client().get_container_reference(
          "data");
      co_await c.create();
      co_await c.get_block_blob_reference("item").upload_text(
          azure::Payload::synthetic(64 << 10));
      auto t = ww.account.create_cloud_table_client().get_table_reference(
          "items");
      co_await t.create();
      azure::TableEntity e;
      e.partition_key = "p";
      e.row_key = "item";
      e.properties["data"] = azure::Payload::synthetic(64 << 10);
      co_await t.insert(e);
      co_await ww.account.create_cloud_cache_client()
          .get_cache_reference("hot")
          .put("item", azure::Payload::synthetic(64 << 10));
    }(w));
    w.sim.run();

    const double cache_ms = measure_ms(w, [](World& ww) -> Task<> {
      (void)co_await ww.account.create_cloud_cache_client()
          .get_cache_reference("hot")
          .get("item");
    });
    const double table_ms = measure_ms(w, [](World& ww) -> Task<> {
      (void)co_await ww.account.create_cloud_table_client()
          .get_table_reference("items")
          .query("p", "item");
    });
    const double blob_ms = measure_ms(w, [](World& ww) -> Task<> {
      (void)co_await ww.account.create_cloud_blob_client()
          .get_container_reference("data")
          .get_block_blob_reference("item")
          .download_text();
    });
    table.add_row({"64KB hot read latency", "cache",
                   benchutil::fmt(cache_ms) + " ms"});
    table.add_row({"64KB hot read latency", "table",
                   benchutil::fmt(table_ms) + " ms"});
    table.add_row({"64KB hot read latency", "blob",
                   benchutil::fmt(blob_ms) + " ms"});
  }

  // --------------------------------- TCP endpoints vs. queue messaging --
  {
    World w;
    auto& net = w.env.storage_cluster().network();
    netsim::Nic nic_b(w.sim, netsim::NicConfig{12.5e6, 12.5e6,
                                               sim::micros(50), 65536.0});
    fabric::InternalEndpoint a(w.sim, net, w.nic);
    fabric::InternalEndpoint b(w.sim, net, nic_b);

    constexpr int kMessages = 500;
    sim::TimePoint t0 = w.sim.now();
    w.sim.spawn([](fabric::InternalEndpoint& from,
                   fabric::InternalEndpoint& to) -> Task<> {
      for (int i = 0; i < kMessages; ++i) {
        co_await from.send(to, azure::Payload::synthetic(4 << 10));
      }
    }(a, b));
    w.sim.spawn([](fabric::InternalEndpoint& ep) -> Task<> {
      for (int i = 0; i < kMessages; ++i) (void)co_await ep.receive();
    }(b));
    w.sim.run();
    const double tcp_ms =
        sim::to_millis(w.sim.now() - t0) / kMessages;

    t0 = w.sim.now();
    w.sim.spawn([](World& ww) -> Task<> {
      auto q = ww.account.create_cloud_queue_client().get_queue_reference(
          "relay");
      co_await q.create();
      for (int i = 0; i < kMessages; ++i) {
        co_await q.add_message(azure::Payload::synthetic(4 << 10));
        auto m = co_await q.get_message();
        if (m) co_await q.delete_message(*m);
        co_await ww.sim.delay(sim::millis(8));  // stay under 500 msg/s
      }
    }(w));
    w.sim.run();
    const double queue_ms =
        sim::to_millis(w.sim.now() - t0) / kMessages;
    table.add_row({"4KB role-to-role message", "TCP endpoint",
                   benchutil::fmt(tcp_ms, 3) + " ms"});
    table.add_row({"4KB role-to-role message", "queue (put+get+delete)",
                   benchutil::fmt(queue_ms, 3) + " ms"});
  }

  // ----------------------------------------------- provisioning timings --
  for (const int instances : {1, 8, 32, 96}) {
    sim::Simulation s;
    fabric::ProvisioningReport report;
    s.spawn([](sim::Simulation& sim, int n,
               fabric::ProvisioningReport& out) -> Task<> {
      out = co_await fabric::provision_deployment(sim, n,
                                                  fabric::VmSize::kSmall);
    }(s, instances, report));
    s.run();
    table.add_row(
        {"provisioning (Small VMs)", std::to_string(instances) + " instances",
         "first ready " +
             benchutil::fmt(sim::to_seconds(report.time_to_first_instance()),
                            0) +
             " s, all ready " +
             benchutil::fmt(sim::to_seconds(report.time_to_all_instances()),
                            0) +
             " s"});
  }

  std::printf(
      "AzureBench extensions — services the paper defers to future work\n\n");
  if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
