// Extension benchmark: open-loop saturation sweep. Not a paper figure — the
// paper's workloads are closed-loop (Section III: each of ~100 workers waits
// for its previous request), which can never overload the account target by
// more than one in-flight request per worker. This sweep drives the cluster
// with framework::LoadEngine instead: seeded Poisson arrivals whose offered
// rate scales with the session population, so the account transaction target
// (5,000 tx/s, Section IV) is actually crossed and the overload behaviour —
// queueing, ServerBusy rejections, shed arrivals, tail-latency growth — is
// measured rather than assumed.
//
// Each population P offers P sessions at P/10 arrivals per second (a 10
// virtual-second ramp). A session issues one cluster request and retries
// ServerBusy with doubling backoff up to 4 attempts; a session that exhausts
// its budget dead-letters as a throttle failure. The top of the sweep holds
// >= 100k concurrent sessions in the admission window (column peak_if) —
// the population scale ROADMAP.md targets, on one host, in virtual time.
//
// Flags:
//   --smoke          tiny populations for CI
//   --population=N   single population instead of the default sweep
//   --rate_scale=X   multiply the offered arrival rate (default 1.0): 0.5
//                    halves the P/10 per-second rate, 2.0 doubles it — the
//                    knob that moves a fixed population across the
//                    under-/over-load boundary
//   --csv            CSV instead of the fixed-width table
//   --json           JSON rows instead of the table
//   --selfcheck      run the sweep twice, fail unless byte-identical
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/config.hpp"
#include "cluster/errors.hpp"
#include "cluster/storage_cluster.hpp"
#include "framework/load_engine.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace {

constexpr int kClientNics = 64;
constexpr int kMaxAttempts = 4;
constexpr int kWindowCap = 131072;

struct PointResult {
  std::int64_t population = 0;
  framework::LoadStats stats;
  double duration_s = 0;   // virtual time of the last completion
  double ops_per_sec = 0;  // completed sessions / duration
  // Latency of *successful* sessions, arrival -> completion (ns).
  std::int64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0;
};

sim::Task<void> session_body(sim::Simulation& s, cluster::StorageCluster& cl,
                             netsim::Nic& nic,
                             framework::LoadEngine::Session& sess) {
  cluster::RequestCost cost;
  cost.server_cpu = sim::micros(500);
  const std::uint64_t hash = sess.rng.next_u64();
  for (int attempt = 1;; ++attempt) {
    bool busy = false;
    try {
      co_await cl.execute(nic, hash, cost);
    } catch (const cluster::ServerBusyError&) {
      if (attempt >= kMaxAttempts) throw;  // engine books the throttle failure
      busy = true;
    }
    if (!busy) co_return;
    const sim::Duration backoff =
        std::min(sim::millis(250) << (attempt - 1), sim::seconds(1));
    co_await s.delay(backoff + sim::micros(sess.rng.uniform(0, 1000)));
  }
}

PointResult run_point(std::int64_t population, std::uint64_t seed,
                      double rate_scale) {
  sim::Simulation s;
  obs::Observer observer;
  s.set_observer(&observer);

  cluster::ClusterConfig cc;
  cc.partition_servers = 64;  // the paper deployment's server count
  cluster::StorageCluster cl(s, cc);

  std::vector<std::unique_ptr<netsim::Nic>> nics;
  nics.reserve(kClientNics);
  for (int i = 0; i < kClientNics; ++i) {
    nics.push_back(std::make_unique<netsim::Nic>(
        s, netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0}));
  }

  framework::LoadEngineConfig ecfg;
  ecfg.arrivals.kind = framework::ArrivalConfig::Kind::kPoisson;
  ecfg.arrivals.rate_per_sec =
      static_cast<double>(population) / 10.0 * rate_scale;
  ecfg.arrivals.seed = seed;
  ecfg.max_sessions = population;
  ecfg.max_in_flight =
      static_cast<int>(std::min<std::int64_t>(population, kWindowCap));
  ecfg.max_pending = ecfg.max_in_flight;
  ecfg.session_seed = seed ^ 0xBE7Cull;
  framework::LoadEngine engine(
      s, ecfg, [&](framework::LoadEngine::Session& sess) {
        netsim::Nic& nic =
            *nics[static_cast<std::size_t>(sess.id) % kClientNics];
        return session_body(s, cl, nic, sess);
      });
  engine.start();
  s.run();

  PointResult r;
  r.population = population;
  r.stats = engine.stats();
  r.duration_s = sim::to_seconds(r.stats.last_completion);
  r.ops_per_sec = r.duration_s > 0
                      ? static_cast<double>(r.stats.completed) / r.duration_s
                      : 0;
  const obs::LatencyHistogram& h =
      observer.metrics().histogram("load.session_latency");
  r.p50 = h.quantile(0.50);
  r.p95 = h.quantile(0.95);
  r.p99 = h.quantile(0.99);
  r.p999 = h.quantile(0.999);
  return r;
}

std::vector<std::string> row_cells(const PointResult& r) {
  const framework::LoadStats& st = r.stats;
  const double busy_pct =
      st.offered > 0 ? 100.0 * static_cast<double>(st.throttle_failures) /
                           static_cast<double>(st.offered)
                     : 0;
  const double shed_pct =
      st.offered > 0 ? 100.0 * static_cast<double>(st.shed) /
                           static_cast<double>(st.offered)
                     : 0;
  return {std::to_string(r.population),
          std::to_string(st.offered),
          std::to_string(st.completed),
          std::to_string(st.shed),
          std::to_string(st.throttle_failures),
          std::to_string(st.peak_in_flight),
          benchutil::fmt(r.ops_per_sec, 1),
          benchutil::fmt(sim::to_seconds(r.p50) * 1e3, 3),
          benchutil::fmt(sim::to_seconds(r.p95) * 1e3, 3),
          benchutil::fmt(sim::to_seconds(r.p99) * 1e3, 3),
          benchutil::fmt(sim::to_seconds(r.p999) * 1e3, 3),
          benchutil::fmt(busy_pct, 2),
          benchutil::fmt(shed_pct, 2)};
}

const std::vector<std::string>& headers() {
  static const std::vector<std::string> h = {
      "population", "offered",  "completed", "shed",    "busy",
      "peak_if",    "ops_per_s", "p50_ms",   "p95_ms",  "p99_ms",
      "p999_ms",    "busy_pct",  "shed_pct"};
  return h;
}

/// One canonical string for the whole sweep — the artifact --selfcheck
/// compares byte-for-byte across two same-seed runs.
std::string render_canonical(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }
  return out;
}

std::vector<std::vector<std::string>> run_sweep(
    const std::vector<std::int64_t>& populations, std::uint64_t seed,
    double rate_scale) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(populations.size());
  for (const std::int64_t p : populations) {
    rows.push_back(row_cells(run_point(p, seed, rate_scale)));
  }
  return rows;
}

void print_json(const std::vector<std::vector<std::string>>& rows) {
  std::printf("[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  {");
    for (std::size_t c = 0; c < rows[i].size(); ++c) {
      std::printf("\"%s\": %s%s", headers()[c].c_str(), rows[i][c].c_str(),
                  (c + 1 < rows[i].size()) ? ", " : "");
    }
    std::printf("}%s\n", (i + 1 < rows.size()) ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::flag_set(argc, argv, "--smoke");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const bool json = benchutil::flag_set(argc, argv, "--json");
  const bool selfcheck = benchutil::flag_set(argc, argv, "--selfcheck");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      benchutil::flag_int(argc, argv, "--seed", 0x10AD));
  // Strict double parse: `--rate_scale=fast`, `--rate_scale=1.5x`, and
  // `--rate_scale=inf` are all usage errors, not a garbage sweep.
  const double rate_scale =
      benchutil::flag_double(argc, argv, "--rate_scale", 1.0, 1e-3, 1e3);

  std::vector<std::int64_t> populations;
  if (const std::int64_t p =
          benchutil::flag_int(argc, argv, "--population", 0, 1);
      p > 0) {
    populations = {p};
  } else if (smoke) {
    populations = {1'000, 4'000};
  } else {
    populations = {1'000, 10'000, 100'000, 1'000'000};
  }

  const auto rows = run_sweep(populations, seed, rate_scale);
  if (selfcheck) {
    const auto again = run_sweep(populations, seed, rate_scale);
    if (render_canonical(rows) != render_canonical(again)) {
      std::fprintf(stderr, "selfcheck FAILED: replay diverged\n");
      return 1;
    }
    std::fprintf(stderr, "selfcheck ok: two runs byte-identical\n");
  }

  benchutil::Table table(headers());
  for (const auto& row : rows) table.add_row(row);
  if (json) {
    print_json(rows);
  } else if (csv) {
    table.print_csv();
  } else {
    table.print();
  }
  return 0;
}
