// Reproduces Fig. 9 of the paper: per-operation time for Table storage
// (insert, query, update, delete) and Queue storage (put, peek, get) vs.
// workers. Following the paper, the per-operation time is the total time
// taken by all workers to finish the operation divided by the number of
// workers (and here additionally by the per-worker op count to express it
// in ms/op). Queue numbers use 32 KB messages; table numbers use 32 KB
// entities — the midpoint sizes of Figs. 6 and 8.
//
// Flags: --workers=N, --quick, --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "core/queue_benchmark.hpp"
#include "core/table_benchmark.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const auto sweep = benchutil::worker_sweep(argc, argv);
  const bool quick = benchutil::flag_set(argc, argv, "--quick");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  std::printf(
      "AzureBench Fig. 9 — per-operation time (ms) for Table and Queue "
      "storage\n32 KB payloads\n\n");

  benchutil::Table table({"workers", "tbl_insert", "tbl_query", "tbl_update",
                          "tbl_delete", "q_put", "q_peek", "q_get"});

  for (const int workers : sweep) {
    azurebench::TableBenchConfig tcfg;
    tcfg.workers = workers;
    tcfg.entities = quick ? 100 : 500;
    tcfg.entity_sizes = {32 << 10};
    if (obs_flags.enabled) tcfg.observer = &observer;
    const auto t = azurebench::run_table_benchmark(tcfg);
    const auto& tp = t.points.front();

    azurebench::QueueSeparateConfig qcfg;
    qcfg.workers = workers;
    qcfg.total_messages = quick ? 2'000 : 20'000;
    qcfg.message_sizes = {32 << 10};
    if (obs_flags.enabled) qcfg.observer = &observer;
    const auto q = azurebench::run_queue_separate_benchmark(qcfg);
    const auto& qp = q.points.front();

    // Phase time is per-worker (longest worker); ops are fleet-wide, so
    // ms/op * workers = mean per-operation time.
    auto per_op = [&](const azurebench::PhaseReport& r) {
      return benchutil::fmt(r.ms_per_op() * workers);
    };
    table.add_row({std::to_string(workers), per_op(tp.insert),
                   per_op(tp.query), per_op(tp.update), per_op(tp.erase),
                   per_op(qp.put), per_op(qp.peek), per_op(qp.get)});
  }
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shape: Queue storage scales better than Table storage as "
        "workers\nincrease — table per-op times inflate while queue per-op "
        "times stay flat.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
