// Reproduces Fig. 9 of the paper: per-operation time for Table storage
// (insert, query, update, delete) and Queue storage (put, peek, get) vs.
// workers. Following the paper, the per-operation time is the total time
// taken by all workers to finish the operation divided by the number of
// workers (and here additionally by the per-worker op count to express it
// in ms/op). Queue numbers use 32 KB messages; table numbers use 32 KB
// entities — the midpoint sizes of Figs. 6 and 8.
//
// The table itself is built by benchfig::fig9_table (fig_workloads.hpp),
// shared with the declarative scenario driver (bench_scenario.cpp).
//
// Flags: --workers=N, --quick, --csv, --obs, --obs-json=FILE.
#include <cstdio>

#include "bench_util.hpp"
#include "fig_workloads.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  const bool quick = benchutil::flag_set(argc, argv, "--quick");
  const bool csv = benchutil::flag_set(argc, argv, "--csv");
  const benchutil::ObsFlags obs_flags = benchutil::obs_flags(argc, argv);
  obs::Observer observer;

  benchfig::Fig9Options opt;
  opt.workers = benchutil::worker_sweep(argc, argv);
  opt.entities = quick ? 100 : 500;
  opt.messages = quick ? 2'000 : 20'000;
  if (obs_flags.enabled) opt.observer = &observer;

  std::printf(
      "AzureBench Fig. 9 — per-operation time (ms) for Table and Queue "
      "storage\n32 KB payloads\n\n");

  const benchutil::Table table = benchfig::fig9_table(opt);
  if (csv) {
    table.print_csv();
  } else {
    table.print();
    std::printf(
        "\nPaper shape: Queue storage scales better than Table storage as "
        "workers\nincrease — table per-op times inflate while queue per-op "
        "times stay flat.\n");
  }
  benchutil::finish_obs(obs_flags, observer);
  return 0;
}
