// The six figure workloads (fig4–fig9) as reusable table builders.
//
// Each figure used to live only inside its bench binary's main(); the
// scenario driver (bench_scenario.cpp) needs the same workloads as data, so
// the table-building loops moved here verbatim. Two callers share each
// function — the legacy binary (flags → Options) and the scenario
// interpreter (spec file → Options) — which is what makes the byte-identity
// guarantee structural: both render the figure through the same code path,
// so a spec with the same parameters *cannot* drift from the binary.
//
// The functions build exactly the table the binary prints; banners, paper
// reference prose, and sharded-kernel side paths stay in the binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/blob_benchmark.hpp"
#include "core/queue_benchmark.hpp"
#include "core/table_benchmark.hpp"
#include "obs/observer.hpp"

namespace benchfig {

/// The paper's default ten-point worker sweep and its --quick subset.
inline std::vector<int> default_worker_sweep() {
  return {1, 2, 4, 8, 16, 32, 48, 64, 80, 96};
}
inline std::vector<int> quick_worker_sweep() { return {1, 4, 16, 48, 96}; }

// ------------------------------------------------------------------ fig4 ----

struct Fig4Options {
  std::vector<int> workers = default_worker_sweep();
  int repeats = 10;
  bool no_replica_reads = false;
  obs::Observer* observer = nullptr;
};

/// Fig. 4: blob upload/download time and throughput vs. workers.
inline benchutil::Table fig4_table(const Fig4Options& opt) {
  benchutil::Table table({"workers", "pageUp_s", "pageUp_MiBps", "blockUp_s",
                          "blockUp_MiBps", "pageDown_s", "pageDown_MiBps",
                          "blockDown_s", "blockDown_MiBps", "barrier_s"});
  for (const int workers : opt.workers) {
    azurebench::BlobBenchConfig cfg;
    cfg.workers = workers;
    cfg.repeats = opt.repeats;
    cfg.cloud.blob.replica_reads = !opt.no_replica_reads;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    const auto r = azurebench::run_blob_benchmark(cfg);
    table.add_row({std::to_string(workers),
                   benchutil::fmt(r.page_upload.seconds),
                   benchutil::fmt(r.page_upload.mib_per_sec()),
                   benchutil::fmt(r.block_upload.seconds),
                   benchutil::fmt(r.block_upload.mib_per_sec()),
                   benchutil::fmt(r.page_full_read.seconds),
                   benchutil::fmt(r.page_full_read.mib_per_sec()),
                   benchutil::fmt(r.block_full_read.seconds),
                   benchutil::fmt(r.block_full_read.mib_per_sec()),
                   benchutil::fmt(r.barrier_seconds)});
  }
  return table;
}

// ------------------------------------------------------------------ fig5 ----

struct Fig5Options {
  std::vector<int> workers = default_worker_sweep();
  int repeats = 10;
  obs::Observer* observer = nullptr;
};

/// Fig. 5: chunk-wise blob download (random pages / sequential blocks).
inline benchutil::Table fig5_table(const Fig5Options& opt) {
  benchutil::Table table({"workers", "pageRand_s", "pageRand_MiBps",
                          "pageRand_ms/op", "blockSeq_s", "blockSeq_MiBps",
                          "blockSeq_ms/op"});
  for (const int workers : opt.workers) {
    azurebench::BlobBenchConfig cfg;
    cfg.workers = workers;
    cfg.repeats = opt.repeats;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    const auto r = azurebench::run_blob_benchmark(cfg);
    table.add_row({std::to_string(workers),
                   benchutil::fmt(r.page_random_read.seconds),
                   benchutil::fmt(r.page_random_read.mib_per_sec()),
                   benchutil::fmt(r.page_random_read.ms_per_op() * workers),
                   benchutil::fmt(r.block_seq_read.seconds),
                   benchutil::fmt(r.block_seq_read.mib_per_sec()),
                   benchutil::fmt(r.block_seq_read.ms_per_op() * workers)});
  }
  return table;
}

// ------------------------------------------------------------------ fig6 ----

struct Fig6Options {
  std::vector<int> workers = default_worker_sweep();
  std::int64_t messages = 20'000;
  bool no_anomaly = false;
  obs::Observer* observer = nullptr;
};

/// Fig. 6: queue storage, separate queue per worker, one series per size.
inline benchutil::Table fig6_table(const Fig6Options& opt) {
  benchutil::Table table({"workers", "size_KB", "put_s", "peek_s", "get_s",
                          "put_ms/op", "peek_ms/op", "get_ms/op"});
  for (const int workers : opt.workers) {
    azurebench::QueueSeparateConfig cfg;
    cfg.workers = workers;
    cfg.total_messages = opt.messages;
    cfg.cloud.queue.model_16k_get_anomaly = !opt.no_anomaly;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    const auto r = azurebench::run_queue_separate_benchmark(cfg);
    for (const auto& p : r.points) {
      table.add_row(
          {std::to_string(workers), std::to_string(p.message_size / 1024),
           benchutil::fmt(p.put.seconds), benchutil::fmt(p.peek.seconds),
           benchutil::fmt(p.get.seconds),
           benchutil::fmt(p.put.ms_per_op() * workers),
           benchutil::fmt(p.peek.ms_per_op() * workers),
           benchutil::fmt(p.get.ms_per_op() * workers)});
    }
  }
  return table;
}

// ------------------------------------------------------------------ fig7 ----

struct Fig7Options {
  /// The default sweep starts at 2: a single worker cycling 20,000
  /// messages with 1–5 s think times spans >10 virtual days — past the
  /// 7-day message TTL the queue barrier depends on.
  std::vector<int> workers = {2, 4, 8, 16, 32, 48, 64, 80, 96};
  std::int64_t messages = 20'000;
  obs::Observer* observer = nullptr;
};

/// Fig. 7: queue storage, single shared queue, one series per think time.
inline benchutil::Table fig7_table(const Fig7Options& opt) {
  benchutil::Table table({"workers", "think_s", "put_s", "peek_s", "get_s",
                          "put_ms/op", "peek_ms/op", "get_ms/op"});
  for (const int workers : opt.workers) {
    azurebench::QueueSharedConfig cfg;
    cfg.workers = workers;
    cfg.total_messages = opt.messages;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    const auto r = azurebench::run_queue_shared_benchmark(cfg);
    for (const auto& p : r.points) {
      table.add_row({std::to_string(workers), std::to_string(p.think_seconds),
                     benchutil::fmt(p.put.seconds),
                     benchutil::fmt(p.peek.seconds),
                     benchutil::fmt(p.get.seconds),
                     benchutil::fmt(p.put.ms_per_op()),
                     benchutil::fmt(p.peek.ms_per_op()),
                     benchutil::fmt(p.get.ms_per_op())});
    }
  }
  return table;
}

// ------------------------------------------------------------------ fig8 ----

struct Fig8Options {
  std::vector<int> workers = default_worker_sweep();
  int entities = 500;
  obs::Observer* observer = nullptr;
};

/// Fig. 8: table storage Insert/Query/Update/Delete, one series per size.
inline benchutil::Table fig8_table(const Fig8Options& opt) {
  benchutil::Table table({"workers", "size_KB", "insert_s", "query_s",
                          "update_s", "delete_s", "busy_retries"});
  for (const int workers : opt.workers) {
    azurebench::TableBenchConfig cfg;
    cfg.workers = workers;
    cfg.entities = opt.entities;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    const auto r = azurebench::run_table_benchmark(cfg);
    bool first = true;
    for (const auto& p : r.points) {
      table.add_row({std::to_string(workers),
                     std::to_string(p.entity_size / 1024),
                     benchutil::fmt(p.insert.seconds),
                     benchutil::fmt(p.query.seconds),
                     benchutil::fmt(p.update.seconds),
                     benchutil::fmt(p.erase.seconds),
                     first ? std::to_string(r.server_busy_retries) : ""});
      first = false;
    }
  }
  return table;
}

// ------------------------------------------------------------------ fig9 ----

struct Fig9Options {
  std::vector<int> workers = default_worker_sweep();
  int entities = 500;
  std::int64_t messages = 20'000;
  obs::Observer* observer = nullptr;
};

/// Fig. 9: per-operation time for table and queue storage (32 KB payloads).
inline benchutil::Table fig9_table(const Fig9Options& opt) {
  benchutil::Table table({"workers", "tbl_insert", "tbl_query", "tbl_update",
                          "tbl_delete", "q_put", "q_peek", "q_get"});
  for (const int workers : opt.workers) {
    azurebench::TableBenchConfig tcfg;
    tcfg.workers = workers;
    tcfg.entities = opt.entities;
    tcfg.entity_sizes = {32 << 10};
    if (opt.observer != nullptr) tcfg.observer = opt.observer;
    const auto t = azurebench::run_table_benchmark(tcfg);
    const auto& tp = t.points.front();

    azurebench::QueueSeparateConfig qcfg;
    qcfg.workers = workers;
    qcfg.total_messages = opt.messages;
    qcfg.message_sizes = {32 << 10};
    if (opt.observer != nullptr) qcfg.observer = opt.observer;
    const auto q = azurebench::run_queue_separate_benchmark(qcfg);
    const auto& qp = q.points.front();

    // Phase time is per-worker (longest worker); ops are fleet-wide, so
    // ms/op * workers = mean per-operation time.
    auto per_op = [&](const azurebench::PhaseReport& r) {
      return benchutil::fmt(r.ms_per_op() * workers);
    };
    table.add_row({std::to_string(workers), per_op(tp.insert),
                   per_op(tp.query), per_op(tp.update), per_op(tp.erase),
                   per_op(qp.put), per_op(qp.peek), per_op(qp.get)});
  }
  return table;
}

}  // namespace benchfig
