// Iterative map-reduce example, modeled after Twister4Azure (which the
// paper cites as a framework built on exactly these storage primitives):
// distributed k-means clustering.
//
// Per iteration:
//   * the controller (web role) broadcasts the current centroids through a
//     blob and puts one map task per data partition on the task queue;
//   * workers assign their partition's points to the nearest centroid and
//     write partial sums to Table storage (one row per partition);
//   * the controller reduces the partials into new centroids and starts the
//     next iteration, until the centroids stop moving.
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "fabric/deployment.hpp"
#include "framework/bag_of_tasks.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "strict_parse.hpp"

using sim::Task;

namespace {

constexpr int kPartitions = 8;
constexpr int kPointsPerPartition = 600;
constexpr int kClusters = 3;
constexpr int kWorkers = 4;
constexpr int kMaxIterations = 12;
constexpr double kEpsilon = 1e-3;

struct Point {
  double x, y;
};

/// Deterministic data: three gaussian-ish blobs around fixed centers.
std::vector<Point> partition_points(int partition) {
  sim::Random rng(static_cast<std::uint64_t>(partition) * 40503 + 5);
  const Point centers[kClusters] = {{1.0, 1.0}, {6.0, 2.0}, {3.0, 7.0}};
  std::vector<Point> pts;
  pts.reserve(kPointsPerPartition);
  for (int i = 0; i < kPointsPerPartition; ++i) {
    const auto& c = centers[static_cast<std::size_t>(
        rng.uniform(0, kClusters - 1))];
    pts.push_back(Point{c.x + rng.normal(0.0, 0.6),
                        c.y + rng.normal(0.0, 0.6)});
  }
  return pts;
}

std::string encode_centroids(const std::vector<Point>& c) {
  std::string out;
  for (const auto& p : c) {
    out += std::to_string(p.x) + "," + std::to_string(p.y) + ";";
  }
  return out;
}

/// Strict coordinate parse for decode_centroids. The broadcast blob is
/// machine-written, but a truncated upload or a stale-format blob used to
/// hit unguarded std::stod here — which throws a bare std::invalid_argument
/// that names nothing, or worse, silently accepts trailing junk ("1.0junk"
/// → 1.0). Now any malformed token fails with the offending text spelled
/// out.
double parse_coordinate(std::string_view token) {
  double value = 0;
  if (benchutil::parse_double(token, value) != benchutil::DoubleParse::kOk) {
    throw std::runtime_error("malformed centroid blob: bad coordinate '" +
                             std::string(token) + "'");
  }
  return value;
}

std::vector<Point> decode_centroids(const std::string& s) {
  std::vector<Point> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const auto semi = comma == std::string::npos ? std::string::npos
                                                 : s.find(';', comma);
    if (comma == std::string::npos || semi == std::string::npos) {
      throw std::runtime_error(
          "malformed centroid blob: expected 'x,y;' records, got '" +
          s.substr(pos) + "'");
    }
    const std::string_view view = s;
    out.push_back(Point{parse_coordinate(view.substr(pos, comma - pos)),
                        parse_coordinate(
                            view.substr(comma + 1, semi - comma - 1))});
    pos = semi + 1;
  }
  return out;
}

sim::Task<void> controller(fabric::RoleContext& ctx,
                           framework::BagOfTasksApp& app) {
  auto& sim = ctx.simulation();
  co_await app.provision();
  auto container = ctx.account()
                       .create_cloud_blob_client()
                       .get_container_reference("kmeans");
  co_await container.create_if_not_exists();
  auto table = ctx.account().create_cloud_table_client().get_table_reference(
      "kmeans-partials");
  co_await table.create_if_not_exists();

  std::vector<Point> centroids = {{0.0, 0.0}, {5.0, 5.0}, {1.0, 8.0}};
  std::int64_t completed = 0;

  for (int iter = 0; iter < kMaxIterations; ++iter) {
    // Broadcast centroids through a blob (Twister4Azure's pattern).
    co_await container.get_block_blob_reference("centroids")
        .upload_text(azure::Payload::bytes(encode_centroids(centroids)));

    for (int p = 0; p < kPartitions; ++p) {
      co_await app.submit("map:" + std::to_string(iter) + ":" +
                          std::to_string(p));
    }
    completed += kPartitions;
    co_await app.wait_for_completion(completed);

    // Reduce: combine the per-partition partial sums.
    double sx[kClusters] = {}, sy[kClusters] = {};
    std::int64_t n[kClusters] = {};
    for (int p = 0; p < kPartitions; ++p) {
      const auto row = co_await table.query(
          "iter-" + std::to_string(iter), "part-" + std::to_string(p));
      for (int k = 0; k < kClusters; ++k) {
        const std::string tag = std::to_string(k);
        sx[k] += std::get<double>(row.properties.at("sx" + tag));
        sy[k] += std::get<double>(row.properties.at("sy" + tag));
        n[k] += std::get<std::int64_t>(row.properties.at("n" + tag));
      }
    }
    double movement = 0;
    for (int k = 0; k < kClusters; ++k) {
      if (n[k] == 0) continue;
      const Point next{sx[k] / static_cast<double>(n[k]),
                       sy[k] / static_cast<double>(n[k])};
      movement += std::hypot(next.x - centroids[static_cast<std::size_t>(k)].x,
                             next.y - centroids[static_cast<std::size_t>(k)].y);
      centroids[static_cast<std::size_t>(k)] = next;
    }
    std::printf("[ctrl  ] iter %2d  t=%-10s movement=%.5f\n", iter,
                sim::format_duration(sim.now()).c_str(), movement);
    if (movement < kEpsilon) break;
  }

  std::printf("[ctrl  ] converged centroids:");
  for (const auto& c : centroids) std::printf("  (%.2f, %.2f)", c.x, c.y);
  std::printf("\n(true centers: (1,1) (6,2) (3,7), up to cluster order)\n");
}

sim::Task<void> worker_role(fabric::RoleContext& ctx,
                            framework::BagOfTasksApp& app) {
  auto container = ctx.account()
                       .create_cloud_blob_client()
                       .get_container_reference("kmeans");
  auto table = ctx.account().create_cloud_table_client().get_table_reference(
      "kmeans-partials");
  auto& simulation = ctx.simulation();

  co_await app.worker_loop(
      ctx.account(),
      [&](const framework::TaskDescriptor& task) -> Task<> {
        const auto first = task.body.find(':');
        const auto second = task.body.find(':', first + 1);
        const int iter = std::stoi(task.body.substr(first + 1,
                                                    second - first - 1));
        const int partition = std::stoi(task.body.substr(second + 1));

        const auto blob = co_await container
                              .get_block_blob_reference("centroids")
                              .download_text();
        const auto centroids = decode_centroids(blob.data());

        double sx[kClusters] = {}, sy[kClusters] = {};
        std::int64_t n[kClusters] = {};
        for (const auto& pt : partition_points(partition)) {
          int best = 0;
          double best_d = 1e300;
          for (int k = 0; k < kClusters; ++k) {
            const auto& c = centroids[static_cast<std::size_t>(k)];
            const double d = std::hypot(pt.x - c.x, pt.y - c.y);
            if (d < best_d) {
              best_d = d;
              best = k;
            }
          }
          sx[best] += pt.x;
          sy[best] += pt.y;
          ++n[best];
        }
        co_await simulation.delay(sim::millis(40));  // modeled map work

        azure::TableEntity partial;
        partial.partition_key = "iter-" + std::to_string(iter);
        partial.row_key = "part-" + std::to_string(partition);
        for (int k = 0; k < kClusters; ++k) {
          const std::string tag = std::to_string(k);
          partial.properties["sx" + tag] = sx[k];
          partial.properties["sy" + tag] = sy[k];
          partial.properties["n" + tag] = n[k];
        }
        co_await table.insert_or_replace(partial);
      },
      /*max_idle_polls=*/8);
}

}  // namespace

int main() {
  sim::Simulation sim;
  azure::CloudEnvironment cloud(sim);
  fabric::Deployment deployment(cloud);
  deployment.add_web_role(fabric::VmSize::kSmall);
  deployment.add_worker_roles(kWorkers, fabric::VmSize::kSmall);

  framework::BagOfTasksApp app(deployment.web_role().account());

  std::printf(
      "Twister4Azure-style iterative map-reduce (k-means): %d partitions x "
      "%d points,\n%d clusters, %d workers\n\n",
      kPartitions, kPointsPerPartition, kClusters, kWorkers);
  deployment.start_web(
      [&app](fabric::RoleContext& ctx) { return controller(ctx, app); });
  deployment.start_workers(
      [&app](fabric::RoleContext& ctx) { return worker_role(ctx, app); });
  sim.run();
  return 0;
}
