// Bag-of-tasks example: Monte-Carlo estimation of pi on the Section III
// application framework (Fig. 3 of the paper).
//
// The web role submits dart-throwing tasks to the task-assignment queue;
// worker roles pull tasks, compute locally, write partial counts to Table
// storage, and signal completions on the termination-indicator queue; the
// web role tracks progress through the termination queue's message count
// and finally reduces the partials.
#include <cstdio>
#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "fabric/deployment.hpp"
#include "framework/bag_of_tasks.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

using sim::Task;

namespace {

constexpr int kTasks = 24;
constexpr int kDartsPerTask = 200'000;
constexpr int kWorkers = 6;

sim::Task<void> web_role(fabric::RoleContext& ctx,
                         framework::BagOfTasksApp& app) {
  auto& sim = ctx.simulation();
  co_await app.provision();

  auto table =
      ctx.account().create_cloud_table_client().get_table_reference(
          "pi-partials");
  co_await table.create_if_not_exists();

  std::printf("[web   ] submitting %d tasks of %d darts each\n", kTasks,
              kDartsPerTask);
  for (int t = 0; t < kTasks; ++t) {
    co_await app.submit("darts:" + std::to_string(t));
  }
  co_await app.wait_for_completion(kTasks);

  // Reduce the partial counts from table storage.
  std::int64_t inside = 0;
  const auto rows = co_await table.query_partition("partials");
  for (const auto& row : rows) {
    inside += std::get<std::int64_t>(row.properties.at("inside"));
  }
  const double pi = 4.0 * static_cast<double>(inside) /
                    (static_cast<double>(kTasks) * kDartsPerTask);
  std::printf("[web   ] all %d tasks done at t=%s; pi ~= %.5f\n", kTasks,
              sim::format_duration(sim.now()).c_str(), pi);
}

sim::Task<void> worker_role(fabric::RoleContext& ctx,
                            framework::BagOfTasksApp& app) {
  auto table =
      ctx.account().create_cloud_table_client().get_table_reference(
          "pi-partials");
  auto& simulation = ctx.simulation();
  const int worker_id = ctx.id();

  co_await app.worker_loop(
      ctx.account(),
      [&table, &simulation,
       worker_id](const framework::TaskDescriptor& task) -> Task<> {
        const int task_id = std::stoi(task.body.substr(6));
        // Deterministic dart throwing; CPU time modeled as a delay.
        sim::Random rng(static_cast<std::uint64_t>(task_id) * 7919 + 13);
        std::int64_t inside = 0;
        for (int d = 0; d < kDartsPerTask; ++d) {
          const double x = rng.next_double();
          const double y = rng.next_double();
          if (x * x + y * y <= 1.0) ++inside;
        }
        co_await simulation.delay(sim::millis(250));  // modeled compute time

        azure::TableEntity partial;
        partial.partition_key = "partials";
        partial.row_key = "task-" + std::to_string(task_id);
        partial.properties["inside"] = inside;
        partial.properties["worker"] =
            static_cast<std::int64_t>(worker_id);
        co_await table.insert_or_replace(partial);
      },
      /*max_idle_polls=*/5);
  std::printf("[worker] instance %d drained the task pool\n", ctx.id());
}

}  // namespace

int main() {
  sim::Simulation sim;
  azure::CloudEnvironment cloud(sim);
  fabric::Deployment deployment(cloud);
  deployment.add_web_role(fabric::VmSize::kSmall);
  deployment.add_worker_roles(kWorkers, fabric::VmSize::kSmall);

  framework::BagOfTasksApp app(deployment.web_role().account());

  std::printf(
      "Bag-of-tasks on the paper's application framework: %d workers,\n"
      "task-assignment queue + termination-indicator queue + table "
      "storage\n\n",
      kWorkers);

  deployment.start_web(
      [&app](fabric::RoleContext& ctx) { return web_role(ctx, app); });
  deployment.start_workers(
      [&app](fabric::RoleContext& ctx) { return worker_role(ctx, app); });
  sim.run();
  return 0;
}
