// Quickstart: spin up a simulated Azure cloud, connect a client, and use
// all three storage services through the SDK facade.
//
//   $ ./quickstart
//
// Everything runs in virtual time inside a deterministic discrete-event
// simulation — the printed latencies come from the cluster model, not from
// your machine.
#include <cstdio>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"

using azure::Payload;
using sim::Task;

namespace {

sim::Task<void> tour(sim::Simulation& sim,
                     azure::CloudStorageAccount account) {
  // ---------------------------------------------------------------- blobs --
  auto blobs = account.create_cloud_blob_client();
  auto container = blobs.get_container_reference("quickstart");
  co_await container.create_if_not_exists();

  auto blob = container.get_block_blob_reference("hello");
  sim::TimePoint t0 = sim.now();
  co_await blob.upload_text(Payload::bytes("Hello, simulated Azure!"));
  std::printf("[blob ] uploaded 'hello' in %s\n",
              sim::format_duration(sim.now() - t0).c_str());

  t0 = sim.now();
  const auto text = co_await blob.download_text();
  std::printf("[blob ] downloaded %lld bytes in %s: \"%s\"\n",
              static_cast<long long>(text.size()),
              sim::format_duration(sim.now() - t0).c_str(),
              text.data().c_str());

  // A page blob with random access.
  auto pages = container.get_page_blob_reference("random-access");
  co_await pages.create(1 << 20);
  co_await pages.put_page(512, Payload::bytes(std::string(512, 'z')));
  const auto page = co_await pages.get_page(512, 512);
  std::printf("[blob ] page blob roundtrip ok (%lld bytes at offset 512)\n",
              static_cast<long long>(page.size()));

  // --------------------------------------------------------------- queues --
  auto queues = account.create_cloud_queue_client();
  auto queue = queues.get_queue_reference("tasks");
  co_await queue.create_if_not_exists();

  t0 = sim.now();
  co_await queue.add_message(Payload::bytes("task #1"));
  std::printf("[queue] put message in %s\n",
              sim::format_duration(sim.now() - t0).c_str());

  t0 = sim.now();
  auto msg = co_await queue.get_message(sim::seconds(30));
  std::printf("[queue] got \"%s\" in %s (dequeue count %d)\n",
              msg->body.data().c_str(),
              sim::format_duration(sim.now() - t0).c_str(),
              msg->dequeue_count);
  co_await queue.delete_message(*msg);

  // --------------------------------------------------------------- tables --
  auto tables = account.create_cloud_table_client();
  auto table = tables.get_table_reference("inventory");
  co_await table.create_if_not_exists();

  azure::TableEntity entity;
  entity.partition_key = "fruit";
  entity.row_key = "apples";
  entity.properties["count"] = std::int64_t{12};
  entity.properties["organic"] = true;
  t0 = sim.now();
  co_await table.insert(entity);
  std::printf("[table] inserted fruit/apples in %s\n",
              sim::format_duration(sim.now() - t0).c_str());

  const auto row = co_await table.query("fruit", "apples");
  std::printf("[table] queried: count=%lld organic=%s etag=%s\n",
              static_cast<long long>(
                  std::get<std::int64_t>(row.properties.at("count"))),
              std::get<bool>(row.properties.at("organic")) ? "yes" : "no",
              row.etag.c_str());

  std::printf("\nTotal virtual time elapsed: %s\n",
              sim::format_duration(sim.now()).c_str());
}

}  // namespace

int main() {
  sim::Simulation sim;
  azure::CloudEnvironment cloud(sim);
  netsim::Nic nic(sim, netsim::NicConfig{12.5e6, 12.5e6, sim::micros(50),
                                         64 * 1024.0});  // a Small VM NIC
  azure::CloudStorageAccount account(cloud, nic);

  std::printf("AzureBench quickstart — one client VM against a simulated\n"
              "Azure storage stamp (16 partition servers, 3 replicas)\n\n");
  sim.spawn(tour(sim, account));
  sim.run();
  return 0;
}
