// GIS overlay example, modeled after Crayons (the authors' cloud GIS
// system the paper cites as the motivating application): a polygon-overlay
// job over a tiled map.
//
// Pipeline:
//   1. the web role uploads the base and overlay layers to Blob storage,
//      one block blob per map tile;
//   2. tile indices go onto the task-assignment queue;
//   3. worker roles download both layers of their tile, compute the overlay
//      (a real sweep over the tile's cell grid), and upload the result
//      layer as a new blob;
//   4. completions are tracked through the termination-indicator queue.
#include <cstdio>
#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "fabric/deployment.hpp"
#include "framework/bag_of_tasks.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

using sim::Task;

namespace {

constexpr int kTiles = 16;
constexpr int kWorkers = 4;
constexpr int kCellsPerTile = 64 * 64;  // one byte of "land use" per cell

std::string tile_layer(int tile, const char* layer) {
  return "tile-" + std::to_string(tile) + "-" + layer;
}

/// Deterministically rasterizes a map layer for one tile.
std::string rasterize(int tile, int salt) {
  sim::Random rng(static_cast<std::uint64_t>(tile) * 1000003 + salt);
  std::string cells(kCellsPerTile, '\0');
  for (auto& c : cells) {
    c = static_cast<char>('A' + rng.uniform(0, 3));  // 4 land-use classes
  }
  return cells;
}

sim::Task<void> web_role(fabric::RoleContext& ctx,
                         framework::BagOfTasksApp& app) {
  auto& sim = ctx.simulation();
  co_await app.provision();
  auto container = ctx.account()
                       .create_cloud_blob_client()
                       .get_container_reference("gis-layers");
  co_await container.create_if_not_exists();

  std::printf("[web   ] uploading %d tiles x 2 layers (%d cells each)\n",
              kTiles, kCellsPerTile);
  for (int t = 0; t < kTiles; ++t) {
    co_await container.get_block_blob_reference(tile_layer(t, "base"))
        .upload_text(azure::Payload::bytes(rasterize(t, 1)));
    co_await container.get_block_blob_reference(tile_layer(t, "overlay"))
        .upload_text(azure::Payload::bytes(rasterize(t, 2)));
    co_await app.submit("tile:" + std::to_string(t));
  }

  const sim::TimePoint start = sim.now();
  co_await app.wait_for_completion(kTiles);
  std::printf("[web   ] overlay finished: %d tiles in %s of processing\n",
              kTiles, sim::format_duration(sim.now() - start).c_str());

  // Spot-check one result tile: every cell must combine both inputs.
  const auto result = co_await container
                          .get_block_blob_reference(tile_layer(0, "result"))
                          .download_text();
  const std::string base = rasterize(0, 1);
  const std::string over = rasterize(0, 2);
  bool ok = result.size() == kCellsPerTile;
  for (int c = 0; ok && c < kCellsPerTile; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    ok = result.data()[idx] ==
         static_cast<char>(((base[idx] - 'A') << 2) | (over[idx] - 'A'));
  }
  std::printf("[web   ] result verification: %s\n", ok ? "PASS" : "FAIL");
}

sim::Task<void> worker_role(fabric::RoleContext& ctx,
                            framework::BagOfTasksApp& app) {
  auto container = ctx.account()
                       .create_cloud_blob_client()
                       .get_container_reference("gis-layers");
  auto& simulation = ctx.simulation();
  int processed = 0;

  co_await app.worker_loop(
      ctx.account(),
      [&](const framework::TaskDescriptor& task) -> Task<> {
        const int tile = std::stoi(task.body.substr(5));
        const auto base =
            co_await container.get_block_blob_reference(tile_layer(tile, "base"))
                .download_text();
        const auto over = co_await container
                              .get_block_blob_reference(
                                  tile_layer(tile, "overlay"))
                              .download_text();

        // The overlay: combine the two land-use classes of every cell.
        std::string result(kCellsPerTile, '\0');
        for (int c = 0; c < kCellsPerTile; ++c) {
          const auto idx = static_cast<std::size_t>(c);
          result[idx] = static_cast<char>(
              ((base.data()[idx] - 'A') << 2) | (over.data()[idx] - 'A'));
        }
        co_await simulation.delay(sim::millis(120));  // modeled geometry work

        co_await container
            .get_block_blob_reference(tile_layer(tile, "result"))
            .upload_text(azure::Payload::bytes(std::move(result)));
        ++processed;
      },
      /*max_idle_polls=*/5);
  std::printf("[worker] instance %d processed %d tiles\n", ctx.id(),
              processed);
}

}  // namespace

int main() {
  sim::Simulation sim;
  azure::CloudEnvironment cloud(sim);
  fabric::Deployment deployment(cloud);
  deployment.add_web_role(fabric::VmSize::kSmall);
  deployment.add_worker_roles(kWorkers, fabric::VmSize::kSmall);

  framework::BagOfTasksApp app(deployment.web_role().account());

  std::printf("Crayons-style GIS overlay on simulated Azure: %d tiles, %d "
              "workers\n\n",
              kTiles, kWorkers);
  deployment.start_web(
      [&app](fabric::RoleContext& ctx) { return web_role(ctx, app); });
  deployment.start_workers(
      [&app](fabric::RoleContext& ctx) { return worker_role(ctx, app); });
  sim.run();
  return 0;
}
