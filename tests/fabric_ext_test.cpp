// Tests for the fabric extension modules: provisioning timings and
// internal TCP endpoints (both named as unstudied/future work in the
// paper).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "azure_test_util.hpp"
#include "fabric/endpoints.hpp"
#include "fabric/provisioning.hpp"
#include "fabric/vm_size.hpp"

namespace {

using azb_test::TestWorld;
using azure::Payload;
using fabric::ProvisioningReport;
using sim::Task;
using sim::TimePoint;

// ----------------------------------------------------------- provisioning ----

ProvisioningReport provision(int instances, fabric::VmSize size,
                             fabric::ProvisioningConfig cfg = {}) {
  sim::Simulation s;
  ProvisioningReport report;
  s.spawn([](sim::Simulation& sim, int n, fabric::VmSize sz,
             fabric::ProvisioningConfig c, ProvisioningReport& out) -> Task<> {
    out = co_await fabric::provision_deployment(sim, n, sz, c);
  }(s, instances, size, cfg, report));
  s.run();
  return report;
}

TEST(ProvisioningTest, SingleInstanceTimeline) {
  fabric::ProvisioningConfig cfg;
  const auto report = provision(1, fabric::VmSize::kSmall, cfg);
  ASSERT_EQ(report.instance_ready.size(), 1u);
  const auto upload = static_cast<sim::Duration>(
      static_cast<double>(cfg.package_bytes) /
      cfg.package_upload_bytes_per_sec * sim::kSecond);
  const auto expected = upload + cfg.vm_allocation + cfg.allocation_per_core +
                        cfg.guest_boot + cfg.role_start;
  EXPECT_EQ(report.instance_ready[0], expected);
  EXPECT_EQ(report.package_upload, upload);
}

TEST(ProvisioningTest, AllocationBatchesBoundParallelism) {
  fabric::ProvisioningConfig cfg;
  cfg.parallel_allocations = 4;
  const auto small = provision(4, fabric::VmSize::kSmall, cfg);
  const auto large = provision(12, fabric::VmSize::kSmall, cfg);
  // 12 instances on 4 allocation slots need 3 serialized batches.
  const auto batch = cfg.vm_allocation + cfg.allocation_per_core;
  EXPECT_EQ(large.time_to_all_instances() - small.time_to_all_instances(),
            2 * batch);
  // First instances of both deployments are ready at the same time.
  EXPECT_EQ(large.time_to_first_instance(), small.time_to_first_instance());
}

TEST(ProvisioningTest, BiggerVmsAllocateSlower) {
  const auto small = provision(1, fabric::VmSize::kSmall);
  const auto xl = provision(1, fabric::VmSize::kExtraLarge);
  EXPECT_GT(xl.time_to_all_instances(), small.time_to_all_instances());
}

// -------------------------------------------------------------- endpoints ----

TEST(EndpointTest, SendReceiveRoundtrip) {
  TestWorld w;
  auto& net = w.env.storage_cluster().network();
  netsim::Nic nic_a(w.sim, azb_test::default_client_nic());
  netsim::Nic nic_b(w.sim, azb_test::default_client_nic());
  fabric::InternalEndpoint a(w.sim, net, nic_a);
  fabric::InternalEndpoint b(w.sim, net, nic_b);

  std::string got;
  w.sim.spawn([](fabric::InternalEndpoint& ep, std::string& out) -> Task<> {
    const auto msg = co_await ep.receive();
    out = msg.data();
  }(b, got));
  w.sim.spawn([](fabric::InternalEndpoint& from,
                 fabric::InternalEndpoint& to) -> Task<> {
    co_await from.send(to, Payload::bytes("ping"));
  }(a, b));
  w.sim.run();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(a.messages_sent(), 1);
  EXPECT_EQ(b.messages_received(), 1);
}

TEST(EndpointTest, MessagesFromOneSenderArriveInOrder) {
  TestWorld w;
  auto& net = w.env.storage_cluster().network();
  netsim::Nic nic_a(w.sim, azb_test::default_client_nic());
  netsim::Nic nic_b(w.sim, azb_test::default_client_nic());
  fabric::InternalEndpoint a(w.sim, net, nic_a);
  fabric::InternalEndpoint b(w.sim, net, nic_b);

  std::vector<std::string> got;
  w.sim.spawn([](fabric::InternalEndpoint& ep,
                 std::vector<std::string>& out) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      out.push_back((co_await ep.receive()).data());
    }
  }(b, got));
  w.sim.spawn([](fabric::InternalEndpoint& from,
                 fabric::InternalEndpoint& to) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await from.send(to, Payload::bytes("m" + std::to_string(i)));
    }
  }(a, b));
  w.sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1", "m2", "m3", "m4"}));
}

TEST(EndpointTest, ReceiveBlocksUntilMessageArrives) {
  TestWorld w;
  auto& net = w.env.storage_cluster().network();
  netsim::Nic nic_a(w.sim, azb_test::default_client_nic());
  netsim::Nic nic_b(w.sim, azb_test::default_client_nic());
  fabric::InternalEndpoint a(w.sim, net, nic_a);
  fabric::InternalEndpoint b(w.sim, net, nic_b);

  TimePoint received_at = -1;
  w.sim.spawn([](TestWorld& t, fabric::InternalEndpoint& ep,
                 TimePoint& at) -> Task<> {
    (void)co_await ep.receive();
    at = t.sim.now();
  }(w, b, received_at));
  w.sim.spawn([](TestWorld& t, fabric::InternalEndpoint& from,
                 fabric::InternalEndpoint& to) -> Task<> {
    co_await t.sim.delay(sim::seconds(3));
    co_await from.send(to, Payload::bytes("late"));
  }(w, a, b));
  w.sim.run();
  EXPECT_GE(received_at, sim::seconds(3));
}

TEST(EndpointTest, DirectMessagingFasterThanQueueMediated) {
  // The point of TCP endpoints: no storage round-trips, no replication.
  TestWorld w;
  auto& net = w.env.storage_cluster().network();
  netsim::Nic nic_a(w.sim, azb_test::default_client_nic());
  netsim::Nic nic_b(w.sim, azb_test::default_client_nic());
  fabric::InternalEndpoint a(w.sim, net, nic_a);
  fabric::InternalEndpoint b(w.sim, net, nic_b);

  // Direct: one message A -> B.
  TimePoint t0 = w.sim.now();
  w.sim.spawn([](fabric::InternalEndpoint& from,
                 fabric::InternalEndpoint& to) -> Task<> {
    co_await from.send(to, Payload::synthetic(4096));
  }(a, b));
  w.sim.spawn([](fabric::InternalEndpoint& ep) -> Task<> {
    (void)co_await ep.receive();
  }(b));
  w.sim.run();
  const auto direct = w.sim.now() - t0;

  // Queue-mediated: put + get of the same payload.
  t0 = w.sim.now();
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto q = t.account.create_cloud_queue_client().get_queue_reference("q");
    co_await q.create();
    co_await q.add_message(Payload::synthetic(4096));
    (void)co_await q.get_message();
  });
  const auto mediated = w.sim.now() - t0;
  EXPECT_LT(direct * 10, mediated);
}

TEST(EndpointTest, TwoReceiversNeverDuplicateAMessage) {
  TestWorld w;
  auto& net = w.env.storage_cluster().network();
  netsim::Nic nic_a(w.sim, azb_test::default_client_nic());
  netsim::Nic nic_b(w.sim, azb_test::default_client_nic());
  fabric::InternalEndpoint a(w.sim, net, nic_a);
  fabric::InternalEndpoint b(w.sim, net, nic_b);

  int received = 0;
  for (int r = 0; r < 2; ++r) {
    w.sim.spawn([](fabric::InternalEndpoint& ep, int& n) -> Task<> {
      (void)co_await ep.receive();
      ++n;
    }(b, received));
  }
  w.sim.spawn([](fabric::InternalEndpoint& from,
                 fabric::InternalEndpoint& to) -> Task<> {
    co_await from.send(to, Payload::bytes("only-one"));
    co_await from.send(to, Payload::bytes("second"));
  }(a, b));
  w.sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(b.pending(), 0u);
}

}  // namespace
