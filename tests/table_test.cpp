// Unit tests for Table storage semantics and its timing model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "azure_test_util.hpp"
#include "azure/common/errors.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/retry.hpp"
#include "simcore/sync.hpp"

namespace {

using azb_test::TestWorld;
using azure::Payload;
using azure::TableEntity;
using sim::Task;
using sim::TimePoint;

TableEntity make_entity(const std::string& pk, const std::string& rk,
                        std::int64_t payload_size = 128) {
  TableEntity e;
  e.partition_key = pk;
  e.row_key = rk;
  e.properties["data"] = Payload::synthetic(payload_size);
  return e;
}

TEST(TableTest, CreateExistsDelete) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    EXPECT_FALSE(co_await tbl.exists());
    co_await tbl.create();
    EXPECT_TRUE(co_await tbl.exists());
    EXPECT_THROW(co_await tbl.create(), azure::ConflictError);
    co_await tbl.create_if_not_exists();
    co_await tbl.delete_table();
    EXPECT_FALSE(co_await tbl.exists());
    EXPECT_THROW(co_await tbl.delete_table(), azure::NotFoundError);
  });
}

TEST(TableTest, InsertQueryRoundtripAllPropertyTypes) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    TableEntity e;
    e.partition_key = "pk";
    e.row_key = "rk";
    e.properties["name"] = std::string("neutron");
    e.properties["count"] = std::int64_t{42};
    e.properties["ratio"] = 2.5;
    e.properties["valid"] = true;
    e.properties["blob"] = Payload::bytes("\x01\x02\x03");
    co_await tbl.insert(e);
    const auto back = co_await tbl.query("pk", "rk");
    EXPECT_EQ(std::get<std::string>(back.properties.at("name")), "neutron");
    EXPECT_EQ(std::get<std::int64_t>(back.properties.at("count")), 42);
    EXPECT_EQ(std::get<double>(back.properties.at("ratio")), 2.5);
    EXPECT_EQ(std::get<bool>(back.properties.at("valid")), true);
    EXPECT_EQ(std::get<Payload>(back.properties.at("blob")).data(),
              "\x01\x02\x03");
    EXPECT_FALSE(back.etag.empty());
    EXPECT_GE(back.timestamp, 0);
  });
}

TEST(TableTest, SchemalessEntitiesInOneTable) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    TableEntity a;
    a.partition_key = "pk";
    a.row_key = "a";
    a.properties["alpha"] = std::int64_t{1};
    TableEntity b;
    b.partition_key = "pk";
    b.row_key = "b";
    b.properties["totally_different"] = std::string("yes");
    co_await tbl.insert(a);
    co_await tbl.insert(b);
    const auto ra = co_await tbl.query("pk", "a");
    const auto rb = co_await tbl.query("pk", "b");
    EXPECT_TRUE(ra.properties.count("alpha"));
    EXPECT_FALSE(ra.properties.count("totally_different"));
    EXPECT_TRUE(rb.properties.count("totally_different"));
  });
}

TEST(TableTest, DuplicateInsertConflicts) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("pk", "rk"));
    EXPECT_THROW(co_await tbl.insert(make_entity("pk", "rk")),
                 azure::ConflictError);
  });
}

TEST(TableTest, QueryMissingThrowsNotFound) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    EXPECT_THROW(co_await tbl.query("pk", "nope"), azure::NotFoundError);
  });
}

TEST(TableTest, UpdateRequiresMatchingEtag) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("pk", "rk"));
    auto current = co_await tbl.query("pk", "rk");

    auto updated = make_entity("pk", "rk", 256);
    EXPECT_THROW(co_await tbl.update(updated, "W/\"stale\""),
                 azure::PreconditionFailedError);
    co_await tbl.update(updated, current.etag);  // matching ETag works
    auto after = co_await tbl.query("pk", "rk");
    EXPECT_NE(after.etag, current.etag);  // update refreshed the ETag
    // The old ETag is now stale.
    EXPECT_THROW(co_await tbl.update(updated, current.etag),
                 azure::PreconditionFailedError);
  });
}

TEST(TableTest, WildcardEtagUpdatesUnconditionally) {
  // The paper benchmarks only unconditional updates ("wild card character *
  // for ETag").
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("pk", "rk"));
    co_await tbl.update(make_entity("pk", "rk", 512), "*");
    const auto back = co_await tbl.query("pk", "rk");
    EXPECT_EQ(std::get<Payload>(back.properties.at("data")).size(), 512);
  });
}

TEST(TableTest, UpdateMissingEntityThrowsNotFound) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    EXPECT_THROW(co_await tbl.update(make_entity("pk", "rk"), "*"),
                 azure::NotFoundError);
  });
}

TEST(TableTest, InsertOrReplaceUpserts) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert_or_replace(make_entity("pk", "rk", 100));
    co_await tbl.insert_or_replace(make_entity("pk", "rk", 200));
    const auto back = co_await tbl.query("pk", "rk");
    EXPECT_EQ(std::get<Payload>(back.properties.at("data")).size(), 200);
  });
}

TEST(TableTest, MergeCombinesProperties) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    TableEntity e;
    e.partition_key = "pk";
    e.row_key = "rk";
    e.properties["keep"] = std::string("original");
    e.properties["overwrite"] = std::int64_t{1};
    co_await tbl.insert(e);
    TableEntity patch;
    patch.partition_key = "pk";
    patch.row_key = "rk";
    patch.properties["overwrite"] = std::int64_t{2};
    patch.properties["fresh"] = true;
    co_await tbl.merge(patch);
    const auto back = co_await tbl.query("pk", "rk");
    EXPECT_EQ(std::get<std::string>(back.properties.at("keep")), "original");
    EXPECT_EQ(std::get<std::int64_t>(back.properties.at("overwrite")), 2);
    EXPECT_EQ(std::get<bool>(back.properties.at("fresh")), true);
  });
}

TEST(TableTest, EraseRemovesEntity) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("pk", "rk"));
    co_await tbl.erase("pk", "rk");
    EXPECT_THROW(co_await tbl.query("pk", "rk"), azure::NotFoundError);
    EXPECT_THROW(co_await tbl.erase("pk", "rk"), azure::NotFoundError);
  });
}

TEST(TableTest, PartitionScanReturnsOnlyThatPartition) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("p1", "a"));
    co_await tbl.insert(make_entity("p1", "b"));
    co_await tbl.insert(make_entity("p2", "c"));
    const auto rows = co_await tbl.query_partition("p1");
    CO_ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].row_key, "a");
    EXPECT_EQ(rows[1].row_key, "b");
  });
}

TEST(TableTest, EntityValidationLimits) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();

    // Missing keys.
    TableEntity nokeys;
    EXPECT_THROW(co_await tbl.insert(nokeys), azure::InvalidArgumentError);

    // Over 1 MB.
    auto big = make_entity("pk", "big", azure::limits::kMaxEntityBytes + 1);
    EXPECT_THROW(co_await tbl.insert(big), azure::InvalidArgumentError);

    // Over 255 properties (3 system + 253 user).
    TableEntity many;
    many.partition_key = "pk";
    many.row_key = "many";
    for (int i = 0; i < 253; ++i) {
      many.properties["p" + std::to_string(i)] = std::int64_t{i};
    }
    EXPECT_THROW(co_await tbl.insert(many), azure::InvalidArgumentError);

    // Exactly at the limit is fine (252 user properties).
    many.properties.erase("p0");
    co_await tbl.insert(many);
  });
}

TEST(TableTest, PartitionThrottleAt500EntitiesPerSecond) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
  });
  int busy = 0, ok = 0;
  for (int i = 0; i < 600; ++i) {
    w.sim.spawn([](TestWorld& t, int id, int& b, int& o) -> Task<> {
      auto tbl =
          t.account.create_cloud_table_client().get_table_reference("t");
      try {
        co_await tbl.insert(make_entity("hot", "rk" + std::to_string(id)));
        ++o;
      } catch (const azure::ServerBusyError&) {
        ++b;
      }
    }(w, i, busy, ok));
  }
  w.sim.run();
  EXPECT_EQ(ok, 500);
  EXPECT_EQ(busy, 100);
}

TEST(TableTest, SeparatePartitionsThrottleIndependently) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
  });
  // 300 inserts each into two partitions: no single partition exceeds 500/s.
  int busy = 0;
  for (int i = 0; i < 600; ++i) {
    w.sim.spawn([](TestWorld& t, int id, int& b) -> Task<> {
      auto tbl =
          t.account.create_cloud_table_client().get_table_reference("t");
      try {
        co_await tbl.insert(make_entity("part" + std::to_string(id % 2),
                                        "rk" + std::to_string(id)));
      } catch (const azure::ServerBusyError&) {
        ++b;
      }
    }(w, i, busy));
  }
  w.sim.run();
  EXPECT_EQ(busy, 0);
}

// ---------------------------------------------------------- timing model ----

TEST(TableTimingTest, UpdateIsMostExpensiveQueryCheapest) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create();
    co_await tbl.insert(make_entity("pk", "rk", 4096));
  });
  auto measure = [&w](auto op) {
    const TimePoint start = w.sim.now();
    w.sim.spawn(op(w));
    w.sim.run();
    return w.sim.now() - start;
  };
  const auto insert_t = measure([](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.insert(make_entity("pk", "other", 4096));
  });
  const auto query_t = measure([](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    (void)co_await tbl.query("pk", "rk");
  });
  const auto update_t = measure([](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.update(make_entity("pk", "rk", 4096), "*");
  });
  const auto delete_t = measure([](TestWorld& t) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.erase("pk", "other");
  });
  EXPECT_GT(update_t, insert_t);
  EXPECT_GT(insert_t, query_t);
  EXPECT_GT(update_t, delete_t);
  EXPECT_GT(delete_t, query_t);
}

TEST(TableTimingTest, LargeEntitiesDegradeUnderConcurrency) {
  // Fig. 8: with 32/64 KB entities the per-server commit journal saturates
  // as concurrent writers multiply; with 4 KB entities it does not.
  auto phase_time = [](std::int64_t entity_size, int workers) {
    TestWorld w;
    azb_test::run(w, [](TestWorld& t) -> Task<> {
      auto tbl =
          t.account.create_cloud_table_client().get_table_reference("t");
      co_await tbl.create();
    });
    const TimePoint start = w.sim.now();
    sim::WaitGroup wg(w.sim);
    for (int i = 0; i < workers; ++i) {
      wg.add();
      w.sim.spawn([](TestWorld& t, sim::WaitGroup& g, int id,
                     std::int64_t size) -> Task<> {
        auto tbl =
            t.account.create_cloud_table_client().get_table_reference("t");
        for (int k = 0; k < 20; ++k) {
          co_await azure::with_retry(t.sim, [&] {
            return tbl.insert(make_entity("w" + std::to_string(id),
                                          "r" + std::to_string(k), size));
          });
        }
        g.done();
      }(w, wg, i, entity_size));
    }
    w.sim.spawn([](sim::WaitGroup& g) -> Task<> { co_await g.wait(); }(wg));
    w.sim.run();
    return w.sim.now() - start;
  };
  // Per-op cost at small sizes stays flat as workers grow...
  const double small_ratio = static_cast<double>(phase_time(4096, 64)) /
                             static_cast<double>(phase_time(4096, 2));
  // ...but inflates at 64 KB (journal saturation).
  const double large_ratio =
      static_cast<double>(phase_time(64 * 1024, 64)) /
      static_cast<double>(phase_time(64 * 1024, 2));
  EXPECT_LT(small_ratio, 1.5);
  EXPECT_GT(large_ratio, 2.0);
}

}  // namespace
