// Shared fixture for tests driving the azure SDK inside a simulation.
#pragma once

#include <string>

#include "azure/cloud_storage_account.hpp"
#include "azure/environment.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"

/// Coroutine-safe fatal assertions: gtest's ASSERT_* macros expand to a bare
/// `return`, which is ill-formed inside a coroutine; these record the failure
/// and co_return instead.
#define CO_ASSERT_TRUE(cond)             \
  do {                                   \
    const bool azb_c_ = static_cast<bool>(cond); \
    EXPECT_TRUE(azb_c_) << #cond;        \
    if (!azb_c_) co_return;              \
  } while (0)

#define CO_ASSERT_EQ(a, b)          \
  do {                              \
    const bool azb_c_ = ((a) == (b)); \
    EXPECT_EQ(a, b);                \
    if (!azb_c_) co_return;         \
  } while (0)

namespace azb_test {

inline netsim::NicConfig default_client_nic() {
  // A generously-provisioned client so tests measure service behaviour,
  // not client NIC occupancy.
  return netsim::NicConfig{100e6, 100e6, sim::micros(50), 64 * 1024.0};
}

/// One simulated cloud + one client VM endpoint.
struct TestWorld {
  explicit TestWorld(const azure::CloudConfig& cfg = {})
      : env(sim, cfg), nic(sim, default_client_nic()), account(env, nic) {}

  sim::Simulation sim;
  azure::CloudEnvironment env;
  netsim::Nic nic;
  azure::CloudStorageAccount account;
};

/// Spawns `body(world)` as the root process and runs to completion.
template <class Body>
void run(TestWorld& w, Body body) {
  w.sim.spawn(body(w));
  w.sim.run();
}

inline std::string text_of(const azure::Payload& p) { return p.data(); }

}  // namespace azb_test
