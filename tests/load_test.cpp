// Load suite (`ctest -L load`): statistical contracts of the arrival
// processes and behavioural contracts of the open-loop load engine.
//
// The arrival tests are deterministic *statistical* tests: fixed seeds, so
// the sampled statistics are reproducible numbers, asserted against analytic
// bounds wide enough to hold for any healthy sampler (an implementation bug
// — wrong distribution, double-consumed draws, drifted clock arithmetic —
// lands far outside them). The engine tests pin the admission-window /
// backlog / shed state machine, session-pool lifecycle, overload accounting,
// and byte-identical replay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/storage_cluster.hpp"
#include "framework/arrivals.hpp"
#include "framework/load_engine.hpp"
#include "netsim/nic.hpp"
#include "obs/observer.hpp"
#include "simcore/simulation.hpp"
#include "simcore/task.hpp"
#include "simcore/time.hpp"

namespace {

using framework::ArrivalConfig;
using framework::ArrivalProcess;
using framework::LoadEngine;
using framework::LoadEngineConfig;
using framework::LoadStats;

// ===================================================== arrival processes ==

TEST(Arrivals, PoissonInterArrivalMeanAndVarianceMatchAnalytic) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kPoisson;
  cfg.rate_per_sec = 1000.0;  // mean gap 1 ms
  cfg.seed = 7;
  ArrivalProcess proc(cfg);
  const std::vector<sim::TimePoint> at = proc.take(50'000);
  ASSERT_EQ(at.size(), 50'000u);

  double sum = 0;
  std::vector<double> gaps;
  gaps.reserve(at.size());
  sim::TimePoint prev = 0;
  for (const sim::TimePoint t : at) {
    ASSERT_GT(t, prev);  // strictly monotone: integer clock never stalls
    gaps.push_back(static_cast<double>(t - prev));
    sum += gaps.back();
    prev = t;
  }
  const double mean = sum / static_cast<double>(gaps.size());
  double var = 0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);

  // Exponential(1ms): mean 1e6 ns, variance mean^2. With n = 50k, the
  // sample mean has relative sigma ~1/sqrt(n) ~ 0.45% and the sample
  // variance ~ sqrt(8/n) ~ 1.3%; 3% / 10% bounds are > 5 sigma.
  const double expected_gap_ns = 1e6;
  EXPECT_NEAR(mean, expected_gap_ns, 0.03 * expected_gap_ns);
  EXPECT_NEAR(var, expected_gap_ns * expected_gap_ns,
              0.10 * expected_gap_ns * expected_gap_ns);
}

TEST(Arrivals, SameSeedIsByteIdenticalAcrossReplays) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kPoisson;
  cfg.rate_per_sec = 5000.0;
  cfg.seed = 0xA11CE;
  const std::vector<sim::TimePoint> a = ArrivalProcess(cfg).take(5'000);
  const std::vector<sim::TimePoint> b = ArrivalProcess(cfg).take(5'000);
  const std::vector<sim::TimePoint> c = ArrivalProcess(cfg).take(5'000);
  EXPECT_EQ(a, b);  // replay #1
  EXPECT_EQ(a, c);  // replay #2 — not a lucky pairing
}

TEST(Arrivals, DistinctSeedsDiverge) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kPoisson;
  cfg.rate_per_sec = 5000.0;
  cfg.seed = 1;
  const std::vector<sim::TimePoint> a = ArrivalProcess(cfg).take(100);
  cfg.seed = 2;
  const std::vector<sim::TimePoint> b = ArrivalProcess(cfg).take(100);
  EXPECT_NE(a, b);
}

TEST(Arrivals, DiurnalRateIntegratesToConfiguredVolume) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kDiurnal;
  cfg.period = 1000 * sim::kSecond;  // a compressed "day"
  cfg.period_volume = 50'000.0;
  cfg.amplitude = 0.7;
  cfg.peak_at = 250 * sim::kSecond;
  cfg.seed = 11;
  ArrivalProcess proc(cfg);

  // Analytic: the cosine term integrates to zero over a full period, so the
  // numeric integral of rate_at over [0, period) must equal the volume.
  const int steps = 200'000;
  const double dt = sim::to_seconds(cfg.period) / steps;
  double integral = 0;
  for (int i = 0; i < steps; ++i) {
    integral +=
        proc.rate_at(static_cast<sim::TimePoint>((i + 0.5) / steps *
                                                 static_cast<double>(
                                                     cfg.period))) *
        dt;
  }
  EXPECT_NEAR(integral, cfg.period_volume, 1e-4 * cfg.period_volume);

  // Empirical: arrivals inside one period ~ Poisson(volume); 4 sigma band.
  std::size_t in_first_period = 0;
  sim::TimePoint t = 0;
  for (;;) {
    t = proc.next(t);
    ASSERT_NE(t, ArrivalProcess::kNever);
    if (t >= cfg.period) break;
    ++in_first_period;
  }
  const double sigma = std::sqrt(cfg.period_volume);
  EXPECT_NEAR(static_cast<double>(in_first_period), cfg.period_volume,
              4.0 * sigma);
}

TEST(Arrivals, DiurnalRateStaysInsideAmplitudeEnvelope) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kDiurnal;
  cfg.period = 100 * sim::kSecond;
  cfg.period_volume = 10'000.0;
  cfg.amplitude = 0.5;
  cfg.peak_at = 30 * sim::kSecond;
  ArrivalProcess proc(cfg);
  const double mean = proc.mean_rate();
  EXPECT_DOUBLE_EQ(mean, 100.0);
  for (int i = 0; i <= 1000; ++i) {
    const auto t = static_cast<sim::TimePoint>(
        static_cast<double>(3 * cfg.period) * i / 1000.0);
    const double r = proc.rate_at(t);
    EXPECT_GE(r, mean * (1.0 - cfg.amplitude) - 1e-9);
    EXPECT_LE(r, mean * (1.0 + cfg.amplitude) + 1e-9);
  }
  // The peak lands at peak_at (and one period later).
  EXPECT_NEAR(proc.rate_at(cfg.peak_at), mean * 1.5, 1e-9);
  EXPECT_NEAR(proc.rate_at(cfg.peak_at + cfg.period), mean * 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(proc.peak_rate(), mean * 1.5);
}

TEST(Arrivals, FlashCrowdStepLandsAtExactTick) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kFlashCrowd;
  cfg.rate_per_sec = 10.0;
  cfg.spike_at = 5 * sim::kSecond;
  cfg.spike_duration = 2 * sim::kSecond;
  cfg.spike_rate_per_sec = 5000.0;
  ArrivalProcess proc(cfg);
  EXPECT_DOUBLE_EQ(proc.rate_at(cfg.spike_at - 1), 10.0);
  EXPECT_DOUBLE_EQ(proc.rate_at(cfg.spike_at), 5010.0);
  EXPECT_DOUBLE_EQ(proc.rate_at(cfg.spike_at + cfg.spike_duration - 1),
                   5010.0);
  EXPECT_DOUBLE_EQ(proc.rate_at(cfg.spike_at + cfg.spike_duration), 10.0);
  EXPECT_DOUBLE_EQ(proc.peak_rate(), 5010.0);
}

TEST(Arrivals, FlashCrowdWithQuietBaseArrivesOnlyInsideSpikeWindow) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kFlashCrowd;
  cfg.rate_per_sec = 0.0;  // silent except for the crowd
  cfg.spike_at = 10 * sim::kSecond;
  cfg.spike_duration = sim::kSecond;
  cfg.spike_rate_per_sec = 2000.0;
  cfg.seed = 21;
  ArrivalProcess proc(cfg);
  const std::vector<sim::TimePoint> at = proc.take(100'000);
  ASSERT_FALSE(at.empty());
  EXPECT_GE(at.front(), cfg.spike_at);
  EXPECT_LT(at.back(), cfg.spike_at + cfg.spike_duration);
  // ~Poisson(2000) arrivals inside the window; 4 sigma band.
  EXPECT_NEAR(static_cast<double>(at.size()), 2000.0,
              4.0 * std::sqrt(2000.0));
  // Past the window the process is exhausted — kNever, not a spin.
  EXPECT_EQ(proc.next(cfg.spike_at + cfg.spike_duration),
            ArrivalProcess::kNever);
}

TEST(Arrivals, ZeroRateProcessReportsNever) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalConfig::Kind::kFlashCrowd;
  cfg.rate_per_sec = 0.0;
  cfg.spike_rate_per_sec = 0.0;
  EXPECT_EQ(ArrivalProcess(cfg).next(0), ArrivalProcess::kNever);
  EXPECT_TRUE(ArrivalProcess(cfg).take(10).empty());
}

// ========================================================== load engine ==

/// Engine driven by its own Poisson generator; every session just sleeps a
/// per-id random service time. Returns (stats, observer JSON).
struct EngineRun {
  LoadStats stats;
  std::string obs_json;
};

EngineRun run_sleepy_engine(std::int64_t sessions, int window, int pending,
                            double rate, std::uint64_t seed) {
  sim::Simulation s;
  obs::Observer observer;
  s.set_observer(&observer);
  LoadEngineConfig cfg;
  cfg.arrivals.rate_per_sec = rate;
  cfg.arrivals.seed = seed;
  cfg.max_sessions = sessions;
  cfg.max_in_flight = window;
  cfg.max_pending = pending;
  cfg.session_seed = seed ^ 0x5EEDull;
  LoadEngine engine(s, cfg, [&s](LoadEngine::Session& sess) {
    return [](sim::Simulation& sim, LoadEngine::Session& se)
               -> sim::Task<void> {
      co_await sim.delay(sim::micros(se.rng.uniform(100, 900)));
    }(s, sess);
  });
  engine.start();
  s.run();
  EXPECT_EQ(engine.in_flight(), 0);
  EXPECT_EQ(engine.pending(), 0);
  return EngineRun{engine.stats(), observer.to_json()};
}

TEST(LoadEngine, ReplayIsByteIdenticalIncludingObservability) {
  const EngineRun a = run_sleepy_engine(2'000, 16, 64, 5000.0, 0xD0D0);
  const EngineRun b = run_sleepy_engine(2'000, 16, 64, 5000.0, 0xD0D0);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.obs_json, b.obs_json);
  EXPECT_EQ(a.stats.offered, 2'000);
  EXPECT_EQ(a.stats.admitted, a.stats.completed);
}

TEST(LoadEngine, DistinctSeedsProduceDifferentSchedules) {
  const EngineRun a = run_sleepy_engine(500, 4, 16, 5000.0, 1);
  const EngineRun b = run_sleepy_engine(500, 4, 16, 5000.0, 2);
  EXPECT_NE(a.obs_json, b.obs_json);
}

TEST(LoadEngine, MaxSessionsCapsOfferedExactly) {
  const EngineRun r = run_sleepy_engine(1'234, 8, 1'234, 10'000.0, 3);
  EXPECT_EQ(r.stats.offered, 1'234);
  EXPECT_EQ(r.stats.admitted + r.stats.shed, 1'234);
}

TEST(LoadEngine, HorizonStopsTheGenerator) {
  sim::Simulation s;
  LoadEngineConfig cfg;
  cfg.arrivals.rate_per_sec = 1000.0;
  cfg.arrivals.seed = 5;
  cfg.max_sessions = 0;  // unbounded — the horizon is the only stop
  cfg.horizon = sim::kSecond;
  cfg.max_in_flight = 64;
  LoadEngine engine(s, cfg, [&s](LoadEngine::Session&) {
    return [](sim::Simulation& sim) -> sim::Task<void> {
      co_await sim.delay(sim::micros(10));
    }(s);
  });
  engine.start();
  s.run();
  // ~Poisson(1000) arrivals in one second; 5 sigma band, and none offered
  // after the horizon.
  EXPECT_GT(engine.stats().offered, 800);
  EXPECT_LT(engine.stats().offered, 1'200);
  EXPECT_EQ(engine.stats().completed, engine.stats().admitted);
}

TEST(LoadEngine, ZeroRateProcessOffersNothing) {
  sim::Simulation s;
  LoadEngineConfig cfg;
  cfg.arrivals.kind = ArrivalConfig::Kind::kFlashCrowd;
  cfg.arrivals.rate_per_sec = 0.0;
  cfg.arrivals.spike_rate_per_sec = 0.0;
  cfg.max_sessions = 100;
  LoadEngine engine(s, cfg, [&s](LoadEngine::Session&) {
    return [](sim::Simulation& sim) -> sim::Task<void> {
      co_await sim.delay(1);
    }(s);
  });
  engine.start();
  s.run();
  EXPECT_EQ(engine.stats().offered, 0);
  EXPECT_EQ(engine.stats().admitted, 0);
}

TEST(LoadEngine, RejectsInvalidConfig) {
  sim::Simulation s;
  auto body = [&s](LoadEngine::Session&) {
    return [](sim::Simulation& sim) -> sim::Task<void> {
      co_await sim.delay(1);
    }(s);
  };
  LoadEngineConfig bad_window;
  bad_window.max_in_flight = 0;
  EXPECT_THROW(LoadEngine(s, bad_window, body), std::invalid_argument);
  LoadEngineConfig bad_pending;
  bad_pending.max_pending = -1;
  EXPECT_THROW(LoadEngine(s, bad_pending, body), std::invalid_argument);
  LoadEngineConfig ok;
  EXPECT_THROW(LoadEngine(s, ok, nullptr), std::invalid_argument);
}

/// Manual-admission harness: no generator; a driver coroutine calls offer()
/// at chosen instants so boundary conditions land on exact counts.
struct ManualHarness {
  explicit ManualHarness(int window, int pending,
                         sim::Duration service = sim::millis(1))
      : service_time(service) {
    cfg.max_in_flight = window;
    cfg.max_pending = pending;
    engine = std::make_unique<LoadEngine>(
        s, cfg, [this](LoadEngine::Session& sess) { return body(sess); });
  }

  sim::Task<void> body(LoadEngine::Session& sess) {
    co_await s.delay(service_time);
    completion_order.push_back(sess.id);
  }

  sim::Simulation s;
  LoadEngineConfig cfg;
  sim::Duration service_time;
  std::unique_ptr<LoadEngine> engine;
  std::vector<std::int64_t> completion_order;
};

TEST(LoadEngine, AdmissionWindowExactlyFullBoundary) {
  ManualHarness h(4, 8);
  bool checked = false;
  h.s.spawn(
      [](ManualHarness& hh, bool& done) -> sim::Task<void> {
        for (int i = 0; i < 4; ++i) EXPECT_TRUE(hh.engine->offer());
        // Exactly full: every offer took a window slot, none queued.
        EXPECT_EQ(hh.engine->in_flight(), 4);
        EXPECT_EQ(hh.engine->pending(), 0);
        // One past the boundary queues instead of growing the window.
        EXPECT_TRUE(hh.engine->offer());
        EXPECT_EQ(hh.engine->in_flight(), 4);
        EXPECT_EQ(hh.engine->pending(), 1);
        done = true;
        co_return;
      }(h, checked),
      "driver");
  h.s.run();
  ASSERT_TRUE(checked);
  EXPECT_EQ(h.engine->stats().peak_in_flight, 4);
  EXPECT_EQ(h.engine->stats().peak_pending, 1);
  EXPECT_EQ(h.engine->stats().completed, 5);
  EXPECT_EQ(h.engine->stats().shed, 0);
}

TEST(LoadEngine, BacklogExactlyFullShedsTheNextArrival) {
  ManualHarness h(2, 3);
  h.s.spawn(
      [](ManualHarness& hh) -> sim::Task<void> {
        for (int i = 0; i < 5; ++i) EXPECT_TRUE(hh.engine->offer());
        EXPECT_EQ(hh.engine->pending(), 3);  // backlog exactly full
        EXPECT_FALSE(hh.engine->offer());    // window + backlog full -> shed
        EXPECT_EQ(hh.engine->pending(), 3);
        co_return;
      }(h),
      "driver");
  h.s.run();
  EXPECT_EQ(h.engine->stats().offered, 6);
  EXPECT_EQ(h.engine->stats().admitted, 5);
  EXPECT_EQ(h.engine->stats().shed, 1);
  EXPECT_EQ(h.engine->stats().completed, 5);
}

TEST(LoadEngine, BackfillIsFifoByArrivalOrder) {
  ManualHarness h(2, 16);
  h.s.spawn(
      [](ManualHarness& hh) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) EXPECT_TRUE(hh.engine->offer());
        co_return;
      }(h),
      "driver");
  h.s.run();
  const std::vector<std::int64_t> expect = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(h.completion_order, expect);
  EXPECT_EQ(h.engine->stats().peak_pending, 8);
}

TEST(LoadEngine, QueueWaitIsRecordedForEveryAdmission) {
  sim::Simulation s;
  obs::Observer observer;
  s.set_observer(&observer);
  LoadEngineConfig cfg;
  cfg.arrivals.rate_per_sec = 10'000.0;
  cfg.max_sessions = 200;
  cfg.max_in_flight = 2;  // force most arrivals through the backlog
  cfg.max_pending = 200;
  LoadEngine engine(s, cfg, [&s](LoadEngine::Session&) {
    return [](sim::Simulation& sim) -> sim::Task<void> {
      co_await sim.delay(sim::millis(1));
    }(s);
  });
  engine.start();
  s.run();
  const obs::LatencyHistogram& wait =
      observer.metrics().histogram("load.queue_wait");
  EXPECT_EQ(wait.count(), engine.stats().admitted);
  EXPECT_GT(wait.max(), 0);  // queued arrivals waited a measurable time
  const obs::LatencyHistogram& lat =
      observer.metrics().histogram("load.session_latency");
  EXPECT_EQ(lat.count(), engine.stats().completed);
}

TEST(LoadEngine, SlotPoolHighWaterStaysFlatAcrossTenThousandSessions) {
  const EngineRun r = run_sleepy_engine(10'000, 32, 128, 50'000.0, 0xF00D);
  EXPECT_EQ(r.stats.offered, 10'000);
  // The pool never grows past the admission window no matter how many
  // sessions run through it...
  EXPECT_LE(r.stats.slot_high_water, 32);
  EXPECT_EQ(r.stats.peak_in_flight, 32);
  // ...and every admitted session acquired and released exactly one record.
  EXPECT_EQ(r.stats.slot_acquires, r.stats.admitted);
  EXPECT_EQ(r.stats.slot_releases, r.stats.admitted);
}

/// RAII sentinel a session body plants on its coroutine frame: destroyed
/// exactly once whether the body finishes, throws, or is torn down.
struct LifeSentinel {
  explicit LifeSentinel(std::int64_t* d) : destroyed(d) {}
  LifeSentinel(const LifeSentinel&) = delete;
  LifeSentinel& operator=(const LifeSentinel&) = delete;
  ~LifeSentinel() { ++*destroyed; }
  std::int64_t* destroyed;
};

TEST(LoadEngine, SessionsDestroyedExactlyOnceOnSuccessAndExceptionPaths) {
  sim::Simulation s;
  std::int64_t constructed = 0;
  std::int64_t destroyed = 0;
  LoadEngineConfig cfg;
  cfg.arrivals.rate_per_sec = 20'000.0;
  cfg.arrivals.seed = 99;
  cfg.max_sessions = 1'000;
  cfg.max_in_flight = 8;
  cfg.max_pending = 1'000;
  LoadEngine engine(s, cfg, [&](LoadEngine::Session& sess) {
    return [](sim::Simulation& sim, LoadEngine::Session& se,
              std::int64_t& ctor, std::int64_t& dtor) -> sim::Task<void> {
      ++ctor;
      LifeSentinel sentinel(&dtor);
      co_await sim.delay(sim::micros(se.rng.uniform(10, 100)));
      // Deterministic failure mix: every third session dead-letters.
      if (se.id % 3 == 2) throw std::runtime_error("session failed");
      co_await sim.delay(sim::micros(10));
    }(s, sess, constructed, destroyed);
  });
  engine.start();
  s.run();
  const LoadStats& st = engine.stats();
  EXPECT_EQ(constructed, st.admitted);
  EXPECT_EQ(destroyed, constructed);  // exactly once, success or unwind
  EXPECT_EQ(st.admitted, 1'000);
  EXPECT_EQ(st.dead_lettered, 333);  // ids 2, 5, ..., 998
  EXPECT_EQ(st.completed, 667);
  EXPECT_EQ(st.slot_acquires, st.slot_releases);
}

TEST(LoadEngine, ThrottleOverloadBecomesMeasurableServerBusyFailures) {
  sim::Simulation s;
  cluster::ClusterConfig cc;
  cc.account_transactions_per_sec = 50;  // tiny target: overload instantly
  cluster::StorageCluster cl(s, cc);
  netsim::Nic nic(s, netsim::NicConfig{100e6, 100e6, sim::micros(50),
                                       64 * 1024.0});
  LoadEngineConfig cfg;
  cfg.arrivals.rate_per_sec = 2'000.0;
  cfg.arrivals.seed = 4;
  cfg.max_sessions = 500;
  cfg.max_in_flight = 64;
  cfg.max_pending = 500;
  LoadEngine engine(s, cfg, [&](LoadEngine::Session& sess) {
    return [](sim::Simulation&, cluster::StorageCluster& c, netsim::Nic& n,
              LoadEngine::Session& se) -> sim::Task<void> {
      cluster::RequestCost cost;
      cost.server_cpu = sim::micros(500);
      co_await c.execute(n, se.rng.next_u64(), cost);
    }(s, cl, nic, sess);
  });
  engine.start();
  s.run();
  const LoadStats& st = engine.stats();
  // Overload shows up as ServerBusy dead-letters, never as an unbounded
  // in-flight population.
  EXPECT_GT(st.throttle_failures, 0);
  EXPECT_EQ(st.throttle_failures, st.dead_lettered);
  EXPECT_LE(st.peak_in_flight, 64);
  EXPECT_GT(st.completed, 0);
}

TEST(LoadEngine, AccountingInvariantsHoldUnderOverloadAndShedding) {
  // Window 2, backlog 4, service 1 ms, arrivals at 10k/s: most arrivals
  // shed, everything still adds up.
  const EngineRun r = run_sleepy_engine(5'000, 2, 4, 10'000.0, 0xACC7);
  const LoadStats& st = r.stats;
  EXPECT_EQ(st.offered, 5'000);
  EXPECT_GT(st.shed, 0);
  EXPECT_EQ(st.offered, st.admitted + st.shed);
  EXPECT_EQ(st.admitted, st.completed + st.dead_lettered);
  EXPECT_EQ(st.slot_acquires, st.admitted);
  EXPECT_EQ(st.slot_releases, st.admitted);
  EXPECT_LE(st.peak_in_flight, 2);
  EXPECT_LE(st.peak_pending, 4);
}

TEST(LoadEngine, SessionRngIsAPureFunctionOfSessionId) {
  // Two engines with different windows admit the same ids in a different
  // interleaving; each id must still draw the same private stream.
  auto first_draws = [](int window) {
    sim::Simulation s;
    LoadEngineConfig cfg;
    cfg.arrivals.rate_per_sec = 10'000.0;
    cfg.arrivals.seed = 8;
    cfg.max_sessions = 64;
    cfg.max_in_flight = window;
    cfg.max_pending = 64;
    cfg.session_seed = 0xAB;
    std::vector<std::uint64_t> draws(64, 0);
    LoadEngine engine(s, cfg, [&](LoadEngine::Session& sess) {
      return [](sim::Simulation& sim, LoadEngine::Session& se,
                std::vector<std::uint64_t>& out) -> sim::Task<void> {
        out[static_cast<std::size_t>(se.id)] = se.rng.next_u64();
        co_await sim.delay(sim::millis(1));
      }(s, sess, draws);
    });
    engine.start();
    s.run();
    return draws;
  };
  EXPECT_EQ(first_draws(1), first_draws(64));
}

}  // namespace
