// Error-taxonomy and backoff tests for the upgraded RetryPolicy:
//  * each transient class (ServerBusy, Timeout, ConnectionReset) is retried
//    or rethrown exactly per its policy switch;
//  * service-semantic errors are never retried;
//  * max_attempts counts total attempts and rethrows on exhaustion;
//  * capped exponential backoff and deterministic jitter behave at edges;
//  * the paper() preset reproduces the paper's fixed 1 s sleep, and a
//    workload's timing depends on the policy ONLY when retries occur.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>

#include "azure_test_util.hpp"
#include "azure/common/errors.hpp"
#include "azure/common/retry.hpp"
#include "simcore/simulation.hpp"

namespace {

using azb_test::TestWorld;
using sim::Task;

enum class Err {
  kTimeout,
  kReset,
  kBusy,
  kNotFound,
  kChecksum,
  kPartitionMoved,
  kRegionMoved,
};

[[noreturn]] void raise(Err e) {
  switch (e) {
    case Err::kTimeout:
      throw azure::TimeoutError("injected timeout");
    case Err::kReset:
      throw azure::ConnectionResetError("injected reset");
    case Err::kBusy:
      throw azure::ServerBusyError("injected busy");
    case Err::kNotFound:
      throw azure::NotFoundError("injected 404");
    case Err::kChecksum:
      throw azure::ChecksumMismatchError("injected bit-flip");
    case Err::kPartitionMoved:
      throw azure::PartitionMovedError("injected stale-map redirect");
    case Err::kRegionMoved:
      throw azure::RegionMovedError("injected stale geo-map redirect");
  }
  throw azure::StorageError("unreachable");
}

/// One attempt: fails with `e` while calls <= failures, then returns 7.
Task<int> attempt(int& calls, int failures, Err e) {
  ++calls;
  if (calls <= failures) raise(e);
  co_return 7;
}

/// Like attempt(), but each try costs `cost` of virtual time before it
/// resolves — the knob the total-deadline boundary tests turn.
Task<int> timed_attempt(sim::Simulation& sim, int& calls, int failures,
                        Err e, sim::Duration cost) {
  ++calls;
  if (cost > 0) co_await sim.delay(cost);
  if (calls <= failures) raise(e);
  co_return 7;
}

struct Outcome {
  int calls = 0;
  std::int64_t retries = 0;
  int result = -1;
  bool threw = false;
  sim::TimePoint elapsed = 0;
};

/// Drives with_retry_counted over `attempt` to completion and reports what
/// happened (exceptions of any type are recorded, not propagated).
Outcome drive(const azure::RetryPolicy& policy, int failures, Err e) {
  sim::Simulation s;
  Outcome out;
  s.spawn([](sim::Simulation& sim, azure::RetryPolicy pol, int failures,
             Err e, Outcome& out) -> Task<> {
    try {
      out.result = co_await azure::with_retry_counted(
          sim, [&] { return attempt(out.calls, failures, e); }, pol,
          out.retries);
    } catch (const azure::StorageError&) {
      out.threw = true;
    } catch (const azure::FaultError&) {
      // Injected faults are deliberately NOT StorageErrors (a timeout is
      // the absence of an answer, not a service answer).
      out.threw = true;
    }
  }(s, policy, failures, e, out));
  s.run();
  out.elapsed = s.now();
  return out;
}

/// drive() over timed_attempt: every attempt costs `cost` virtual time.
Outcome drive_timed(const azure::RetryPolicy& policy, int failures, Err e,
                    sim::Duration cost) {
  sim::Simulation s;
  Outcome out;
  s.spawn([](sim::Simulation& sim, azure::RetryPolicy pol, int failures,
             Err e, sim::Duration cost, Outcome& out) -> Task<> {
    try {
      out.result = co_await azure::with_retry_counted(
          sim, [&] { return timed_attempt(sim, out.calls, failures, e, cost); },
          pol, out.retries);
    } catch (const azure::StorageError&) {
      out.threw = true;
    } catch (const azure::FaultError&) {
      out.threw = true;
    }
  }(s, policy, failures, e, cost, out));
  s.run();
  out.elapsed = s.now();
  return out;
}

azure::RetryPolicy exact_policy() {
  azure::RetryPolicy p;
  p.jitter = 0.0;  // exact timing assertions
  return p;
}

// ------------------------------------------------------- per-error class ----

TEST(RetryTaxonomyTest, TimeoutRetriedThenSucceeds) {
  const Outcome o = drive(exact_policy(), 2, Err::kTimeout);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 3);
  EXPECT_EQ(o.retries, 2);
  // Exponential: 500 ms then 1 s.
  EXPECT_EQ(o.elapsed, sim::millis(500) + sim::seconds(1));
}

TEST(RetryTaxonomyTest, ConnectionResetRetriedByDefault) {
  const Outcome o = drive(exact_policy(), 1, Err::kReset);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 2);
  EXPECT_EQ(o.elapsed, sim::millis(500));
}

TEST(RetryTaxonomyTest, ServerBusyRetriedByDefault) {
  const Outcome o = drive(exact_policy(), 1, Err::kBusy);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 2);
}

TEST(RetryTaxonomyTest, TimeoutNotRetriedWhenDisabled) {
  azure::RetryPolicy p = exact_policy();
  p.retry_timeouts = false;
  const Outcome o = drive(p, 1, Err::kTimeout);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.retries, 0);
  EXPECT_EQ(o.elapsed, 0);  // rethrown immediately, no backoff slept
}

TEST(RetryTaxonomyTest, ConnectionResetNotRetriedWhenDisabled) {
  azure::RetryPolicy p = exact_policy();
  p.retry_connection_resets = false;
  const Outcome o = drive(p, 1, Err::kReset);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
}

TEST(RetryTaxonomyTest, ChecksumMismatchRetriedByDefault) {
  // A failed end-to-end checksum means the bytes died on the wire, not in
  // the service: the request was either rejected before any state changed
  // (uploads) or is a re-readable download — always safe to retry.
  const Outcome o = drive(exact_policy(), 2, Err::kChecksum);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 3);
  EXPECT_EQ(o.retries, 2);
  EXPECT_EQ(o.elapsed, sim::millis(500) + sim::seconds(1));
}

TEST(RetryTaxonomyTest, ChecksumMismatchNotRetriedWhenDisabled) {
  azure::RetryPolicy p = exact_policy();
  p.retry_checksum_mismatch = false;
  const Outcome o = drive(p, 1, Err::kChecksum);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.retries, 0);
}

TEST(RetryTaxonomyTest, ChecksumMismatchExhaustionRethrows) {
  azure::RetryPolicy p = exact_policy();
  p.max_attempts = 3;
  const Outcome o = drive(p, 1'000'000, Err::kChecksum);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 3);
  EXPECT_EQ(o.retries, 2);
}

TEST(RetryTaxonomyTest, SemanticErrorsNeverRetried) {
  const Outcome o = drive(exact_policy(), 5, Err::kNotFound);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.retries, 0);
}

// ----------------------------------------------------------- exhaustion ----

TEST(RetryTaxonomyTest, MaxAttemptsExhaustionRethrows) {
  azure::RetryPolicy p = exact_policy();
  p.mode = azure::Backoff::kFixed;
  p.max_attempts = 4;
  const Outcome o = drive(p, 1'000'000, Err::kTimeout);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 4);    // total attempts, first included
  EXPECT_EQ(o.retries, 3);  // backoffs slept between them
  EXPECT_EQ(o.elapsed, 3 * sim::millis(500));
}

TEST(RetryTaxonomyTest, SingleAttemptPolicyNeverSleeps) {
  azure::RetryPolicy p = exact_policy();
  p.max_attempts = 1;
  const Outcome o = drive(p, 1, Err::kBusy);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.elapsed, 0);
}

TEST(RetryTaxonomyTest, MaxAttemptsOneIsExactlyOneAttemptPerErrorClass) {
  // Attempt-budget boundary (RetryPolicy::gives_up): max_attempts counts
  // TOTAL attempts, so 1 means "never retry" for every transient class —
  // no second call, no backoff sleep, the error rethrown as-is.
  for (Err e : {Err::kBusy, Err::kTimeout, Err::kReset, Err::kChecksum}) {
    azure::RetryPolicy p = exact_policy();
    p.max_attempts = 1;
    const Outcome o = drive(p, /*failures=*/1, e);
    EXPECT_EQ(o.calls, 1) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.retries, 0) << "class " << static_cast<int>(e);
    EXPECT_TRUE(o.threw) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.elapsed, 0) << "class " << static_cast<int>(e);
  }
}

TEST(RetryTaxonomyTest, MaxAttemptsTwoIsExactlyOneRetryPerErrorClass) {
  for (Err e : {Err::kBusy, Err::kTimeout, Err::kReset, Err::kChecksum}) {
    azure::RetryPolicy p = exact_policy();
    p.max_attempts = 2;
    // Persistent failure: the first try plus exactly one retry, then the
    // second attempt's error surfaces.
    const Outcome exhausted = drive(p, /*failures=*/1'000, e);
    EXPECT_EQ(exhausted.calls, 2) << "class " << static_cast<int>(e);
    EXPECT_EQ(exhausted.retries, 1) << "class " << static_cast<int>(e);
    EXPECT_TRUE(exhausted.threw) << "class " << static_cast<int>(e);
    // One transient failure: the single allowed retry recovers.
    const Outcome recovered = drive(p, /*failures=*/1, e);
    EXPECT_EQ(recovered.calls, 2) << "class " << static_cast<int>(e);
    EXPECT_EQ(recovered.retries, 1) << "class " << static_cast<int>(e);
    EXPECT_EQ(recovered.result, 7) << "class " << static_cast<int>(e);
  }
}

// -------------------------------------------------------- backoff shape ----

TEST(RetryBackoffTest, ExponentialGrowthCapsAtMaxBackoff) {
  azure::RetryPolicy p;
  p.jitter = 0.0;
  p.backoff = sim::millis(500);
  p.max_backoff = sim::seconds(4);
  EXPECT_EQ(p.backoff_for(0), sim::millis(500));
  EXPECT_EQ(p.backoff_for(1), sim::seconds(1));
  EXPECT_EQ(p.backoff_for(2), sim::seconds(2));
  EXPECT_EQ(p.backoff_for(3), sim::seconds(4));
  EXPECT_EQ(p.backoff_for(4), sim::seconds(4));   // capped
  EXPECT_EQ(p.backoff_for(30), sim::seconds(4));  // no overflow at depth
}

TEST(RetryBackoffTest, InitialBackoffAboveCapIsClamped) {
  azure::RetryPolicy p;
  p.jitter = 0.0;
  p.backoff = sim::seconds(8);
  p.max_backoff = sim::seconds(4);
  EXPECT_EQ(p.backoff_for(0), sim::seconds(4));
}

TEST(RetryBackoffTest, JitterIsDeterministicAndBounded) {
  azure::RetryPolicy p;  // default jitter = 0.25
  azure::RetryPolicy q = p;
  for (int r = 0; r < 16; ++r) {
    const sim::Duration a = p.backoff_for(r);
    // Same policy, same retry index => bit-identical backoff.
    EXPECT_EQ(a, q.backoff_for(r)) << "retry " << r;
    // Within [1 - jitter, 1 + jitter] of the un-jittered base (and never
    // above the cap).
    azure::RetryPolicy bare = p;
    bare.jitter = 0.0;
    const double base = static_cast<double>(bare.backoff_for(r));
    EXPECT_GE(static_cast<double>(a), 0.75 * base - 1.0);
    EXPECT_LE(static_cast<double>(a),
              std::min(1.25 * base + 1.0,
                       static_cast<double>(p.max_backoff)));
    EXPECT_GT(a, 0);
  }
}

TEST(RetryBackoffTest, DistinctJitterSeedsDecorrelate) {
  azure::RetryPolicy a;
  azure::RetryPolicy b;
  b.jitter_seed = 1;
  bool any_differ = false;
  for (int r = 0; r < 8; ++r) {
    any_differ = any_differ || (a.backoff_for(r) != b.backoff_for(r));
  }
  EXPECT_TRUE(any_differ);
}

// ------------------------------------------------------ the paper preset ----

TEST(RetryPaperPresetTest, FixedOneSecondSleep) {
  const azure::RetryPolicy p = azure::RetryPolicy::paper();
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(p.backoff_for(r), sim::kSecond) << "retry " << r;
  }
}

TEST(RetryPaperPresetTest, SurfacesInjectedFaultsInsteadOfHidingThem) {
  const Outcome timeout = drive(azure::RetryPolicy::paper(), 1, Err::kTimeout);
  EXPECT_TRUE(timeout.threw);
  EXPECT_EQ(timeout.calls, 1);
  const Outcome reset = drive(azure::RetryPolicy::paper(), 1, Err::kReset);
  EXPECT_TRUE(reset.threw);
  // The 2010-era client had no end-to-end checksum machinery either.
  const Outcome crc = drive(azure::RetryPolicy::paper(), 1, Err::kChecksum);
  EXPECT_TRUE(crc.threw);
  EXPECT_EQ(crc.calls, 1);
  // ...but the paper-era ServerBusy is still retried after 1 s.
  const Outcome busy = drive(azure::RetryPolicy::paper(), 2, Err::kBusy);
  EXPECT_EQ(busy.result, 7);
  EXPECT_EQ(busy.elapsed, 2 * sim::kSecond);
}

// ------------------------------------- preset divergence (regression) -------

/// End-to-end queue workload under a given policy; returns the virtual end
/// time. `tx_limit` throttles the account to force ServerBusy retries.
sim::TimePoint queue_workload_end(const azure::RetryPolicy& policy,
                                  int tx_limit) {
  azure::CloudConfig cfg;
  if (tx_limit > 0) cfg.cluster.account_transactions_per_sec = tx_limit;
  TestWorld w(cfg);
  w.sim.spawn([](TestWorld& t, azure::RetryPolicy pol) -> Task<> {
    auto q = t.account.create_cloud_queue_client().get_queue_reference("w");
    co_await azure::with_retry(
        t.sim, [&] { return q.create_if_not_exists(); }, pol);
    for (int i = 0; i < 25; ++i) {
      co_await azure::with_retry(
          t.sim, [&] { return q.add_message(azure::Payload::bytes("m")); },
          pol);
    }
  }(w, policy));
  w.sim.run();
  return w.sim.now();
}

// ------------------------------------------------- cross-region redirects ----

TEST(RetryTaxonomyTest, RegionMovedRetriedByDefault) {
  // A geo failover redirect refreshes the client's cached geo map, so the
  // retry routes to the promoted region and succeeds.
  const Outcome o = drive(exact_policy(), 1, Err::kRegionMoved);
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 2);
  EXPECT_EQ(o.retries, 1);
}

TEST(RetryTaxonomyTest, RegionMovedNotRetriedWhenDisabled) {
  azure::RetryPolicy p = exact_policy();
  p.retry_region_moved = false;
  const Outcome o = drive(p, 1, Err::kRegionMoved);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.retries, 0);
}

TEST(RetryPaperPresetTest, PaperPresetSurfacesGeoRedirects) {
  // The paper-era model is a single stamp: a region failover must surface,
  // never be absorbed (same rule as the partition-move redirect).
  const Outcome o = drive(azure::RetryPolicy::paper(), 1, Err::kRegionMoved);
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 1);
}

// ------------------------------------------------- total-deadline budget ----

constexpr std::initializer_list<Err> kTransientClasses = {
    Err::kBusy,          Err::kTimeout,     Err::kReset,
    Err::kChecksum,      Err::kPartitionMoved, Err::kRegionMoved};

TEST(RetryDeadlineTest, DisabledByDefaultAndInPaperPreset) {
  EXPECT_EQ(azure::RetryPolicy{}.total_deadline, 0);
  EXPECT_EQ(azure::RetryPolicy::paper().total_deadline, 0);
  // With the cap at 0, elapsed time alone never gives up.
  EXPECT_FALSE(exact_policy().gives_up(true, 0, sim::seconds(3'600)));
}

TEST(RetryDeadlineTest, ExactlyAtDeadlineGivesUpPerErrorClass) {
  // Boundary contract: an error caught with elapsed == total_deadline is
  // rethrown — the budget is inclusive at the deadline instant. One attempt
  // costing exactly the deadline exhausts the budget for every class.
  for (Err e : kTransientClasses) {
    azure::RetryPolicy p = exact_policy();
    p.total_deadline = sim::seconds(2);
    const Outcome o = drive_timed(p, /*failures=*/1'000, e, sim::seconds(2));
    EXPECT_TRUE(o.threw) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.calls, 1) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.retries, 0) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.elapsed, sim::seconds(2)) << "class " << static_cast<int>(e);
  }
}

TEST(RetryDeadlineTest, OneNanosecondUnderDeadlineStillRetriesPerErrorClass) {
  // The mirror boundary: elapsed == deadline - 1 ns may retry. With one
  // transient failure, the single retry recovers for every class.
  for (Err e : kTransientClasses) {
    azure::RetryPolicy p = exact_policy();
    p.total_deadline = sim::seconds(2);
    const Outcome o =
        drive_timed(p, /*failures=*/1, e, sim::seconds(2) - 1);
    EXPECT_EQ(o.result, 7) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.calls, 2) << "class " << static_cast<int>(e);
    EXPECT_EQ(o.retries, 1) << "class " << static_cast<int>(e);
  }
}

TEST(RetryDeadlineTest, BackoffTimeCountsAgainstTheBudget) {
  // Fixed 500 ms backoff, 300 ms attempts, 1 s budget: attempt 1 fails at
  // 300 ms (under budget → retry), backoff ends at 800 ms, attempt 2 fails
  // at 1.1 s (over budget → rethrow). The backoff sleep itself consumed
  // budget — without it the second attempt would have finished in time.
  azure::RetryPolicy p = exact_policy();
  p.mode = azure::Backoff::kFixed;
  p.backoff = sim::millis(500);
  p.total_deadline = sim::seconds(1);
  const Outcome o =
      drive_timed(p, /*failures=*/1'000, Err::kBusy, sim::millis(300));
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 2);
  EXPECT_EQ(o.retries, 1);
  EXPECT_EQ(o.elapsed, sim::millis(300 + 500 + 300));
}

TEST(RetryDeadlineTest, DeadlineNeverCancelsTheAttemptInFlight) {
  // An attempt that straddles the deadline runs to completion; the budget
  // only stops further retrying. A success after the deadline is a success.
  azure::RetryPolicy p = exact_policy();
  p.total_deadline = sim::millis(100);
  const Outcome o =
      drive_timed(p, /*failures=*/0, Err::kBusy, sim::seconds(5));
  EXPECT_EQ(o.result, 7);
  EXPECT_EQ(o.calls, 1);
  EXPECT_EQ(o.elapsed, sim::seconds(5));
}

TEST(RetryDeadlineTest, AttemptCapStillBindsUnderALooseDeadline) {
  // Both budgets are live: whichever exhausts first rethrows. A generous
  // deadline does not extend the attempt cap.
  azure::RetryPolicy p = exact_policy();
  p.mode = azure::Backoff::kFixed;
  p.max_attempts = 3;
  p.total_deadline = sim::seconds(3'600);
  const Outcome o = drive_timed(p, 1'000, Err::kTimeout, sim::millis(1));
  EXPECT_TRUE(o.threw);
  EXPECT_EQ(o.calls, 3);
  EXPECT_EQ(o.retries, 2);
}

TEST(RetryPaperPresetTest, PresetsDivergeOnlyWhenRetriesOccur) {
  // Unthrottled: no retry ever fires, so the policy's backoff shape is
  // invisible and both presets land on the identical virtual end time.
  // This is the byte-identity guarantee the fig4-fig9 benchmarks rely on.
  EXPECT_EQ(queue_workload_end(azure::RetryPolicy::paper(), 0),
            queue_workload_end(azure::RetryPolicy{}, 0));
  // Throttled: ServerBusy retries fire and the backoff shapes (fixed 1 s
  // vs. jittered exponential) produce different schedules.
  EXPECT_NE(queue_workload_end(azure::RetryPolicy::paper(), 2),
            queue_workload_end(azure::RetryPolicy{}, 2));
}

}  // namespace
