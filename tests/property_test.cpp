// Parameterized property-style sweeps over the storage services and kernel
// primitives (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "azure_test_util.hpp"
#include "azure/common/errors.hpp"
#include "azure/common/limits.hpp"
#include "azure/common/retry.hpp"
#include "core/barrier.hpp"
#include "simcore/random.hpp"
#include "simcore/rate_limiter.hpp"
#include "simcore/sync.hpp"

namespace {

using azb_test::TestWorld;
using azure::Payload;
using sim::Task;
using sim::TimePoint;

// --------------------------------------------------- blob roundtrip sweep ----

/// Property: any payload uploaded through any of the three upload paths
/// (single-shot, staged blocks, pages) downloads byte-identical.
class BlobRoundtrip : public ::testing::TestWithParam<std::int64_t> {};

std::string pattern_data(std::int64_t size) {
  std::string s(static_cast<std::size_t>(size), '\0');
  sim::Random rng(static_cast<std::uint64_t>(size) * 2654435761u + 1);
  for (auto& c : s) c = static_cast<char>('!' + rng.uniform(0, 90));
  return s;
}

TEST_P(BlobRoundtrip, SingleShotPreservesBytes) {
  const std::int64_t size = GetParam();
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> { co_return; });
  w.sim.spawn([](TestWorld& t, std::int64_t n) -> Task<> {
    auto c = t.account.create_cloud_blob_client().get_container_reference("c");
    co_await c.create_if_not_exists();
    auto blob = c.get_block_blob_reference("b");
    const std::string data = pattern_data(n);
    co_await blob.upload_text(Payload::bytes(data));
    const auto back = co_await blob.download_text();
    EXPECT_EQ(back.data(), data);
  }(w, size));
  w.sim.run();
}

TEST_P(BlobRoundtrip, StagedBlocksPreserveBytes) {
  const std::int64_t size = GetParam();
  TestWorld w;
  w.sim.spawn([](TestWorld& t, std::int64_t n) -> Task<> {
    auto c = t.account.create_cloud_blob_client().get_container_reference("c");
    co_await c.create_if_not_exists();
    auto blob = c.get_block_blob_reference("b");
    const std::string data = pattern_data(n);
    // Stage in <=64 KB blocks.
    std::vector<std::string> ids;
    for (std::int64_t off = 0; off < n; off += 64 << 10) {
      const auto len = std::min<std::int64_t>(64 << 10, n - off);
      ids.push_back("blk-" + std::to_string(off));
      co_await blob.put_block(
          ids.back(),
          Payload::bytes(data.substr(static_cast<std::size_t>(off),
                                     static_cast<std::size_t>(len))));
    }
    co_await blob.put_block_list(ids);
    const auto back = co_await blob.download_text();
    EXPECT_EQ(back.data(), data);
    const auto props = co_await blob.get_properties();
    EXPECT_EQ(props.size, n);
  }(w, size));
  w.sim.run();
}

TEST_P(BlobRoundtrip, PagesPreserveBytes) {
  // Page path requires 512-alignment; round the size up.
  const std::int64_t size = ((GetParam() + 511) / 512) * 512;
  TestWorld w;
  w.sim.spawn([](TestWorld& t, std::int64_t n) -> Task<> {
    auto c = t.account.create_cloud_blob_client().get_container_reference("c");
    co_await c.create_if_not_exists();
    auto blob = c.get_page_blob_reference("p");
    co_await blob.create(((n + (4 << 20) - 1) / (4 << 20)) * (4 << 20));
    const std::string data = pattern_data(n);
    for (std::int64_t off = 0; off < n; off += 1 << 20) {
      const auto len = std::min<std::int64_t>(1 << 20, n - off);
      co_await blob.put_page(
          off, Payload::bytes(data.substr(static_cast<std::size_t>(off),
                                          static_cast<std::size_t>(len))));
    }
    const auto back = co_await blob.open_read();
    EXPECT_EQ(back.data(), data);
  }(w, size));
  w.sim.run();
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlobRoundtrip,
                         ::testing::Values<std::int64_t>(1, 511, 512, 1000,
                                                         4096, 65536, 100000,
                                                         262144));

// ------------------------------------------------- queue congruence sweep ----

/// Property: for any payload size within the limit and any message count,
/// n puts followed by n gets return every payload exactly once (order may
/// differ: FIFO is not guaranteed).
class QueueConservation
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(QueueConservation, EveryMessageDeliveredExactlyOnce) {
  const auto [size, count] = GetParam();
  TestWorld w;
  w.sim.spawn([](TestWorld& t, std::int64_t sz, int n) -> Task<> {
    auto q = t.account.create_cloud_queue_client().get_queue_reference("q");
    co_await q.create();
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      std::string body = std::to_string(i);
      body.resize(static_cast<std::size_t>(sz), 'x');
      co_await q.add_message(Payload::bytes(body));
    }
    for (int i = 0; i < n; ++i) {
      auto m = co_await q.get_message(sim::seconds(3600));
      CO_ASSERT_TRUE(m.has_value());
      const int id = std::stoi(m->body.data());
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]) << "duplicate " << id;
      seen[static_cast<std::size_t>(id)] = true;
      EXPECT_EQ(m->body.size(), sz);
      co_await q.delete_message(*m);
    }
    EXPECT_EQ(co_await q.get_message_count(), 0);
    for (bool s : seen) EXPECT_TRUE(s);
  }(w, size, count));
  w.sim.run();
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCounts, QueueConservation,
    ::testing::Combine(::testing::Values<std::int64_t>(8, 1024, 49'152),
                       ::testing::Values(1, 7, 40)));

// ---------------------------------------------------- table entity sweep ----

/// Property: insert -> query roundtrips the payload; update strictly
/// refreshes the ETag; delete makes the row unqueryable.
class TableLifecycle : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TableLifecycle, FullLifecycleHoldsAtAnySize) {
  const std::int64_t size = GetParam();
  TestWorld w;
  w.sim.spawn([](TestWorld& t, std::int64_t sz) -> Task<> {
    auto tbl = t.account.create_cloud_table_client().get_table_reference("t");
    co_await tbl.create_if_not_exists();
    azure::TableEntity e;
    e.partition_key = "pk";
    e.row_key = "rk";
    e.properties["data"] = Payload::synthetic(sz);
    co_await tbl.insert(e);
    auto q1 = co_await tbl.query("pk", "rk");
    EXPECT_EQ(std::get<Payload>(q1.properties.at("data")).size(), sz);

    e.properties["data"] = Payload::synthetic(sz / 2 + 1);
    co_await tbl.update(e, "*");
    auto q2 = co_await tbl.query("pk", "rk");
    EXPECT_NE(q2.etag, q1.etag);
    EXPECT_GE(q2.timestamp, q1.timestamp);
    EXPECT_EQ(std::get<Payload>(q2.properties.at("data")).size(), sz / 2 + 1);

    co_await tbl.erase("pk", "rk", q2.etag);
    EXPECT_THROW(co_await tbl.query("pk", "rk"), azure::NotFoundError);
  }(w, size));
  w.sim.run();
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableLifecycle,
                         ::testing::Values<std::int64_t>(16, 4096, 65'536,
                                                         500'000, 1'000'000));

// ------------------------------------------------- flow limiter invariants ----

/// Property: for any (rate, amount, concurrency), the total completion time
/// of n concurrent transfers is exactly n*amount/rate (serialized fluid
/// flow, zero burst) and completions preserve FIFO order.
class FlowLimiterLaw
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(FlowLimiterLaw, SerializationAndOrder) {
  const auto [rate, amount, n] = GetParam();
  sim::Simulation s;
  sim::FlowLimiter limiter(s, rate, /*burst=*/0.0);
  std::vector<int> completions;
  for (int i = 0; i < n; ++i) {
    s.spawn([](sim::FlowLimiter& l, double amt, std::vector<int>& done,
               int id) -> Task<> {
      co_await l.acquire(amt);
      done.push_back(id);
    }(limiter, amount, completions, i));
  }
  s.run();
  ASSERT_EQ(static_cast<int>(completions.size()), n);
  for (int i = 0; i < n; ++i) EXPECT_EQ(completions[static_cast<size_t>(i)], i);
  const auto expected = static_cast<sim::Duration>(
      static_cast<double>(n) * amount / rate * sim::kSecond);
  EXPECT_NEAR(static_cast<double>(s.now()), static_cast<double>(expected),
              static_cast<double>(n));  // 1 ns rounding per acquire
}

INSTANTIATE_TEST_SUITE_P(
    RatesAmountsConcurrency, FlowLimiterLaw,
    ::testing::Combine(::testing::Values(100.0, 1e6, 6e7),
                       ::testing::Values(1.0, 1024.0, 1048576.0),
                       ::testing::Values(1, 3, 17)));

// ---------------------------------------------- window counter invariants ----

/// Property: exactly `budget` admissions succeed per window, for any budget
/// and any burst size.
class WindowCounterLaw
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowCounterLaw, ExactBudgetPerWindow) {
  const auto [budget, attempts] = GetParam();
  sim::Simulation s;
  sim::WindowCounter wc(s, budget);
  int admitted = 0;
  for (int i = 0; i < attempts; ++i) {
    if (wc.try_consume()) ++admitted;
  }
  EXPECT_EQ(admitted, std::min(budget, attempts));
  // Next window refills exactly once more.
  s.run_until(sim::kSecond);
  int second = 0;
  for (int i = 0; i < attempts; ++i) {
    if (wc.try_consume()) ++second;
  }
  EXPECT_EQ(second, std::min(budget, attempts));
}

INSTANTIATE_TEST_SUITE_P(BudgetsAndBursts, WindowCounterLaw,
                         ::testing::Combine(::testing::Values(1, 5, 500),
                                            ::testing::Values(1, 100, 700)));

/// Boundary regression for the window roll: an admission at exactly
/// t == window must land in the NEW window (with a fresh budget), not
/// consume a slot of the expired one, and the budget of the old window
/// must be honoured up to its last representable instant.
TEST(WindowCounterBoundaryTest, RollHappensExactlyAtTheWindowEdge) {
  sim::Simulation s;
  constexpr int kBudget = 3;
  sim::WindowCounter wc(s, kBudget);
  // Exhaust the first window's budget at t = 0.
  for (int i = 0; i < kBudget; ++i) EXPECT_TRUE(wc.try_consume());
  EXPECT_FALSE(wc.try_consume());
  // One tick before the edge the old window still applies.
  s.run_until(sim::kSecond - 1);
  EXPECT_FALSE(wc.try_consume());
  // At exactly t == window the counter rolls: a full fresh budget.
  s.run_until(sim::kSecond);
  for (int i = 0; i < kBudget; ++i) {
    EXPECT_TRUE(wc.try_consume()) << "admission " << i << " at the edge";
  }
  EXPECT_FALSE(wc.try_consume());
  // The rejected attempts above must not have consumed future budget.
  s.run_until(2 * sim::kSecond);
  EXPECT_TRUE(wc.try_consume());
}

// -------------------------------------------------------- barrier sweep ----

/// Property: for any worker count, no worker passes the barrier before the
/// last one arrives.
class BarrierLaw : public ::testing::TestWithParam<int> {};

TEST_P(BarrierLaw, NoEarlyRelease) {
  const int workers = GetParam();
  TestWorld w;
  std::vector<TimePoint> released(static_cast<std::size_t>(workers), -1);
  TimePoint last_arrival = 0;
  for (int i = 0; i < workers; ++i) {
    const auto arrival = sim::millis(137 * (i + 1));
    last_arrival = std::max(last_arrival, arrival);
    w.sim.spawn([](TestWorld& t, int id, int n, sim::Duration delay,
                   std::vector<TimePoint>& out) -> Task<> {
      azurebench::QueueBarrier barrier(t.account, "sync", n);
      co_await barrier.provision();
      co_await t.sim.delay(delay);
      co_await barrier.arrive();
      out[static_cast<std::size_t>(id)] = t.sim.now();
    }(w, i, workers, arrival, released));
  }
  w.sim.run();
  for (const TimePoint r : released) EXPECT_GE(r, last_arrival);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, BarrierLaw,
                         ::testing::Values(1, 2, 5, 17, 64));

// ---------------------------------------------- fault-injection property ----

/// Property: for ANY fault-plan seed, the queue's visibility-timeout
/// mechanism preserves at-least-once delivery — no message is lost to
/// injected drops or simulated consumer crashes — and the service's
/// redelivery counter equals exactly the number of injected abandons
/// (dropped requests never cause phantom claims, because services mutate
/// state only after the cluster round-trip succeeds).
class FaultPlanLaw : public ::testing::TestWithParam<int> {};

TEST_P(FaultPlanLaw, AtLeastOnceAndExactRedeliveryAccounting) {
  const int seed = GetParam();
  azure::CloudConfig cfg;
  cfg.faults.seed = 0xF00D + static_cast<std::uint64_t>(seed);
  cfg.faults.drop_probability = 0.02;
  cfg.faults.duplicate_probability = 0.02;
  cfg.faults.latency_spike_probability = 0.03;
  cfg.faults.drop_timeout = sim::millis(200);
  TestWorld w(cfg);

  constexpr int kMessages = 18;
  azure::RetryPolicy retry;
  retry.backoff = sim::millis(250);
  retry.max_backoff = sim::seconds(2);
  retry.jitter_seed = static_cast<std::uint64_t>(seed);

  std::int64_t abandons = 0;
  std::vector<int> deliveries(kMessages, 0);

  w.sim.spawn([](TestWorld& t, azure::RetryPolicy retry, int test_seed,
                 std::int64_t& abandons,
                 std::vector<int>& deliveries) -> Task<> {
    auto q = t.account.create_cloud_queue_client().get_queue_reference("pq");
    co_await azure::with_retry(
        t.sim, [&] { return q.create_if_not_exists(); }, retry);
    const int n = static_cast<int>(deliveries.size());
    for (int i = 0; i < n; ++i) {
      co_await azure::with_retry(t.sim, [&] {
        return q.add_message(Payload::bytes(std::to_string(i)));
      }, retry);
    }
    // Consume everything; a seeded coin decides which deliveries the
    // "consumer" abandons mid-processing (crash before delete). Abandoned
    // messages must reappear after the visibility timeout.
    sim::Random crash_coin(0xC0FFEE ^ static_cast<std::uint64_t>(test_seed));
    int deleted = 0;
    while (deleted < n) {
      CO_ASSERT_TRUE(t.sim.now() < sim::seconds(600));  // lost-message guard
      auto m = co_await azure::with_retry(
          t.sim, [&] { return q.get_message(sim::seconds(5)); }, retry);
      if (!m.has_value()) {
        co_await t.sim.delay(sim::millis(200));
        continue;
      }
      ++deliveries[static_cast<std::size_t>(std::stoi(m->body.data()))];
      if (crash_coin.bernoulli(0.25)) {
        ++abandons;  // crashed before deleting; never acks this delivery
        continue;
      }
      co_await azure::with_retry(
          t.sim, [&] { return q.delete_message(*m); }, retry);
      ++deleted;
    }
    const std::int64_t left = co_await azure::with_retry(
        t.sim, [&] { return q.get_message_count(); }, retry);
    EXPECT_EQ(left, 0);
  }(w, retry, seed, abandons, deliveries));
  w.sim.run();

  for (int i = 0; i < kMessages; ++i) {
    EXPECT_GE(deliveries[static_cast<std::size_t>(i)], 1)
        << "message " << i << " was lost under fault seed " << seed;
  }
  EXPECT_EQ(w.env.queue_service().redeliveries(), abandons);
}

INSTANTIATE_TEST_SUITE_P(TwoHundredSeeds, FaultPlanLaw,
                         ::testing::Range(0, 200));

// -------------------------------------------------- determinism property ----

/// Property: the whole stack is deterministic — identical runs produce
/// identical virtual end times for any worker count.
class DeterminismLaw : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismLaw, IdenticalEndTimes) {
  const int workers = GetParam();
  auto run_once = [workers] {
    TestWorld w;
    for (int i = 0; i < workers; ++i) {
      w.sim.spawn([](TestWorld& t, int id) -> Task<> {
        auto q = t.account.create_cloud_queue_client().get_queue_reference(
            "q" + std::to_string(id % 3));
        co_await q.create_if_not_exists();
        for (int k = 0; k < 5; ++k) {
          co_await q.add_message(Payload::synthetic(1024 * (id + 1)));
          auto m = co_await q.get_message();
          if (m) co_await q.delete_message(*m);
        }
      }(w, i));
    }
    w.sim.run();
    return std::pair{w.sim.now(), w.sim.events_executed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeterminismLaw,
                         ::testing::Values(1, 8, 33));

// ----------------------------------------------------- integrity property ----

/// Property: for ANY corruption-plan seed — bit-flips on the wire, server
/// crashes tearing replica writes — no client ever observes a corrupt byte
/// (damaged payloads are rejected or retried end-to-end), and one forced
/// anti-entropy pass converges every replica of every tracked object back
/// to its committed checksum.
class IntegrityLaw : public ::testing::TestWithParam<int> {};

std::string integrity_body(int id) {
  std::string s = std::to_string(id) + ":";
  sim::Random rng(static_cast<std::uint64_t>(id) * 2654435761u + 99);
  for (int i = 0; i < 256; ++i) s += static_cast<char>('!' + rng.uniform(0, 90));
  return s;
}

TEST_P(IntegrityLaw, NoCorruptByteReachesClientsAndScrubConverges) {
  const int seed = GetParam();
  azure::CloudConfig cfg;
  cfg.faults.seed = 0x1D7E9 + static_cast<std::uint64_t>(seed);
  cfg.faults.corruption_probability = 0.04;
  cfg.faults.drop_probability = 0.01;
  cfg.faults.drop_timeout = sim::millis(200);
  cfg.faults.server_crashes = 2;
  cfg.faults.crash_mean_interval = sim::seconds(2);
  cfg.faults.server_downtime = sim::millis(500);
  TestWorld w(cfg);

  constexpr int kMessages = 12;
  azure::RetryPolicy retry;
  retry.backoff = sim::millis(250);
  retry.max_backoff = sim::seconds(2);
  retry.jitter_seed = static_cast<std::uint64_t>(seed);

  int corrupt_observed = 0;
  w.sim.spawn([](TestWorld& t, azure::RetryPolicy retry,
                 int& corrupt_observed) -> Task<> {
    auto q = t.account.create_cloud_queue_client().get_queue_reference("iq");
    co_await azure::with_retry(
        t.sim, [&] { return q.create_if_not_exists(); }, retry);
    for (int i = 0; i < kMessages; ++i) {
      co_await azure::with_retry(t.sim, [&] {
        return q.add_message(Payload::bytes(integrity_body(i)));
      }, retry);
    }
    int deleted = 0;
    while (deleted < kMessages) {
      CO_ASSERT_TRUE(t.sim.now() < sim::seconds(600));  // lost-message guard
      auto m = co_await azure::with_retry(
          t.sim, [&] { return q.get_message(sim::seconds(5)); }, retry);
      if (!m.has_value()) {
        co_await t.sim.delay(sim::millis(200));
        continue;
      }
      const int id = std::stoi(m->body.data());
      if (m->body.data() != integrity_body(id)) ++corrupt_observed;
      co_await azure::with_retry(
          t.sim, [&] { return q.delete_message(*m); }, retry);
      ++deleted;
    }
    // One blob round-trip through the same hostile wire.
    auto c = t.account.create_cloud_blob_client().get_container_reference("ic");
    co_await azure::with_retry(
        t.sim, [&] { return c.create_if_not_exists(); }, retry);
    auto blob = c.get_block_blob_reference("ib");
    const std::string data = integrity_body(1'000'000);
    co_await azure::with_retry(
        t.sim, [&] { return blob.upload_text(Payload::bytes(data)); }, retry);
    const auto back = co_await azure::with_retry(
        t.sim, [&] { return blob.download_text(); }, retry);
    if (back.data() != data) ++corrupt_observed;
  }(w, retry, corrupt_observed));
  w.sim.run();

  EXPECT_EQ(corrupt_observed, 0)
      << "a corrupt payload reached a client under seed " << seed;

  // Force one full anti-entropy pass and require total convergence: every
  // replica of every tracked object back on the committed checksum.
  auto& cluster = w.env.storage_cluster();
  EXPECT_GT(cluster.replica_store().tracked_objects(), 0);
  w.sim.spawn(cluster.scrub_all());
  w.sim.run();
  EXPECT_EQ(cluster.replica_store().divergent_replicas(), 0)
      << "scrub failed to converge replicas under seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwoHundredSeeds, IntegrityLaw,
                         ::testing::Range(0, 200));

}  // namespace
