// Unit tests for the network fabric model.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/nic.hpp"
#include "simcore/simulation.hpp"
#include "simcore/sync.hpp"

namespace {

using sim::Simulation;
using sim::Task;
using sim::TimePoint;

netsim::NicConfig fast_nic() {
  return netsim::NicConfig{
      /*uplink_bytes_per_sec=*/1e6, /*downlink_bytes_per_sec=*/1e6,
      /*latency=*/sim::micros(100), /*burst_bytes=*/0.0};
}

TEST(NicTest, SendOccupiesUplinkForBytesOverBandwidth) {
  Simulation s;
  netsim::Nic nic(s, fast_nic());
  TimePoint done = -1;
  s.spawn([](Simulation& sim, netsim::Nic& n, TimePoint& t) -> Task<> {
    co_await n.send(500'000);  // 0.5 s at 1 MB/s
    t = sim.now();
  }(s, nic, done));
  s.run();
  EXPECT_EQ(done, sim::millis(500));
  EXPECT_EQ(nic.bytes_sent(), 500'000);
}

TEST(NicTest, UplinkAndDownlinkAreIndependent) {
  Simulation s;
  netsim::Nic nic(s, fast_nic());
  TimePoint up_done = -1, down_done = -1;
  s.spawn([](Simulation& sim, netsim::Nic& n, TimePoint& t) -> Task<> {
    co_await n.send(1'000'000);
    t = sim.now();
  }(s, nic, up_done));
  s.spawn([](Simulation& sim, netsim::Nic& n, TimePoint& t) -> Task<> {
    co_await n.receive(1'000'000);
    t = sim.now();
  }(s, nic, down_done));
  s.run();
  // Full duplex: both directions complete in 1 s, not 2.
  EXPECT_EQ(up_done, sim::seconds(1));
  EXPECT_EQ(down_done, sim::seconds(1));
}

TEST(NicTest, ConcurrentSendersShareUplink) {
  Simulation s;
  netsim::Nic nic(s, fast_nic());
  int completed = 0;
  TimePoint last = 0;
  for (int i = 0; i < 4; ++i) {
    s.spawn([](Simulation& sim, netsim::Nic& n, int& c,
               TimePoint& l) -> Task<> {
      co_await n.send(250'000);
      ++c;
      l = sim.now();
    }(s, nic, completed, last));
  }
  s.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(last, sim::seconds(1));  // 1 MB total at 1 MB/s
}

TEST(NetworkTest, TransferPaysBothNicsAndPropagation) {
  Simulation s;
  netsim::Network net(s, {.propagation = sim::millis(1)});
  netsim::Nic a(s, fast_nic()), b(s, fast_nic());
  TimePoint done = -1;
  s.spawn([](Simulation& sim, netsim::Network& n, netsim::Nic& src,
             netsim::Nic& dst, TimePoint& t) -> Task<> {
    co_await n.transfer(src, dst, 100'000);  // 0.1 s per pipe
    t = sim.now();
  }(s, net, a, b, done));
  s.run();
  // store-and-forward: 0.1s (src up) + 1 ms prop + 2*0.1ms nic latency
  // + 0.1s (dst down)
  EXPECT_EQ(done, sim::millis(100) + sim::millis(1) + sim::micros(200) +
                      sim::millis(100));
  EXPECT_EQ(net.bytes_moved(), 100'000);
}

TEST(NetworkTest, ControlHopMovesNoBytes) {
  Simulation s;
  netsim::Network net(s, {.propagation = sim::millis(1)});
  netsim::Nic a(s, fast_nic()), b(s, fast_nic());
  TimePoint done = -1;
  s.spawn([](Simulation& sim, netsim::Network& n, netsim::Nic& src,
             netsim::Nic& dst, TimePoint& t) -> Task<> {
    co_await n.control_hop(src, dst);
    t = sim.now();
  }(s, net, a, b, done));
  s.run();
  EXPECT_EQ(done, sim::millis(1) + sim::micros(200));
  EXPECT_EQ(net.bytes_moved(), 0);
  EXPECT_EQ(a.bytes_sent(), 0);
}

TEST(NicTest, BurstCreditPassesControlPackets) {
  Simulation s;
  netsim::NicConfig cfg = fast_nic();
  cfg.burst_bytes = 10'000;
  netsim::Nic nic(s, cfg);
  TimePoint done = -1;
  s.spawn([](Simulation& sim, netsim::Nic& n, TimePoint& t) -> Task<> {
    co_await sim.delay(sim::seconds(1));  // accrue credit
    co_await n.send(5'000);               // within burst: free
    t = sim.now();
  }(s, nic, done));
  s.run();
  EXPECT_EQ(done, sim::seconds(1));
}

}  // namespace
