// Scenario DSL suite (`ctest -L scenario`):
//   1. parser/binder error paths — every diagnostic is typed
//      (ScenarioError) and carries the JSON path plus line/column;
//   2. generator toolkit (framework/keygen.hpp) — known-answer sequences,
//      distribution moments inside analytic bounds, permutation/coverage
//      properties, and the zipf s=0 degenerate-to-uniform boundary fix;
//   3. bench_util flag parsing — the regression tests for this PR's bugfix
//      sweep (each documents the silent pre-fix behaviour it kills);
//   4. driver replay — the generic runner is a pure function of the spec:
//      two runs produce byte-identical reports and obs JSON exports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "framework/keygen.hpp"
#include "framework/scenario.hpp"
#include "obs/observer.hpp"
#include "scenario_runner.hpp"

namespace {

using framework::KeyGen;
using framework::KeyGenConfig;
using framework::parse_scenario;
using framework::Scenario;
using framework::ScenarioError;

// Expects `parse_scenario(text)` to fail with a diagnostic anchored at
// `path` whose reason contains `needle`.
void expect_error(const std::string& text, const std::string& path,
                  const std::string& needle, int line = -1) {
  try {
    (void)parse_scenario(text);
    FAIL() << "expected ScenarioError(" << path << ") for: " << text;
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.path(), path) << e.what();
    EXPECT_NE(e.reason().find(needle), std::string::npos) << e.what();
    if (line >= 0) EXPECT_EQ(e.line(), line) << e.what();
  }
}

// ------------------------------------------------------------ parser ------

TEST(ScenarioParser, RejectsUnknownTopLevelKeyWithLocation) {
  expect_error("{\n  \"name\": \"x\",\n  \"keyz\": 1\n}", "scenario",
               "unknown key 'keyz'", /*line=*/3);
}

TEST(ScenarioParser, RejectsUnknownNestedKeyWithPath) {
  expect_error(
      R"({"name":"x","mix":[{"service":"table"}],"arrivals":{"rate":5}})",
      "scenario.arrivals", "unknown key 'rate'");
}

TEST(ScenarioParser, RejectsDuplicateKeys) {
  expect_error(R"({"name":"x","name":"y"})", "<spec>", "duplicate key");
}

TEST(ScenarioParser, RejectsTrailingContent) {
  expect_error("{\"name\":\"x\",\"mix\":[{\"service\":\"table\"}]} garbage",
               "<spec>", "trailing content");
}

TEST(ScenarioParser, RejectsMissingName) {
  expect_error(R"({"mix":[{"service":"table"}]})", "scenario",
               "missing required key 'name'");
}

TEST(ScenarioParser, RequiresMixOrFigure) {
  expect_error(R"({"name":"x"})", "scenario", "either 'mix'");
}

TEST(ScenarioParser, RejectsZeroWeightMixEntry) {
  // Pre-fix class of bug: a zero-weight entry silently never executes; the
  // DSL rejects it outright instead.
  expect_error(
      R"({"name":"x","mix":[{"service":"table","op":"read","weight":0}]})",
      "scenario.mix[0].weight", "zero-weight");
}

TEST(ScenarioParser, RejectsReadRatioOutOfRange) {
  expect_error(
      R"({"name":"x","read_ratio":1.5,"mix":[{"service":"table"}]})",
      "scenario.read_ratio", "out of range");
}

TEST(ScenarioParser, RejectsDiurnalAmplitudeAtOne) {
  // Boundary: amplitude lives in the half-open [0, 1) — exactly 1.0 makes
  // the trough rate 0 and the thinning envelope degenerate.
  expect_error(R"({"name":"x","mix":[{"service":"table"}],)"
               R"("arrivals":{"kind":"diurnal","amplitude":1.0}})",
               "scenario.arrivals.amplitude", "must be in [0, 1)");
  // 0.999... is fine.
  const Scenario sc = parse_scenario(
      R"({"name":"x","mix":[{"service":"table"}],)"
      R"("arrivals":{"kind":"diurnal","amplitude":0.999}})");
  EXPECT_DOUBLE_EQ(sc.arrivals.amplitude, 0.999);
}

TEST(ScenarioParser, RejectsValueSizeLoAboveHi) {
  expect_error(R"({"name":"x","mix":[{"service":"table"}],)"
               R"("values":{"min_bytes":100,"max_bytes":10}})",
               "scenario.values.min_bytes", "exceeds max_bytes");
}

TEST(ScenarioParser, RejectsKeySpaceZero) {
  expect_error(R"({"name":"x","mix":[{"service":"table"}],)"
               R"("keys":{"space":0}})",
               "scenario.keys.space", "out of range");
}

TEST(ScenarioParser, RejectsZipfExponentAboveBound) {
  expect_error(R"({"name":"x","mix":[{"service":"table"}],)"
               R"("keys":{"kind":"zipf","zipf_s":16.5}})",
               "scenario.keys.zipf_s", "out of range");
}

TEST(ScenarioParser, RejectsInvalidOpForService) {
  expect_error(
      R"({"name":"x","mix":[{"service":"blob","op":"scan"}]})",
      "scenario.mix[0].op", "not valid for service 'blob'");
}

TEST(ScenarioParser, RejectsUnknownService) {
  expect_error(R"({"name":"x","mix":[{"service":"disk"}]})",
               "scenario.mix[0].service", "unknown service");
}

TEST(ScenarioParser, RejectsUnknownArrivalKind) {
  expect_error(R"({"name":"x","mix":[{"service":"table"}],)"
               R"("arrivals":{"kind":"bursty"}})",
               "scenario.arrivals.kind", "unknown arrival kind");
}

TEST(ScenarioParser, RejectsFigurePlusMix) {
  expect_error(R"({"name":"x","figure":{"id":"fig4"},)"
               R"("mix":[{"service":"table"}]})",
               "scenario.mix", "cannot also declare a mix");
}

TEST(ScenarioParser, RejectsGenericSectionsInFigureMode) {
  expect_error(
      R"({"name":"x","figure":{"id":"fig4"},"keys":{"space":10}})",
      "scenario.keys", "no effect in figure mode");
}

TEST(ScenarioParser, RejectsUnknownFigureId) {
  expect_error(R"({"name":"x","figure":{"id":"fig3"}})",
               "scenario.figure.id", "unknown figure");
}

TEST(ScenarioParser, RejectsQueuePayloadAboveMessageCap) {
  expect_error(R"({"name":"x","values":{"bytes":65536},)"
               R"("mix":[{"service":"queue","op":"put"}]})",
               "scenario.values", "cap at 49152");
}

TEST(ScenarioParser, RejectsIntegerOverflow) {
  expect_error(R"({"name":"x","operations":99999999999999999999})", "<spec>",
               "does not fit");
}

TEST(ScenarioParser, RejectsMalformedToken) {
  expect_error(R"({"name":"x","operations":12abc})", "<spec>", "");
}

TEST(ScenarioParser, ParsesFullGenericSpecWithCommentsAndDefaults) {
  const Scenario sc = parse_scenario(R"({
    // comments are allowed — this is a config dialect
    "name": "full",
    "description": "d",
    "seed": 42,
    "operations": 500,
    "read_ratio": 0.25,
    "queue_fanout": 3,
    "rows_per_partition": 32,
    "arrivals": {"kind": "flash_crowd", "rate_per_sec": 100.0,
                 "spike_at_s": 2.0, "spike_duration_s": 1.0,
                 "spike_rate_per_sec": 400.0},
    "think": {"mean_ms": 5.0, "jitter": 0.5},
    "keys": {"kind": "zipf", "space": 100, "zipf_s": 1.1},
    "values": {"min_bytes": 100, "max_bytes": 200},
    "cluster": {"partition_servers": 8, "balancer": true,
                "throttle": "queue"},
    "faults": {"drop_probability": 0.01, "server_crashes": 2},
    "mix": [
      {"service": "queue", "op": "put", "weight": 1.0},
      {"service": "queue", "op": "get", "weight": 2.0}
    ]
  })");
  EXPECT_EQ(sc.name, "full");
  EXPECT_EQ(sc.operations, 500);
  EXPECT_EQ(sc.queue_fanout, 3);
  EXPECT_EQ(sc.arrivals.kind, framework::ArrivalConfig::Kind::kFlashCrowd);
  EXPECT_EQ(sc.arrivals.spike_at, 2 * sim::kSecond);
  EXPECT_EQ(sc.think.mean, sim::millis(5));
  EXPECT_EQ(sc.keys.kind, KeyGenConfig::Kind::kZipf);
  EXPECT_EQ(sc.keys.space, 100u);
  EXPECT_EQ(sc.values.lo, 100);
  EXPECT_EQ(sc.values.hi, 200);
  EXPECT_TRUE(sc.cluster.balancer);
  EXPECT_TRUE(sc.cluster.throttle_queue);
  EXPECT_TRUE(sc.faults.enabled());
  ASSERT_EQ(sc.mix.size(), 2u);
  EXPECT_EQ(sc.mix[1].weight, 2.0);
  // Derived seeds: distinct per section, stable, functions of the master.
  EXPECT_EQ(sc.arrivals.seed, framework::scenario_derive_seed(42, 0x10AD));
  EXPECT_EQ(sc.keys.seed, framework::scenario_derive_seed(42, 0x4E59));
  EXPECT_NE(sc.arrivals.seed, sc.keys.seed);
  EXPECT_NE(sc.keys.seed, sc.faults.seed);
}

TEST(ScenarioParser, ExplicitSectionSeedsOverrideDerivation) {
  const Scenario sc = parse_scenario(
      R"({"name":"x","mix":[{"service":"table"}],)"
      R"("keys":{"seed":7},"arrivals":{"seed":8}})");
  EXPECT_EQ(sc.keys.seed, 7u);
  EXPECT_EQ(sc.arrivals.seed, 8u);
}

TEST(ScenarioParser, PopulateDefaultsDeriveFromSpace) {
  const Scenario small = parse_scenario(
      R"({"name":"x","mix":[{"service":"table"}],"keys":{"space":50}})");
  EXPECT_EQ(small.populate_count(), 50);
  const Scenario big = parse_scenario(
      R"({"name":"x","mix":[{"service":"table"}],"keys":{"space":100000}})");
  EXPECT_EQ(big.populate_count(), 10'000);
  const Scenario expl = parse_scenario(
      R"({"name":"x","populate":3,"mix":[{"service":"table"}]})");
  EXPECT_EQ(expl.populate_count(), 3);
}

// ------------------------------------------------------------ keygen ------

std::vector<std::uint64_t> draws(const KeyGenConfig& cfg, int n) {
  KeyGen g(cfg);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(g.next());
  return out;
}

TEST(KeyGen, UniformKnownAnswer) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kUniform;
  cfg.space = 1'000;
  cfg.seed = 1;
  EXPECT_EQ(draws(cfg, 8), (std::vector<std::uint64_t>{702, 520, 574, 391, 697, 143, 71, 381}));
}

TEST(KeyGen, ZipfKnownAnswer) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kZipf;
  cfg.space = 1'000;
  cfg.zipf_s = 0.99;
  cfg.seed = 1;
  EXPECT_EQ(draws(cfg, 8), (std::vector<std::uint64_t>{4, 21, 13, 56, 5, 351, 597, 60}));
}

TEST(KeyGen, GoldenStrideKnownAnswer) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kGoldenStride;
  cfg.space = 1'000;
  cfg.seed = 1;
  EXPECT_EQ(draws(cfg, 8), (std::vector<std::uint64_t>{557, 176, 795, 414, 33, 652, 271, 890}));
}

TEST(KeyGen, CoverageKnownAnswer) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kCoverage;
  cfg.space = 1'000;
  cfg.seed = 1;
  EXPECT_EQ(draws(cfg, 8), (std::vector<std::uint64_t>{175, 123, 930, 920, 10, 265, 202, 325}));
}

TEST(KeyGen, ZipfExponentZeroDegeneratesToExactUniform) {
  // The boundary fix: s == 0 must route through the uniform path (one RNG
  // draw per key), not the rejection sampler — same seed, same sequence,
  // byte-identical replay with an explicitly-uniform generator.
  KeyGenConfig z;
  z.kind = KeyGenConfig::Kind::kZipf;
  z.zipf_s = 0.0;
  z.space = 512;
  z.seed = 99;
  KeyGenConfig u = z;
  u.kind = KeyGenConfig::Kind::kUniform;
  EXPECT_EQ(draws(z, 1'000), draws(u, 1'000));
}

TEST(KeyGen, ZipfSkewConcentratesMassOnHotKeys) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kZipf;
  cfg.space = 100;
  cfg.zipf_s = 1.1;
  cfg.seed = 5;
  std::map<std::uint64_t, int> freq;
  KeyGen g(cfg);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) freq[g.next()] += 1;
  // Analytic: P(key 0) = 1 / H, H = sum_{k=1..100} k^-1.1 ~ 4.28 =>
  // ~0.234; P(key 49) = 50^-1.1 / H ~ 0.0032, a ~73x ratio. Wide
  // tolerances: the sampler is exact, the draw count is finite.
  const double p0 = static_cast<double>(freq[0]) / n;
  EXPECT_GT(p0, 0.20);
  EXPECT_LT(p0, 0.27);
  EXPECT_GT(freq[0], 20 * freq[49]);
}

TEST(KeyGen, UniformMomentsWithinAnalyticBounds) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kUniform;
  cfg.space = 1'000;
  cfg.seed = 123;
  KeyGen g(cfg);
  const int n = 50'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(g.next());
  const double mean = sum / n;
  // E = 499.5, sigma = sqrt((1000^2-1)/12) ~ 288.67; 5 sigma / sqrt(n).
  const double tol = 5.0 * 288.67 / std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(mean, 499.5, tol);
}

TEST(KeyGen, CoverageIsAPermutationEachCycle) {
  KeyGenConfig cfg;
  cfg.kind = KeyGenConfig::Kind::kCoverage;
  cfg.space = 1'000;  // not a power of two: exercises cycle-walking
  cfg.seed = 7;
  KeyGen g(cfg);
  std::vector<std::uint64_t> first;
  std::vector<bool> seen(cfg.space, false);
  for (std::uint64_t i = 0; i < cfg.space; ++i) {
    const std::uint64_t k = g.next();
    ASSERT_LT(k, cfg.space);
    ASSERT_FALSE(seen[k]) << "repeat inside one cycle at " << i;
    seen[k] = true;
    first.push_back(k);
  }
  // The second cycle replays the same permutation (stateless in the cycle).
  for (std::uint64_t i = 0; i < cfg.space; ++i) {
    EXPECT_EQ(g.next(), first[i]);
  }
}

TEST(KeyGen, GoldenStrideCoversTheWholeSpace) {
  for (const std::uint64_t space : {997ull, 1000ull, 1024ull}) {
    KeyGenConfig cfg;
    cfg.kind = KeyGenConfig::Kind::kGoldenStride;
    cfg.space = space;
    cfg.seed = 11;
    KeyGen g(cfg);
    std::vector<bool> seen(space, false);
    for (std::uint64_t i = 0; i < space; ++i) {
      const std::uint64_t k = g.next();
      ASSERT_LT(k, space);
      ASSERT_FALSE(seen[k]) << "stride not coprime with space " << space;
      seen[k] = true;
    }
  }
}

TEST(KeyGen, SpaceOfOneAlwaysDrawsZero) {
  for (const auto kind :
       {KeyGenConfig::Kind::kUniform, KeyGenConfig::Kind::kZipf,
        KeyGenConfig::Kind::kGoldenStride, KeyGenConfig::Kind::kCoverage}) {
    KeyGenConfig cfg;
    cfg.kind = kind;
    cfg.space = 1;
    KeyGen g(cfg);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(g.next(), 0u);
  }
}

TEST(KeyGen, ConfigBoundaryValidation) {
  KeyGenConfig cfg;
  cfg.space = 0;
  EXPECT_THROW(KeyGen{cfg}, framework::KeyGenError);
  cfg.space = 10;
  cfg.kind = KeyGenConfig::Kind::kZipf;
  cfg.zipf_s = framework::kMaxZipfS;  // exact bound is valid
  EXPECT_NO_THROW(KeyGen{cfg});
  cfg.zipf_s = framework::kMaxZipfS + 0.001;
  EXPECT_THROW(KeyGen{cfg}, framework::KeyGenError);
  cfg.zipf_s = -0.1;
  EXPECT_THROW(KeyGen{cfg}, framework::KeyGenError);
}

// ------------------------------------------------- flag parsing (bugfix) --

using benchutil::IntParse;
using benchutil::parse_int;
using benchutil::UsageError;

TEST(FlagParsing, ParseIntRejectsWhatAtollAccepted) {
  // Pre-fix, flag_int used std::atoll: "abc" silently became 0, "12x"
  // silently became 12, overflow was undefined. All are typed errors now.
  std::int64_t v = -1;
  EXPECT_EQ(parse_int("abc", v), IntParse::kBadDigit);
  EXPECT_EQ(parse_int("", v), IntParse::kEmpty);
  EXPECT_EQ(parse_int("12x", v), IntParse::kTrailingJunk);
  EXPECT_EQ(parse_int("1.5", v), IntParse::kTrailingJunk);
  EXPECT_EQ(parse_int("+5", v), IntParse::kBadDigit);
  EXPECT_EQ(parse_int("99999999999999999999", v), IntParse::kOverflow);
  EXPECT_EQ(parse_int("-42", v), IntParse::kOk);
  EXPECT_EQ(v, -42);
  EXPECT_EQ(parse_int("007", v), IntParse::kOk);
  EXPECT_EQ(v, 7);
}

char** make_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (std::string& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(FlagParsing, CheckedFlagThrowsTypedUsageError) {
  std::vector<std::string> args = {"prog", "--workers=abc"};
  char** argv = make_argv(args);
  try {
    (void)benchutil::flag_int_checked(2, argv, "--workers", 4, 1, 100);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(e.flag(), "--workers");
    EXPECT_EQ(e.value(), "abc");
    EXPECT_NE(std::string(e.what()).find("--workers"), std::string::npos);
  }
}

TEST(FlagParsing, CheckedFlagEnforcesBoundsOnExplicitValuesOnly) {
  {
    std::vector<std::string> args = {"prog", "--workers=0"};
    EXPECT_THROW((void)benchutil::flag_int_checked(2, make_argv(args),
                                                   "--workers", 4, 1, 100),
                 UsageError);
  }
  {
    std::vector<std::string> args = {"prog", "--workers=101"};
    EXPECT_THROW((void)benchutil::flag_int_checked(2, make_argv(args),
                                                   "--workers", 4, 1, 100),
                 UsageError);
  }
  {
    // The fallback is the binary's own default and is returned unchecked —
    // sentinel defaults like 0 = "auto" keep working.
    std::vector<std::string> args = {"prog"};
    EXPECT_EQ(benchutil::flag_int_checked(1, make_argv(args), "--workers", 0,
                                          1, 100),
              0);
  }
  {
    std::vector<std::string> args = {"prog", "--workers=100"};
    EXPECT_EQ(benchutil::flag_int_checked(2, make_argv(args), "--workers", 4,
                                          1, 100),
              100);
  }
}

TEST(FlagParsing, DuplicateFlagsFirstOccurrenceWins) {
  // The documented (and now tested) duplicate-flag contract: first wins,
  // matching flag_value. Pre-fix this was implicit and untested.
  std::vector<std::string> args = {"prog", "--workers=3", "--workers=96"};
  EXPECT_EQ(benchutil::flag_int_checked(3, make_argv(args), "--workers", 4,
                                        1, 100),
            3);
}

TEST(FlagParsingDeathTest, FlagIntExitsWithUsageErrorOnGarbage) {
  // flag_int (the exit(2) wrapper every binary uses) must die loudly on
  // what atoll silently zeroed.
  std::vector<std::string> args = {"prog", "--workers=abc"};
  char** argv = make_argv(args);
  EXPECT_EXIT((void)benchutil::flag_int(2, argv, "--workers", 4, 1, 100),
              ::testing::ExitedWithCode(2), "usage error: --workers=abc");
}

TEST(FlagParsingDeathTest, WorkerSweepRejectsNonPositiveWorkers) {
  // Pre-fix: --workers=0 (or =abc -> 0) produced an empty/zero sweep that
  // benches silently interpreted as "default sweep" or ran zero work.
  std::vector<std::string> args = {"prog", "--workers=0"};
  char** argv = make_argv(args);
  EXPECT_EXIT((void)benchutil::worker_sweep(2, argv),
              ::testing::ExitedWithCode(2), "usage error: --workers=0");
}

using benchutil::DoubleParse;
using benchutil::parse_double;

TEST(FlagParsing, ParseDoubleIsFullTokenAndFiniteOnly) {
  double v = -1;
  EXPECT_EQ(parse_double("1.5", v), DoubleParse::kOk);
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_EQ(parse_double("-0.25", v), DoubleParse::kOk);
  EXPECT_DOUBLE_EQ(v, -0.25);
  EXPECT_EQ(parse_double("2e3", v), DoubleParse::kOk);
  EXPECT_DOUBLE_EQ(v, 2000.0);
  // Everything strtod/stod quietly tolerated is a typed failure here.
  EXPECT_EQ(parse_double("", v), DoubleParse::kEmpty);
  EXPECT_EQ(parse_double("fast", v), DoubleParse::kBadDigit);
  EXPECT_EQ(parse_double("1.5x", v), DoubleParse::kTrailingJunk);
  EXPECT_EQ(parse_double("1.5 ", v), DoubleParse::kTrailingJunk);
  EXPECT_EQ(parse_double("nan", v), DoubleParse::kNotFinite);
  EXPECT_EQ(parse_double("inf", v), DoubleParse::kNotFinite);
  EXPECT_EQ(parse_double("1e999", v), DoubleParse::kNotFinite);
}

TEST(FlagParsing, FlagDoubleCheckedMirrorsTheIntContract) {
  {
    // Strict parse, typed error carrying flag and value.
    std::vector<std::string> args = {"prog", "--rate_scale=fast"};
    try {
      (void)benchutil::flag_double_checked(2, make_argv(args), "--rate_scale",
                                           1.0, 0.001, 1000.0);
      FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
      EXPECT_EQ(e.flag(), "--rate_scale");
      EXPECT_EQ(e.value(), "fast");
    }
  }
  {
    // Bounds apply to explicit values...
    std::vector<std::string> args = {"prog", "--rate_scale=1e6"};
    EXPECT_THROW((void)benchutil::flag_double_checked(
                     2, make_argv(args), "--rate_scale", 1.0, 0.001, 1000.0),
                 UsageError);
  }
  {
    // ...but not to the binary's own fallback.
    std::vector<std::string> args = {"prog"};
    EXPECT_DOUBLE_EQ(benchutil::flag_double_checked(
                         1, make_argv(args), "--rate_scale", 0.0, 0.001,
                         1000.0),
                     0.0);
  }
  {
    // First occurrence wins, matching flag_int/flag_value.
    std::vector<std::string> args = {"prog", "--rate_scale=0.5",
                                     "--rate_scale=2.0"};
    EXPECT_DOUBLE_EQ(benchutil::flag_double_checked(
                         3, make_argv(args), "--rate_scale", 1.0, 0.001,
                         1000.0),
                     0.5);
  }
}

TEST(FlagParsingDeathTest, FlagDoubleExitsWithUsageErrorOnGarbage) {
  std::vector<std::string> args = {"prog", "--rate_scale=1.5x"};
  char** argv = make_argv(args);
  EXPECT_EXIT((void)benchutil::flag_double(2, argv, "--rate_scale", 1.0,
                                           0.001, 1000.0),
              ::testing::ExitedWithCode(2),
              "usage error: --rate_scale=1.5x");
}

// ------------------------------------------------- backend declarations --

TEST(ScenarioParser, BackendDefaultsToAzure) {
  const Scenario sc =
      parse_scenario(R"({"name":"x","mix":[{"service":"table"}]})");
  EXPECT_EQ(sc.backend, framework::BackendKind::kAzure);
}

TEST(ScenarioParser, ParsesEveryKnownBackend) {
  const std::map<std::string, framework::BackendKind> kinds = {
      {"azure", framework::BackendKind::kAzure},
      {"s3", framework::BackendKind::kS3},
      {"tiered", framework::BackendKind::kTiered}};
  for (const auto& [name, kind] : kinds) {
    const Scenario sc = parse_scenario(
        R"({"name":"x","backend":")" + name +
        R"(","mix":[{"service":"blob"}]})");
    EXPECT_EQ(sc.backend, kind) << name;
    EXPECT_STREQ(framework::backend_name(sc.backend), name.c_str());
  }
}

TEST(ScenarioParser, RejectsUnknownBackendWithLocation) {
  expect_error("{\n  \"name\": \"x\",\n  \"backend\": \"gcs\",\n"
               "  \"mix\": [{\"service\": \"blob\"}]\n}",
               "scenario.backend", "unknown backend 'gcs'", 3);
}

TEST(ScenarioParser, CapabilityMismatchNamesBackendServiceAndFlag) {
  // The s3-like backend has no queue service; the diagnostic must anchor at
  // the offending mix entry's 'service' token and name the capability flag.
  expect_error("{\n  \"name\": \"x\",\n  \"backend\": \"s3\",\n"
               "  \"mix\": [\n    {\"service\": \"blob\"},\n"
               "    {\"service\": \"queue\"}\n  ]\n}",
               "scenario.mix[1].service", "has no queue service", 6);
  expect_error(R"({"name":"x","backend":"s3","mix":[{"service":"sql"}]})",
               "scenario.mix[0].service", "has_sql=false");
}

TEST(ScenarioParser, RejectsTierSplitBytesOnNonTieredBackend) {
  expect_error(R"({"name":"x","backend":"s3","tier_split_bytes":65536,)"
               R"("mix":[{"service":"blob"}]})",
               "scenario.tier_split_bytes",
               "only applies to backend 'tiered'");
  // And on the default (azure) backend, not just an explicit non-tiered one.
  expect_error(R"({"name":"x","tier_split_bytes":65536,)"
               R"("mix":[{"service":"blob"}]})",
               "scenario.tier_split_bytes",
               "only applies to backend 'tiered'");
}

TEST(ScenarioParser, TieredBackendAcceptsTierSplitBytes) {
  const Scenario sc = parse_scenario(
      R"({"name":"x","backend":"tiered","tier_split_bytes":65536,)"
      R"("mix":[{"service":"blob"}]})");
  EXPECT_EQ(sc.backend, framework::BackendKind::kTiered);
  EXPECT_EQ(sc.tier_split_bytes, 65536);
}

TEST(ScenarioParser, BackendCapsMatrixMatchesTheDesignContract) {
  using framework::BackendKind;
  const framework::BackendCaps azure =
      framework::backend_caps(BackendKind::kAzure);
  EXPECT_TRUE(azure.has_queues);
  EXPECT_TRUE(azure.has_tables);
  EXPECT_TRUE(azure.has_sql);
  EXPECT_TRUE(azure.consistent_list);
  const framework::BackendCaps s3 = framework::backend_caps(BackendKind::kS3);
  EXPECT_TRUE(s3.has_blobs);
  EXPECT_FALSE(s3.has_queues);
  EXPECT_FALSE(s3.has_tables);
  EXPECT_FALSE(s3.has_sql);
  EXPECT_FALSE(s3.consistent_list);
  const framework::BackendCaps tiered =
      framework::backend_caps(BackendKind::kTiered);
  EXPECT_TRUE(tiered.has_queues);
  // Merged listings inherit the capacity tier's eventuality.
  EXPECT_FALSE(tiered.consistent_list);
}

// ------------------------------------------------------------ replay ------

const char* kReplaySpec = R"({
  "name": "replay",
  "seed": 77,
  "operations": 600,
  "read_ratio": 0.6,
  "queue_fanout": 2,
  "populate": 48,
  "arrivals": {"kind": "flash_crowd", "rate_per_sec": 300.0,
               "spike_at_s": 1.0, "spike_duration_s": 1.0,
               "spike_rate_per_sec": 600.0},
  "think": {"mean_ms": 1.0, "jitter": 0.5},
  "keys": {"kind": "zipf", "space": 48, "zipf_s": 1.1},
  "values": {"min_bytes": 256, "max_bytes": 4096},
  "faults": {"drop_probability": 0.005, "latency_spike_probability": 0.01},
  "mix": [
    {"service": "blob", "op": "mixed", "weight": 1.0},
    {"service": "queue", "op": "mixed", "weight": 1.0},
    {"service": "table", "op": "rmw", "weight": 0.5},
    {"service": "sql", "op": "mixed", "weight": 0.5}
  ]
})";

TEST(ScenarioReplay, GenericRunIsBytewiseDeterministic) {
  const Scenario sc = parse_scenario(kReplaySpec);
  const auto r1 = benchscn::run_generic_scenario(sc, nullptr);
  const auto r2 = benchscn::run_generic_scenario(sc, nullptr);
  EXPECT_EQ(benchscn::canonical_report(sc, r1),
            benchscn::canonical_report(sc, r2));
  EXPECT_EQ(r1.stats, r2.stats);
}

TEST(ScenarioReplay, ObsExportReplaysByteIdentically) {
  const Scenario sc = parse_scenario(kReplaySpec);
  obs::Observer o1;
  obs::Observer o2;
  const auto r1 = benchscn::run_generic_scenario(sc, &o1);
  const auto r2 = benchscn::run_generic_scenario(sc, &o2);
  EXPECT_EQ(benchscn::canonical_report(sc, r1),
            benchscn::canonical_report(sc, r2));
  EXPECT_EQ(o1.to_json(), o2.to_json());
}

TEST(ScenarioReplay, ObserverDoesNotPerturbTheRun) {
  // Observability must be free: the canonical report with an observer
  // attached is byte-identical to the unobserved run.
  const Scenario sc = parse_scenario(kReplaySpec);
  obs::Observer o;
  const auto observed = benchscn::run_generic_scenario(sc, &o);
  const auto plain = benchscn::run_generic_scenario(sc, nullptr);
  EXPECT_EQ(benchscn::canonical_report(sc, observed),
            benchscn::canonical_report(sc, plain));
}

TEST(ScenarioReplay, AccountingInvariantsHold) {
  const Scenario sc = parse_scenario(kReplaySpec);
  const auto r = benchscn::run_generic_scenario(sc, nullptr);
  const framework::LoadStats& st = r.stats;
  EXPECT_EQ(st.offered, sc.operations);
  EXPECT_EQ(st.offered, st.admitted + st.shed);
  EXPECT_EQ(st.admitted, st.completed + st.dead_lettered);
  // Every admitted session lands in exactly one per-entry bucket: count,
  // miss, or err (err also covers the final-busy rethrow that the engine
  // dead-letters).
  std::int64_t bucketed = 0;
  for (const benchscn::MixStat& ms : r.per_entry) {
    bucketed += ms.count + ms.miss + ms.err;
  }
  EXPECT_EQ(bucketed, st.completed + st.dead_lettered);
}

}  // namespace
