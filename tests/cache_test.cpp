// Unit tests for the distributed caching service (extension module; the
// paper's future work).
#include <gtest/gtest.h>

#include <string>

#include "azure_test_util.hpp"
#include "azure/common/errors.hpp"

namespace {

using azb_test::TestWorld;
using azure::Payload;
using sim::Task;
using sim::TimePoint;

TEST(CacheTest, PutGetRoundtrip) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference(
        "session");
    co_await cache.put("user:1", Payload::bytes("alice"));
    auto hit = co_await cache.get("user:1");
    CO_ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data(), "alice");
    auto miss = co_await cache.get("user:2");
    EXPECT_FALSE(miss.has_value());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
  });
}

TEST(CacheTest, PutReplacesValue) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    co_await cache.put("k", Payload::bytes("v1"));
    co_await cache.put("k", Payload::bytes("v2"));
    auto hit = co_await cache.get("k");
    CO_ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data(), "v2");
    EXPECT_EQ(cache.stats().items, 1);
  });
}

TEST(CacheTest, RemoveDeletesItem) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    co_await cache.put("k", Payload::bytes("v"));
    EXPECT_TRUE(co_await cache.remove("k"));
    EXPECT_FALSE(co_await cache.remove("k"));
    EXPECT_FALSE((co_await cache.get("k")).has_value());
  });
}

TEST(CacheTest, TtlExpiresItems) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    co_await cache.put("k", Payload::bytes("v"), sim::seconds(10));
    EXPECT_TRUE((co_await cache.get("k")).has_value());
    co_await t.sim.delay(sim::seconds(11));
    EXPECT_FALSE((co_await cache.get("k")).has_value());
  });
}

TEST(CacheTest, LruEvictionUnderMemoryPressure) {
  azure::CloudConfig cfg;
  cfg.cache.cache_servers = 1;  // single server: deterministic LRU
  cfg.cache.memory_per_server = 3 * 1024;
  TestWorld w(cfg);
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    co_await cache.put("a", Payload::synthetic(1024));
    co_await cache.put("b", Payload::synthetic(1024));
    co_await cache.put("c", Payload::synthetic(1024));
    // Touch "a" so "b" becomes the LRU victim.
    EXPECT_TRUE((co_await cache.get("a")).has_value());
    co_await cache.put("d", Payload::synthetic(1024));
    EXPECT_TRUE((co_await cache.get("a")).has_value());
    EXPECT_FALSE((co_await cache.get("b")).has_value());  // evicted
    EXPECT_TRUE((co_await cache.get("c")).has_value());
    EXPECT_TRUE((co_await cache.get("d")).has_value());
    EXPECT_EQ(cache.stats().evictions, 1);
  });
}

TEST(CacheTest, OversizedItemRejected) {
  azure::CloudConfig cfg;
  cfg.cache.memory_per_server = 1024;
  TestWorld w(cfg);
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    EXPECT_THROW(co_await cache.put("big", Payload::synthetic(2048)),
                 azure::InvalidArgumentError);
  });
}

TEST(CacheTest, ServerRestartDropsOnlyItsPartitions) {
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto& svc = t.env.cache_service();
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    // Find two keys on different servers.
    std::string on0, other;
    for (int i = 0; i < 64 && (on0.empty() || other.empty()); ++i) {
      const std::string key = "key-" + std::to_string(i);
      if (svc.server_of("c", key) == 0 && on0.empty()) on0 = key;
      if (svc.server_of("c", key) != 0 && other.empty()) other = key;
    }
    CO_ASSERT_TRUE(!on0.empty() && !other.empty());
    co_await cache.put(on0, Payload::bytes("x"));
    co_await cache.put(other, Payload::bytes("y"));
    svc.restart_server(0);  // fault injection: the cache is volatile
    EXPECT_FALSE((co_await cache.get(on0)).has_value());
    EXPECT_TRUE((co_await cache.get(other)).has_value());
  });
}

TEST(CacheTest, CacheReadFasterThanTableRead) {
  // The motivation for the caching service: sub-millisecond in-memory
  // reads vs. tens of milliseconds for the durable table.
  TestWorld w;
  azb_test::run(w, [](TestWorld& t) -> Task<> {
    auto cache = t.account.create_cloud_cache_client().get_cache_reference("c");
    auto table =
        t.account.create_cloud_table_client().get_table_reference("tbl");
    co_await table.create();
    azure::TableEntity e;
    e.partition_key = "p";
    e.row_key = "r";
    e.properties["data"] = Payload::synthetic(4096);
    co_await table.insert(e);
    co_await cache.put("r", Payload::synthetic(4096));

    TimePoint t0 = t.sim.now();
    (void)co_await cache.get("r");
    const auto cache_latency = t.sim.now() - t0;

    t0 = t.sim.now();
    (void)co_await table.query("p", "r");
    const auto table_latency = t.sim.now() - t0;

    EXPECT_LT(cache_latency, table_latency / 5);
  });
}

TEST(CacheTest, KeysSpreadAcrossServers) {
  TestWorld w;
  auto& svc = w.env.cache_service();
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    ++counts[static_cast<size_t>(
        svc.server_of("c", "key-" + std::to_string(i)))];
  }
  for (int n : counts) {
    EXPECT_GT(n, 50);
    EXPECT_LT(n, 200);
  }
}

}  // namespace
